"""Figure 7: capacity bounds of the two-way relay channel vs SNR.

Paper's claims for this figure:
* the ANC lower bound approaches twice the routing upper bound at high SNR;
* below roughly 8 dB the amplified noise makes ANC worse than routing;
* practical systems operate at 20-40 dB, squarely in the ANC-wins region.
"""

from conftest import write_result

from repro.experiments.capacity_fig7 import render_capacity_table, run_capacity_experiment


def test_fig07_capacity_bounds(benchmark):
    curve = benchmark.pedantic(run_capacity_experiment, rounds=1, iterations=1)
    write_result("fig07_capacity", render_capacity_table(curve))

    # Crossover in the high-single-digit dB range (paper: ~8 dB).
    assert 6.0 <= curve.crossover_db <= 11.0
    # ANC loses at 5 dB, wins at 20 dB and beyond (and keeps growing).
    assert curve.gain_at(5.0) < 1.0
    assert curve.gain_at(20.0) > 1.3
    assert curve.gain_at(40.0) > 1.65
    # The gain approaches (but never exceeds) 2x at the top of the sweep.
    assert 1.75 <= curve.asymptotic_gain < 2.0
