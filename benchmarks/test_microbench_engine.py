"""Microbenchmark of the parallel experiment engine.

Two measurements:

* the engine's own dispatch overhead (serial map over trivial trials) —
  this must stay negligible next to a real trial's cost, since every
  figure runner now routes through :meth:`ExperimentEngine.map`;
* the wall-clock speedup of fanning the Fig. 9 Alice-Bob Monte-Carlo
  sweep out across 4 process workers.  Trials are embarrassingly parallel
  (per-trial seeded RNG substreams, no shared state), so the speedup
  should be near-linear; the test asserts >= 2.5x on 4 workers and that
  the parallel report is bit-identical to the serial one.  It is skipped
  on machines with fewer than 4 cores, where the hardware cannot exhibit
  the speedup (the bit-identity guarantee is still covered for 2 workers
  by ``tests/experiments/test_engine.py``).

Results are written to ``benchmarks/results/microbench_engine.txt``.
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import write_result

from repro.experiments.alice_bob import run_alice_bob_experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import ExperimentEngine


def _noop_trial(cfg: ExperimentConfig, key: int) -> int:
    """A trial with negligible cost, to expose pure engine overhead."""
    return key


def test_engine_dispatch_overhead(benchmark):
    """Serial engine dispatch must cost well under a millisecond per trial."""
    engine = ExperimentEngine()
    cfg = ExperimentConfig.quick()
    results = benchmark(engine.map, "microbench_noop", _noop_trial, cfg, range(256))
    assert results == list(range(256))
    per_trial = benchmark.stats.stats.mean / 256
    assert per_trial < 1e-3, f"engine dispatch overhead {per_trial * 1e6:.0f}us/trial"


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup demonstration needs >= 4 physical cores",
)
@pytest.mark.skipif(
    os.environ.get("CI", "") != "" and os.environ.get("ANC_BENCH_SPEEDUP") != "1",
    reason="wall-clock speedup asserts are unreliable on shared CI runners "
    "(set ANC_BENCH_SPEEDUP=1 to force)",
)
def test_engine_parallel_speedup_alice_bob():
    """With 4 workers the Alice-Bob sweep runs >= 2.5x faster, bit-identically."""
    cfg = ExperimentConfig(runs=8, packets_per_run=4, payload_bits=512, seed=3)

    start = time.perf_counter()
    serial = run_alice_bob_experiment(cfg, engine=ExperimentEngine(workers=1))
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_alice_bob_experiment(cfg, engine=ExperimentEngine(workers=4))
    parallel_seconds = time.perf_counter() - start

    speedup = serial_seconds / parallel_seconds
    write_result(
        "microbench_engine",
        "\n".join(
            [
                "=== engine microbenchmark: Fig. 9 sweep, 8 trials ===",
                f"serial (workers=1):   {serial_seconds:8.2f} s",
                f"parallel (workers=4): {parallel_seconds:8.2f} s",
                f"speedup:              {speedup:8.2f} x",
            ]
        ),
        check_reference=False,  # timings vary per machine
    )

    assert serial.render() == parallel.render(), "parallel run must be bit-identical"
    assert speedup >= 2.5, f"expected >= 2.5x speedup on 4 workers, got {speedup:.2f}x"
