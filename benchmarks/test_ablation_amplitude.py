"""Ablation: how much BER comes from amplitude estimation?

The interference decoder needs the two received amplitudes A and B.  This
ablation compares three ways of obtaining them on identical collisions:

* ``oracle``  — the true amplitudes (lower-bounds the achievable BER);
* ``hybrid``  — clean-head measurement for A plus the Eq. 5 mean-energy
  relation for B (the library's default);
* ``sigma``   — the paper's two-statistic estimator (Eqs. 5-6).

Expected outcome: oracle <= hybrid <= sigma in BER, with all three small —
i.e. amplitude estimation is not the dominant error source at the
operating SNR.
"""

import numpy as np
from conftest import write_result

from repro.anc.decoder import DecoderConfig, InterferenceDecoder
from repro.channel.interference import InterferenceCombiner
from repro.channel.link import Link
from repro.framing.frame import Framer
from repro.framing.packet import Packet
from repro.modulation.msk import MSKModulator

PAYLOAD = 512
COLLISIONS = 60
NOISE = 2.5e-3


def _collision(rng):
    framer = Framer()
    modulator = MSKModulator()
    packet_a = Packet.random(1, 2, int(rng.integers(0, 60000)), PAYLOAD, rng)
    packet_b = Packet.random(2, 1, int(rng.integers(0, 60000)), PAYLOAD, rng)
    frame_a, frame_b = framer.build(packet_a), framer.build(packet_b)
    wave_a, wave_b = modulator.modulate(frame_a.bits), modulator.modulate(frame_b.bits)
    attenuation_a = float(rng.uniform(0.7, 1.0))
    attenuation_b = float(rng.uniform(0.55, 0.95))
    link_a = Link(attenuation=attenuation_a, phase_shift=float(rng.uniform(-np.pi, np.pi)),
                  frequency_offset=float(rng.uniform(0.01, 0.04)))
    link_b = Link(attenuation=attenuation_b, phase_shift=float(rng.uniform(-np.pi, np.pi)),
                  frequency_offset=-float(rng.uniform(0.01, 0.04)))
    offset = int(rng.integers(140, 220))
    combiner = InterferenceCombiner(noise_power=NOISE, rng=rng)
    collision = combiner.combine([(wave_a, link_a, 0), (wave_b, link_b, offset)], tail_padding=24)
    return collision.signal, frame_a, frame_b, offset, (attenuation_a, attenuation_b)


def _mean_ber(method: str, seed: int = 1) -> float:
    rng = np.random.default_rng(seed)
    bers = []
    for _ in range(COLLISIONS):
        received, frame_a, frame_b, offset, true_amps = _collision(rng)
        if method == "oracle":
            config = DecoderConfig(amplitude_method="oracle", amplitude_oracle=true_amps)
        else:
            config = DecoderConfig(amplitude_method=method)
        decoder = InterferenceDecoder(config)
        bits, _ = decoder.decode(received, frame_a.bits, 0, offset, len(frame_b.bits))
        bers.append(float(np.mean(bits != frame_b.bits)))
    return float(np.mean(bers))


def test_ablation_amplitude_estimation(benchmark):
    def run_all():
        return {method: _mean_ber(method) for method in ("oracle", "hybrid", "sigma")}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = ["amplitude method | mean BER over %d collisions" % COLLISIONS, "-" * 45]
    for method, ber in results.items():
        lines.append(f"{method:16} | {ber:.4f}")
    write_result("ablation_amplitude", "\n".join(lines))

    # Oracle is the floor; the default hybrid estimator stays close to it.
    assert results["oracle"] <= results["hybrid"] + 0.01
    assert results["hybrid"] <= results["sigma"] + 0.01
    # None of the estimators is the dominant error source at this SNR.
    assert results["hybrid"] < 0.05
    assert results["sigma"] < 0.12
