"""Ablation: phase-difference decoding vs naive signal subtraction (§6).

The paper argues that subtracting a reconstructed copy of the known signal
"does not work [in practice]: it is fragile and depends on the errors in
Alice's estimate of the channel parameters ... they do vary with time."
This ablation decodes the same collisions with both approaches while the
channel's phase slowly drifts over the packet, and shows the subtraction
baseline degrading much faster than the ANC decoder.
"""

import numpy as np
from conftest import write_result

from repro.anc.decoder import InterferenceDecoder, SubtractionDecoder
from repro.channel.interference import InterferenceCombiner
from repro.channel.link import Link
from repro.framing.frame import Framer
from repro.framing.packet import Packet
from repro.modulation.msk import MSKModulator

PAYLOAD = 384
COLLISIONS = 30
DRIFTS = (0.0, 0.01, 0.02, 0.04)


def _mean_bers(phase_drift: float, seed: int = 3):
    rng = np.random.default_rng(seed)
    framer, modulator = Framer(), MSKModulator()
    anc_bers, subtraction_bers = [], []
    anc = InterferenceDecoder()
    subtraction = SubtractionDecoder()
    for _ in range(COLLISIONS):
        packet_a = Packet.random(1, 2, int(rng.integers(0, 60000)), PAYLOAD, rng)
        packet_b = Packet.random(2, 1, int(rng.integers(0, 60000)), PAYLOAD, rng)
        frame_a, frame_b = framer.build(packet_a), framer.build(packet_b)
        wave_a, wave_b = modulator.modulate(frame_a.bits), modulator.modulate(frame_b.bits)
        link_a = Link(attenuation=0.9, phase_shift=float(rng.uniform(-np.pi, np.pi)),
                      phase_drift=phase_drift)
        link_b = Link(attenuation=0.6, phase_shift=float(rng.uniform(-np.pi, np.pi)),
                      frequency_offset=0.02, phase_drift=phase_drift)
        offset = int(rng.integers(140, 200))
        combiner = InterferenceCombiner(noise_power=1e-4, rng=rng)
        received = combiner.combine(
            [(wave_a, link_a, 0), (wave_b, link_b, offset)], tail_padding=24
        ).signal
        anc_bits, _ = anc.decode(received, frame_a.bits, 0, offset, len(frame_b.bits))
        sub_bits = subtraction.decode(received, frame_a.bits, 0, offset, len(frame_b.bits))
        anc_bers.append(float(np.mean(anc_bits != frame_b.bits)))
        subtraction_bers.append(float(np.mean(sub_bits != frame_b.bits)))
    return float(np.mean(anc_bers)), float(np.mean(subtraction_bers))


def test_ablation_subtraction_vs_anc(benchmark):
    def sweep():
        return {drift: _mean_bers(drift) for drift in DRIFTS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["phase drift (rad/sample) | ANC BER | subtraction BER", "-" * 55]
    for drift, (anc_ber, sub_ber) in results.items():
        lines.append(f"{drift:24.3f} | {anc_ber:7.4f} | {sub_ber:7.4f}")
    write_result("ablation_subtraction", "\n".join(lines))

    # With a perfectly static channel both approaches work.
    assert results[0.0][0] < 0.02
    assert results[0.0][1] < 0.02
    # Under drift, subtraction degrades while ANC stays robust (the §6 claim).
    worst_drift = max(DRIFTS)
    assert results[worst_drift][1] > 4 * max(results[worst_drift][0], 1e-4)
    assert results[worst_drift][0] < 0.05
