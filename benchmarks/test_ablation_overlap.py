"""Ablation: throughput gain as a function of packet overlap.

Section 11.4 attributes most of the gap between ANC's theoretical 2x gain
and the measured ~1.7x to imperfect overlap (~80 % on the testbed).  This
ablation sweeps the mean overlap and confirms the relationship: the gain
over traditional routing grows monotonically with overlap and approaches
(but stays below) 2x as overlap approaches 1.
"""

import numpy as np
from conftest import write_result

from repro.channel.interference import OverlapModel
from repro.network.flows import Flow
from repro.network.topologies import ALICE, BOB, RELAY, ChannelConditions, alice_bob_topology
from repro.protocols.anc import ANCRelayProtocol, default_min_offset
from repro.protocols.traditional import TraditionalRouting

OVERLAPS = (0.70, 0.80, 0.90, 0.97)
PAYLOAD = 768
EXCHANGES = 8


def _gain_at_overlap(mean_overlap: float, seed: int = 5) -> float:
    conditions = ChannelConditions(snr_db=28.0)
    rng = np.random.default_rng(seed)
    topology = alice_bob_topology(conditions, rng)
    flow_a, flow_b = Flow(ALICE, BOB, EXCHANGES), Flow(BOB, ALICE, EXCHANGES)
    traditional = TraditionalRouting(
        topology, [flow_a, flow_b], payload_bits=PAYLOAD, rng=np.random.default_rng(seed + 1)
    ).run()
    anc = ANCRelayProtocol(
        topology, RELAY, flow_a, flow_b, payload_bits=PAYLOAD, redundancy_overhead=0.0,
        overlap_model=OverlapModel(
            mean_overlap=mean_overlap, jitter=0.02, min_offset=default_min_offset(),
            rng=np.random.default_rng(seed + 2),
        ),
        rng=np.random.default_rng(seed + 2),
    ).run()
    return anc.throughput / traditional.throughput


def test_ablation_gain_vs_overlap(benchmark):
    def sweep():
        return {overlap: _gain_at_overlap(overlap) for overlap in OVERLAPS}

    gains = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["mean overlap | gain over traditional (no FEC overhead)", "-" * 52]
    for overlap, gain in gains.items():
        lines.append(f"{overlap:12.2f} | {gain:.3f}")
    write_result("ablation_overlap", "\n".join(lines))

    ordered = [gains[o] for o in OVERLAPS]
    # Monotonically increasing in overlap...
    assert all(b >= a - 0.03 for a, b in zip(ordered, ordered[1:]))
    # ...approaching 2x at near-full overlap but never reaching it,
    assert ordered[-1] > 1.7
    assert ordered[-1] < 2.0
    # ...and clearly below that at the paper's 80 % operating point.
    assert gains[0.80] < ordered[-1]
