"""The §11.3 "Summary of Results" bullet list, regenerated as one table.

Paper's headline numbers:
* Alice-Bob: +70 % over traditional, +30 % over COPE, BER ~2-4 %;
* "X" topology: +65 % over traditional, +28 % over COPE;
* chain: +36 % over traditional (COPE not applicable);
* decoding works down to -3 dB SIR.
"""

from conftest import write_result

from repro.experiments.summary import run_summary


def test_summary_of_results(benchmark, bench_config):
    summary = benchmark.pedantic(
        run_summary, args=(bench_config,), kwargs={"include_sir_sweep": True},
        rounds=1, iterations=1,
    )
    write_result("summary_table", summary.render())
    rows = summary.rows()

    # Every topology shows the paper's ordering: ANC beats both baselines.
    assert rows["alice_bob_gain_over_traditional"] > 1.35
    assert rows["alice_bob_gain_over_cope"] > 1.05
    assert rows["x_gain_over_traditional"] > 1.25
    assert rows["x_gain_over_cope"] > 1.0
    assert rows["chain_gain_over_traditional"] > 1.15
    # The relative ranking of topologies matches the paper: Alice-Bob >= X.
    assert rows["alice_bob_gain_over_traditional"] >= rows["x_gain_over_traditional"] - 0.05
    # BERs are small, and the chain's is the smallest.
    assert rows["alice_bob_mean_ber"] < 0.1
    assert rows["chain_mean_ber"] <= rows["alice_bob_mean_ber"] + 1e-9
    # Decoding still works at -3 dB SIR.
    assert rows["ber_at_minus3db_sir"] < 0.05
