"""Extension: measured ANC gain and BER across operating SNR.

Not a figure from the paper, but the empirical counterpart of its Fig. 7
analysis: the capacity bounds predict ANC's advantage grows with SNR and
vanishes at low SNR.  This benchmark sweeps the simulated testbed's
operating SNR and checks that the measured behaviour is consistent with
the prediction inside the practical operating range.
"""

from conftest import write_result

from repro.experiments.config import ExperimentConfig
from repro.experiments.snr_sweep import render_snr_table, run_snr_sweep


def test_extension_gain_and_ber_vs_snr(benchmark, bench_config):
    config = ExperimentConfig(
        runs=bench_config.runs,
        packets_per_run=max(4, bench_config.packets_per_run // 2),
        payload_bits=bench_config.payload_bits,
        seed=bench_config.seed,
    )
    points = benchmark.pedantic(
        run_snr_sweep, args=(config,), kwargs={"runs_per_point": 2}, rounds=1, iterations=1
    )
    write_result("extension_snr_sweep", render_snr_table(points))

    by_snr = {p.snr_db: p for p in points}
    # ANC wins throughout the practical operating range the paper targets.
    assert all(p.anc_wins for p in points if p.snr_db >= 20.0)
    # BER falls (or stays negligible) as SNR rises.
    assert by_snr[36.0].mean_ber <= by_snr[16.0].mean_ber + 1e-9
    # Measured gains stay below the information-theoretic 2x ceiling.
    assert all(p.gain_over_traditional < 2.0 for p in points)
