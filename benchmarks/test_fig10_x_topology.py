"""Figure 10: "X" topology — throughput-gain CDFs and BER CDF.

Paper's claims for this figure:
* gains are slightly lower than the Alice-Bob topology (~65 % over
  traditional, ~28 % over COPE) because the destinations must *overhear*
  the packet they later cancel, and overhearing occasionally fails;
* the BER CDF has a heavier tail than Fig. 9(b) — the packets lost to
  failed overhearing.
"""

from conftest import write_result

from repro.experiments.alice_bob import run_alice_bob_experiment
from repro.experiments.x_topology import run_x_topology_experiment


def test_fig10_x_topology(benchmark, bench_config):
    report = benchmark.pedantic(
        run_x_topology_experiment, args=(bench_config,), rounds=1, iterations=1
    )
    write_result("fig10_x_topology", report.render())

    gain_traditional = report.comparisons["traditional"].mean_gain
    gain_cope = report.comparisons["cope"].mean_gain

    assert gain_traditional > 1.25
    assert gain_cope > 1.0
    assert gain_traditional > gain_cope

    # Heavier BER tail than the Alice-Bob case: compare against Fig. 9 run
    # with the same configuration.
    alice_bob = run_alice_bob_experiment(bench_config)
    assert report.ber_cdf.quantile(0.99) >= alice_bob.ber_cdf.quantile(0.99)
    # ...but the bulk of decoded packets is still low-BER.
    assert report.ber_cdf.median < 0.02
    # Overhearing failures cost a few percent of deliveries, not most.
    assert 0.75 < report.extras["anc_delivery_ratio"] <= 1.0
    # Gains remain at or below the Alice-Bob topology's (paper: 65% vs 70%).
    assert gain_traditional <= alice_bob.comparisons["traditional"].mean_gain + 0.05
