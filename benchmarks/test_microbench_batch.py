"""Microbenchmark of the batched PHY fast path against the scalar reference.

Two claims are asserted:

* the batched interference decoder sustains **>= 4x** the scalar
  decoder's throughput at ``batch_size=64`` — a deliberately safe floor
  below the ~5x this hardware records, because a pass/fail bar a few
  percent under the recorded value flakes on loaded CI runners.
  *Trajectory* enforcement (catching a real regression from one PR to
  the next) belongs to ``tools/check_bench_regression.py``, which
  compares ``BENCH_phy.json`` against the committed baseline with a 30 %
  tolerance;
* batching is not a numerical fork: the decoded bits are asserted
  bit-identical to the scalar path right inside the benchmark, so the
  timing can never drift away from the thing the differential suite
  (``tests/properties/test_batch_equivalence.py``) certifies.

The decode kernel is additionally timed once per available compute
backend (``repro.backend``): the numpy numbers stay the gated top-level
metrics, and the per-backend numbers land under ``"backends"`` in
``BENCH_phy.json``.  Digest-neutral backends must reproduce the scalar
bits exactly; ``float32-fast`` must stay inside its declared accuracy
gate.  When numba is actually installed (CI's optional-deps job, which
sets ``ANC_ENFORCE_NUMBA_GATE=1``), the numba backend must clear >= 2x
over the batched numpy decode.

Results are written to ``benchmarks/results/microbench_batch.txt``
(human-readable, timings vary per machine) and to the ``BENCH_phy.json``
trajectory artifact at the repository root — one JSON object per run with
the headline PHY throughput metrics, so successive PRs can be compared.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import write_result

from repro.anc.decoder import InterferenceDecoder
from repro.backend import available_backends, get_backend
from repro.modulation.batch import BatchMSKDemodulator, BatchMSKModulator
from repro.modulation.msk import MSKDemodulator, MSKModulator
from repro.signal.batch import SignalBatch
from repro.signal.samples import ComplexSignal

#: The regression floor: batched decode throughput over scalar at batch
#: 64.  Kept well below the recorded ~5x so load noise cannot flake it;
#: check_bench_regression.py owns the tight trajectory comparison.
REQUIRED_DECODER_SPEEDUP = 4.0

#: The optional-deps acceptance bar: JIT decode over batched numpy decode
#: when numba is really installed (enforced only under
#: ``ANC_ENFORCE_NUMBA_GATE=1`` so numpy-only environments stay green).
REQUIRED_NUMBA_SPEEDUP = 2.0

BATCH_SIZE = 64
FRAME_BITS = 512
TRAJECTORY_PATH = Path(__file__).parent.parent / "BENCH_phy.json"


def _best_of(callable_, repeats=5):
    """Best-of-N wall time: the least noisy point estimate for short runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module")
def collision_batch():
    """64 synthetic partial-overlap collisions with known ground truth."""
    rng = np.random.default_rng(20070823)
    known_n_bits = unknown_n_bits = FRAME_BITS
    known_offset, unknown_offset = 0, FRAME_BITS // 5
    total = unknown_offset + unknown_n_bits + 1 + 16
    known_bits = rng.integers(0, 2, (BATCH_SIZE, known_n_bits), dtype=np.uint8)
    unknown_bits = rng.integers(0, 2, (BATCH_SIZE, unknown_n_bits), dtype=np.uint8)
    rows = np.zeros((BATCH_SIZE, total), dtype=np.complex128)
    phases = np.exp(1j * rng.uniform(-np.pi, np.pi, (BATCH_SIZE, 1)))
    rows[:, known_offset : known_offset + known_n_bits + 1] += (
        BatchMSKModulator(amplitude=1.0).modulate(known_bits).samples * phases
    )
    phases = np.exp(1j * rng.uniform(-np.pi, np.pi, (BATCH_SIZE, 1)))
    rows[:, unknown_offset : unknown_offset + unknown_n_bits + 1] += (
        BatchMSKModulator(amplitude=0.7).modulate(unknown_bits).samples * phases
    )
    rows += 0.02 * (
        rng.standard_normal(rows.shape) + 1j * rng.standard_normal(rows.shape)
    ) / np.sqrt(2)
    return {
        "batch": SignalBatch(rows),
        "signals": [ComplexSignal(row) for row in rows],
        "known_bits": known_bits,
        "unknown_bits": unknown_bits,
        "known_offset": known_offset,
        "unknown_offset": unknown_offset,
        "unknown_n_bits": unknown_n_bits,
    }


def test_batch_decoder_speedup_and_trajectory(collision_batch):
    """decode_batch >= 5x scalar decode at batch 64, and emit BENCH_phy.json."""
    decoder = InterferenceDecoder()
    setup = collision_batch

    def scalar_decode():
        return [
            decoder.decode(
                setup["signals"][i],
                setup["known_bits"][i],
                setup["known_offset"],
                setup["unknown_offset"],
                setup["unknown_n_bits"],
            )[0]
            for i in range(BATCH_SIZE)
        ]

    def batch_decode():
        return decoder.decode_batch(
            setup["batch"],
            setup["known_bits"],
            setup["known_offset"],
            setup["unknown_offset"],
            setup["unknown_n_bits"],
        )[0]

    scalar_seconds, scalar_bits = _best_of(scalar_decode)
    batch_seconds, batch_bits = _best_of(batch_decode)

    # The timing is only meaningful if both paths compute the same thing.
    for i in range(BATCH_SIZE):
        assert np.array_equal(batch_bits[i], scalar_bits[i])
    # And the decode itself must be good: clean synthetic collisions.
    assert float(np.mean(batch_bits != setup["unknown_bits"])) < 0.05

    speedup = scalar_seconds / batch_seconds
    scalar_us = scalar_seconds / BATCH_SIZE * 1e6
    batch_us = batch_seconds / BATCH_SIZE * 1e6

    # Batched MSK modem throughput at the same batch size (reported in the
    # trajectory; not gated, the decoder is the acceptance-bar kernel).
    bits = setup["known_bits"]
    mod_scalar_seconds, _ = _best_of(
        lambda: [MSKModulator().modulate(row) for row in bits]
    )
    mod_batch_seconds, _ = _best_of(lambda: BatchMSKModulator().modulate(bits))
    waveforms = BatchMSKModulator().modulate(bits)
    demod_scalar_seconds, _ = _best_of(
        lambda: [MSKDemodulator().demodulate(waveforms.row(i)) for i in range(BATCH_SIZE)]
    )
    demod_batch_seconds, _ = _best_of(lambda: BatchMSKDemodulator().demodulate(waveforms))

    # Per-backend decode timing + correctness against the scalar bits.
    backend_metrics = {}
    backend_lines = []
    for name in available_backends():
        backend = get_backend(name)
        backend_decoder = InterferenceDecoder(backend=name)

        def backend_decode(d=backend_decoder):
            return d.decode_batch(
                setup["batch"],
                setup["known_bits"],
                setup["known_offset"],
                setup["unknown_offset"],
                setup["unknown_n_bits"],
            )[0]

        backend_decode()  # warm any JIT compilation outside the timing
        backend_seconds, backend_bits = _best_of(backend_decode)
        backend_us = backend_seconds / BATCH_SIZE * 1e6
        entry = {
            "batch_decode_us_per_trial": round(backend_us, 2),
            "speedup_vs_scalar": round(scalar_seconds / backend_seconds, 3),
            "digest_neutral": backend.digest_neutral,
        }
        if backend.fallback_of:
            entry["fallback_of"] = backend.fallback_of
        if backend.digest_neutral:
            # Exact: the suite's strongest claim must hold in the bench too.
            assert np.array_equal(backend_bits, np.asarray(scalar_bits)), (
                f"digest-neutral backend {name!r} diverged from the scalar bits"
            )
        else:
            gate = float(backend.accuracy_gate["max_ber_deviation"])
            deviation = float(np.mean(backend_bits != np.asarray(scalar_bits)))
            entry["ber_deviation_vs_scalar"] = round(deviation, 6)
            assert deviation <= gate, (
                f"backend {name!r} deviates {deviation:.2%} from the reference "
                f"bits, beyond its declared accuracy gate of {gate:.2%}"
            )
        backend_metrics[name] = entry
        backend_lines.append(f"decode[{name}]: {backend_us:9.1f} us/trial")

    if os.environ.get("ANC_ENFORCE_NUMBA_GATE") == "1":
        numba_backend = get_backend("numba")
        assert numba_backend.fallback_of is None, (
            "ANC_ENFORCE_NUMBA_GATE=1 but numba is not installed"
        )
        numba_us = backend_metrics["numba"]["batch_decode_us_per_trial"]
        numpy_us = backend_metrics["numpy"]["batch_decode_us_per_trial"]
        assert numpy_us / numba_us >= REQUIRED_NUMBA_SPEEDUP, (
            f"numba decode at {numba_us} us/trial is under "
            f"{REQUIRED_NUMBA_SPEEDUP}x the numpy backend's {numpy_us} us/trial"
        )

    lines = [
        f"=== PHY batch microbenchmark: {BATCH_SIZE} trials, {FRAME_BITS}-bit frames ===",
        f"scalar decode:   {scalar_us:9.1f} us/trial",
        f"batched decode:  {batch_us:9.1f} us/trial",
        f"decoder speedup: {speedup:9.2f} x   (required >= {REQUIRED_DECODER_SPEEDUP:.1f} x)",
        f"modulate speedup:  {mod_scalar_seconds / mod_batch_seconds:7.2f} x",
        f"demodulate speedup:{demod_scalar_seconds / demod_batch_seconds:7.2f} x",
        *backend_lines,
    ]
    write_result("microbench_batch", "\n".join(lines), check_reference=False)

    trajectory = {
        "benchmark": "phy_batch",
        "batch_size": BATCH_SIZE,
        "frame_bits": FRAME_BITS,
        # Top-level metrics are the numpy reference path — the series
        # tools/check_bench_regression.py gates across PRs.
        "metrics": {
            "scalar_decode_us_per_trial": round(scalar_us, 2),
            "batch_decode_us_per_trial": round(batch_us, 2),
            "decoder_speedup": round(speedup, 3),
            "decoder_trials_per_second": round(BATCH_SIZE / batch_seconds, 1),
            "modulate_speedup": round(mod_scalar_seconds / mod_batch_seconds, 3),
            "demodulate_speedup": round(demod_scalar_seconds / demod_batch_seconds, 3),
        },
        "backends": backend_metrics,
    }
    TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")

    assert speedup >= REQUIRED_DECODER_SPEEDUP, (
        f"batched decoder managed only {speedup:.2f}x over scalar at "
        f"batch_size={BATCH_SIZE}; the fast path has regressed"
    )


def test_batch_demodulator_faster_than_scalar(collision_batch):
    """The batched demodulator must never lose to per-row scalar calls."""
    bits = collision_batch["known_bits"]
    waveforms = BatchMSKModulator().modulate(bits)
    scalar_seconds, _ = _best_of(
        lambda: [MSKDemodulator().demodulate(waveforms.row(i)) for i in range(BATCH_SIZE)]
    )
    batch_seconds, decoded = _best_of(lambda: BatchMSKDemodulator().demodulate(waveforms))
    assert np.array_equal(decoded, bits)
    assert batch_seconds < scalar_seconds, (
        "batched demodulation slower than scalar row-by-row demodulation"
    )
