"""Benchmark of the discrete-event traffic core on the §8 load sweep.

Runs one quick-scale ``offered_load_sweep`` cell through
:class:`repro.sim.simulation.TrafficSimulation` and records its wall
clock and event throughput in the ``"sim"`` section of the
``BENCH_phy.json`` trajectory artifact.  Absolute timings are
machine-specific, so the gated number is a *ratio*: simulator events per
scalar-PHY-decode-equivalent (event throughput multiplied by the scalar
decode time measured on the same box), which cancels machine speed the
same way ``decoder_speedup`` does.  ``tools/check_bench_regression.py``
compares that ratio against the committed baseline — a zero-delay event
loop or an accidentally quadratic resolver shows up as the ratio
collapsing, not as CI-runner noise.

The paper's §8 qualitative claim is asserted alongside the timing: at
high offered load ANC goodput must exceed COPE's, and COPE's must exceed
traditional relaying's, on the same arrival sample path.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import write_result

from repro.experiments.config import ExperimentConfig
from repro.experiments.offered_load import run_offered_load_trial
from repro.network.topologies import ChannelConditions
from repro.sim.simulation import SimParams, TrafficSimulation

TRAJECTORY_PATH = Path(__file__).parent.parent / "BENCH_phy.json"

#: The timed cell: the quick-sweep mid load at the golden seed's shape.
BENCH_CONFIG = {"runs": 1, "packets_per_run": 2, "payload_bits": 512, "seed": 7}
TIMED_LOAD = 0.8
HIGH_LOAD = 1.2


def _timed_simulation():
    """One seeded offered-load simulation, returning (seconds, report)."""
    params = SimParams(arrival_rate=TIMED_LOAD, sim_duration_frames=48.0)
    best = float("inf")
    report = None
    for _ in range(3):
        sim = TrafficSimulation(
            params, entropy=[7, 600, 0], conditions=ChannelConditions(snr_db=18.0)
        )
        start = time.perf_counter()
        report = sim.run()
        best = min(best, time.perf_counter() - start)
    return best, report


def test_offered_load_quick_trajectory():
    """Time the event core, gate §8's ordering, and extend BENCH_phy.json."""
    cfg = ExperimentConfig(**BENCH_CONFIG)
    seconds, report = _timed_simulation()
    events_per_second = report.events / seconds

    high = run_offered_load_trial(cfg, (HIGH_LOAD, 0))
    assert high["anc"]["throughput"] > high["cope"]["throughput"], (
        "ANC goodput must beat COPE at high offered load (§8)"
    )
    assert high["cope"]["throughput"] >= high["traditional"]["throughput"], (
        "COPE must not lose to traditional relaying at high offered load (§8); "
        "under full hidden-terminal collapse the two can tie"
    )
    assert high["anc"]["drop_rate"] < high["traditional"]["drop_rate"]

    # Merge into the trajectory artifact (the PHY microbenchmark owns the
    # top-level metrics; this benchmark owns the "sim" section).
    trajectory = {}
    if TRAJECTORY_PATH.is_file():
        trajectory = json.loads(TRAJECTORY_PATH.read_text())
    scalar_us = (
        trajectory.get("metrics", {}).get("scalar_decode_us_per_trial") or 900.0
    )
    trajectory["sim"] = {
        "scenario": "offered_load_sweep",
        "arrival_rate": TIMED_LOAD,
        "sim_duration_frames": 48.0,
        "quick_cell_seconds": round(seconds, 4),
        "events": report.events,
        "events_per_second": round(events_per_second, 1),
        # Machine-independent: events per scalar-decode-equivalent on the
        # same box — the ratio tools/check_bench_regression.py gates.
        "event_throughput_vs_scalar_decode": round(
            events_per_second * float(scalar_us) / 1e6, 3
        ),
    }
    TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")

    # The goodput ordering rendered for inspection: fully deterministic
    # (seeded simulation), so the text is regression-checked byte-for-byte.
    lines = [
        f"=== offered_load_sweep quick cell: load {HIGH_LOAD}, seed 7 ===",
        *(
            f"{scheme:12s} goodput {high[scheme]['throughput']:.6e} "
            f"drop_rate {high[scheme]['drop_rate']:.4f}"
            for scheme in ("anc", "cope", "traditional")
        ),
    ]
    write_result("sim_offered_load", "\n".join(lines))
