"""Figure 13: BER of ANC decoding vs signal-to-interference ratio at Alice.

Paper's claims for this figure:
* decoding works even at -3 dB SIR (the wanted signal *weaker* than the
  interference being cancelled) with BER under ~5 %;
* BER falls as SIR rises and is essentially zero once the wanted signal is
  a few dB stronger;
* blind-separation schemes need ~+6 dB SIR, so ANC's reach below 0 dB is
  the differentiator.
"""

from conftest import write_result

from repro.experiments.sir_sweep import render_sir_table, run_sir_sweep


def test_fig13_ber_vs_sir(benchmark, bench_config):
    points = benchmark.pedantic(
        run_sir_sweep,
        args=(bench_config,),
        kwargs={"packets_per_point": max(8, bench_config.packets_per_run)},
        rounds=1,
        iterations=1,
    )
    write_result("fig13_ber_vs_sir", render_sir_table(points))

    by_sir = {p.sir_db: p for p in points}
    # Decodes at -3 dB SIR with low BER (paper: < 5 %).
    assert by_sir[-3.0].mean_ber < 0.05
    assert by_sir[-3.0].decode_failures <= 1
    # Essentially error-free once the wanted signal is a few dB stronger.
    assert by_sir[4.0].mean_ber < 0.005
    # High-SIR BER is no worse than the low-SIR BER (the overall trend of
    # the figure: stronger wanted signal, fewer errors).
    assert by_sir[4.0].mean_ber <= by_sir[-3.0].mean_ber + 1e-9
