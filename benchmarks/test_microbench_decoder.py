"""Micro-benchmarks of the hot signal-processing paths.

These use pytest-benchmark's statistical timing (multiple rounds) because,
unlike the figure reproductions, they measure code speed rather than
regenerate published results: the interference decoder and the standard
MSK demodulator both have to keep up with a software-radio sample stream.
"""

import numpy as np
import pytest

from repro.anc.decoder import InterferenceDecoder
from repro.anc.pipeline import ReceivePipeline
from repro.channel.interference import InterferenceCombiner
from repro.channel.link import Link
from repro.framing.buffer import SentPacketBuffer
from repro.framing.frame import Framer
from repro.framing.packet import Packet
from repro.modulation.msk import MSKDemodulator, MSKModulator

PAYLOAD = 768


@pytest.fixture(scope="module")
def collision_setup():
    rng = np.random.default_rng(0)
    framer, modulator = Framer(), MSKModulator()
    packet_a = Packet.random(1, 2, 1, PAYLOAD, rng)
    packet_b = Packet.random(2, 1, 2, PAYLOAD, rng)
    frame_a, frame_b = framer.build(packet_a), framer.build(packet_b)
    wave_a, wave_b = modulator.modulate(frame_a.bits), modulator.modulate(frame_b.bits)
    link_a = Link(attenuation=0.9, phase_shift=0.4, frequency_offset=0.03)
    link_b = Link(attenuation=0.7, phase_shift=-1.0, frequency_offset=-0.02)
    offset = 170
    received = InterferenceCombiner(noise_power=1e-3, rng=rng).combine(
        [(wave_a, link_a, 0), (wave_b, link_b, offset)], tail_padding=32
    ).signal
    return received, frame_a, frame_b, offset


def test_bench_interference_decoder(benchmark, collision_setup):
    received, frame_a, frame_b, offset = collision_setup
    decoder = InterferenceDecoder()

    def decode():
        bits, _ = decoder.decode(received, frame_a.bits, 0, offset, len(frame_b.bits))
        return bits

    bits = benchmark(decode)
    assert float(np.mean(bits != frame_b.bits)) < 0.05


def test_bench_receive_pipeline(benchmark, collision_setup):
    received, frame_a, frame_b, offset = collision_setup
    buffer = SentPacketBuffer()
    buffer.store(frame_a)
    pipeline = ReceivePipeline(
        noise_power=1e-3, expected_payload_bits=PAYLOAD, known_frames=buffer
    )
    result = benchmark(pipeline.receive, received)
    assert result.packet is not None


def test_bench_msk_modulation(benchmark):
    rng = np.random.default_rng(1)
    bits = rng.integers(0, 2, 4096, dtype=np.uint8)
    modulator = MSKModulator()
    signal = benchmark(modulator.modulate, bits)
    assert len(signal) == 4097


def test_bench_msk_demodulation(benchmark):
    rng = np.random.default_rng(2)
    bits = rng.integers(0, 2, 4096, dtype=np.uint8)
    signal = MSKModulator().modulate(bits)
    demodulator = MSKDemodulator()
    decoded = benchmark(demodulator.demodulate, signal)
    assert np.array_equal(decoded, bits)
