"""Ablation: pilot length vs alignment reliability.

The paper fixes the pilot at 64 bits (§7.2).  This ablation measures how
often the receiver locks onto a *wrong* position (or fails to lock at all)
as the pilot is shortened, which is the trade-off that justifies spending
64 bits of every frame on synchronisation.
"""

import numpy as np
from conftest import write_result

from repro.anc.alignment import align_known_frame
from repro.channel.link import Link
from repro.exceptions import SynchronizationError
from repro.framing.frame import Framer
from repro.framing.packet import Packet
from repro.framing.pilot import PilotSequence
from repro.modulation.msk import MSKModulator

PILOT_LENGTHS = (8, 16, 32, 64)
TRIALS = 80
PAYLOAD = 256
NOISE = 4e-3


def _misalignment_rate(pilot_length: int, seed: int = 9) -> float:
    rng = np.random.default_rng(seed)
    pilot = PilotSequence(length=pilot_length)
    framer = Framer(pilot=pilot)
    modulator = MSKModulator()
    failures = 0
    for _ in range(TRIALS):
        packet = Packet.random(1, 2, int(rng.integers(0, 60000)), PAYLOAD, rng)
        frame = framer.build(packet)
        wave = modulator.modulate(frame.bits)
        lead_in = int(rng.integers(5, 60))
        link = Link(attenuation=0.8, phase_shift=float(rng.uniform(-np.pi, np.pi)),
                    noise_power=NOISE)
        received = link.propagate(wave.padded(lead_in, 20), rng=rng)
        try:
            result = align_known_frame(received, pilot=pilot, max_pilot_errors=1)
        except SynchronizationError:
            failures += 1
            continue
        if result.frame_start_sample != lead_in:
            failures += 1
    return failures / TRIALS


def test_ablation_pilot_length(benchmark):
    def sweep():
        return {length: _misalignment_rate(length) for length in PILOT_LENGTHS}

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["pilot bits | misalignment rate", "-" * 32]
    for length, rate in rates.items():
        lines.append(f"{length:10d} | {rate:.3f}")
    write_result("ablation_pilot", "\n".join(lines))

    # The 64-bit pilot of the paper aligns essentially always.
    assert rates[64] <= 0.02
    assert rates[32] <= 0.05
    # Very short pilots misalign noticeably more often than the 64-bit one.
    assert rates[8] >= rates[64]
