"""Shared helpers for the benchmark / figure-reproduction harness.

Every benchmark regenerates one of the paper's evaluation figures (or an
ablation) and writes a plain-text rendering of the regenerated rows/series
to ``benchmarks/results/`` so the numbers can be inspected after the run,
alongside asserting the qualitative claims the paper makes about the
figure (who wins, by roughly what factor, where crossovers fall).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig

RESULTS_DIR = Path(__file__).parent / "results"

#: The checked-in reference outputs under ``benchmarks/results/`` were
#: generated at the default benchmark size; regression against them is
#: only meaningful when the size has not been overridden via environment.
IS_DEFAULT_BENCH_SIZE = (
    "ANC_BENCH_RUNS" not in os.environ and "ANC_BENCH_PACKETS" not in os.environ
)


def write_result(name: str, text: str, check_reference: bool = True) -> Path:
    """Persist a regenerated figure's text rendering under benchmarks/results/.

    When a reference rendering is already checked in for ``name`` and the
    benchmark runs at the default size, the regenerated text must match it
    byte-for-byte — every figure runner is seeded, so any drift means a
    code change altered the reproduced numbers (e.g. an engine refactor
    that was supposed to be bit-identical was not).  On a mismatch the
    checked-in reference is left untouched (so the guard keeps failing on
    re-runs rather than comparing the drifted text against itself) and the
    regenerated rendering is written to ``<name>.rejected.txt`` for
    inspection.  After an *intentional* change, regenerate the references
    with ``ANC_UPDATE_RESULTS=1``.  Pass ``check_reference=False`` for
    renderings that are expected to change (e.g. timings).
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    update = os.environ.get("ANC_UPDATE_RESULTS") == "1"
    if (
        check_reference
        and IS_DEFAULT_BENCH_SIZE
        and not update
        and path.is_file()
        and path.read_text() != text + "\n"
    ):
        rejected = RESULTS_DIR / f"{name}.rejected.txt"
        rejected.write_text(text + "\n")
        raise AssertionError(
            f"{name} no longer matches its checked-in reference rendering: "
            "the seeded experiment output drifted (regenerated text kept at "
            f"{rejected}; rerun with ANC_UPDATE_RESULTS=1 if the change is "
            "intentional)"
        )
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Experiment size used by the figure benchmarks.

    40 runs (like the paper) with a reduced per-run packet count so the
    whole harness completes in minutes; set ``ANC_BENCH_PACKETS`` /
    ``ANC_BENCH_RUNS`` to scale it up towards the paper's 1000-packet runs.
    """
    runs = int(os.environ.get("ANC_BENCH_RUNS", "20"))
    packets = int(os.environ.get("ANC_BENCH_PACKETS", "10"))
    return ExperimentConfig(runs=runs, packets_per_run=packets, seed=20070823)
