"""Shared helpers for the benchmark / figure-reproduction harness.

Every benchmark regenerates one of the paper's evaluation figures (or an
ablation) and writes a plain-text rendering of the regenerated rows/series
to ``benchmarks/results/`` so the numbers can be inspected after the run,
alongside asserting the qualitative claims the paper makes about the
figure (who wins, by roughly what factor, where crossovers fall).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> Path:
    """Persist a regenerated figure's text rendering under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Experiment size used by the figure benchmarks.

    40 runs (like the paper) with a reduced per-run packet count so the
    whole harness completes in minutes; set ``ANC_BENCH_PACKETS`` /
    ``ANC_BENCH_RUNS`` to scale it up towards the paper's 1000-packet runs.
    """
    runs = int(os.environ.get("ANC_BENCH_RUNS", "20"))
    packets = int(os.environ.get("ANC_BENCH_PACKETS", "10"))
    return ExperimentConfig(runs=runs, packets_per_run=packets, seed=20070823)
