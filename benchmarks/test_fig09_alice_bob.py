"""Figure 9: Alice-Bob topology — throughput-gain CDFs and BER CDF.

Paper's claims for this figure:
* ANC's average throughput gain is ~70 % over traditional routing and
  ~30 % over COPE (theoretical maxima 2x and 1.5x, eroded mainly by the
  ~80 % packet overlap and the extra error-correction redundancy);
* the BER of ANC-decoded packets is small — most packets below ~4 %.

The simulated substrate reproduces the ordering and the mechanism; the
absolute gain factors land a little below the testbed's (see
EXPERIMENTS.md for the accounting).
"""

from conftest import write_result

from repro.experiments.alice_bob import run_alice_bob_experiment


def test_fig09_alice_bob(benchmark, bench_config):
    report = benchmark.pedantic(
        run_alice_bob_experiment, args=(bench_config,), rounds=1, iterations=1
    )
    write_result("fig09_alice_bob", report.render())

    gain_traditional = report.comparisons["traditional"].mean_gain
    gain_cope = report.comparisons["cope"].mean_gain

    # Ordering and rough factors: ANC > COPE > traditional.
    assert gain_traditional > 1.35
    assert gain_cope > 1.05
    assert gain_traditional > gain_cope
    # The gain never exceeds the theoretical 2x / 1.5x ceilings.
    assert report.comparisons["traditional"].cdf.maximum < 2.0
    assert report.comparisons["cope"].cdf.maximum < 1.5
    # BER CDF: the bulk of packets decode with low error rates.
    assert report.ber_cdf.quantile(0.9) < 0.06
    assert report.ber_cdf.median < 0.02
    # Nearly everything offered is delivered once FEC is accounted for.
    assert report.extras["anc_delivery_ratio"] > 0.9
