"""Figure 12: chain topology with unidirectional traffic.

Paper's claims for this figure:
* ANC gains ~36 % over traditional routing (theoretical maximum 50 %,
  i.e. 3 slots down to 2), in a scenario where COPE does not apply at all;
* the BER at the decoding node N2 (~1 %) is clearly lower than the
  Alice-Bob BER (~4 %) because the collision is decoded right where it is
  first received, without the relay re-amplifying its noise.
"""

from conftest import write_result

from repro.experiments.alice_bob import run_alice_bob_experiment
from repro.experiments.chain import run_chain_experiment


def test_fig12_chain(benchmark, bench_config):
    report = benchmark.pedantic(
        run_chain_experiment, args=(bench_config,), rounds=1, iterations=1
    )
    write_result("fig12_chain", report.render())

    gain = report.comparisons["traditional"].mean_gain
    # Gain between ~1.2x and the 1.5x theoretical ceiling (paper: 1.36x).
    assert 1.15 < gain < 1.5
    # COPE genuinely does not apply to a single unidirectional flow.
    assert "cope" not in report.comparisons
    # Chain BER is lower than the Alice-Bob BER under the same config.
    alice_bob = run_alice_bob_experiment(bench_config)
    assert report.ber_cdf.mean <= alice_bob.ber_cdf.mean
    assert report.ber_cdf.median < 0.01
    assert report.extras["anc_delivery_ratio"] > 0.9
