"""Setuptools entry point.

Kept as an explicit ``setup()`` call so that ``pip install -e .`` works in
offline environments whose setuptools predates PEP 660 editable installs.

The package version is single-sourced from ``repro.__version__``
(``src/repro/__init__.py``): this file *reads* it out of the source text
instead of importing the package (importing would require the runtime
dependencies at build time).  ``anc-repro --version`` reports the same
string.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"


def read_version() -> str:
    """Extract ``__version__`` from ``src/repro/__init__.py`` (no import)."""
    match = re.search(r'^__version__ = "([^"]+)"', _INIT.read_text(), re.MULTILINE)
    if match is None:
        raise RuntimeError(f"__version__ not found in {_INIT}")
    return match.group(1)


setup(
    name="anc-repro",
    version=read_version(),
    description="Reproduction of 'Embracing Wireless Interference: Analog "
    "Network Coding' (SIGCOMM 2007)",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy", "networkx"],
    entry_points={"console_scripts": ["anc-repro=repro.cli:main"]},
)
