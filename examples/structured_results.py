#!/usr/bin/env python
"""Structured results: the typed API behind every experiment.

Runs a quick Alice-Bob experiment and a chain-length scenario sweep
through the unified :mod:`repro.api` facade, then shows what the typed
:class:`~repro.results.model.ExperimentResult` gives you that the printed
tables never could: named series you can iterate, headline scalars,
engine cache/timing metadata, and lossless JSON/CSV export with a
versioned schema.

Run with::

    python examples/structured_results.py [runs] [packets_per_run]
"""

import sys

from repro import api
from repro.experiments import ExperimentConfig, ExperimentEngine
from repro.results import ExperimentResult, render_text


def main() -> None:
    runs = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    packets = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    config = ExperimentConfig(
        runs=runs, packets_per_run=packets, payload_bits=512, seed=7
    )

    print(f"experiments in the unified namespace: {', '.join(api.list_experiments())}")
    print()

    # ------------------------------------------------------------------
    # 1. Any experiment, one call, one typed return value.
    # ------------------------------------------------------------------
    result = api.run("alice-bob", config=config, engine=ExperimentEngine(workers=1))
    print(f"ran {result.name!r} (kind={result.kind}, seed={result.seed}, "
          f"config digest {result.config_digest})")
    engine_meta = result.meta["engine"]
    print(f"engine: {engine_meta['executed_trials']} trials executed, "
          f"{engine_meta['cached_trials']} from cache, "
          f"{engine_meta['elapsed_seconds']:.2f}s")
    print()

    # ------------------------------------------------------------------
    # 2. The numbers are data, not text: iterate the gain samples.
    # ------------------------------------------------------------------
    gains = result.get_series("gains")
    for record in gains.records():
        if record["baseline"] == "traditional":
            print(f"  run {record['run']}: ANC gain over traditional "
                  f"{record['gain']:.2f}x")
    print(f"  scalars: {dict(result.scalars)}")
    print()

    # ------------------------------------------------------------------
    # 3. Text is a view; serialization is lossless and schema-versioned.
    # ------------------------------------------------------------------
    round_tripped = ExperimentResult.from_json(result.to_json())
    assert round_tripped == result
    assert render_text(round_tripped) == render_text(result)
    print(f"JSON round-trip lossless ({round_tripped.schema_version}); "
          f"CSV export is {len(result.to_csv().splitlines())} lines")
    print()

    # ------------------------------------------------------------------
    # 4. Scenario sweeps speak the same contract.
    # ------------------------------------------------------------------
    sweep = api.run("chain_sweep", config=config, quick=True)
    print(render_text(sweep))


if __name__ == "__main__":
    main()
