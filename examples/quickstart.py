#!/usr/bin/env python
"""Quickstart: one Alice-Bob analog-network-coding exchange, step by step.

Alice and Bob are out of each other's radio range and exchange packets
through a router.  With analog network coding they transmit
*simultaneously*; the router amplifies the resulting collision and
broadcasts it; each endpoint subtracts the influence of its own packet at
the phase level and decodes the other's (paper §2a, §6).

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro.anc.pipeline import ReceiveOutcome, ReceivePipeline
from repro.channel.interference import InterferenceCombiner, OverlapModel
from repro.channel.link import Link
from repro.channel.relay import AmplifyAndForwardRelayChannel
from repro.framing.buffer import SentPacketBuffer
from repro.framing.frame import Framer
from repro.framing.packet import Packet
from repro.modulation.msk import MSKModulator
from repro.protocols.anc import default_min_offset

PAYLOAD_BITS = 512
NOISE_POWER = 1.5e-3  # roughly 27 dB SNR on each hop


def main() -> None:
    rng = np.random.default_rng(2007)
    framer = Framer()
    modulator = MSKModulator(amplitude=1.0)

    # ------------------------------------------------------------------
    # 1. Alice and Bob each build a frame and remember it (Fig. 6 layout).
    # ------------------------------------------------------------------
    alice_packet = Packet.random(source=1, destination=2, sequence=1,
                                 payload_bits=PAYLOAD_BITS, rng=rng)
    bob_packet = Packet.random(source=2, destination=1, sequence=1,
                               payload_bits=PAYLOAD_BITS, rng=rng)
    alice_frame = framer.build(alice_packet)
    bob_frame = framer.build(bob_packet)
    alice_wave = modulator.modulate(alice_frame.bits)
    bob_wave = modulator.modulate(bob_frame.bits)
    print(f"frame length: {alice_frame.length} bits "
          f"({len(alice_wave)} complex samples per transmission)")

    # ------------------------------------------------------------------
    # 2. Both transmit at once; the router hears the sum of the two
    #    signals after each traversed its own (different) channel.
    # ------------------------------------------------------------------
    overlap = OverlapModel(mean_overlap=0.85, min_offset=default_min_offset(), rng=rng)
    _, bob_offset = overlap.draw_offsets(len(alice_wave))
    uplink_alice = Link(attenuation=0.85, phase_shift=0.7, frequency_offset=0.025)
    uplink_bob = Link(attenuation=0.80, phase_shift=-1.9, frequency_offset=-0.02)
    collision = InterferenceCombiner(noise_power=NOISE_POWER, rng=rng).combine(
        [(alice_wave, uplink_alice, 0), (bob_wave, uplink_bob, bob_offset)],
        tail_padding=32,
    )
    print(f"collision: Bob starts {bob_offset} samples late "
          f"-> {collision.overlap_fraction:.0%} of the packets overlap")

    # ------------------------------------------------------------------
    # 3. The router does not decode; it re-amplifies the interfered
    #    waveform to its power budget and broadcasts it.
    # ------------------------------------------------------------------
    broadcast = AmplifyAndForwardRelayChannel(transmit_power=1.0).apply(collision.signal)
    downlink_to_alice = Link(attenuation=0.82, phase_shift=2.1,
                             frequency_offset=0.01, noise_power=NOISE_POWER)
    received_at_alice = downlink_to_alice.propagate(broadcast, rng=rng)

    # ------------------------------------------------------------------
    # 4. Alice runs the full receive pipeline: detect the packet, notice
    #    the interference, align on the pilots, look her own frame up in
    #    her sent-packet buffer, and decode Bob's bits out of the mixture.
    # ------------------------------------------------------------------
    alice_buffer = SentPacketBuffer()
    alice_buffer.store(alice_frame)
    alice_pipeline = ReceivePipeline(
        noise_power=NOISE_POWER,
        expected_payload_bits=PAYLOAD_BITS,
        known_frames=alice_buffer,
    )
    result = alice_pipeline.receive(received_at_alice)

    assert result.outcome == ReceiveOutcome.ANC_DECODED, result.failure_reason
    ber = float(np.mean(result.packet.payload != bob_packet.payload))
    print(f"Alice decoded packet {result.packet.identity} "
          f"(Bob's packet) with payload BER {ber:.4f}")
    amplitude = result.diagnostics.amplitude_estimate
    print(f"estimated received amplitudes: own A = {amplitude.amplitude_a:.3f}, "
          f"Bob's B = {amplitude.amplitude_b:.3f}")
    print("two packets exchanged in two transmission slots — "
          "twice the throughput of store-and-forward routing")


if __name__ == "__main__":
    main()
