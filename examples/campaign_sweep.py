#!/usr/bin/env python
"""Campaign sweep with kill/resume: many configs, zero recomputation.

Declares a sweep grid over the Alice-Bob experiment as a
:class:`repro.campaign.spec.CampaignSpec`, runs it against a
content-addressed result store, then *kills the campaign mid-run*
(SIGTERM to a worker subprocess) and re-runs it — demonstrating that the
second run serves every already-completed job from the store and
computes only the gap.  The narrated walkthrough of this script lives in
``docs/CAMPAIGNS.md``.

Run with::

    python examples/campaign_sweep.py [jobs]

``jobs`` sizes the grid (default 96, a few seconds; 1000 reproduces the
thousand-config acceptance scenario and takes a minute or two).
"""

import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.campaign.runner import CampaignRunner


def build_spec(jobs: int) -> CampaignSpec:
    """A seed x SNR grid over the quick Alice-Bob experiment."""
    snr_points = [[20.0 + i, 20.0 + i] for i in range(4)]
    seeds = list(range(1, (jobs + len(snr_points) - 1) // len(snr_points) + 1))
    return CampaignSpec(
        experiment="alice-bob",
        base={"runs": 1, "packets_per_run": 2, "payload_bits": 64},
        axes={"seed": seeds, "snr_db_range": snr_points},
        quick=True,
        name="kill-resume-demo",
    )


def run_and_kill(spec_json: str, store_dir: str, after_seconds: float) -> None:
    """Start `campaign run` as a subprocess and SIGTERM it mid-flight."""
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as handle:
        handle.write(spec_json)
        spec_path = handle.name
    try:
        worker = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "campaign", "run",
                spec_path, "--store", store_dir, "--concurrency", "4",
            ],
            env={**os.environ, "PYTHONPATH": "src"},
        )
        time.sleep(after_seconds)
        if worker.poll() is None:
            worker.send_signal(signal.SIGTERM)
            print(f"  ... killed the worker after {after_seconds:.1f}s")
        worker.wait(timeout=30)
    finally:
        os.unlink(spec_path)


def main() -> None:
    jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    spec = build_spec(jobs)
    print(f"campaign grid: {spec.total_jobs} jobs "
          f"({len(spec.axes['seed'])} seeds x {len(spec.axes['snr_db_range'])} "
          "SNR points), quick scale")

    with tempfile.TemporaryDirectory(prefix="anc-campaign-") as store_dir:
        store = ResultStore(store_dir)

        print("\n[1] first run, killed mid-campaign:")
        run_and_kill(spec.to_json(), store_dir, after_seconds=1.5)
        survived = len(store.digests())
        print(f"  store holds {survived}/{spec.total_jobs} completed jobs "
              "(each published atomically before the kill)")

        print("\n[2] re-run of the identical spec (same store):")
        report = CampaignRunner(store=store, concurrency=4).run_sync(spec)
        print(f"  {report.summary()}")
        print(f"  -> {report.cached} jobs served from the store, "
              f"{report.completed} computed (only the gap)")
        assert report.cached + report.completed == spec.total_jobs
        assert report.cached >= survived, "stored jobs must not recompute"

        print("\n[3] third run — everything cached, zero recomputation:")
        verify = CampaignRunner(store=store, concurrency=4).run_sync(spec)
        print(f"  {verify.summary()}")
        assert verify.completed == 0 and verify.cached == spec.total_jobs

    print("\nkill/resume semantics verified: completed jobs are never recomputed.")


if __name__ == "__main__":
    main()
