#!/usr/bin/env python
"""Alice-Bob testbed comparison: ANC vs COPE vs traditional routing (Fig. 9).

Runs a scaled-down version of the paper's Alice-Bob experiment — several
independent "testbed runs", each with freshly drawn channels, executing the
same bidirectional traffic under all three schemes — and prints the
throughput-gain CDFs and the BER CDF.

Run with::

    python examples/alice_bob_testbed.py [runs] [packets_per_run]
"""

import sys

from repro.experiments.alice_bob import run_alice_bob_experiment
from repro.experiments.config import ExperimentConfig


def main() -> None:
    runs = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    packets = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    config = ExperimentConfig(runs=runs, packets_per_run=packets, seed=7)
    print(f"running {runs} Alice-Bob testbed runs, "
          f"{packets} packets per direction per run ...")
    report = run_alice_bob_experiment(config)
    print(report.render())
    print()
    print("paper reference points: +70% over traditional, +30% over COPE, "
          "BER mostly below 4%")


if __name__ == "__main__":
    main()
