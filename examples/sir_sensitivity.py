#!/usr/bin/env python
"""Sensitivity of ANC decoding to relative signal strength (Fig. 13).

Sweeps the signal-to-interference ratio at Alice — the power of the packet
she *wants* (Bob's) relative to the one she is cancelling (her own) — and
reports the decoding BER.  The paper's headline: decoding still works at
-3 dB SIR, whereas blind signal separation needs about +6 dB.

Run with::

    python examples/sir_sensitivity.py [packets_per_point]
"""

import sys

from repro.experiments.config import ExperimentConfig
from repro.experiments.sir_sweep import render_sir_table, run_sir_sweep


def main() -> None:
    packets = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    config = ExperimentConfig(runs=1, packets_per_run=packets, seed=31)
    points = run_sir_sweep(config, packets_per_point=packets)
    print(render_sir_table(points))
    print()
    lowest = min(points, key=lambda p: p.sir_db)
    print(f"at {lowest.sir_db:+.0f} dB SIR the BER is {lowest.mean_ber:.3%} — "
          "the wanted signal is weaker than the interference, yet it decodes "
          "(paper: < 5%; blind separation schemes need about +6 dB).")


if __name__ == "__main__":
    main()
