#!/usr/bin/env python
"""The "X" topology: ANC with overheard side information (Fig. 11 / Fig. 10).

Two flows, N1 -> N4 and N3 -> N2, cross at the router N5.  Unlike the
Alice-Bob case the destinations did not generate the interfering packet —
they *overhear* it while their neighbour transmits, then use the overheard
copy to cancel its signal out of the router's amplified broadcast.

Run with::

    python examples/x_topology_overhearing.py [runs] [packets_per_run]
"""

import sys

from repro.experiments.config import ExperimentConfig
from repro.experiments.x_topology import run_x_topology_experiment


def main() -> None:
    runs = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    packets = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    config = ExperimentConfig(runs=runs, packets_per_run=packets, seed=23)
    print(f"running {runs} X-topology runs, {packets} packets per flow per run ...")
    report = run_x_topology_experiment(config)
    print(report.render())
    print()
    print(f"ANC delivery ratio: {report.extras['anc_delivery_ratio']:.2%} — "
          "the shortfall is exactly the overhearing failures the paper "
          "blames for the X topology's slightly lower gain (§11.5)")


if __name__ == "__main__":
    main()
