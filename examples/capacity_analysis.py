#!/usr/bin/env python
"""Capacity bounds of the two-way relay channel (Theorem 8.1 / Fig. 7).

Prints the routing upper bound and the ANC lower bound across SNR, the
low-SNR crossover below which amplify-and-forward is counterproductive,
and the asymptotic 2x gain.

Run with::

    python examples/capacity_analysis.py
"""

from repro.capacity.bounds import capacity_gain
from repro.experiments.capacity_fig7 import render_capacity_table, run_capacity_experiment


def main() -> None:
    curve = run_capacity_experiment()
    print(render_capacity_table(curve, step=5))
    print()
    for snr_db in (5.0, 10.0, 20.0, 30.0, 40.0):
        print(f"  gain at {snr_db:4.0f} dB SNR: {capacity_gain(snr_db):.2f}x")
    print()
    print("WLANs operate around 25-40 dB SNR, well inside the region where "
          "analog network coding approaches its 2x capacity gain (§8).")


if __name__ == "__main__":
    main()
