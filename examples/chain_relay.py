#!/usr/bin/env python
"""Chain topology: ANC for a single unidirectional flow (Fig. 2 / Fig. 12).

A packet travels N1 -> N2 -> N3 -> N4.  Traditional routing needs three
slots per packet because N1's and N3's transmissions collide at N2.  With
analog network coding the collision is *scheduled on purpose*: N2 already
knows the packet N3 is forwarding (it forwarded it one slot earlier), so it
cancels that packet's signal and decodes N1's new packet — the hidden
terminal becomes harmless and every packet needs only two slots.

Run with::

    python examples/chain_relay.py [runs] [packets_per_run]
"""

import sys

from repro.experiments.chain import run_chain_experiment
from repro.experiments.config import ExperimentConfig


def main() -> None:
    runs = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    packets = int(sys.argv[2]) if len(sys.argv) > 2 else 12
    config = ExperimentConfig(runs=runs, packets_per_run=packets, seed=12)
    print(f"running {runs} chain-topology runs, {packets} packets per run ...")
    report = run_chain_experiment(config)
    print(report.render())
    print()
    comparison = report.comparisons["traditional"]
    print(f"mean gain over traditional routing: {comparison.mean_gain:.2f}x "
          f"(paper: 1.36x, theoretical ceiling 1.5x)")
    print(f"mean BER at the decoding node N2: {report.ber_cdf.mean:.4f} "
          "(paper: ~1%, lower than Alice-Bob because there is no "
          "amplify-and-forward noise)")


if __name__ == "__main__":
    main()
