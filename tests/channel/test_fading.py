"""Tests of the Rayleigh/Rician fading stages: statistics, seeding, batch."""

import numpy as np
import pytest

from repro.channel.fading import (
    FADING_KINDS,
    FADING_MODES,
    RayleighFadingChannel,
    RicianFadingChannel,
    make_fading_channel,
)
from repro.exceptions import ChannelError
from repro.signal.batch import SignalBatch
from repro.signal.samples import ComplexSignal
from repro.utils.db import db_to_power_ratio


def _signal(n=64, seed=0):
    rng = np.random.default_rng(seed)
    return ComplexSignal(np.exp(1j * rng.uniform(-np.pi, np.pi, n)))


class TestValidation:
    def test_rejects_non_positive_mean_power(self):
        with pytest.raises(ChannelError):
            RayleighFadingChannel(mean_power_gain=0.0)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ChannelError):
            RayleighFadingChannel(mode="warp")

    def test_rejects_out_of_range_doppler(self):
        with pytest.raises(ChannelError):
            RayleighFadingChannel(mode="drift", doppler=1.0)

    def test_rejects_doppler_in_block_mode(self):
        with pytest.raises(ChannelError):
            RayleighFadingChannel(mode="block", doppler=0.1)

    def test_rejects_negative_sample_count(self):
        channel = RayleighFadingChannel(rng=np.random.default_rng(0))
        with pytest.raises(ChannelError):
            channel.draw_gains(-1)

    def test_factory_rejects_unknown_kind(self):
        with pytest.raises(ChannelError):
            make_fading_channel("weibull")

    def test_factory_none_returns_none(self):
        assert make_fading_channel("none") is None

    def test_factory_builds_every_registered_kind(self):
        for kind in FADING_KINDS:
            stage = make_fading_channel(kind, rng=np.random.default_rng(0))
            if kind == "none":
                assert stage is None
            else:
                assert stage is not None
        assert FADING_MODES == ("block", "drift")


class TestStatisticalMoments:
    def test_rayleigh_block_mean_power_matches_omega(self):
        channel = RayleighFadingChannel(
            mean_power_gain=0.7, rng=np.random.default_rng(11)
        )
        gains = np.array([complex(channel.draw_gains(1)) for _ in range(40000)])
        assert np.mean(np.abs(gains) ** 2) == pytest.approx(0.7, rel=0.05)
        # Circular symmetry: the mean complex gain vanishes.
        assert abs(np.mean(gains)) < 0.02

    def test_rician_los_fraction_matches_k_factor(self):
        k_db = 7.0
        channel = RicianFadingChannel(
            k_db=k_db, los_phase=0.4, rng=np.random.default_rng(12)
        )
        gains = np.array([complex(channel.draw_gains(1)) for _ in range(40000)])
        k_linear = db_to_power_ratio(k_db)
        los = np.sqrt(k_linear / (k_linear + 1.0)) * np.exp(1j * 0.4)
        # The scattered part averages out, leaving the LOS ray.
        assert np.mean(gains) == pytest.approx(los, abs=0.02)
        assert np.mean(np.abs(gains) ** 2) == pytest.approx(1.0, rel=0.05)

    def test_large_k_approaches_static_channel(self):
        channel = RicianFadingChannel(k_db=40.0, rng=np.random.default_rng(13))
        gains = np.array([complex(channel.draw_gains(1)) for _ in range(200)])
        assert np.std(np.abs(gains)) < 0.02

    def test_drift_track_is_stationary_in_power(self):
        channel = RayleighFadingChannel(
            mode="drift", doppler=0.01, rng=np.random.default_rng(14)
        )
        track = np.concatenate([channel.draw_gains(2000) for _ in range(20)])
        assert np.mean(np.abs(track) ** 2) == pytest.approx(1.0, rel=0.08)

    def test_drift_track_decorrelates_slowly(self):
        channel = RayleighFadingChannel(
            mode="drift", doppler=0.002, rng=np.random.default_rng(15)
        )
        track = channel.draw_gains(512)
        # Adjacent samples are nearly identical; distant ones are not.
        near = np.abs(track[1:] - track[:-1])
        assert np.max(near) < 0.5
        assert np.abs(track[0] - track[-1]) >= 0.0  # track exists end to end


class TestSeededReproducibility:
    def test_same_seed_same_fades(self):
        signal = _signal()
        first = RayleighFadingChannel(rng=np.random.default_rng(7)).apply(signal)
        second = RayleighFadingChannel(rng=np.random.default_rng(7)).apply(signal)
        assert np.array_equal(first.samples, second.samples)

    def test_different_seeds_differ(self):
        signal = _signal()
        first = RayleighFadingChannel(rng=np.random.default_rng(7)).apply(signal)
        second = RayleighFadingChannel(rng=np.random.default_rng(8)).apply(signal)
        assert not np.array_equal(first.samples, second.samples)

    def test_block_mode_applies_one_gain(self):
        signal = _signal()
        channel = RayleighFadingChannel(rng=np.random.default_rng(9))
        out = channel.apply(signal)
        ratio = out.samples / signal.samples
        assert np.allclose(ratio, ratio[0])

    def test_drift_mode_varies_within_packet(self):
        signal = _signal(256)
        channel = RayleighFadingChannel(
            mode="drift", doppler=0.05, rng=np.random.default_rng(10)
        )
        out = channel.apply(signal)
        ratio = out.samples / signal.samples
        assert not np.allclose(ratio, ratio[0])

    def test_empty_signal_passthrough(self):
        empty = ComplexSignal.empty()
        channel = RayleighFadingChannel(rng=np.random.default_rng(0))
        assert channel.apply(empty) is empty


class TestBatchEquivalence:
    @pytest.mark.parametrize("mode,doppler", [("block", 0.0), ("drift", 0.01)])
    def test_apply_batch_bit_identical_to_scalar_rows(self, mode, doppler):
        rng = np.random.default_rng(21)
        rows = rng.standard_normal((4, 48)) + 1j * rng.standard_normal((4, 48))
        batch = SignalBatch(rows)
        batched = RayleighFadingChannel(
            mode=mode, doppler=doppler, rng=np.random.default_rng(5)
        )
        scalar = RayleighFadingChannel(
            mode=mode, doppler=doppler, rng=np.random.default_rng(5)
        )
        out = batched.apply_batch(batch)
        for i in range(4):
            assert np.array_equal(out.samples[i], scalar.apply(batch.row(i)).samples)

    def test_rician_apply_batch_bit_identical_to_scalar_rows(self):
        rng = np.random.default_rng(22)
        rows = rng.standard_normal((3, 32)) + 1j * rng.standard_normal((3, 32))
        batch = SignalBatch(rows)
        batched = RicianFadingChannel(k_db=4.0, rng=np.random.default_rng(6))
        scalar = RicianFadingChannel(k_db=4.0, rng=np.random.default_rng(6))
        out = batched.apply_batch(batch)
        for i in range(3):
            assert np.array_equal(out.samples[i], scalar.apply(batch.row(i)).samples)

    def test_apply_batch_empty_columns_passthrough(self):
        batch = SignalBatch(np.zeros((2, 0), dtype=np.complex128))
        channel = RayleighFadingChannel(rng=np.random.default_rng(0))
        assert channel.apply_batch(batch) is batch
