"""Tests for the interference combiner and overlap model."""

import numpy as np
import pytest

from repro.channel.interference import InterferenceCombiner, OverlapModel
from repro.channel.link import Link
from repro.exceptions import ChannelError
from repro.modulation.msk import MSKModulator
from repro.utils.bits import random_bits


def _burst(seed, n=100, amplitude=1.0):
    return MSKModulator(amplitude=amplitude).modulate(random_bits(n, np.random.default_rng(seed)))


class TestOverlapModel:
    def test_offsets_within_packet(self):
        model = OverlapModel(mean_overlap=0.8, rng=np.random.default_rng(0))
        first, second = model.draw_offsets(1000)
        assert first == 0
        assert 0 <= second < 1000

    def test_mean_overlap_statistics(self):
        model = OverlapModel(mean_overlap=0.8, jitter=0.05, rng=np.random.default_rng(1))
        offsets = [model.draw_offsets(1000)[1] for _ in range(500)]
        measured_overlap = 1.0 - np.mean(offsets) / 1000
        assert measured_overlap == pytest.approx(0.8, abs=0.02)

    def test_min_offset_enforced(self):
        model = OverlapModel(mean_overlap=1.0, min_offset=150, rng=np.random.default_rng(2))
        for _ in range(50):
            _, offset = model.draw_offsets(1000)
            assert offset >= 150

    def test_min_offset_capped_by_packet_length(self):
        model = OverlapModel(mean_overlap=1.0, min_offset=5000, rng=np.random.default_rng(3))
        _, offset = model.draw_offsets(100)
        assert offset <= 99

    def test_slot_delays_in_range(self):
        model = OverlapModel(rng=np.random.default_rng(4))
        for _ in range(100):
            first, second = model.draw_slot_delays()
            assert 1 <= first <= 32
            assert 1 <= second <= 32

    def test_invalid_parameters(self):
        with pytest.raises(Exception):
            OverlapModel(mean_overlap=1.5)
        with pytest.raises(ChannelError):
            OverlapModel(min_offset=-1)
        with pytest.raises(ChannelError):
            OverlapModel().draw_offsets(0)


class TestInterferenceCombiner:
    def test_composite_is_sum_of_distorted_components(self):
        a, b = _burst(0), _burst(1, amplitude=0.7)
        link_a = Link(attenuation=0.9, phase_shift=0.3)
        link_b = Link(attenuation=0.6, phase_shift=-1.0)
        combiner = InterferenceCombiner(noise_power=0.0)
        result = combiner.combine([(a, link_a, 0), (b, link_b, 30)])
        manual = np.zeros(len(result.signal), dtype=complex)
        manual[: len(a)] += link_a.distort(a).samples
        manual[30 : 30 + len(b)] += link_b.distort(b).samples
        assert np.allclose(result.signal.samples, manual)

    def test_overlap_fraction(self):
        a, b = _burst(2), _burst(3)
        combiner = InterferenceCombiner()
        result = combiner.combine([(a, Link(), 0), (b, Link(), 20)])
        expected = (len(a) - 20) / len(a)
        assert result.overlap_fraction == pytest.approx(expected)

    def test_single_component_full_overlap(self):
        result = InterferenceCombiner().combine([(_burst(4), Link(), 0)])
        assert result.overlap_fraction == 1.0

    def test_tail_padding(self):
        a = _burst(5)
        result = InterferenceCombiner().combine([(a, Link(), 0)], tail_padding=25)
        assert len(result.signal) == len(a) + 25

    def test_noise_added(self):
        a = _burst(6)
        noisy = InterferenceCombiner(noise_power=0.1, rng=np.random.default_rng(7)).combine(
            [(a, Link(), 0)]
        )
        clean = InterferenceCombiner(noise_power=0.0).combine([(a, Link(), 0)])
        assert not np.allclose(noisy.signal.samples, clean.signal.samples)

    def test_offsets_recorded(self):
        result = InterferenceCombiner().combine([(_burst(8), Link(), 0), (_burst(9), Link(), 40)])
        assert result.offsets == (0, 40)

    def test_empty_components_rejected(self):
        with pytest.raises(ChannelError):
            InterferenceCombiner().combine([])

    def test_negative_offset_rejected(self):
        with pytest.raises(ChannelError):
            InterferenceCombiner().combine([(_burst(10), Link(), -5)])
