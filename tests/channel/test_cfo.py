"""Tests of the carrier-frequency-offset channel stage."""

import numpy as np
import pytest

from repro.channel.cfo import CarrierFrequencyOffsetChannel
from repro.channel.model import ChannelChain
from repro.signal.batch import SignalBatch
from repro.signal.samples import ComplexSignal


def _signal(n=32, seed=0):
    rng = np.random.default_rng(seed)
    return ComplexSignal(rng.standard_normal(n) + 1j * rng.standard_normal(n))


class TestCarrierFrequencyOffsetChannel:
    def test_applies_exact_phase_ramp(self):
        signal = _signal()
        channel = CarrierFrequencyOffsetChannel(0.03, initial_phase=0.5)
        out = channel.apply(signal)
        index = np.arange(len(signal))
        expected = signal.samples * np.exp(1j * (0.5 + 0.03 * index))
        assert np.array_equal(out.samples, expected)

    def test_zero_offset_and_phase_is_identity(self):
        signal = _signal()
        out = CarrierFrequencyOffsetChannel(0.0).apply(signal)
        assert out is signal

    def test_pure_initial_phase_rotates_constantly(self):
        signal = _signal()
        out = CarrierFrequencyOffsetChannel(0.0, initial_phase=np.pi / 4).apply(signal)
        assert np.array_equal(out.samples, signal.samples * np.exp(1j * np.pi / 4))

    def test_negative_offset_rotates_backwards(self):
        signal = _signal()
        forward = CarrierFrequencyOffsetChannel(0.05).apply(signal)
        backward = CarrierFrequencyOffsetChannel(-0.05).apply(signal)
        # Opposite ramps multiply back to |s|^2 up to rounding; check the
        # phases are exact negatives via the ramp itself.
        assert np.array_equal(
            CarrierFrequencyOffsetChannel(0.05).ramp(8),
            np.conj(CarrierFrequencyOffsetChannel(-0.05).ramp(8)),
        )
        assert not np.array_equal(forward.samples, backward.samples)

    def test_empty_signal_passthrough(self):
        empty = ComplexSignal.empty()
        assert CarrierFrequencyOffsetChannel(0.1).apply(empty) is empty

    def test_preserves_amplitude(self):
        signal = _signal()
        out = CarrierFrequencyOffsetChannel(0.2, initial_phase=1.0).apply(signal)
        assert np.allclose(np.abs(out.samples), np.abs(signal.samples))

    def test_composes_in_a_chain(self):
        chain = ChannelChain(
            [CarrierFrequencyOffsetChannel(0.01), CarrierFrequencyOffsetChannel(0.02)]
        )
        out = chain.apply(_signal(8))
        assert len(out.samples) == 8

    def test_advanced_is_phase_continuous(self):
        channel = CarrierFrequencyOffsetChannel(0.07, initial_phase=0.2)
        later = channel.advanced(100)
        assert later.frequency_offset == channel.frequency_offset
        assert later.initial_phase == pytest.approx(0.2 + 0.07 * 100)
        # The ramp of the advanced channel continues where the first ends.
        first = channel.ramp(101)
        assert later.ramp(1)[0] == pytest.approx(first[100])


class TestCarrierFrequencyOffsetBatch:
    def test_apply_batch_bit_identical_to_rows(self):
        rng = np.random.default_rng(3)
        rows = rng.standard_normal((5, 40)) + 1j * rng.standard_normal((5, 40))
        batch = SignalBatch(rows)
        channel = CarrierFrequencyOffsetChannel(0.04, initial_phase=-0.3)
        out = channel.apply_batch(batch)
        for i in range(5):
            assert np.array_equal(
                out.samples[i], channel.apply(batch.row(i)).samples
            )

    def test_apply_batch_zero_offset_is_identity(self):
        batch = SignalBatch(np.ones((2, 4), dtype=np.complex128))
        assert CarrierFrequencyOffsetChannel(0.0).apply_batch(batch) is batch

    def test_apply_batch_empty_columns_passthrough(self):
        batch = SignalBatch(np.zeros((2, 0), dtype=np.complex128))
        assert CarrierFrequencyOffsetChannel(0.1).apply_batch(batch) is batch
