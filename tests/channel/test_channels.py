"""Tests for the basic channel stages (flat fading, AWGN, delay, chains)."""

import numpy as np
import pytest

from repro.channel.awgn import AWGNChannel
from repro.channel.delay import DelayChannel
from repro.channel.flat import FlatFadingChannel
from repro.channel.model import ChannelChain, IdentityChannel
from repro.exceptions import ChannelError
from repro.modulation.msk import MSKModulator
from repro.signal.samples import ComplexSignal
from repro.utils.bits import random_bits


class TestFlatFadingChannel:
    def test_applies_complex_gain(self):
        channel = FlatFadingChannel(attenuation=0.5, phase_shift=np.pi / 2)
        out = channel.apply(ComplexSignal([2 + 0j]))
        assert out.samples[0] == pytest.approx(1j)

    def test_power_gain(self):
        assert FlatFadingChannel(attenuation=0.5).power_gain == pytest.approx(0.25)

    def test_zero_attenuation_rejected(self):
        with pytest.raises(ChannelError):
            FlatFadingChannel(attenuation=0.0)

    def test_empty_signal_passthrough(self):
        channel = FlatFadingChannel(attenuation=0.5)
        assert len(channel.apply(ComplexSignal.empty())) == 0

    def test_cfo_rotates_progressively(self):
        channel = FlatFadingChannel(attenuation=1.0, frequency_offset=0.1)
        out = channel.apply(ComplexSignal(np.ones(5, dtype=complex)))
        phases = np.angle(out.samples)
        assert np.allclose(np.diff(phases), 0.1)

    def test_cfo_preserves_amplitude(self):
        channel = FlatFadingChannel(attenuation=0.7, frequency_offset=0.05)
        out = channel.apply(ComplexSignal(np.ones(50, dtype=complex)))
        assert np.allclose(np.abs(out.samples), 0.7)

    def test_phase_drift_changes_realisation(self):
        sig = ComplexSignal(np.ones(100, dtype=complex))
        a = FlatFadingChannel(1.0, phase_drift=0.05, rng=np.random.default_rng(1)).apply(sig)
        b = FlatFadingChannel(1.0, phase_drift=0.05, rng=np.random.default_rng(2)).apply(sig)
        assert not np.allclose(a.samples, b.samples)

    def test_attenuation_drift_stays_positive(self):
        sig = ComplexSignal(np.ones(500, dtype=complex))
        out = FlatFadingChannel(
            0.1, attenuation_drift=0.05, rng=np.random.default_rng(3)
        ).apply(sig)
        assert np.all(np.abs(out.samples) > 0)


class TestAWGNChannel:
    def test_zero_noise_identity(self):
        sig = ComplexSignal(np.ones(10, dtype=complex))
        assert AWGNChannel(0.0).apply(sig) == sig

    def test_noise_power(self):
        sig = ComplexSignal(np.zeros(100_000, dtype=complex))
        out = AWGNChannel(0.3, rng=np.random.default_rng(0)).apply(sig)
        assert out.average_power == pytest.approx(0.3, rel=0.05)

    def test_negative_noise_rejected(self):
        with pytest.raises(ChannelError):
            AWGNChannel(-0.1)


class TestDelayChannel:
    def test_delay(self):
        out = DelayChannel(3).apply(ComplexSignal([1 + 0j]))
        assert len(out) == 4
        assert out.samples[3] == 1

    def test_zero_delay_identity(self):
        sig = ComplexSignal([1 + 0j])
        assert DelayChannel(0).apply(sig) == sig

    def test_negative_delay_rejected(self):
        with pytest.raises(ChannelError):
            DelayChannel(-1)


class TestChannelChain:
    def test_identity(self):
        sig = ComplexSignal([1 + 1j])
        assert IdentityChannel().apply(sig) == sig

    def test_chain_applies_in_order(self):
        chain = ChannelChain([FlatFadingChannel(0.5), DelayChannel(2)])
        out = chain.apply(ComplexSignal([2 + 0j]))
        assert len(out) == 3
        assert out.samples[2] == pytest.approx(1.0)

    def test_chain_rejects_non_channel(self):
        with pytest.raises(ChannelError):
            ChannelChain([FlatFadingChannel(0.5), "not a channel"])

    def test_chain_length(self):
        assert len(ChannelChain([IdentityChannel(), IdentityChannel()])) == 2

    def test_msk_survives_realistic_chain(self):
        bits = random_bits(128, np.random.default_rng(4))
        sig = MSKModulator().modulate(bits)
        chain = ChannelChain(
            [
                FlatFadingChannel(0.6, phase_shift=1.0, frequency_offset=0.02),
                DelayChannel(5),
                AWGNChannel(1e-4, rng=np.random.default_rng(5)),
            ]
        )
        received = chain.apply(sig)
        from repro.modulation.msk import MSKDemodulator

        decoded = MSKDemodulator().demodulate(received.slice(5, len(received)))
        assert np.array_equal(decoded, bits)
