"""Tests of the log-distance path-loss model."""

import numpy as np
import pytest

from repro.channel.pathloss import PathLossModel
from repro.exceptions import ChannelError


class TestValidation:
    def test_rejects_non_positive_exponent(self):
        with pytest.raises(ChannelError):
            PathLossModel(exponent=0.0)

    def test_rejects_non_positive_reference_distance(self):
        with pytest.raises(ChannelError):
            PathLossModel(reference_distance=0.0)

    def test_rejects_out_of_range_reference_attenuation(self):
        with pytest.raises(ChannelError):
            PathLossModel(reference_attenuation=2.0)

    def test_rejects_floor_above_reference(self):
        with pytest.raises(ChannelError):
            PathLossModel(reference_attenuation=0.5, min_attenuation=0.6)

    def test_rejects_negative_distance(self):
        with pytest.raises(ChannelError):
            PathLossModel().attenuation(-0.1)


class TestAttenuation:
    def test_reference_gain_inside_reference_distance(self):
        model = PathLossModel(reference_distance=0.1, reference_attenuation=0.9)
        assert model.attenuation(0.0) == pytest.approx(0.9)
        assert model.attenuation(0.05) == pytest.approx(0.9)
        assert model.attenuation(0.1) == pytest.approx(0.9)

    def test_power_law_beyond_reference(self):
        model = PathLossModel(
            exponent=2.0, reference_distance=0.1, reference_attenuation=1.0
        )
        # Free space: amplitude falls as 1/d, so doubling distance halves it.
        assert model.attenuation(0.2) == pytest.approx(0.5)
        assert model.attenuation(0.4) == pytest.approx(0.25)

    def test_monotonically_non_increasing(self):
        model = PathLossModel()
        distances = np.linspace(0.0, 2.0, 50)
        gains = model.attenuation(distances)
        assert np.all(np.diff(gains) <= 1e-12)

    def test_floor_is_enforced(self):
        model = PathLossModel(min_attenuation=0.1)
        assert model.attenuation(100.0) == pytest.approx(0.1)

    def test_higher_exponent_decays_faster(self):
        gentle = PathLossModel(exponent=2.0)
        harsh = PathLossModel(exponent=4.0)
        assert harsh.attenuation(0.5) < gentle.attenuation(0.5)

    def test_array_input_returns_array(self):
        model = PathLossModel()
        out = model.attenuation(np.array([0.05, 0.3, 1.0]))
        assert isinstance(out, np.ndarray)
        assert out.shape == (3,)

    def test_scalar_input_returns_float(self):
        assert isinstance(PathLossModel().attenuation(0.3), float)


class TestDerivedQuantities:
    def test_path_loss_db_positive_beyond_reference(self):
        model = PathLossModel(reference_attenuation=0.95)
        assert model.path_loss_db(1.0) > model.path_loss_db(0.3) > 0.0

    def test_free_space_doubles_distance_costs_six_db(self):
        model = PathLossModel.free_space(
            reference_distance=0.1, reference_attenuation=1.0, min_attenuation=0.001
        )
        delta = model.path_loss_db(0.4) - model.path_loss_db(0.2)
        assert delta == pytest.approx(6.0206, abs=1e-3)

    def test_range_for_inverts_attenuation(self):
        model = PathLossModel(exponent=2.7)
        distance = model.range_for(0.2)
        assert model.attenuation(distance) == pytest.approx(0.2)

    def test_range_for_rejects_bad_gain(self):
        with pytest.raises(ChannelError):
            PathLossModel().range_for(0.0)
        with pytest.raises(ChannelError):
            PathLossModel(reference_attenuation=0.5).range_for(0.9)

    def test_presets(self):
        assert PathLossModel.free_space().exponent == 2.0
        assert PathLossModel.indoor_office().exponent == pytest.approx(3.1)
        assert PathLossModel.indoor_office(exponent=3.5).exponent == 3.5
