"""Tests for the amplify-and-forward relay channel stage."""

import numpy as np
import pytest

from repro.channel.relay import AmplifyAndForwardRelayChannel
from repro.exceptions import ChannelError
from repro.modulation.msk import MSKModulator
from repro.signal.samples import ComplexSignal
from repro.utils.bits import random_bits


class TestAmplifyAndForward:
    def test_output_power_matches_budget(self):
        sig = ComplexSignal(0.1 * np.ones(1000, dtype=complex))
        out = AmplifyAndForwardRelayChannel(transmit_power=1.0).apply(sig)
        assert out.average_power == pytest.approx(1.0, rel=1e-6)

    def test_amplifies_weak_and_attenuates_strong(self):
        relay = AmplifyAndForwardRelayChannel(transmit_power=1.0)
        weak = ComplexSignal(0.1 * np.ones(100, dtype=complex))
        strong = ComplexSignal(10 * np.ones(100, dtype=complex))
        assert relay.amplification_factor(weak) > 1.0
        assert relay.amplification_factor(strong) < 1.0

    def test_shape_preserved(self):
        """Amplification is a pure scaling: the waveform shape is untouched."""
        sig = MSKModulator().modulate(random_bits(64, np.random.default_rng(0)))
        out = AmplifyAndForwardRelayChannel(transmit_power=2.0).apply(sig)
        ratio = out.samples / sig.samples
        assert np.allclose(ratio, ratio[0])

    def test_ignores_leading_silence_when_measuring(self):
        burst = ComplexSignal(np.concatenate([np.zeros(500), 0.5 * np.ones(100)]).astype(complex))
        relay = AmplifyAndForwardRelayChannel(transmit_power=1.0)
        factor = relay.amplification_factor(burst)
        # The active-sample measurement sees power 0.25, so the gain is 2.
        assert factor == pytest.approx(2.0, rel=1e-6)

    def test_full_average_measurement_differs(self):
        burst = ComplexSignal(np.concatenate([np.zeros(300), np.ones(100)]).astype(complex))
        lenient = AmplifyAndForwardRelayChannel(transmit_power=1.0, measure_over_active_samples=False)
        strict = AmplifyAndForwardRelayChannel(transmit_power=1.0, measure_over_active_samples=True)
        assert lenient.amplification_factor(burst) > strict.amplification_factor(burst)

    def test_zero_power_budget_rejected(self):
        with pytest.raises(ChannelError):
            AmplifyAndForwardRelayChannel(transmit_power=0.0)

    def test_empty_signal_rejected(self):
        with pytest.raises(ChannelError):
            AmplifyAndForwardRelayChannel(transmit_power=1.0).apply(ComplexSignal.empty())

    def test_all_zero_signal_rejected(self):
        with pytest.raises(ChannelError):
            AmplifyAndForwardRelayChannel(transmit_power=1.0).apply(ComplexSignal.silence(10))
