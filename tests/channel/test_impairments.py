"""Tests of the impairment config and its application to topologies."""

import numpy as np
import pytest

from repro.channel.awgn import AWGNChannel
from repro.channel.cfo import CarrierFrequencyOffsetChannel
from repro.channel.delay import DelayChannel
from repro.channel.fading import RayleighFadingChannel, RicianFadingChannel
from repro.channel.flat import FlatFadingChannel
from repro.channel.impairments import ImpairmentConfig, apply_impairments
from repro.channel.link import Link
from repro.exceptions import ChannelError, ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import ExperimentEngine
from repro.network.topologies import alice_bob_topology


def _rng_state(rng):
    return rng.bit_generator.state


class TestImpairmentConfig:
    def test_default_is_disabled(self):
        assert not ImpairmentConfig().enabled

    def test_any_active_field_enables(self):
        assert ImpairmentConfig(sender_cfo=0.01).enabled
        assert ImpairmentConfig(fading="rayleigh").enabled

    def test_rejects_negative_or_huge_cfo(self):
        with pytest.raises(ConfigurationError):
            ImpairmentConfig(sender_cfo=-0.1)
        with pytest.raises(ConfigurationError):
            ImpairmentConfig(sender_cfo=np.pi)

    def test_rejects_unknown_fading_kind(self):
        with pytest.raises(ConfigurationError):
            ImpairmentConfig(fading="weibull")

    def test_rejects_unknown_fading_mode(self):
        with pytest.raises(ConfigurationError):
            ImpairmentConfig(fading_mode="warp")

    def test_rejects_doppler_out_of_range(self):
        with pytest.raises(ConfigurationError):
            ImpairmentConfig(fading_mode="drift", fading_doppler=1.0)

    def test_rejects_doppler_in_block_mode(self):
        with pytest.raises(ConfigurationError):
            ImpairmentConfig(fading_doppler=0.1)

    def test_sender_offsets_spread_linearly(self):
        config = ImpairmentConfig(sender_cfo=0.06)
        offsets = config.sender_offsets([0, 1, 2, 5])
        assert offsets[0] == pytest.approx(0.06)
        assert offsets[1] == pytest.approx(0.02)
        assert offsets[2] == pytest.approx(-0.02)
        assert offsets[5] == pytest.approx(-0.06)

    def test_sender_offsets_pairwise_distinct(self):
        """Any two radios must get distinct oscillators — in the chain and
        X topologies the colliding senders are nodes 1 and 3, which an
        alternating-sign scheme would hand identical offsets."""
        config = ImpairmentConfig(sender_cfo=0.05)
        for n in (2, 3, 4, 5, 8):
            offsets = config.sender_offsets(list(range(1, n + 1)))
            assert len(set(offsets.values())) == n
        chain = config.sender_offsets([1, 2, 3, 4])
        assert chain[1] != chain[3], "chain colliders must differ"

    def test_sender_offsets_single_node(self):
        config = ImpairmentConfig(sender_cfo=0.04)
        assert config.sender_offsets([7]) == {7: 0.04}

    def test_alice_bob_colliders_differ_by_exactly_the_axis_value(self):
        """In the 3-node exchange (relay 0, Alice 1, Bob 2) the two
        colliding senders differ by exactly sender_cfo — what makes the
        cfo_sweep axis an exact relative offset."""
        config = ImpairmentConfig(sender_cfo=0.08)
        offsets = config.sender_offsets([0, 1, 2])
        assert offsets[1] - offsets[2] == pytest.approx(0.08)


class TestApplyImpairments:
    def test_disabled_is_a_strict_noop(self):
        topology = alice_bob_topology(rng=np.random.default_rng(1))
        before = {
            (s, d): (
                topology.link(s, d).sender_cfo,
                topology.link(s, d).fading,
            )
            for s, d in topology.graph.edges
        }
        rng = np.random.default_rng(2)
        state = _rng_state(rng)
        out = apply_impairments(topology, ImpairmentConfig(), rng)
        assert out is topology
        assert _rng_state(rng) == state, "disabled impairments must not draw"
        for (s, d), (cfo, fading) in before.items():
            assert topology.link(s, d).sender_cfo == cfo
            assert topology.link(s, d).fading == fading

    def test_sender_cfo_consistent_per_sender(self):
        topology = alice_bob_topology(rng=np.random.default_rng(3))
        apply_impairments(
            topology, ImpairmentConfig(sender_cfo=0.04), np.random.default_rng(4)
        )
        offsets = ImpairmentConfig(sender_cfo=0.04).sender_offsets(topology.nodes)
        for source, destination in topology.graph.edges:
            assert topology.link(source, destination).sender_cfo == offsets[source]

    def test_fading_fields_stamped_on_every_link(self):
        topology = alice_bob_topology(rng=np.random.default_rng(5))
        config = ImpairmentConfig(
            fading="rayleigh", fading_mode="drift", fading_doppler=0.01
        )
        apply_impairments(topology, config, np.random.default_rng(6))
        for source, destination in topology.graph.edges:
            link = topology.link(source, destination)
            assert link.fading == "rayleigh"
            assert link.fading_mode == "drift"
            assert link.fading_doppler == 0.01
            assert link.sender_cfo == 0.0

    def test_rician_los_phases_are_deterministic_per_seed(self):
        phases = []
        for _ in range(2):
            topology = alice_bob_topology(rng=np.random.default_rng(7))
            apply_impairments(
                topology,
                ImpairmentConfig(fading="rician", rician_k_db=3.0),
                np.random.default_rng(8),
            )
            phases.append(
                [
                    topology.link(s, d).fading_los_phase
                    for s, d in sorted(topology.graph.edges)
                ]
            )
        assert phases[0] == phases[1]
        assert len(set(phases[0])) > 1, "per-link LOS phases should differ"


class TestLinkComposition:
    def test_default_link_chain_is_the_preimpairment_chain(self):
        link = Link(attenuation=0.8, noise_power=0.01)
        stages = link.to_chain(rng=np.random.default_rng(0)).stages
        assert [type(s) for s in stages] == [
            FlatFadingChannel,
            DelayChannel,
            AWGNChannel,
        ]

    def test_impaired_link_chain_orders_stages_as_documented(self):
        link = Link(
            attenuation=0.8,
            noise_power=0.01,
            sender_cfo=0.03,
            fading="rician",
            fading_k_db=5.0,
            fading_los_phase=0.2,
        )
        stages = link.to_chain(rng=np.random.default_rng(0)).stages
        assert [type(s) for s in stages] == [
            CarrierFrequencyOffsetChannel,
            FlatFadingChannel,
            RicianFadingChannel,
            DelayChannel,
            AWGNChannel,
        ]
        assert stages[0].frequency_offset == 0.03
        assert stages[2].k_db == 5.0

    def test_rayleigh_link_builds_rayleigh_stage(self):
        link = Link(attenuation=0.8, fading="rayleigh")
        stages = link.to_chain(rng=np.random.default_rng(0)).stages
        assert any(isinstance(s, RayleighFadingChannel) for s in stages)

    def test_link_rejects_unknown_fading(self):
        with pytest.raises(ChannelError):
            Link(attenuation=0.8, fading="weibull")

    def test_propagation_with_fading_is_seeded(self):
        link = Link(attenuation=0.8, fading="rayleigh", noise_power=0.0)
        from repro.signal.samples import ComplexSignal

        signal = ComplexSignal(np.ones(16, dtype=np.complex128))
        first = link.propagate(signal, rng=np.random.default_rng(9))
        second = link.propagate(signal, rng=np.random.default_rng(9))
        assert np.array_equal(first.samples, second.samples)


class TestExperimentConfigSnapshot:
    def test_disabled_impairments_are_omitted_from_snapshot(self):
        snapshot = ExperimentConfig().snapshot()
        assert "impairments" not in snapshot
        assert snapshot["runs"] == ExperimentConfig().runs

    def test_enabled_impairments_appear_in_snapshot(self):
        config = ExperimentConfig(impairments=ImpairmentConfig(sender_cfo=0.02))
        snapshot = config.snapshot()
        assert snapshot["impairments"]["sender_cfo"] == 0.02

    def test_config_rejects_non_impairment_value(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(impairments="rayleigh")

    def test_engine_digest_stable_for_disabled_impairments(self):
        def trial(config, key):
            return key

        base = ExperimentConfig.quick()
        explicit = ExperimentConfig.quick().with_overrides(
            impairments=ImpairmentConfig()
        )
        assert ExperimentEngine.task_digest("t", trial, base) == (
            ExperimentEngine.task_digest("t", trial, explicit)
        )

    def test_engine_digest_changes_when_impairments_enable(self):
        def trial(config, key):
            return key

        base = ExperimentConfig.quick()
        impaired = base.with_overrides(
            impairments=ImpairmentConfig(fading="rayleigh")
        )
        assert ExperimentEngine.task_digest("t", trial, base) != (
            ExperimentEngine.task_digest("t", trial, impaired)
        )
