"""Tests for the Link abstraction."""

import numpy as np
import pytest

from repro.channel.link import Link
from repro.exceptions import ChannelError
from repro.modulation.msk import MSKDemodulator, MSKModulator
from repro.signal.samples import ComplexSignal
from repro.utils.bits import random_bits


class TestLinkValidation:
    def test_defaults(self):
        link = Link()
        assert link.attenuation == 1.0
        assert link.noise_power == 0.0

    def test_invalid_attenuation(self):
        with pytest.raises(ChannelError):
            Link(attenuation=0.0)

    def test_invalid_delay(self):
        with pytest.raises(ChannelError):
            Link(propagation_delay=-1)

    def test_invalid_noise(self):
        with pytest.raises(ChannelError):
            Link(noise_power=-0.5)


class TestLinkDerivedQuantities:
    def test_complex_gain(self):
        link = Link(attenuation=0.5, phase_shift=np.pi)
        assert link.complex_gain == pytest.approx(-0.5)

    def test_power_gain(self):
        assert Link(attenuation=0.3).power_gain == pytest.approx(0.09)

    def test_received_power(self):
        assert Link(attenuation=0.5).received_power(4.0) == pytest.approx(1.0)

    def test_snr_db(self):
        link = Link(attenuation=1.0, noise_power=0.01)
        assert link.snr_db(1.0) == pytest.approx(20.0)

    def test_snr_undefined_without_noise(self):
        with pytest.raises(ChannelError):
            Link(attenuation=1.0).snr_db(1.0)


class TestLinkPropagation:
    def test_distort_applies_gain_and_delay(self):
        link = Link(attenuation=0.5, phase_shift=0.0, propagation_delay=2)
        out = link.distort(ComplexSignal([2 + 0j]))
        assert len(out) == 3
        assert out.samples[2] == pytest.approx(1.0)

    def test_propagate_adds_noise(self):
        link = Link(attenuation=1.0, noise_power=0.5)
        out = link.propagate(ComplexSignal(np.zeros(10_000, dtype=complex)), rng=np.random.default_rng(0))
        assert out.average_power == pytest.approx(0.5, rel=0.1)

    def test_distort_never_adds_noise(self):
        link = Link(attenuation=1.0, noise_power=10.0)
        out = link.distort(ComplexSignal(np.zeros(100, dtype=complex)))
        assert out.total_energy == 0.0

    def test_end_to_end_msk(self):
        bits = random_bits(200, np.random.default_rng(1))
        link = Link(attenuation=0.7, phase_shift=-0.9, frequency_offset=0.03, noise_power=1e-4)
        received = link.propagate(MSKModulator().modulate(bits), rng=np.random.default_rng(2))
        assert np.array_equal(MSKDemodulator().demodulate(received), bits)

    def test_to_chain_stage_count(self):
        assert len(Link(noise_power=0.1).to_chain()) == 3
        assert len(Link(noise_power=0.1).to_chain(include_noise=False)) == 2
        assert len(Link().to_chain()) == 2
