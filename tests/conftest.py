"""Shared pytest fixtures for the ANC reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.link import Link
from repro.framing.frame import Deframer, Framer
from repro.framing.packet import Packet
from repro.modulation.msk import MSKDemodulator, MSKModulator
from repro.network.topologies import ChannelConditions, alice_bob_topology


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def framer() -> Framer:
    """A framer with the default pilot and scrambler."""
    return Framer()


@pytest.fixture
def deframer() -> Deframer:
    """A deframer matching the default framer."""
    return Deframer()


@pytest.fixture
def msk_modulator() -> MSKModulator:
    """Unit-amplitude MSK modulator."""
    return MSKModulator(amplitude=1.0)


@pytest.fixture
def msk_demodulator() -> MSKDemodulator:
    """Differential MSK demodulator at one sample per symbol."""
    return MSKDemodulator()


@pytest.fixture
def small_packet(rng) -> Packet:
    """A small random packet for framing / decoding tests."""
    return Packet.random(source=1, destination=2, sequence=7, payload_bits=128, rng=rng)


@pytest.fixture
def clean_link() -> Link:
    """A noiseless flat link with moderate attenuation and phase."""
    return Link(attenuation=0.8, phase_shift=0.7)


@pytest.fixture
def noisy_link() -> Link:
    """A flat link with a realistic noise floor and a small CFO."""
    return Link(attenuation=0.8, phase_shift=-1.2, frequency_offset=0.02, noise_power=1e-3)


@pytest.fixture
def alice_bob_topo(rng):
    """An Alice-Bob topology drawn at 30 dB SNR."""
    return alice_bob_topology(ChannelConditions(snr_db=30.0), rng)
