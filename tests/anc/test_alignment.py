"""Tests for pilot alignment and interference-start detection (§7.2)."""

import numpy as np
import pytest

from repro.anc.alignment import align_known_frame, find_interference_start, refine_unknown_offset
from repro.channel.interference import InterferenceCombiner
from repro.channel.link import Link
from repro.exceptions import SynchronizationError
from repro.framing.frame import Framer
from repro.framing.packet import Packet
from repro.modulation.msk import MSKModulator, expected_phase_differences
from repro.signal.noise import awgn
from repro.signal.samples import ComplexSignal


def _frame_waveform(seed=0, payload=128, amplitude=1.0):
    rng = np.random.default_rng(seed)
    framer = Framer()
    packet = Packet.random(1, 2, seed, payload, rng)
    frame = framer.build(packet)
    return frame, MSKModulator(amplitude=amplitude).modulate(frame.bits)


class TestAlignKnownFrame:
    def test_finds_frame_start_after_leading_noise(self):
        frame, wave = _frame_waveform()
        rng = np.random.default_rng(1)
        padded = wave.padded(23, 10)
        noisy = awgn(padded, 1e-4, rng)
        result = align_known_frame(noisy)
        assert result.frame_start_sample == 23

    def test_frame_at_origin(self):
        frame, wave = _frame_waveform(seed=2)
        result = align_known_frame(awgn(wave, 1e-4, np.random.default_rng(2)))
        assert result.frame_start_sample == 0

    def test_raises_when_pilot_missing(self):
        rng = np.random.default_rng(3)
        noise_only = awgn(ComplexSignal.silence(400), 1e-3, rng)
        with pytest.raises(SynchronizationError):
            align_known_frame(noise_only)

    def test_channel_distortion_tolerated(self):
        frame, wave = _frame_waveform(seed=4)
        link = Link(attenuation=0.6, phase_shift=1.9, frequency_offset=0.02, noise_power=1e-4)
        received = link.propagate(wave.padded(15, 0), rng=np.random.default_rng(4))
        assert align_known_frame(received).frame_start_sample == 15


class TestFindInterferenceStart:
    def test_detects_energy_step(self):
        frame_a, wave_a = _frame_waveform(seed=5)
        frame_b, wave_b = _frame_waveform(seed=6, amplitude=0.9)
        offset = 150
        combiner = InterferenceCombiner(noise_power=1e-4, rng=np.random.default_rng(5))
        collision = combiner.combine([(wave_a, Link(), 0), (wave_b, Link(), offset)])
        estimate = find_interference_start(collision.signal)
        assert abs(estimate - offset) <= 20

    def test_returns_none_without_step(self):
        frame, wave = _frame_waveform(seed=7)
        noisy = awgn(wave, 1e-4, np.random.default_rng(7))
        assert find_interference_start(noisy, min_step_ratio=1.5) is None

    def test_short_input_returns_none(self):
        assert find_interference_start(ComplexSignal.silence(10)) is None


class TestRefineUnknownOffset:
    def test_refines_to_true_offset(self):
        frame_a, wave_a = _frame_waveform(seed=8)
        frame_b, wave_b = _frame_waveform(seed=9, amplitude=0.8)
        offset = 140
        combiner = InterferenceCombiner(noise_power=1e-4, rng=np.random.default_rng(8))
        collision = combiner.combine([(wave_a, Link(attenuation=1.0), 0), (wave_b, Link(attenuation=0.8), offset)])
        known_diffs_full = expected_phase_differences(frame_a.bits)

        def known_differences_for(first_sample, n_intervals):
            indices = np.arange(first_sample, first_sample + n_intervals)
            valid = indices < known_diffs_full.size
            out = np.zeros(n_intervals)
            out[valid] = known_diffs_full[indices[valid]]
            return out

        refined = refine_unknown_offset(
            collision.signal,
            coarse_offset=offset - 4,
            amplitude_known=1.0,
            amplitude_unknown=0.8,
            known_differences_for=known_differences_for,
            search_radius=8,
        )
        assert refined == offset
