"""Tests for the Lemma 6.1 phase-pair solver."""

import numpy as np
import pytest

from repro.anc.lemma import interference_cosine, phase_solutions, reconstruct_sample
from repro.exceptions import ConfigurationError, DecodingError
from repro.utils.angles import wrap_angle


def _mixture(amplitude_a, amplitude_b, theta, phi):
    return amplitude_a * np.exp(1j * np.asarray(theta)) + amplitude_b * np.exp(
        1j * np.asarray(phi)
    )


class TestInterferenceCosine:
    def test_matches_true_cosine(self):
        rng = np.random.default_rng(0)
        theta = rng.uniform(-np.pi, np.pi, 200)
        phi = rng.uniform(-np.pi, np.pi, 200)
        y = _mixture(1.0, 0.6, theta, phi)
        cos_est = interference_cosine(y, 1.0, 0.6)
        assert cos_est == pytest.approx(np.cos(theta - phi), abs=1e-9)

    def test_clipping_under_noise(self):
        # A sample magnitude slightly beyond the feasible region clips to ±1.
        y = np.array([(1.0 + 0.6) * 1.001 + 0j])
        assert interference_cosine(y, 1.0, 0.6)[0] == 1.0

    def test_rejects_non_positive_amplitudes(self):
        with pytest.raises(ConfigurationError):
            interference_cosine(np.array([1 + 0j]), 0.0, 1.0)


class TestPhaseSolutions:
    def test_one_branch_recovers_truth(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            amplitude_a = rng.uniform(0.3, 1.5)
            amplitude_b = rng.uniform(0.3, 1.5)
            theta = rng.uniform(-np.pi, np.pi)
            phi = rng.uniform(-np.pi, np.pi)
            y = _mixture(amplitude_a, amplitude_b, [theta], [phi])
            sol = phase_solutions(y, amplitude_a, amplitude_b)
            branch1 = abs(wrap_angle(sol.theta1[0] - theta)) < 1e-6 and abs(
                wrap_angle(sol.phi1[0] - phi)
            ) < 1e-6
            branch2 = abs(wrap_angle(sol.theta2[0] - theta)) < 1e-6 and abs(
                wrap_angle(sol.phi2[0] - phi)
            ) < 1e-6
            assert branch1 or branch2

    def test_both_branches_reconstruct_the_sample(self):
        """Every returned (theta, phi) pair regenerates the observed sample."""
        rng = np.random.default_rng(2)
        amplitude_a, amplitude_b = 1.0, 0.7
        theta = rng.uniform(-np.pi, np.pi, 20)
        phi = rng.uniform(-np.pi, np.pi, 20)
        y = _mixture(amplitude_a, amplitude_b, theta, phi)
        sol = phase_solutions(y, amplitude_a, amplitude_b)
        for n in range(20):
            rebuilt1 = reconstruct_sample(amplitude_a, amplitude_b, sol.theta1[n], sol.phi1[n])
            rebuilt2 = reconstruct_sample(amplitude_a, amplitude_b, sol.theta2[n], sol.phi2[n])
            assert rebuilt1 == pytest.approx(y[n], abs=1e-9)
            assert rebuilt2 == pytest.approx(y[n], abs=1e-9)

    def test_solutions_coincide_when_aligned(self):
        """When the two phasors are collinear (D = ±1) both branches agree."""
        y = _mixture(1.0, 0.5, [0.3], [0.3])
        sol = phase_solutions(y, 1.0, 0.5)
        assert sol.theta1[0] == pytest.approx(sol.theta2[0], abs=1e-6)
        assert sol.phi1[0] == pytest.approx(sol.phi2[0], abs=1e-6)

    def test_empty_input(self):
        sol = phase_solutions(np.array([], dtype=complex), 1.0, 1.0)
        assert len(sol) == 0

    def test_branch_accessors(self):
        y = _mixture(1.0, 0.5, [0.1], [1.2])
        sol = phase_solutions(y, 1.0, 0.5)
        assert np.array_equal(sol.theta(1), sol.theta1)
        assert np.array_equal(sol.phi(2), sol.phi2)
        with pytest.raises(DecodingError):
            sol.theta(3)

    def test_accepts_complex_signal_container(self):
        from repro.signal.samples import ComplexSignal

        y = ComplexSignal(_mixture(1.0, 0.5, [0.1, 0.2], [1.2, -0.4]))
        assert len(phase_solutions(y, 1.0, 0.5)) == 2
