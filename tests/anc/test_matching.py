"""Tests for the 4-hypothesis phase-difference matcher (Eqs. 7-8)."""

import numpy as np
import pytest

from repro.anc.lemma import phase_solutions
from repro.anc.matching import match_phase_differences
from repro.constants import MSK_PHASE_STEP
from repro.exceptions import DecodingError
from repro.modulation.msk import MSKModulator, expected_phase_differences
from repro.utils.bits import random_bits


def _collide_msk(bits_a, bits_b, amplitude_a=1.0, amplitude_b=0.8, phase_a=0.4, phase_b=-1.3,
                 cfo_a=0.03, cfo_b=-0.02, noise=0.0, seed=0):
    """Fully-overlapped collision of two equal-length MSK frames."""
    rng = np.random.default_rng(seed)
    sig_a = MSKModulator(amplitude=amplitude_a).modulate(bits_a).samples
    sig_b = MSKModulator(amplitude=amplitude_b).modulate(bits_b).samples
    n = np.arange(sig_a.size)
    sig_a = sig_a * np.exp(1j * (phase_a + cfo_a * n))
    sig_b = sig_b * np.exp(1j * (phase_b + cfo_b * n))
    composite = sig_a + sig_b
    if noise > 0:
        composite = composite + (
            rng.normal(0, np.sqrt(noise / 2), sig_a.size)
            + 1j * rng.normal(0, np.sqrt(noise / 2), sig_a.size)
        )
    return composite


class TestMatching:
    def test_recovers_unknown_bits_noiseless(self):
        rng = np.random.default_rng(1)
        bits_a = random_bits(300, rng)
        bits_b = random_bits(300, rng)
        composite = _collide_msk(bits_a, bits_b)
        solutions = phase_solutions(composite, 1.0, 0.8)
        result = match_phase_differences(solutions, expected_phase_differences(bits_a))
        ber = np.mean(result.bits != bits_b)
        assert ber < 0.02

    def test_recovers_unknown_bits_with_noise(self):
        rng = np.random.default_rng(2)
        bits_a = random_bits(300, rng)
        bits_b = random_bits(300, rng)
        composite = _collide_msk(bits_a, bits_b, noise=1e-3, seed=3)
        solutions = phase_solutions(composite, 1.0, 0.8)
        result = match_phase_differences(solutions, expected_phase_differences(bits_a))
        assert np.mean(result.bits != bits_b) < 0.05

    def test_works_when_unknown_is_weaker(self):
        """The paper's key claim: decoding works at negative SIR."""
        rng = np.random.default_rng(4)
        bits_a = random_bits(400, rng)
        bits_b = random_bits(400, rng)
        composite = _collide_msk(bits_a, bits_b, amplitude_a=1.0, amplitude_b=0.7, noise=5e-4)
        solutions = phase_solutions(composite, 1.0, 0.7)
        result = match_phase_differences(solutions, expected_phase_differences(bits_a))
        assert np.mean(result.bits != bits_b) < 0.06

    def test_selected_known_difference_close_to_truth(self):
        rng = np.random.default_rng(5)
        bits_a = random_bits(200, rng)
        bits_b = random_bits(200, rng)
        composite = _collide_msk(bits_a, bits_b)
        solutions = phase_solutions(composite, 1.0, 0.8)
        known = expected_phase_differences(bits_a)
        result = match_phase_differences(solutions, known)
        # The selected known-signal differences track the true ±pi/2 steps
        # up to the CFO-induced offset.
        assert np.median(np.abs(result.known_differences_selected - known)) < 0.2

    def test_match_errors_reported(self):
        rng = np.random.default_rng(6)
        bits_a = random_bits(100, rng)
        bits_b = random_bits(100, rng)
        composite = _collide_msk(bits_a, bits_b)
        solutions = phase_solutions(composite, 1.0, 0.8)
        result = match_phase_differences(solutions, expected_phase_differences(bits_a))
        assert result.match_errors.size == 100
        assert np.all(result.match_errors >= 0)

    def test_bits_threshold_rule(self):
        rng = np.random.default_rng(7)
        bits_a = random_bits(50, rng)
        bits_b = random_bits(50, rng)
        composite = _collide_msk(bits_a, bits_b)
        solutions = phase_solutions(composite, 1.0, 0.8)
        result = match_phase_differences(solutions, expected_phase_differences(bits_a))
        assert np.array_equal(result.bits, (result.unknown_differences >= 0).astype(np.uint8))

    def test_length_validation(self):
        composite = _collide_msk(
            np.array([1, 0], dtype=np.uint8), np.array([0, 1], dtype=np.uint8)
        )
        solutions = phase_solutions(composite, 1.0, 0.8)
        with pytest.raises(DecodingError):
            match_phase_differences(solutions, np.array([MSK_PHASE_STEP]))

    def test_too_few_samples(self):
        solutions = phase_solutions(np.array([1 + 0j]), 1.0, 0.8)
        with pytest.raises(DecodingError):
            match_phase_differences(solutions, np.array([]))
