"""Tests for the A/B amplitude estimator (Eqs. 5-6)."""

import numpy as np
import pytest

from repro.anc.amplitude import (
    estimate_amplitudes,
    estimate_amplitudes_with_known,
    mean_energy,
    sigma_statistic,
)
from repro.exceptions import DecodingError


def _random_phase_mixture(amplitude_a, amplitude_b, n, seed=0):
    rng = np.random.default_rng(seed)
    theta = rng.uniform(-np.pi, np.pi, n)
    phi = rng.uniform(-np.pi, np.pi, n)
    return amplitude_a * np.exp(1j * theta) + amplitude_b * np.exp(1j * phi)


class TestStatistics:
    def test_mean_energy_equals_sum_of_squares(self):
        """Eq. 5: E[|y|^2] = A^2 + B^2 for random relative phase."""
        y = _random_phase_mixture(1.0, 0.6, 200_000)
        assert mean_energy(y) == pytest.approx(1.0 + 0.36, rel=0.02)

    def test_sigma_statistic_matches_eq6(self):
        """Eq. 6: sigma = A^2 + B^2 + 4AB/pi for random relative phase."""
        amplitude_a, amplitude_b = 1.0, 0.7
        y = _random_phase_mixture(amplitude_a, amplitude_b, 400_000, seed=1)
        expected = amplitude_a ** 2 + amplitude_b ** 2 + 4 * amplitude_a * amplitude_b / np.pi
        assert sigma_statistic(y) == pytest.approx(expected, rel=0.02)

    def test_sigma_degenerate_constant_energy(self):
        y = np.ones(100, dtype=complex)
        assert sigma_statistic(y) == pytest.approx(1.0)

    def test_empty_input_rejected(self):
        with pytest.raises(DecodingError):
            mean_energy(np.array([], dtype=complex))
        with pytest.raises(DecodingError):
            sigma_statistic(np.array([], dtype=complex))


class TestEstimateAmplitudes:
    def test_recovers_amplitudes(self):
        y = _random_phase_mixture(1.0, 0.6, 100_000, seed=2)
        larger, smaller = estimate_amplitudes(y)
        assert larger == pytest.approx(1.0, rel=0.05)
        assert smaller == pytest.approx(0.6, rel=0.08)

    def test_equal_amplitudes(self):
        y = _random_phase_mixture(0.8, 0.8, 100_000, seed=3)
        larger, smaller = estimate_amplitudes(y)
        assert larger == pytest.approx(0.8, rel=0.1)
        assert smaller == pytest.approx(0.8, rel=0.1)

    def test_ordering(self):
        y = _random_phase_mixture(0.4, 1.2, 50_000, seed=4)
        larger, smaller = estimate_amplitudes(y)
        assert larger >= smaller


class TestEstimateWithKnown:
    def test_labels_follow_hint(self):
        y = _random_phase_mixture(1.0, 0.5, 50_000, seed=5)
        estimate = estimate_amplitudes_with_known(y, known_amplitude_hint=1.0)
        assert estimate.amplitude_a == pytest.approx(1.0, rel=0.08)
        assert estimate.amplitude_b == pytest.approx(0.5, rel=0.12)

    def test_labels_swap_when_known_is_weaker(self):
        y = _random_phase_mixture(1.0, 0.5, 50_000, seed=6)
        estimate = estimate_amplitudes_with_known(y, known_amplitude_hint=0.5)
        assert estimate.amplitude_a == pytest.approx(0.5, rel=0.12)
        assert estimate.amplitude_b == pytest.approx(1.0, rel=0.08)

    def test_sir_property(self):
        y = _random_phase_mixture(1.0, 0.5, 50_000, seed=7)
        estimate = estimate_amplitudes_with_known(y, known_amplitude_hint=1.0)
        assert estimate.sir_db == pytest.approx(20 * np.log10(0.5), abs=1.5)

    def test_sum_power_consistent_with_mu(self):
        y = _random_phase_mixture(0.9, 0.6, 50_000, seed=8)
        estimate = estimate_amplitudes_with_known(y, known_amplitude_hint=0.9)
        assert estimate.sum_power == pytest.approx(estimate.mu, rel=0.05)

    def test_invalid_hint_rejected(self):
        with pytest.raises(DecodingError):
            estimate_amplitudes_with_known(np.ones(10, dtype=complex), 0.0)
