"""Tests for the full receive pipeline (Fig. 8 / Algorithm 1)."""

import numpy as np

from repro.anc.pipeline import ReceiveOutcome, ReceivePipeline
from repro.channel.interference import InterferenceCombiner
from repro.channel.link import Link
from repro.channel.relay import AmplifyAndForwardRelayChannel
from repro.framing.buffer import SentPacketBuffer
from repro.framing.frame import Framer
from repro.framing.packet import Packet
from repro.modulation.msk import MSKModulator
from repro.signal.noise import awgn
from repro.signal.samples import ComplexSignal

NOISE = 1e-3
PAYLOAD = 192


def _framed(seed, src, dst, seq):
    rng = np.random.default_rng(seed)
    framer = Framer()
    packet = Packet.random(src, dst, seq, PAYLOAD, rng)
    frame = framer.build(packet)
    wave = MSKModulator(amplitude=1.0).modulate(frame.bits)
    return packet, frame, wave


def _pipeline(buffer=None):
    return ReceivePipeline(
        noise_power=NOISE,
        expected_payload_bits=PAYLOAD,
        known_frames=buffer if buffer is not None else SentPacketBuffer(),
    )


def _collision(wave_a, wave_b, offset, seed=0, att_a=0.9, att_b=0.75):
    rng = np.random.default_rng(seed)
    link_a = Link(attenuation=att_a, phase_shift=rng.uniform(-3, 3), frequency_offset=0.03)
    link_b = Link(attenuation=att_b, phase_shift=rng.uniform(-3, 3), frequency_offset=-0.025)
    combiner = InterferenceCombiner(noise_power=NOISE, rng=rng)
    return combiner.combine([(wave_a, link_a, 0), (wave_b, link_b, offset)], tail_padding=32)


class TestCleanPath:
    def test_clean_packet_decoded(self):
        packet, frame, wave = _framed(0, 1, 2, 5)
        link = Link(attenuation=0.8, phase_shift=0.4, frequency_offset=0.02, noise_power=NOISE)
        received = link.propagate(wave.padded(20, 20), rng=np.random.default_rng(0))
        result = _pipeline().receive(received)
        assert result.outcome == ReceiveOutcome.CLEAN_DECODED
        assert result.delivered
        assert result.packet.identity == packet.identity
        assert not result.interfered

    def test_noise_only_gives_no_signal(self):
        noise = awgn(ComplexSignal.silence(600), NOISE, np.random.default_rng(1))
        result = _pipeline().receive(noise)
        assert result.outcome == ReceiveOutcome.NO_SIGNAL

    def test_empty_waveform(self):
        result = _pipeline().receive(ComplexSignal.empty())
        assert result.outcome == ReceiveOutcome.NO_SIGNAL

    def test_frame_geometry_properties(self):
        pipeline = _pipeline()
        assert pipeline.frame_samples == pipeline.frame_bits + 1
        assert pipeline.frame_bits == Framer().frame_length(PAYLOAD)


class TestInterferedPath:
    def test_known_first_decodes_second(self):
        packet_a, frame_a, wave_a = _framed(2, 1, 2, 7)
        packet_b, frame_b, wave_b = _framed(3, 2, 1, 9)
        collision = _collision(wave_a, wave_b, offset=150, seed=2)
        buffer = SentPacketBuffer()
        buffer.store(frame_a)
        result = _pipeline(buffer).receive(collision.signal)
        assert result.outcome == ReceiveOutcome.ANC_DECODED
        assert result.interfered
        assert result.packet.identity == packet_b.identity
        assert np.mean(result.packet.payload != packet_b.payload) < 0.02

    def test_known_second_decodes_first_backwards(self):
        packet_a, frame_a, wave_a = _framed(4, 1, 2, 11)
        packet_b, frame_b, wave_b = _framed(5, 2, 1, 12)
        collision = _collision(wave_a, wave_b, offset=150, seed=4)
        buffer = SentPacketBuffer()
        buffer.store(frame_b)
        result = _pipeline(buffer).receive(collision.signal)
        assert result.outcome == ReceiveOutcome.ANC_DECODED
        assert result.packet.identity == packet_a.identity
        assert result.diagnostics.reversed_decode

    def test_headers_of_both_constituents_reported(self):
        packet_a, frame_a, wave_a = _framed(6, 1, 2, 13)
        packet_b, frame_b, wave_b = _framed(7, 2, 1, 14)
        collision = _collision(wave_a, wave_b, offset=150, seed=6)
        buffer = SentPacketBuffer()
        buffer.store(frame_a)
        result = _pipeline(buffer).receive(collision.signal)
        headers = {result.first_header.identity, result.second_header.identity}
        assert headers == {packet_a.identity, packet_b.identity}

    def test_neither_known_needs_relay(self):
        _, _, wave_a = _framed(8, 1, 2, 15)
        _, _, wave_b = _framed(9, 2, 1, 16)
        collision = _collision(wave_a, wave_b, offset=150, seed=8)
        result = _pipeline().receive(collision.signal)
        assert result.outcome == ReceiveOutcome.NEEDS_RELAY
        assert result.first_header is not None
        assert result.second_header is not None

    def test_decoding_through_relay_amplification(self):
        packet_a, frame_a, wave_a = _framed(10, 1, 2, 17)
        packet_b, frame_b, wave_b = _framed(11, 2, 1, 18)
        collision = _collision(wave_a, wave_b, offset=160, seed=10)
        broadcast = AmplifyAndForwardRelayChannel(transmit_power=1.0).apply(collision.signal)
        downlink = Link(attenuation=0.85, phase_shift=-0.7, frequency_offset=0.01, noise_power=NOISE)
        received = downlink.propagate(broadcast, rng=np.random.default_rng(10))
        buffer = SentPacketBuffer()
        buffer.store(frame_a)
        result = _pipeline(buffer).receive(received)
        assert result.outcome == ReceiveOutcome.ANC_DECODED
        assert result.packet.identity == packet_b.identity
        assert np.mean(result.packet.payload != packet_b.payload) < 0.05

    def test_best_effort_snoop_when_dominant(self):
        """Neither packet known, but the strong one decodes as a best effort."""
        packet_a, frame_a, wave_a = _framed(12, 1, 2, 19)
        packet_b, frame_b, wave_b = _framed(13, 3, 4, 20)
        collision = _collision(wave_a, wave_b, offset=150, seed=12, att_a=0.9, att_b=0.12)
        result = _pipeline().receive(collision.signal)
        assert result.packet is not None
        assert result.packet.identity == packet_a.identity

    def test_delivered_requires_crc(self):
        packet_a, frame_a, wave_a = _framed(14, 1, 2, 21)
        packet_b, frame_b, wave_b = _framed(15, 2, 1, 22)
        collision = _collision(wave_a, wave_b, offset=150, seed=14)
        buffer = SentPacketBuffer()
        buffer.store(frame_a)
        result = _pipeline(buffer).receive(collision.signal)
        # delivered implies crc_ok; if residual errors exist the flag is False.
        assert result.delivered == (result.crc_ok and result.packet is not None)
