"""Tests for the batched interference decoder and its vectorized kernels."""

import numpy as np
import pytest

from repro.anc.batch import (
    batch_differential_bits,
    batch_interference_cosine,
    batch_match_phase_differences,
    batch_phase_solutions,
)
from repro.anc.decoder import ANCDecoder, InterferenceDecoder
from repro.anc.lemma import interference_cosine, phase_solutions
from repro.anc.matching import match_phase_differences
from repro.exceptions import ConfigurationError, DecodingError
from repro.modulation.msk import MSKModulator, expected_phase_differences
from repro.signal.batch import SignalBatch


def _collision_row(rng, known_bits, unknown_n_bits, known_offset, unknown_offset,
                   amplitude_a, amplitude_b, total_samples, noise=0.02):
    """One synthetic two-frame collision with random phases and noise."""
    unknown_bits = rng.integers(0, 2, unknown_n_bits, dtype=np.uint8)
    wave_known = MSKModulator(
        amplitude=amplitude_a, initial_phase=float(rng.uniform(-np.pi, np.pi))
    ).modulate(known_bits).samples
    wave_unknown = MSKModulator(
        amplitude=amplitude_b, initial_phase=float(rng.uniform(-np.pi, np.pi))
    ).modulate(unknown_bits).samples
    row = np.zeros(total_samples, dtype=np.complex128)
    row[known_offset : known_offset + wave_known.size] += wave_known
    row[unknown_offset : unknown_offset + wave_unknown.size] += wave_unknown
    row += noise * (
        rng.standard_normal(total_samples) + 1j * rng.standard_normal(total_samples)
    ) / np.sqrt(2)
    return row, unknown_bits


def _build_batch(geometries, known_n_bits=48, unknown_n_bits=48, total_samples=140, seed=0):
    """A batch with one collision per geometry entry (repeated cyclically)."""
    rng = np.random.default_rng(seed)
    rows, known_rows, truth, known_offsets, unknown_offsets = [], [], [], [], []
    for known_offset, unknown_offset in geometries:
        known_bits = rng.integers(0, 2, known_n_bits, dtype=np.uint8)
        row, unknown_bits = _collision_row(
            rng, known_bits, unknown_n_bits, known_offset, unknown_offset,
            float(rng.uniform(0.6, 1.2)), float(rng.uniform(0.4, 1.0)), total_samples,
        )
        rows.append(row)
        known_rows.append(known_bits)
        truth.append(unknown_bits)
        known_offsets.append(known_offset)
        unknown_offsets.append(unknown_offset)
    return (
        SignalBatch(np.stack(rows)),
        np.stack(known_rows),
        np.stack(truth),
        np.array(known_offsets),
        np.array(unknown_offsets),
    )


class TestDecodeBatch:
    def test_forward_group_matches_scalar(self):
        batch, known, truth, kos, uos = _build_batch([(0, 24)] * 6)
        decoder = InterferenceDecoder()
        bits, diagnostics = decoder.decode_batch(batch, known, 0, 24, truth.shape[1])
        assert bits.shape == truth.shape
        for i in range(len(batch)):
            scalar_bits, scalar_diag = decoder.decode(
                batch.row(i), known[i], 0, 24, truth.shape[1]
            )
            assert np.array_equal(bits[i], scalar_bits)
            assert diagnostics[i].interfered_bits == scalar_diag.interfered_bits
            assert diagnostics[i].clean_bits == scalar_diag.clean_bits
        # The synthetic collisions are clean enough to decode correctly.
        assert np.mean(bits != truth) < 0.05

    def test_mixed_geometries_including_backward(self):
        geometries = [(0, 24), (0, 31), (30, 4), (18, 0), (0, 24), (30, 4)]
        batch, known, truth, kos, uos = _build_batch(geometries, seed=3)
        decoder = ANCDecoder()
        bits, diagnostics = decoder.decode_batch(batch, known, kos, uos, truth.shape[1])
        for i in range(len(batch)):
            scalar_bits, scalar_diag = decoder.decode(
                batch.row(i), known[i], int(kos[i]), int(uos[i]), truth.shape[1]
            )
            assert np.array_equal(bits[i], scalar_bits)
            assert diagnostics[i].reversed_decode == scalar_diag.reversed_decode
            assert diagnostics[i].reversed_decode == (kos[i] > uos[i])

    def test_accepts_plain_ndarray(self):
        batch, known, truth, _, _ = _build_batch([(0, 24)] * 2, seed=4)
        decoder = InterferenceDecoder()
        from_array, _ = decoder.decode_batch(
            np.asarray(batch.samples), known, 0, 24, truth.shape[1]
        )
        from_batch, _ = decoder.decode_batch(batch, known, 0, 24, truth.shape[1])
        assert np.array_equal(from_array, from_batch)

    def test_rejects_bad_inputs(self):
        batch, known, truth, _, _ = _build_batch([(0, 24)] * 2, seed=5)
        decoder = InterferenceDecoder()
        n_bits = truth.shape[1]
        with pytest.raises(DecodingError):
            decoder.decode_batch(batch, known[:1], 0, 24, n_bits)
        with pytest.raises(DecodingError):
            decoder.decode_batch(batch, known, 0, 24, 0)
        with pytest.raises(DecodingError):
            decoder.decode_batch(batch, known, -1, 24, n_bits)
        with pytest.raises(DecodingError):
            decoder.decode_batch(batch, known, np.array([0, 1, 2]), 24, n_bits)
        with pytest.raises(DecodingError):
            decoder.decode_batch(batch, known, np.array([0.5, 1.5]), 24, n_bits)
        with pytest.raises(DecodingError):
            # A scalar float offset must be rejected, not silently truncated.
            decoder.decode_batch(batch, known, 0, 8.7, n_bits)
        with pytest.raises(DecodingError):
            decoder.decode_batch(batch, known, 0, 24, 10_000)
        with pytest.raises(ConfigurationError):
            decoder.decode_batch(np.zeros(4, dtype=np.complex128), known, 0, 24, n_bits)

    def test_zero_overlap_raises_like_scalar(self):
        # Known frame [0, 21), unknown frame [40, ...): no overlap at all.
        batch, known, truth, _, _ = _build_batch(
            [(0, 40)] * 2, known_n_bits=20, unknown_n_bits=20, total_samples=90, seed=6
        )
        decoder = InterferenceDecoder()
        with pytest.raises(DecodingError, match="overlap"):
            decoder.decode(batch.row(0), known[0], 0, 40, truth.shape[1])
        with pytest.raises(DecodingError, match="overlap"):
            decoder.decode_batch(batch, known, 0, 40, truth.shape[1])


class TestBatchKernels:
    """The vectorized Lemma 6.1 / Eq. 7-8 kernels against the scalar ones."""

    @staticmethod
    def _interfered_rows(n_trials, n_samples, seed=0):
        rng = np.random.default_rng(seed)
        amplitudes_a = rng.uniform(0.5, 1.5, n_trials)
        amplitudes_b = rng.uniform(0.3, 1.2, n_trials)
        theta = rng.uniform(-np.pi, np.pi, (n_trials, n_samples))
        phi = rng.uniform(-np.pi, np.pi, (n_trials, n_samples))
        y = (
            amplitudes_a[:, None] * np.exp(1j * theta)
            + amplitudes_b[:, None] * np.exp(1j * phi)
        )
        return y, amplitudes_a, amplitudes_b

    def test_cosine_matches_scalar(self):
        y, amps_a, amps_b = self._interfered_rows(5, 40)
        batch = batch_interference_cosine(y, amps_a, amps_b)
        for i in range(5):
            scalar = interference_cosine(y[i], float(amps_a[i]), float(amps_b[i]))
            assert np.array_equal(batch[i], scalar)

    def test_solutions_match_scalar(self):
        y, amps_a, amps_b = self._interfered_rows(5, 40, seed=1)
        batch = batch_phase_solutions(y, amps_a, amps_b)
        for i in range(5):
            scalar = phase_solutions(y[i], float(amps_a[i]), float(amps_b[i]))
            assert np.array_equal(batch.theta1[i], scalar.theta1)
            assert np.array_equal(batch.phi1[i], scalar.phi1)
            assert np.array_equal(batch.theta2[i], scalar.theta2)
            assert np.array_equal(batch.phi2[i], scalar.phi2)
            assert np.array_equal(batch.cosine[i], scalar.cosine)

    def test_empty_block(self):
        batch = batch_phase_solutions(np.zeros((3, 0), dtype=complex), [1.0] * 3, [1.0] * 3)
        assert batch.n_trials == 3
        assert batch.n_samples == 0

    def test_matching_matches_scalar(self):
        rng = np.random.default_rng(2)
        y, amps_a, amps_b = self._interfered_rows(4, 25, seed=2)
        known = np.stack(
            [
                expected_phase_differences(rng.integers(0, 2, 24, dtype=np.uint8))
                for _ in range(4)
            ]
        )
        solutions = batch_phase_solutions(y, amps_a, amps_b)
        batch = batch_match_phase_differences(solutions, known)
        for i in range(4):
            scalar = match_phase_differences(
                phase_solutions(y[i], float(amps_a[i]), float(amps_b[i])), known[i]
            )
            assert np.array_equal(batch.bits[i], scalar.bits)
            assert np.array_equal(batch.unknown_differences[i], scalar.unknown_differences)
            assert np.array_equal(batch.match_errors[i], scalar.match_errors)

    def test_matching_with_unwrapped_known_matches_scalar(self):
        """Out-of-range known differences must fall back to the full wrap."""
        y, amps_a, amps_b = self._interfered_rows(3, 12, seed=6)
        # Deliberately unwrapped values far outside (-pi, pi].
        known = np.full((3, 11), 10.0)
        batch = batch_match_phase_differences(
            batch_phase_solutions(y, amps_a, amps_b), known
        )
        for i in range(3):
            scalar = match_phase_differences(
                phase_solutions(y[i], float(amps_a[i]), float(amps_b[i])), known[i]
            )
            assert np.array_equal(batch.bits[i], scalar.bits)
            assert np.array_equal(batch.match_errors[i], scalar.match_errors)

    def test_matching_validates_shapes(self):
        y, amps_a, amps_b = self._interfered_rows(2, 10, seed=3)
        solutions = batch_phase_solutions(y, amps_a, amps_b)
        with pytest.raises(DecodingError):
            batch_match_phase_differences(solutions, np.zeros((2, 5)))
        short = batch_phase_solutions(y[:, :1], amps_a, amps_b)
        with pytest.raises(DecodingError):
            batch_match_phase_differences(short, np.zeros((2, 0)))

    def test_amplitude_validation(self):
        y, amps_a, amps_b = self._interfered_rows(2, 10, seed=4)
        with pytest.raises(ConfigurationError):
            batch_phase_solutions(y, [1.0, -1.0], amps_b)
        with pytest.raises(DecodingError):
            batch_phase_solutions(y, [1.0], amps_b)

    def test_differential_bits_match_clean_demodulation(self):
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, (3, 30), dtype=np.uint8)
        waves = np.stack(
            [MSKModulator(amplitude=1.0).modulate(row).samples for row in bits]
        )
        assert np.array_equal(batch_differential_bits(waves), bits)
