"""Tests for the full interference decoder (forward and backward)."""

import numpy as np
import pytest

from repro.anc.decoder import DecoderConfig, InterferenceDecoder, SubtractionDecoder
from repro.channel.interference import InterferenceCombiner
from repro.channel.link import Link
from repro.exceptions import DecodingError
from repro.framing.frame import Framer
from repro.framing.packet import Packet
from repro.modulation.msk import MSKModulator


def _make_collision(
    payload_bits=192,
    offset=110,
    attenuation_a=0.9,
    attenuation_b=0.7,
    noise=1e-3,
    cfo_a=0.03,
    cfo_b=-0.02,
    seed=0,
    phase_drift=0.0,
):
    """Build a two-frame collision plus the ground truth needed to verify decoding."""
    rng = np.random.default_rng(seed)
    framer = Framer()
    packet_a = Packet.random(1, 2, 10, payload_bits, rng)
    packet_b = Packet.random(2, 1, 20, payload_bits, rng)
    frame_a = framer.build(packet_a)
    frame_b = framer.build(packet_b)
    modulator = MSKModulator(amplitude=1.0)
    wave_a = modulator.modulate(frame_a.bits)
    wave_b = modulator.modulate(frame_b.bits)
    link_a = Link(
        attenuation=attenuation_a,
        phase_shift=float(rng.uniform(-np.pi, np.pi)),
        frequency_offset=cfo_a,
        phase_drift=phase_drift,
    )
    link_b = Link(
        attenuation=attenuation_b,
        phase_shift=float(rng.uniform(-np.pi, np.pi)),
        frequency_offset=cfo_b,
        phase_drift=phase_drift,
    )
    combiner = InterferenceCombiner(noise_power=noise, rng=rng)
    collision = combiner.combine([(wave_a, link_a, 0), (wave_b, link_b, offset)], tail_padding=24)
    return collision.signal, frame_a, frame_b, offset


class TestForwardDecoding:
    def test_alice_decodes_bob(self):
        received, frame_a, frame_b, offset = _make_collision()
        decoder = InterferenceDecoder()
        bits, diagnostics = decoder.decode(
            received, frame_a.bits, known_offset=0, unknown_offset=offset,
            unknown_n_bits=len(frame_b.bits),
        )
        assert np.mean(bits != frame_b.bits) < 0.02
        assert diagnostics.interfered_bits > 0
        assert diagnostics.clean_bits > 0
        assert not diagnostics.reversed_decode

    def test_amplitude_estimate_close_to_truth(self):
        received, frame_a, frame_b, offset = _make_collision()
        decoder = InterferenceDecoder()
        _, diagnostics = decoder.decode(
            received, frame_a.bits, 0, offset, len(frame_b.bits)
        )
        estimate = diagnostics.amplitude_estimate
        assert estimate.amplitude_a == pytest.approx(0.9, rel=0.1)
        assert estimate.amplitude_b == pytest.approx(0.7, rel=0.15)

    def test_decodes_when_unknown_is_weaker(self):
        received, frame_a, frame_b, offset = _make_collision(
            attenuation_a=1.0, attenuation_b=0.55, seed=1
        )
        decoder = InterferenceDecoder()
        bits, _ = decoder.decode(received, frame_a.bits, 0, offset, len(frame_b.bits))
        assert np.mean(bits != frame_b.bits) < 0.05

    def test_decodes_when_unknown_is_stronger(self):
        received, frame_a, frame_b, offset = _make_collision(
            attenuation_a=0.55, attenuation_b=1.0, seed=2
        )
        decoder = InterferenceDecoder()
        bits, _ = decoder.decode(received, frame_a.bits, 0, offset, len(frame_b.bits))
        assert np.mean(bits != frame_b.bits) < 0.05

    def test_sigma_estimator_variant(self):
        received, frame_a, frame_b, offset = _make_collision(seed=3)
        decoder = InterferenceDecoder(DecoderConfig(amplitude_method="sigma"))
        bits, _ = decoder.decode(received, frame_a.bits, 0, offset, len(frame_b.bits))
        assert np.mean(bits != frame_b.bits) < 0.05

    def test_oracle_amplitudes(self):
        received, frame_a, frame_b, offset = _make_collision(seed=4)
        decoder = InterferenceDecoder(
            DecoderConfig(amplitude_method="oracle", amplitude_oracle=(0.9, 0.7))
        )
        bits, _ = decoder.decode(received, frame_a.bits, 0, offset, len(frame_b.bits))
        assert np.mean(bits != frame_b.bits) < 0.02


class TestBackwardDecoding:
    def test_bob_decodes_alice(self):
        received, frame_a, frame_b, offset = _make_collision(seed=5)
        decoder = InterferenceDecoder()
        bits, diagnostics = decoder.decode(
            received, frame_b.bits, known_offset=offset, unknown_offset=0,
            unknown_n_bits=len(frame_a.bits),
        )
        assert np.mean(bits != frame_a.bits) < 0.02
        assert diagnostics.reversed_decode

    def test_both_directions_same_collision(self):
        received, frame_a, frame_b, offset = _make_collision(seed=6)
        decoder = InterferenceDecoder()
        bob_bits, _ = decoder.decode(received, frame_a.bits, 0, offset, len(frame_b.bits))
        alice_bits, _ = decoder.decode(received, frame_b.bits, offset, 0, len(frame_a.bits))
        assert np.mean(bob_bits != frame_b.bits) < 0.02
        assert np.mean(alice_bits != frame_a.bits) < 0.02


class TestBackwardEdgeCases:
    """§7.4 boundary conditions: the reversed decode must handle the extremes."""

    def test_zero_overlap_backward_is_rejected(self):
        """Disjoint packets with the known one second: nothing to decode."""
        received, frame_a, frame_b, _ = _make_collision(seed=30)
        rng = np.random.default_rng(30)
        modulator = MSKModulator(amplitude=1.0)
        wave_a = modulator.modulate(frame_a.bits)
        wave_b = modulator.modulate(frame_b.bits)
        gap_offset = len(wave_a) + 40  # B starts after A has fully ended
        combiner = InterferenceCombiner(noise_power=1e-3, rng=rng)
        link = Link(attenuation=0.9, phase_shift=0.3, frequency_offset=0.01)
        collision = combiner.combine(
            [(wave_a, link, 0), (wave_b, link, gap_offset)], tail_padding=24
        )
        with pytest.raises(DecodingError):
            # frame_b is the known one and starts second -> backward path.
            InterferenceDecoder().decode(
                collision.signal, frame_b.bits, known_offset=gap_offset,
                unknown_offset=0, unknown_n_bits=len(frame_a.bits),
            )

    def test_full_overlap_of_known_frame_backward(self):
        """A known burst fully inside the unknown frame's span still decodes.

        Every sample of the known signal is interfered (no clean head or
        tail for it), so the amplitude estimate must come from the
        unknown-only region — exercised here through the reversed path.
        """
        rng = np.random.default_rng(31)
        framer = Framer()
        packet_b = Packet.random(2, 1, 20, 192, rng)
        frame_b = framer.build(packet_b)
        modulator = MSKModulator(amplitude=1.0)
        wave_b = modulator.modulate(frame_b.bits)
        known_bits = rng.integers(0, 2, size=160).astype(np.uint8)
        wave_known = modulator.modulate(known_bits)
        known_offset = 150
        assert known_offset + len(wave_known) < len(wave_b)  # full containment
        link_b = Link(attenuation=0.95, phase_shift=0.4, frequency_offset=0.015)
        link_k = Link(attenuation=0.6, phase_shift=-0.8, frequency_offset=-0.01)
        combiner = InterferenceCombiner(noise_power=1e-4, rng=rng)
        collision = combiner.combine(
            [(wave_b, link_b, 0), (wave_known, link_k, known_offset)], tail_padding=0
        )
        decoder = InterferenceDecoder()
        bits, diagnostics = decoder.decode(
            collision.signal, known_bits, known_offset=known_offset,
            unknown_offset=0, unknown_n_bits=len(frame_b.bits),
        )
        assert diagnostics.reversed_decode
        # The whole known burst is interference; everything else is clean.
        assert diagnostics.overlap_samples == len(wave_known)
        assert diagnostics.interfered_bits > 0
        assert np.mean(bits != frame_b.bits) < 0.05

    def test_unknown_frame_ends_exactly_at_waveform_boundary_forward(self):
        """unknown_end == len(received) must decode, not raise."""
        received, frame_a, frame_b, offset = _make_collision(seed=32)
        exact_end = offset + len(frame_b.bits) + 1
        trimmed = received.slice(0, exact_end)
        bits, diagnostics = InterferenceDecoder().decode(
            trimmed, frame_a.bits, known_offset=0, unknown_offset=offset,
            unknown_n_bits=len(frame_b.bits),
        )
        assert not diagnostics.reversed_decode
        assert np.mean(bits != frame_b.bits) < 0.05
        # One sample shorter is genuinely too short and must raise.
        with pytest.raises(DecodingError):
            InterferenceDecoder().decode(
                received.slice(0, exact_end - 1), frame_a.bits, 0, offset,
                len(frame_b.bits),
            )

    def test_known_frame_ends_exactly_at_waveform_boundary_backward(self):
        """The reversed decode with the known frame flush against the end.

        When the waveform stops exactly where the second (known) frame
        stops, the reversed stream places that frame at offset zero — the
        boundary the §7.4 index arithmetic must get exactly right.
        """
        received, frame_a, frame_b, offset = _make_collision(seed=33)
        exact_end = offset + len(frame_b.bits) + 1
        trimmed = received.slice(0, exact_end)
        bits, diagnostics = InterferenceDecoder().decode(
            trimmed, frame_b.bits, known_offset=offset, unknown_offset=0,
            unknown_n_bits=len(frame_a.bits),
        )
        assert diagnostics.reversed_decode
        assert np.mean(bits != frame_a.bits) < 0.05


class TestValidation:
    def test_rejects_zero_unknown_bits(self):
        received, frame_a, _, offset = _make_collision(seed=7)
        with pytest.raises(DecodingError):
            InterferenceDecoder().decode(received, frame_a.bits, 0, offset, 0)

    def test_rejects_negative_offsets(self):
        received, frame_a, frame_b, offset = _make_collision(seed=8)
        with pytest.raises(DecodingError):
            InterferenceDecoder().decode(received, frame_a.bits, -1, offset, len(frame_b.bits))

    def test_rejects_waveform_too_short(self):
        received, frame_a, frame_b, offset = _make_collision(seed=9)
        truncated = received.slice(0, 100)
        with pytest.raises(DecodingError):
            InterferenceDecoder().decode(truncated, frame_a.bits, 0, offset, len(frame_b.bits))

    def test_rejects_disjoint_packets(self):
        """No overlap at all means there is nothing for ANC to do."""
        received, frame_a, frame_b, _ = _make_collision(seed=10)
        far_offset = len(received) + 100
        with pytest.raises(DecodingError):
            InterferenceDecoder().decode(received, frame_a.bits, 0, far_offset, len(frame_b.bits))

    def test_invalid_config(self):
        with pytest.raises(DecodingError):
            DecoderConfig(amplitude_method="magic")
        with pytest.raises(DecodingError):
            DecoderConfig(amplitude_method="oracle")


class TestSubtractionBaseline:
    def test_subtraction_works_on_static_channel(self):
        received, frame_a, frame_b, offset = _make_collision(noise=1e-4, cfo_a=0.0, cfo_b=0.0, seed=11)
        decoder = SubtractionDecoder()
        bits = decoder.decode(received, frame_a.bits, 0, offset, len(frame_b.bits))
        assert np.mean(bits != frame_b.bits) < 0.05

    def test_subtraction_degrades_under_drift(self):
        """The §6 argument: subtraction is fragile once the channel drifts."""
        kwargs = dict(noise=1e-4, cfo_a=0.0, cfo_b=0.0, attenuation_b=0.45, seed=12)
        static, frame_a, frame_b, offset = _make_collision(phase_drift=0.0, **kwargs)
        drifting, frame_a2, frame_b2, offset2 = _make_collision(phase_drift=0.05, **kwargs)
        decoder = SubtractionDecoder()
        ber_static = np.mean(
            decoder.decode(static, frame_a.bits, 0, offset, len(frame_b.bits)) != frame_b.bits
        )
        ber_drift = np.mean(
            decoder.decode(drifting, frame_a2.bits, 0, offset2, len(frame_b2.bits)) != frame_b2.bits
        )
        anc = InterferenceDecoder()
        ber_anc_drift = np.mean(
            anc.decode(drifting, frame_a2.bits, 0, offset2, len(frame_b2.bits))[0] != frame_b2.bits
        )
        assert ber_drift > ber_static
        assert ber_anc_drift < ber_drift

    def test_subtraction_requires_forward_order(self):
        received, frame_a, frame_b, offset = _make_collision(seed=13)
        with pytest.raises(DecodingError):
            SubtractionDecoder().decode(received, frame_b.bits, offset, 0, len(frame_a.bits))

    def test_subtraction_requires_clean_head(self):
        received, frame_a, frame_b, _ = _make_collision(seed=14)
        with pytest.raises(DecodingError):
            SubtractionDecoder(min_head_samples=8).decode(
                received, frame_a.bits, 0, 2, len(frame_b.bits)
            )
