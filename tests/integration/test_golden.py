"""Golden regression tests: scalar and batched runs against frozen fixtures.

The JSON files under ``tests/golden/`` (written by
``tools/make_golden.py``) freeze the full plain-text renderings of the
quick-scale fig09/fig10/fig12 reproductions.  Each test replays the same
experiment twice — through the scalar reference engine and through the
batched engine (``batch_size > 1`` with worker blocks) — and requires the
renderings to match the fixture byte for byte.  This is what stops a
future refactor of the signal/modulation/anc layers from silently
drifting the reference renderings: the drift surfaces here as a readable
diff rather than deep inside a benchmark.

After an *intentional* change to the reproduced numbers, regenerate with
``PYTHONPATH=src python tools/make_golden.py`` and commit the new
fixtures alongside the change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import api
from repro.experiments.alice_bob import run_alice_bob_experiment
from repro.experiments.chain import run_chain_experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import ExperimentEngine
from repro.experiments.x_topology import run_x_topology_experiment

GOLDEN_DIR = Path(__file__).parent.parent / "golden"

RUNNERS = {
    "fig09_alice_bob": run_alice_bob_experiment,
    "fig10_x_topology": run_x_topology_experiment,
    "fig12_chain": run_chain_experiment,
}

#: Time-domain scenarios pinned as structured-result fixtures (quick
#: sweep) by tools/make_golden.py.
SCENARIO_FIXTURES = ("offered_load_sweep", "queueing_delay")


def _load_fixture(name: str) -> dict:
    path = GOLDEN_DIR / f"{name}.json"
    assert path.is_file(), (
        f"missing golden fixture {path}; regenerate with "
        "`PYTHONPATH=src python tools/make_golden.py`"
    )
    return json.loads(path.read_text())


def _fixture_config(fixture: dict, **overrides) -> ExperimentConfig:
    return ExperimentConfig(**{**fixture["config"], **overrides})


@pytest.mark.parametrize("name", sorted(RUNNERS))
def test_scalar_run_matches_golden(name):
    """The scalar reference path must reproduce the fixture byte for byte."""
    fixture = _load_fixture(name)
    report = RUNNERS[name](_fixture_config(fixture), engine=ExperimentEngine(workers=1))
    assert report.render() == fixture["render"], (
        f"{name} drifted from its golden rendering; if the change is "
        "intentional, regenerate with tools/make_golden.py"
    )


@pytest.mark.parametrize("name", sorted(RUNNERS))
def test_batched_run_matches_golden(name):
    """The batched path (worker blocks, batch_size > 1) must match too."""
    fixture = _load_fixture(name)
    config = _fixture_config(fixture, batch_size=2)
    report = RUNNERS[name](config, engine=ExperimentEngine(workers=2, batch_size=2))
    assert report.render() == fixture["render"], (
        f"{name} batched run drifted from the golden rendering: batching "
        "must be invisible in results"
    )


def _scenario_fixture(scenario: str) -> dict:
    return _load_fixture(f"scenario_{scenario}_quick")


def _normalized(result) -> dict:
    payload = result.to_dict()
    payload["meta"]["engine"]["elapsed_seconds"] = 0.0
    return payload


@pytest.mark.parametrize("scenario", SCENARIO_FIXTURES)
def test_scenario_serial_run_matches_golden(scenario):
    """A serial quick sweep must reproduce the whole structured result."""
    fixture = _scenario_fixture(scenario)
    config = ExperimentConfig(**fixture["config"])
    result = api.run(scenario, config=config, quick=True)
    assert _normalized(result) == fixture, (
        f"{scenario} drifted from its golden structured result; if the "
        "change is intentional, regenerate with tools/make_golden.py"
    )


@pytest.mark.parametrize("scenario", SCENARIO_FIXTURES)
def test_scenario_parallel_run_matches_golden(scenario):
    """Worker fan-out must be invisible: same series, scalars and digest."""
    fixture = _scenario_fixture(scenario)
    config = ExperimentConfig(**fixture["config"])
    result = api.run(
        scenario, config=config, engine=ExperimentEngine(workers=2), quick=True
    )
    payload = result.to_dict()
    assert payload["series"] == fixture["series"]
    assert payload["scalars"] == fixture["scalars"]
    assert payload["config_digest"] == fixture["config_digest"]


def test_fixture_metadata_is_consistent():
    """Every fixture names its experiment and carries the pinned config."""
    for name in RUNNERS:
        fixture = _load_fixture(name)
        assert fixture["experiment"] == name
        assert fixture["config"]["seed"] == 7
        assert set(fixture["config"]) == {"runs", "packets_per_run", "payload_bits", "seed"}
        assert fixture["render"].startswith(f"=== {name} ===")
