"""Integration tests exercising the full stack across modules.

These recreate the paper's canonical scenarios end to end — transmitter
chain, medium, relay behaviour, receiver chain — and check the system-level
claims (packets recovered from deliberate collisions, throughput ordering
ANC > COPE > traditional, hidden-terminal immunity in the chain).
"""

import numpy as np

from repro.anc.pipeline import ReceiveOutcome
from repro.channel.interference import OverlapModel
from repro.network.flows import Flow
from repro.network.medium import Transmission
from repro.network.simulator import SlotSimulator
from repro.network.topologies import (
    ALICE,
    BOB,
    N1,
    N2,
    N3,
    N4,
    N5,
    RELAY,
    ChannelConditions,
    alice_bob_topology,
    chain_topology,
    x_topology,
)
from repro.node.node import Node, NodeConfig
from repro.node.router import RouterAction, RouterNode
from repro.protocols.anc import ANCChainProtocol, ANCRelayProtocol, default_min_offset
from repro.protocols.cope import CopeRelayProtocol
from repro.protocols.traditional import TraditionalRouting

PAYLOAD = 384


def _overlap(seed):
    return OverlapModel(
        mean_overlap=0.85, jitter=0.05, min_offset=default_min_offset(),
        rng=np.random.default_rng(seed),
    )


class TestAliceBobExchangeManual:
    """Drive one full Alice-Bob ANC exchange by hand through the medium."""

    def test_both_directions_recovered(self):
        conditions = ChannelConditions(snr_db=28.0)
        rng = np.random.default_rng(42)
        topology = alice_bob_topology(conditions, rng)
        config = NodeConfig(payload_bits=PAYLOAD, noise_power=conditions.noise_power)
        alice = Node(ALICE, config)
        bob = Node(BOB, config)
        router = RouterNode(RELAY, neighbors=[ALICE, BOB], config=config)
        simulator = SlotSimulator(topology, rng=rng)

        packet_a = alice.make_packet(BOB, rng)
        packet_b = bob.make_packet(ALICE, rng)
        wave_a = alice.transmit(packet_a)
        wave_b = bob.transmit(packet_b)
        offsets = _overlap(1).draw_offsets(len(wave_a))

        # Slot 1: deliberate collision at the router.
        uplink = simulator.run_slot(
            [
                Transmission(ALICE, wave_a, offsets[0]),
                Transmission(BOB, wave_b, offsets[1]),
            ],
            receivers=[RELAY],
        )
        decision = router.process(uplink.waveform_at(RELAY))
        assert decision.action == RouterAction.AMPLIFY_FORWARD

        # Slot 2: the router broadcasts the amplified collision.
        downlink = simulator.run_slot(
            [Transmission(RELAY, decision.broadcast)], receivers=[ALICE, BOB]
        )
        alice_result = alice.receive(downlink.waveform_at(ALICE))
        bob_result = bob.receive(downlink.waveform_at(BOB))

        assert alice_result.outcome == ReceiveOutcome.ANC_DECODED
        assert bob_result.outcome == ReceiveOutcome.ANC_DECODED
        assert alice_result.packet.identity == packet_b.identity
        assert bob_result.packet.identity == packet_a.identity
        assert np.mean(alice_result.packet.payload != packet_b.payload) < 0.05
        assert np.mean(bob_result.packet.payload != packet_a.payload) < 0.05
        # Two packets crossed the network in exactly two slots.
        assert simulator.slots_run == 2


class TestThroughputOrdering:
    def test_alice_bob_ordering_matches_paper(self):
        conditions = ChannelConditions(snr_db=28.0)
        topology = alice_bob_topology(conditions, np.random.default_rng(7))
        flow_a, flow_b = Flow(ALICE, BOB, 6), Flow(BOB, ALICE, 6)
        traditional = TraditionalRouting(
            topology, [flow_a, flow_b], payload_bits=PAYLOAD, rng=np.random.default_rng(8)
        ).run()
        cope = CopeRelayProtocol(
            topology, RELAY, flow_a, flow_b, payload_bits=PAYLOAD, rng=np.random.default_rng(9)
        ).run()
        anc = ANCRelayProtocol(
            topology, RELAY, flow_a, flow_b, payload_bits=PAYLOAD,
            overlap_model=_overlap(10), rng=np.random.default_rng(10),
        ).run()
        # The paper's headline ordering (§11.3).
        assert anc.throughput > cope.throughput > traditional.throughput
        assert 1.3 < anc.throughput / traditional.throughput < 2.0
        assert 1.0 < anc.throughput / cope.throughput < 1.5

    def test_x_topology_ordering(self):
        conditions = ChannelConditions(snr_db=28.0)
        topology = x_topology(conditions, np.random.default_rng(11))
        flow_a, flow_b = Flow(N1, N4, 6), Flow(N3, N2, 6)
        traditional = TraditionalRouting(
            topology, [flow_a, flow_b], payload_bits=PAYLOAD, rng=np.random.default_rng(12)
        ).run()
        anc = ANCRelayProtocol(
            topology, N5, flow_a, flow_b, payload_bits=PAYLOAD, overhearing=True,
            overlap_model=_overlap(13), rng=np.random.default_rng(13), topology_name="x",
        ).run()
        assert anc.throughput > traditional.throughput


class TestChainPipeline:
    def test_packets_traverse_three_hops_in_two_slots(self):
        conditions = ChannelConditions(snr_db=28.0)
        topology = chain_topology(conditions, np.random.default_rng(14))
        packets = 6
        anc = ANCChainProtocol(
            topology, packets=packets, payload_bits=PAYLOAD,
            overlap_model=_overlap(15), rng=np.random.default_rng(15),
        ).run()
        assert anc.packets_delivered >= packets - 1
        # Steady state approaches 2 slots per packet (plus bootstrap).
        assert anc.slots_used <= 2 * packets + 3
        # The middle node decoded collisions, so interfered BER samples exist.
        assert len(anc.packet_bers) >= packets - 2

    def test_hidden_terminal_is_harmless(self):
        """N1 and N3 transmit together, yet N2 still gets N1's packet (§2b)."""
        conditions = ChannelConditions(snr_db=28.0)
        rng = np.random.default_rng(16)
        topology = chain_topology(conditions, rng)
        config = NodeConfig(payload_bits=PAYLOAD, noise_power=conditions.noise_power)
        n1, n2, n3 = Node(1, config), Node(2, config), Node(3, config)
        simulator = SlotSimulator(topology, rng=rng)

        # N2 previously forwarded packet P to N3, so it knows P.
        old_packet = n1.make_packet(4, rng)
        n2.remember_packet(old_packet)
        forwarded_wave = n3.forward(old_packet)
        new_packet = n1.make_packet(4, rng)
        new_wave = n1.transmit(new_packet)

        offsets = _overlap(17).draw_offsets(len(new_wave))
        slot = simulator.run_slot(
            [
                Transmission(1, new_wave, offsets[0]),
                Transmission(3, forwarded_wave, offsets[1]),
            ],
            receivers=[2, 4],
        )
        result = n2.receive(slot.waveform_at(2))
        assert result.outcome == ReceiveOutcome.ANC_DECODED
        assert result.packet.identity == new_packet.identity
        assert np.mean(result.packet.payload != new_packet.payload) < 0.05
