"""Tests for the ANC relay and chain protocols."""

import numpy as np
import pytest

from repro.channel.interference import OverlapModel
from repro.exceptions import ConfigurationError
from repro.network.flows import Flow
from repro.network.topologies import (
    ALICE,
    BOB,
    N1,
    N2,
    N3,
    N4,
    N5,
    RELAY,
    ChannelConditions,
    alice_bob_topology,
    chain_topology,
    x_topology,
)
from repro.protocols.anc import ANCChainProtocol, ANCRelayProtocol, default_min_offset
from repro.protocols.cope import CopeRelayProtocol
from repro.protocols.traditional import TraditionalRouting

PAYLOAD = 384


def _conditions():
    return ChannelConditions(snr_db=30.0)


def _overlap(seed, mean=0.85):
    return OverlapModel(
        mean_overlap=mean, jitter=0.05, min_offset=default_min_offset(),
        rng=np.random.default_rng(seed),
    )


class TestDefaultMinOffset:
    def test_covers_pilot_and_header(self):
        assert default_min_offset() >= 64 + 48

    def test_margin_parameter(self):
        assert default_min_offset(margin_bits=0) == 64 + 48


class TestANCAliceBob:
    def test_two_slots_per_exchange(self):
        """Fig. 1d: ANC delivers two packets in 2 slots."""
        topo = alice_bob_topology(_conditions(), np.random.default_rng(0))
        result = ANCRelayProtocol(
            topo, RELAY, Flow(ALICE, BOB, 4), Flow(BOB, ALICE, 4),
            payload_bits=PAYLOAD, overlap_model=_overlap(1), rng=np.random.default_rng(1),
        ).run()
        assert result.slots_used == 2 * 4
        assert result.packets_offered == 8

    def test_delivers_packets_with_low_ber(self):
        topo = alice_bob_topology(_conditions(), np.random.default_rng(2))
        result = ANCRelayProtocol(
            topo, RELAY, Flow(ALICE, BOB, 5), Flow(BOB, ALICE, 5),
            payload_bits=PAYLOAD, overlap_model=_overlap(3), rng=np.random.default_rng(3),
        ).run()
        assert result.packets_delivered >= 9
        decoded_bers = [b for b in result.packet_bers if b < 0.5]
        assert decoded_bers
        assert float(np.mean(decoded_bers)) < 0.05

    def test_overlap_fraction_recorded(self):
        topo = alice_bob_topology(_conditions(), np.random.default_rng(4))
        result = ANCRelayProtocol(
            topo, RELAY, Flow(ALICE, BOB, 3), Flow(BOB, ALICE, 3),
            payload_bits=PAYLOAD, overlap_model=_overlap(5, mean=0.8),
            rng=np.random.default_rng(5),
        ).run()
        assert 0.6 < result.mean_overlap < 1.0

    def test_beats_traditional_and_cope(self):
        topo = alice_bob_topology(_conditions(), np.random.default_rng(6))
        flow_a, flow_b = Flow(ALICE, BOB, 5), Flow(BOB, ALICE, 5)
        traditional = TraditionalRouting(
            topo, [flow_a, flow_b], payload_bits=PAYLOAD, rng=np.random.default_rng(7)
        ).run()
        cope = CopeRelayProtocol(
            topo, RELAY, flow_a, flow_b, payload_bits=PAYLOAD, rng=np.random.default_rng(8)
        ).run()
        anc = ANCRelayProtocol(
            topo, RELAY, flow_a, flow_b, payload_bits=PAYLOAD,
            overlap_model=_overlap(9), rng=np.random.default_rng(9),
        ).run()
        assert anc.throughput > cope.throughput > traditional.throughput
        assert anc.throughput / traditional.throughput > 1.3
        assert anc.throughput / cope.throughput > 1.05

    def test_redundancy_overhead_charged(self):
        topo = alice_bob_topology(_conditions(), np.random.default_rng(10))
        result = ANCRelayProtocol(
            topo, RELAY, Flow(ALICE, BOB, 2), Flow(BOB, ALICE, 2),
            payload_bits=PAYLOAD, redundancy_overhead=0.08,
            overlap_model=_overlap(11), rng=np.random.default_rng(11),
        ).run()
        assert result.useful_bits == pytest.approx(
            result.delivered_payload_bits / 1.08
        )

    def test_mismatched_flows_rejected(self):
        topo = alice_bob_topology(_conditions(), np.random.default_rng(12))
        with pytest.raises(ConfigurationError):
            ANCRelayProtocol(
                topo, RELAY, Flow(ALICE, BOB, 2), Flow(BOB, ALICE, 3), payload_bits=PAYLOAD
            )


class TestANCXTopology:
    def test_overhearing_enables_decoding(self):
        topo = x_topology(_conditions(), np.random.default_rng(13))
        result = ANCRelayProtocol(
            topo, N5, Flow(N1, N4, 5), Flow(N3, N2, 5),
            payload_bits=PAYLOAD, overhearing=True,
            overlap_model=_overlap(14), rng=np.random.default_rng(14), topology_name="x",
        ).run()
        assert result.slots_used == 2 * 5
        assert result.packets_delivered >= 6  # overhearing can occasionally fail


class TestANCChain:
    def test_two_slots_per_packet_steady_state(self):
        topo = chain_topology(_conditions(), np.random.default_rng(15))
        packets = 8
        result = ANCChainProtocol(
            topo, packets=packets, payload_bits=PAYLOAD,
            overlap_model=_overlap(16), rng=np.random.default_rng(16),
        ).run()
        # 2 slots per packet plus bootstrap/drain overhead.
        assert result.slots_used <= 2 * packets + 3
        assert result.packets_delivered >= packets - 1

    def test_beats_traditional(self):
        topo = chain_topology(_conditions(), np.random.default_rng(17))
        packets = 8
        traditional = TraditionalRouting(
            topo, [Flow(1, 4, packets)], payload_bits=PAYLOAD, rng=np.random.default_rng(18)
        ).run()
        anc = ANCChainProtocol(
            topo, packets=packets, payload_bits=PAYLOAD, redundancy_overhead=0.04,
            overlap_model=_overlap(19), rng=np.random.default_rng(19),
        ).run()
        assert anc.throughput > traditional.throughput
        assert anc.throughput / traditional.throughput > 1.1

    def test_ber_lower_than_relay_topology(self):
        """§11.6: decoding at the first receiver avoids amplified noise."""
        conditions = ChannelConditions(snr_db=24.0)
        chain_topo = chain_topology(conditions, np.random.default_rng(20))
        ab_topo = alice_bob_topology(conditions, np.random.default_rng(21))
        chain_result = ANCChainProtocol(
            chain_topo, packets=6, payload_bits=PAYLOAD,
            overlap_model=_overlap(22), rng=np.random.default_rng(22),
        ).run()
        ab_result = ANCRelayProtocol(
            ab_topo, RELAY, Flow(ALICE, BOB, 6), Flow(BOB, ALICE, 6),
            payload_bits=PAYLOAD, overlap_model=_overlap(23), rng=np.random.default_rng(23),
        ).run()
        chain_bers = [b for b in chain_result.packet_bers if b < 0.5]
        ab_bers = [b for b in ab_result.packet_bers if b < 0.5]
        assert float(np.mean(chain_bers)) <= float(np.mean(ab_bers)) + 1e-9

    def test_invalid_parameters(self):
        topo = chain_topology(_conditions(), np.random.default_rng(24))
        with pytest.raises(ConfigurationError):
            ANCChainProtocol(topo, path=(1, 2, 3), packets=4, payload_bits=PAYLOAD)
        with pytest.raises(ConfigurationError):
            ANCChainProtocol(topo, packets=0, payload_bits=PAYLOAD)
