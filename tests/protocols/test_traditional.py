"""Tests for the traditional routing baseline."""

import numpy as np
import pytest

from repro.network.flows import Flow
from repro.network.topologies import (
    ALICE,
    BOB,
    ChannelConditions,
    alice_bob_topology,
    chain_topology,
)
from repro.protocols.traditional import TraditionalRouting

PAYLOAD = 256


def _conditions():
    return ChannelConditions(snr_db=30.0)


class TestTraditionalAliceBob:
    def test_delivers_all_packets(self):
        topo = alice_bob_topology(_conditions(), np.random.default_rng(0))
        flows = [Flow(ALICE, BOB, 3), Flow(BOB, ALICE, 3)]
        result = TraditionalRouting(
            topo, flows, payload_bits=PAYLOAD, rng=np.random.default_rng(1),
            topology_name="alice_bob",
        ).run()
        assert result.packets_offered == 6
        assert result.packets_delivered == 6
        assert result.packets_lost == 0

    def test_four_slots_per_exchange(self):
        """Two packets (one per direction) need 4 transmission slots (Fig. 1b)."""
        topo = alice_bob_topology(_conditions(), np.random.default_rng(2))
        flows = [Flow(ALICE, BOB, 5), Flow(BOB, ALICE, 5)]
        result = TraditionalRouting(
            topo, flows, payload_bits=PAYLOAD, rng=np.random.default_rng(3)
        ).run()
        assert result.slots_used == 4 * 5

    def test_air_time_is_slots_times_frame(self):
        topo = alice_bob_topology(_conditions(), np.random.default_rng(4))
        flows = [Flow(ALICE, BOB, 2), Flow(BOB, ALICE, 2)]
        protocol = TraditionalRouting(
            topo, flows, payload_bits=PAYLOAD, rng=np.random.default_rng(5)
        )
        result = protocol.run()
        frame_samples = protocol.nodes[ALICE].frame_samples
        assert result.air_time_samples == result.slots_used * frame_samples

    def test_throughput_positive(self):
        topo = alice_bob_topology(_conditions(), np.random.default_rng(6))
        result = TraditionalRouting(
            topo, [Flow(ALICE, BOB, 2)], payload_bits=PAYLOAD, rng=np.random.default_rng(7)
        ).run()
        assert result.throughput > 0
        assert result.scheme == "traditional"

    def test_no_ber_samples_for_clean_routing(self):
        topo = alice_bob_topology(_conditions(), np.random.default_rng(8))
        result = TraditionalRouting(
            topo, [Flow(ALICE, BOB, 2)], payload_bits=PAYLOAD, rng=np.random.default_rng(9)
        ).run()
        assert result.packet_bers == []
        assert result.mean_ber == 0.0


class TestTraditionalChain:
    def test_three_slots_per_packet(self):
        topo = chain_topology(_conditions(), np.random.default_rng(10))
        result = TraditionalRouting(
            topo, [Flow(1, 4, 4)], payload_bits=PAYLOAD, rng=np.random.default_rng(11),
            topology_name="chain",
        ).run()
        assert result.slots_used == 3 * 4
        assert result.packets_delivered == 4

    def test_requires_at_least_one_flow(self):
        topo = chain_topology(_conditions(), np.random.default_rng(12))
        with pytest.raises(ValueError):
            TraditionalRouting(topo, [], payload_bits=PAYLOAD)
