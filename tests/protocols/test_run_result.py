"""Tests for the RunResult accounting and ProtocolRun helpers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.framing.packet import Packet
from repro.network.topologies import ChannelConditions, alice_bob_topology, RELAY
from repro.node.relay import RelayNode
from repro.node.router import RouterNode
from repro.protocols.base import ProtocolRun, RunResult, fresh_run_result


def _result(**kwargs):
    defaults = dict(scheme="anc", topology="alice_bob", payload_bits=100)
    defaults.update(kwargs)
    return RunResult(**defaults)


class TestRunResult:
    def test_useful_bits_charges_redundancy(self):
        result = _result(packets_delivered=10, redundancy_overhead=0.08)
        assert result.delivered_payload_bits == 1000
        assert result.useful_bits == pytest.approx(1000 / 1.08)

    def test_throughput(self):
        result = _result(packets_delivered=4, air_time_samples=2000)
        assert result.throughput == pytest.approx(0.2)

    def test_throughput_requires_air_time(self):
        with pytest.raises(SimulationError):
            _ = _result(packets_delivered=1).throughput

    def test_mean_ber(self):
        result = _result(packet_bers=[0.0, 0.02, 0.04])
        assert result.mean_ber == pytest.approx(0.02)
        assert _result().mean_ber == 0.0

    def test_delivery_ratio(self):
        result = _result(packets_offered=10, packets_delivered=7)
        assert result.delivery_ratio == pytest.approx(0.7)
        assert _result().delivery_ratio == 0.0

    def test_mean_overlap(self):
        result = _result(overlap_fractions=[0.8, 0.9])
        assert result.mean_overlap == pytest.approx(0.85)


class TestProtocolRunHelpers:
    def _protocol(self, seed=0):
        topo = alice_bob_topology(ChannelConditions(), np.random.default_rng(seed))
        return ProtocolRun(topo, payload_bits=128, rng=np.random.default_rng(seed))

    def test_make_node_cached(self):
        protocol = self._protocol()
        assert protocol.make_node(1) is protocol.make_node(1)

    def test_make_relay_upgrades_plain_node(self):
        protocol = self._protocol()
        protocol.make_node(RELAY)
        relay = protocol.make_relay(RELAY)
        assert isinstance(relay, RelayNode)
        assert protocol.make_relay(RELAY) is relay

    def test_make_router_upgrades_plain_node(self):
        protocol = self._protocol()
        protocol.make_node(RELAY)
        router = protocol.make_router(RELAY)
        assert isinstance(router, RouterNode)

    def test_packet_ber_handles_missing_decode(self):
        protocol = self._protocol()
        truth = Packet(1, 2, 0, [1, 0, 1, 0])
        assert protocol.packet_ber(None, truth) == 0.5
        assert protocol.packet_ber(Packet(1, 2, 0, [1, 0]), truth) == 0.5
        assert protocol.packet_ber(Packet(1, 2, 0, [1, 0, 1, 1]), truth) == pytest.approx(0.25)

    def test_counts_as_delivered(self):
        protocol = self._protocol()
        assert protocol.counts_as_delivered(0.2, crc_ok=True)
        assert protocol.counts_as_delivered(0.03, crc_ok=False)
        assert not protocol.counts_as_delivered(0.2, crc_ok=False)

    def test_validation(self):
        topo = alice_bob_topology(ChannelConditions(), np.random.default_rng(1))
        with pytest.raises(ConfigurationError):
            ProtocolRun(topo, payload_bits=0)
        with pytest.raises(ConfigurationError):
            ProtocolRun(topo, ber_acceptance=0.6)
        with pytest.raises(ConfigurationError):
            ProtocolRun(topo, redundancy_overhead=-0.1)

    def test_fresh_run_result(self):
        protocol = self._protocol()
        result = fresh_run_result(protocol, "alice_bob")
        assert result.scheme == "base"
        assert result.topology == "alice_bob"
        assert result.payload_bits == 128
