"""Tests for the plan-driven generalized chain executor."""

import numpy as np
import pytest

from repro.channel.interference import OverlapModel
from repro.exceptions import ConfigurationError
from repro.mac.planner import plan_chain_pipeline
from repro.network.flows import Flow
from repro.network.generator import generate_chain
from repro.network.topologies import ChannelConditions
from repro.protocols.anc import ANCChainProtocol, default_min_offset
from repro.protocols.scheduled import ChainPipelineProtocol
from repro.protocols.traditional import TraditionalRouting

PAYLOAD = 384
CONDITIONS = ChannelConditions(snr_db=30.0)


def _chain(hops, seed=0):
    return generate_chain(CONDITIONS, np.random.default_rng(seed), hops=hops)


def _overlap(seed, mean=0.85):
    return OverlapModel(
        mean_overlap=mean, jitter=0.05, min_offset=default_min_offset(),
        rng=np.random.default_rng(seed),
    )


def _anc(topology, hops, packets, seed):
    return ChainPipelineProtocol(
        topology,
        path=tuple(range(1, hops + 2)),
        coding="anc",
        packets=packets,
        payload_bits=PAYLOAD,
        overlap_model=_overlap(seed),
        rng=np.random.default_rng(seed),
    )


def _plain(topology, hops, packets, seed):
    return ChainPipelineProtocol(
        topology,
        path=tuple(range(1, hops + 2)),
        coding="plain",
        packets=packets,
        payload_bits=PAYLOAD,
        redundancy_overhead=0.0,
        rng=np.random.default_rng(seed),
    )


class TestGeneralizedAncPipeline:
    def test_matches_legacy_3_hop_protocol_exactly(self):
        """The generalized executor must reproduce ANCChainProtocol bit-for-bit."""
        packets = 6
        legacy = ANCChainProtocol(
            _chain(3), packets=packets, payload_bits=PAYLOAD,
            overlap_model=_overlap(3), rng=np.random.default_rng(3),
        ).run()
        general = _anc(_chain(3), hops=3, packets=packets, seed=3).run()
        assert general.slots_used == legacy.slots_used
        assert general.air_time_samples == legacy.air_time_samples
        assert general.packets_delivered == legacy.packets_delivered
        assert general.packet_bers == legacy.packet_bers
        assert general.overlap_fractions == legacy.overlap_fractions

    @pytest.mark.parametrize("hops", [2, 4, 5, 7])
    def test_delivers_across_chain_lengths(self, hops):
        packets = 5
        result = _anc(_chain(hops, seed=hops), hops, packets, seed=hops).run()
        assert result.packets_offered == packets
        assert result.packets_delivered >= packets - 1
        decoded = [b for b in result.packet_bers if b < 0.5]
        if decoded:
            assert float(np.mean(decoded)) < 0.05

    def test_steady_state_two_slots_per_packet(self):
        """In steady state the stride-2 pipeline moves one packet per 2 slots."""
        hops, packets = 5, 10
        result = _anc(_chain(5, seed=9), hops, packets, seed=9).run()
        # 2 slots per packet plus pipeline fill/drain overhead.
        assert result.slots_used <= 2 * packets + 2 * hops

    def test_interior_collisions_recorded(self):
        result = _anc(_chain(5, seed=11), hops=5, packets=6, seed=11).run()
        assert result.overlap_fractions  # deliberate collisions happened
        assert all(0.0 < f <= 1.0 for f in result.overlap_fractions)


class TestCollisionFreePipeline:
    @pytest.mark.parametrize("hops", [3, 5, 8])
    def test_plain_pipeline_has_no_interference(self, hops):
        result = _plain(_chain(hops, seed=hops), hops, packets=5, seed=hops).run()
        assert result.scheme == "plain"
        assert result.packets_delivered == 5
        assert result.overlap_fractions == []
        assert result.packet_bers == []

    def test_beats_hop_by_hop_routing_on_long_chains(self):
        """Spatial reuse pipelines ~3 slots/packet vs K slots/packet."""
        hops, packets = 6, 8
        topology = _chain(hops, seed=21)
        pipelined = _plain(topology, hops, packets, seed=21).run()
        naive = TraditionalRouting(
            topology, [Flow(1, hops + 1, packets)], payload_bits=PAYLOAD,
            rng=np.random.default_rng(22),
        ).run()
        assert pipelined.throughput > 1.3 * naive.throughput

    def test_scheme_override(self):
        result = ChainPipelineProtocol(
            _chain(3, seed=30), path=(1, 2, 3, 4), coding="plain", packets=2,
            payload_bits=PAYLOAD, redundancy_overhead=0.0,
            rng=np.random.default_rng(30), scheme="cope",
        ).run()
        assert result.scheme == "cope"


class TestValidation:
    def test_requires_plan_or_path(self):
        with pytest.raises(ConfigurationError):
            ChainPipelineProtocol(_chain(3), packets=2, payload_bits=PAYLOAD)

    def test_rejects_non_positive_packets(self):
        with pytest.raises(ConfigurationError):
            ChainPipelineProtocol(
                _chain(3), path=(1, 2, 3, 4), packets=0, payload_bits=PAYLOAD
            )

    def test_accepts_precomputed_plan(self):
        topology = _chain(4, seed=31)
        plan = plan_chain_pipeline(topology, (1, 2, 3, 4, 5), coding="anc")
        result = ChainPipelineProtocol(
            topology, plan=plan, packets=3, payload_bits=PAYLOAD,
            overlap_model=_overlap(31), rng=np.random.default_rng(31),
        ).run()
        assert result.packets_offered == 3
