"""Tests for the COPE digital network coding baseline."""

import numpy as np
import pytest

from repro.network.flows import Flow
from repro.network.topologies import (
    ALICE,
    BOB,
    N1,
    N2,
    N3,
    N4,
    N5,
    RELAY,
    ChannelConditions,
    alice_bob_topology,
    x_topology,
)
from repro.protocols.cope import CopeRelayProtocol

PAYLOAD = 256


def _conditions():
    return ChannelConditions(snr_db=30.0)


class TestCopeAliceBob:
    def test_three_slots_per_exchange(self):
        """Fig. 1c: COPE delivers two packets in 3 slots."""
        topo = alice_bob_topology(_conditions(), np.random.default_rng(0))
        result = CopeRelayProtocol(
            topo, RELAY, Flow(ALICE, BOB, 4), Flow(BOB, ALICE, 4),
            payload_bits=PAYLOAD, rng=np.random.default_rng(1),
        ).run()
        assert result.slots_used == 3 * 4
        assert result.packets_offered == 8
        assert result.packets_delivered == 8

    def test_throughput_beats_traditional(self):
        from repro.protocols.traditional import TraditionalRouting

        topo = alice_bob_topology(_conditions(), np.random.default_rng(2))
        flows = [Flow(ALICE, BOB, 4), Flow(BOB, ALICE, 4)]
        traditional = TraditionalRouting(
            topo, flows, payload_bits=PAYLOAD, rng=np.random.default_rng(3)
        ).run()
        cope = CopeRelayProtocol(
            topo, RELAY, flows[0], flows[1], payload_bits=PAYLOAD,
            rng=np.random.default_rng(4),
        ).run()
        gain = cope.throughput / traditional.throughput
        # The theoretical COPE gain for this topology is 4/3.
        assert gain == pytest.approx(4 / 3, rel=0.05)

    def test_mismatched_flow_sizes_rejected(self):
        topo = alice_bob_topology(_conditions(), np.random.default_rng(5))
        with pytest.raises(ValueError):
            CopeRelayProtocol(
                topo, RELAY, Flow(ALICE, BOB, 3), Flow(BOB, ALICE, 4), payload_bits=PAYLOAD
            )


class TestCopeXTopology:
    def test_overhearing_delivery(self):
        topo = x_topology(_conditions(), np.random.default_rng(6))
        result = CopeRelayProtocol(
            topo, N5, Flow(N1, N4, 4), Flow(N3, N2, 4),
            payload_bits=PAYLOAD, overhearing=True,
            rng=np.random.default_rng(7), topology_name="x",
        ).run()
        assert result.packets_offered == 8
        # Overhearing on clean uplink slots succeeds essentially always.
        assert result.packets_delivered >= 7
        assert result.slots_used == 3 * 4
