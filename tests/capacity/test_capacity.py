"""Tests for the Theorem 8.1 capacity bounds and the Fig. 7 sweep."""

import numpy as np
import pytest

from repro.capacity.bounds import (
    anc_capacity_lower_bound,
    capacity_gain,
    crossover_snr_db,
    traditional_capacity_upper_bound,
)
from repro.capacity.relay import amplification_factor, anc_receiver_snr, relay_received_snr
from repro.capacity.sweep import capacity_sweep
from repro.exceptions import CapacityError
from repro.utils.db import db_to_power_ratio


class TestBounds:
    def test_traditional_formula(self):
        """C_traditional = alpha (log(1 + 2 SNR) + log(1 + SNR))."""
        snr_db = 20.0
        snr = db_to_power_ratio(snr_db)
        expected = 0.25 * (np.log2(1 + 2 * snr) + np.log2(1 + snr))
        assert traditional_capacity_upper_bound(snr_db) == pytest.approx(expected)

    def test_anc_formula(self):
        """C_anc = 4 alpha log(1 + SNR^2 / (3 SNR + 1))."""
        snr_db = 20.0
        snr = db_to_power_ratio(snr_db)
        expected = np.log2(1 + snr ** 2 / (3 * snr + 1))
        assert anc_capacity_lower_bound(snr_db) == pytest.approx(expected)

    def test_zero_snr_zero_capacity(self):
        assert anc_capacity_lower_bound(-200.0) == pytest.approx(0.0, abs=1e-6)

    def test_gain_approaches_two_at_high_snr(self):
        """Theorem 8.1: the gain tends to 2 as SNR grows."""
        assert capacity_gain(60.0) > 1.75
        assert capacity_gain(100.0) > 1.85
        assert capacity_gain(100.0) < 2.0

    def test_anc_worse_at_low_snr(self):
        """Fig. 7: below ~8 dB amplify-and-forward loses to routing."""
        assert capacity_gain(3.0) < 1.0
        assert capacity_gain(6.0) < 1.0

    def test_crossover_around_8db(self):
        crossover = crossover_snr_db()
        assert 6.0 <= crossover <= 11.0

    def test_monotone_in_snr(self):
        grid = np.arange(0.0, 50.0, 1.0)
        trad = traditional_capacity_upper_bound(grid)
        anc = anc_capacity_lower_bound(grid)
        assert np.all(np.diff(trad) > 0)
        assert np.all(np.diff(anc) > 0)

    def test_array_and_scalar_consistency(self):
        grid = np.array([10.0, 20.0])
        values = traditional_capacity_upper_bound(grid)
        assert values[0] == pytest.approx(traditional_capacity_upper_bound(10.0))

    def test_invalid_alpha(self):
        with pytest.raises(CapacityError):
            traditional_capacity_upper_bound(10.0, alpha=0.0)


class TestRelayDerivation:
    def test_amplification_factor_normalises_power(self):
        """A = sqrt(P / (P h_AR^2 + P h_BR^2 + N))."""
        assert amplification_factor(10.0, 1.0, 1.0, 1.0) == pytest.approx(
            np.sqrt(10.0 / 21.0)
        )

    def test_relay_received_snr(self):
        assert relay_received_snr(100.0, gain=0.5, noise_power=1.0) == pytest.approx(25.0)

    def test_receiver_snr_matches_theorem_expression(self):
        """Eq. 25 reduces to SNR^2 / (3 SNR + 1) for unit gains and noise."""
        for snr in (1.0, 10.0, 100.0, 1000.0):
            derived = anc_receiver_snr(snr)
            expected = snr ** 2 / (3 * snr + 1)
            assert derived == pytest.approx(expected, rel=1e-9)

    def test_capacity_bound_consistent_with_link_level_derivation(self):
        snr_db = 25.0
        snr = db_to_power_ratio(snr_db)
        link_level = np.log2(1 + anc_receiver_snr(snr))
        assert anc_capacity_lower_bound(snr_db) == pytest.approx(link_level)

    def test_invalid_powers(self):
        with pytest.raises(CapacityError):
            amplification_factor(0.0)
        with pytest.raises(CapacityError):
            anc_receiver_snr(-1.0)


class TestCapacitySweep:
    def test_default_range(self):
        curve = capacity_sweep()
        assert curve.snr_db[0] == 0.0
        assert curve.snr_db[-1] == 55.0
        assert len(curve.snr_db) == len(curve.anc) == len(curve.traditional)

    def test_asymptotic_gain(self):
        curve = capacity_sweep()
        assert curve.asymptotic_gain > 1.7

    def test_crossover_in_curve(self):
        curve = capacity_sweep()
        assert 6.0 <= curve.crossover_db <= 11.0

    def test_gain_interpolation(self):
        curve = capacity_sweep()
        assert curve.gain_at(30.0) == pytest.approx(capacity_gain(30.0), abs=0.02)

    def test_rows(self):
        curve = capacity_sweep([0.0, 10.0, 20.0])
        rows = curve.as_rows()
        assert len(rows) == 3
        assert rows[1][0] == 10.0

    def test_grid_validation(self):
        with pytest.raises(CapacityError):
            capacity_sweep([])
        with pytest.raises(CapacityError):
            capacity_sweep([10.0, 5.0])
