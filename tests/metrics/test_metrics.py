"""Tests for the evaluation metrics (BER, throughput, gains, reports)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.metrics.ber import ber_cdf, mean_ber, packet_ber, payload_ber_samples
from repro.metrics.gain import GainSample, gain_cdf, mean_gain, pair_runs
from repro.metrics.report import ComparisonReport, ExperimentReport, format_cdf_table
from repro.metrics.throughput import (
    aggregate_delivery_ratio,
    mean_throughput,
    network_throughput,
    throughput_gain,
)
from repro.protocols.base import RunResult
from repro.utils.cdf import EmpiricalCDF


def _run(scheme="anc", delivered=10, air=1000, bers=(), overhead=0.0, offered=None):
    return RunResult(
        scheme=scheme,
        topology="alice_bob",
        payload_bits=100,
        packets_offered=offered if offered is not None else delivered,
        packets_delivered=delivered,
        air_time_samples=air,
        packet_bers=list(bers),
        redundancy_overhead=overhead,
    )


class TestBerMetrics:
    def test_packet_ber(self):
        assert packet_ber([1, 0, 1, 0], [1, 1, 1, 0]) == pytest.approx(0.25)

    def test_packet_ber_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            packet_ber([1, 0], [1])

    def test_payload_ber_samples_filters_losses(self):
        runs = [_run(bers=[0.01, 0.5]), _run(bers=[0.02])]
        assert payload_ber_samples(runs, include_losses=True) == [0.01, 0.5, 0.02]
        assert payload_ber_samples(runs, include_losses=False) == [0.01, 0.02]

    def test_ber_cdf(self):
        runs = [_run(bers=[0.0, 0.02, 0.04])]
        cdf = ber_cdf(runs)
        assert cdf.evaluate(0.02) == pytest.approx(2 / 3)

    def test_ber_cdf_requires_samples(self):
        with pytest.raises(ConfigurationError):
            ber_cdf([_run(bers=[])])

    def test_mean_ber(self):
        assert mean_ber([_run(bers=[0.01, 0.03])]) == pytest.approx(0.02)
        assert mean_ber([_run(bers=[])]) == 0.0


class TestThroughputMetrics:
    def test_network_throughput(self):
        assert network_throughput(_run(delivered=5, air=500)) == pytest.approx(1.0)

    def test_mean_throughput(self):
        runs = [_run(delivered=5, air=500), _run(delivered=10, air=500)]
        assert mean_throughput(runs) == pytest.approx(1.5)
        with pytest.raises(ConfigurationError):
            mean_throughput([])

    def test_throughput_gain(self):
        anc = _run(delivered=10, air=500)
        base = _run(scheme="traditional", delivered=10, air=1000)
        assert throughput_gain(anc, base) == pytest.approx(2.0)

    def test_aggregate_delivery_ratio(self):
        runs = [_run(delivered=8, offered=10), _run(delivered=10, offered=10)]
        assert aggregate_delivery_ratio(runs) == pytest.approx(0.9)
        assert aggregate_delivery_ratio([]) == 0.0


class TestGainMetrics:
    def test_pair_runs(self):
        anc_runs = [_run(delivered=10, air=500), _run(delivered=10, air=600)]
        base_runs = [
            _run(scheme="traditional", delivered=10, air=1000),
            _run(scheme="traditional", delivered=10, air=1000),
        ]
        samples = pair_runs(anc_runs, base_runs)
        assert len(samples) == 2
        assert samples[0].gain == pytest.approx(2.0)
        assert samples[1].baseline_scheme == "traditional"

    def test_pair_runs_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            pair_runs([_run()], [])

    def test_gain_cdf_and_mean(self):
        samples = [
            GainSample(0, 1.5, 1.0, 1.0, "traditional"),
            GainSample(1, 1.7, 1.0, 1.0, "traditional"),
        ]
        assert mean_gain(samples) == pytest.approx(1.6)
        assert gain_cdf(samples).evaluate(1.5) == pytest.approx(0.5)

    def test_gain_cdf_empty(self):
        with pytest.raises(ConfigurationError):
            gain_cdf([])


class TestReports:
    def test_format_cdf_table(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0, 3.0])
        text = format_cdf_table(cdf, [1.0, 2.0, 3.0], label="gain")
        assert "gain" in text
        assert "1.000" in text

    def test_comparison_report(self):
        samples = [
            GainSample(0, 1.6, 1.0, 1.0, "traditional"),
            GainSample(1, 1.8, 1.0, 1.0, "traditional"),
        ]
        report = ComparisonReport(baseline_scheme="traditional", samples=samples)
        assert report.mean_gain == pytest.approx(1.7)
        assert report.mean_gain_percent == pytest.approx(70.0)
        assert "traditional" in report.render()

    def test_experiment_report_render_and_summary(self):
        samples = [GainSample(0, 1.5, 1.0, 1.0, "cope")]
        report = ExperimentReport(
            name="fig09",
            comparisons={"cope": ComparisonReport("cope", samples)},
            ber_cdf=EmpiricalCDF.from_samples([0.01, 0.02]),
            extras={"mean_overlap": 0.8},
        )
        text = report.render()
        assert "fig09" in text
        assert "mean_overlap" in text
        row = report.summary_row()
        assert row["gain_over_cope"] == pytest.approx(1.5)
        assert row["mean_ber"] == pytest.approx(0.015)
