"""The documentation lint must stay clean (and keep working).

Runs ``tools/docs_lint.py`` against the real repo — broken README/docs
links or missing public docstrings in ``repro.experiments`` /
``repro.network`` fail the suite, not just CI — plus unit-checks of the
two lint rules against synthetic trees.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
LINT = REPO_ROOT / "tools" / "docs_lint.py"


def test_repo_docs_are_clean():
    result = subprocess.run(
        [sys.executable, str(LINT), str(REPO_ROOT)],
        capture_output=True,
        text=True,
        check=False,
    )
    assert result.returncode == 0, f"docs lint found problems:\n{result.stdout}"


def test_required_docs_exist():
    assert (REPO_ROOT / "README.md").is_file()
    assert (REPO_ROOT / "docs" / "ARCHITECTURE.md").is_file()
    readme = (REPO_ROOT / "README.md").read_text()
    # The quickstart, test command and figure map must stay documented.
    assert "examples/quickstart.py" in readme
    assert "python -m pytest -x -q" in readme
    assert "fig09_alice_bob.txt" in readme


def test_link_checker_flags_broken_link(tmp_path):
    sys.path.insert(0, str(LINT.parent))
    try:
        import docs_lint
    finally:
        sys.path.pop(0)

    (tmp_path / "README.md").write_text("[missing](does/not/exist.md)\n")
    findings = docs_lint.check_links(tmp_path)
    assert len(findings) == 1 and "does/not/exist.md" in findings[0]

    (tmp_path / "README.md").write_text("[ok](sub.md) [web](https://x.y)\n")
    (tmp_path / "sub.md").write_text("hi\n")
    assert docs_lint.check_links(tmp_path) == []


def test_docstring_checker_flags_missing(tmp_path):
    sys.path.insert(0, str(LINT.parent))
    try:
        import docs_lint
    finally:
        sys.path.pop(0)

    package = tmp_path / "src" / "repro" / "experiments"
    package.mkdir(parents=True)
    (tmp_path / "src" / "repro" / "network").mkdir()
    (package / "bad.py").write_text('"""Mod."""\ndef f():\n    return 1\n')
    findings = docs_lint.check_docstrings(tmp_path)
    assert len(findings) == 1 and "f:2" in findings[0]
