"""Tests for the PN XOR scrambler (§6.2)."""

import numpy as np

from repro.scrambler.whitening import Scrambler
from repro.utils.bits import random_bits


class TestScrambler:
    def test_involution(self):
        """Scrambling twice with the same seed restores the original bits."""
        scrambler = Scrambler(seed=0x1357)
        bits = random_bits(500, np.random.default_rng(0))
        assert np.array_equal(scrambler.descramble(scrambler.scramble(bits)), bits)

    def test_different_seeds_do_not_undo(self):
        bits = random_bits(128, np.random.default_rng(1))
        scrambled = Scrambler(seed=0x1111).scramble(bits)
        assert not np.array_equal(Scrambler(seed=0x2222).descramble(scrambled), bits)

    def test_whitens_constant_input(self):
        """An all-zero payload becomes (roughly) balanced after scrambling."""
        scrambler = Scrambler()
        out = scrambler.scramble(np.zeros(4096, dtype=np.uint8))
        ones = int(out.sum())
        assert 0.4 * 4096 < ones < 0.6 * 4096

    def test_stateless_across_calls(self):
        scrambler = Scrambler()
        bits = random_bits(64, np.random.default_rng(2))
        assert np.array_equal(scrambler.scramble(bits), scrambler.scramble(bits))

    def test_empty_input(self):
        assert Scrambler().scramble(np.array([], dtype=np.uint8)).size == 0

    def test_output_is_binary(self):
        out = Scrambler().scramble(random_bits(200, np.random.default_rng(3)))
        assert set(np.unique(out)) <= {0, 1}

    def test_all_nodes_share_default_seed(self):
        bits = random_bits(64, np.random.default_rng(4))
        assert np.array_equal(Scrambler().scramble(bits), Scrambler().scramble(bits))
