"""Tests for the framer and deframer (Fig. 6 layout)."""

import numpy as np
import pytest

from repro.exceptions import FramingError
from repro.framing.frame import FrameLayout
from repro.framing.header import Header
from repro.framing.packet import Packet
from repro.framing.pilot import PilotSequence


@pytest.fixture
def packet(rng):
    return Packet.random(source=3, destination=4, sequence=42, payload_bits=256, rng=rng)


class TestFrameLayout:
    def test_total_length(self):
        layout = FrameLayout(pilot_length=64, header_length=48, payload_length=256)
        assert layout.total_length == 64 + 48 + 272 + 48 + 64

    def test_field_offsets_are_contiguous(self):
        layout = FrameLayout(pilot_length=64, header_length=48, payload_length=128)
        assert layout.header_start == 64
        assert layout.payload_start == 112
        assert layout.trailing_header_start == 112 + 144
        assert layout.trailing_pilot_start == layout.trailing_header_start + 48
        assert layout.trailing_pilot_start + 64 == layout.total_length


class TestFramer:
    def test_frame_length_matches_layout(self, framer, packet):
        frame = framer.build(packet)
        assert frame.length == framer.frame_length(packet.payload_length)

    def test_frame_starts_with_pilot(self, framer, packet):
        frame = framer.build(packet)
        assert np.array_equal(frame.bits[:64], PilotSequence().bits)

    def test_frame_ends_with_mirrored_pilot(self, framer, packet):
        frame = framer.build(packet)
        assert np.array_equal(frame.bits[-64:], PilotSequence().bits[::-1])

    def test_header_follows_pilot(self, framer, packet):
        frame = framer.build(packet)
        header_bits = frame.bits[64 : 64 + Header.ENCODED_LENGTH]
        header = Header.from_bits(header_bits)
        assert header.identity == packet.identity

    def test_trailing_header_is_reversed_copy(self, framer, packet):
        frame = framer.build(packet)
        layout = frame.layout
        leading = frame.bits[layout.header_start : layout.payload_start]
        trailing = frame.bits[layout.trailing_header_start : layout.trailing_pilot_start]
        assert np.array_equal(trailing, leading[::-1])

    def test_payload_is_scrambled(self, framer, packet):
        frame = framer.build(packet)
        layout = frame.layout
        payload_region = frame.bits[layout.payload_start : layout.trailing_header_start]
        assert not np.array_equal(payload_region[: packet.payload_length], packet.payload)

    def test_negative_payload_length_rejected(self, framer):
        with pytest.raises(FramingError):
            framer.layout_for(-1)

    def test_frame_header_property(self, framer, packet):
        assert framer.build(packet).header.identity == packet.identity


class TestDeframer:
    def test_forward_roundtrip(self, framer, deframer, packet):
        result = deframer.parse(framer.build(packet).bits)
        assert result.delivered
        assert result.packet.identity == packet.identity
        assert np.array_equal(result.packet.payload, packet.payload)

    def test_backward_roundtrip(self, framer, deframer, packet):
        frame = framer.build(packet)
        result = deframer.parse_backward(frame.bits[::-1])
        assert result.delivered
        assert np.array_equal(result.packet.payload, packet.payload)

    def test_header_parse_from_both_ends(self, framer, deframer, packet):
        frame = framer.build(packet)
        assert deframer.parse_header(frame.bits).identity == packet.identity
        assert deframer.parse_header(frame.bits, from_end=True).identity == packet.identity

    def test_corrupted_payload_fails_crc_but_keeps_header(self, framer, deframer, packet):
        frame = framer.build(packet)
        bits = frame.bits.copy()
        bits[frame.layout.payload_start + 10] ^= 1
        result = deframer.parse(bits)
        assert result.packet is not None
        assert not result.payload_crc_ok
        assert not result.delivered

    def test_corrupted_header_yields_no_packet(self, framer, deframer, packet):
        frame = framer.build(packet)
        bits = frame.bits.copy()
        bits[frame.layout.header_start + 2] ^= 1
        result = deframer.parse(bits)
        assert result.packet is None

    def test_too_short_stream(self, deframer):
        result = deframer.parse(np.zeros(50, dtype=np.uint8))
        assert result.packet is None
        assert not result.delivered

    def test_extract_payload_region(self, framer, deframer, packet):
        frame = framer.build(packet)
        region, layout = deframer.extract_payload_region(frame.bits)
        assert region.size == packet.payload_length + 16
        assert layout.payload_length == packet.payload_length

    def test_zero_length_payload_roundtrip(self, framer, deframer):
        packet = Packet(1, 2, 0, np.array([], dtype=np.uint8))
        result = deframer.parse(framer.build(packet).bits)
        assert result.delivered
        assert result.packet.payload_length == 0
