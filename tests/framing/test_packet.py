"""Tests for the Packet representation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.framing.packet import Packet


class TestPacket:
    def test_construction(self):
        packet = Packet(1, 2, 3, [1, 0, 1])
        assert packet.identity == (1, 2, 3)
        assert packet.payload_length == 3

    def test_payload_immutable(self):
        packet = Packet(1, 2, 3, [1, 0])
        with pytest.raises(ValueError):
            packet.payload[0] = 0

    def test_negative_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            Packet(-1, 2, 3, [1])

    def test_random_payload_length(self):
        packet = Packet.random(1, 2, 0, 256, np.random.default_rng(0))
        assert packet.payload_length == 256

    def test_random_is_deterministic_with_seed(self):
        a = Packet.random(1, 2, 0, 64, np.random.default_rng(9))
        b = Packet.random(1, 2, 0, 64, np.random.default_rng(9))
        assert a.payload_equals(b)

    def test_hash_uses_identity(self):
        a = Packet(1, 2, 3, [1, 1])
        b = Packet(1, 2, 3, [0, 0])
        assert hash(a) == hash(b)

    def test_payload_equals(self):
        a = Packet(1, 2, 3, [1, 0, 1])
        b = Packet(9, 9, 9, [1, 0, 1])
        assert a.payload_equals(b)
        assert not a.payload_equals(Packet(1, 2, 3, [1, 1, 1]))

    def test_xor_payload(self):
        a = Packet(1, 2, 0, [1, 1, 0, 0])
        b = Packet(2, 1, 0, [1, 0, 1, 0])
        assert np.array_equal(a.xor_payload(b), [0, 1, 1, 0])

    def test_xor_self_is_zero(self):
        a = Packet(1, 2, 0, [1, 0, 1])
        assert not np.any(a.xor_payload(a))

    def test_xor_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            Packet(1, 2, 0, [1, 0]).xor_payload(Packet(2, 1, 0, [1]))

    def test_non_binary_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            Packet(1, 2, 3, [0, 2])
