"""Tests for the sent-packet buffer."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.framing.buffer import SentPacketBuffer
from repro.framing.frame import Framer
from repro.framing.header import Header
from repro.framing.packet import Packet


def _frame(seq, framer=None, rng_seed=0):
    framer = framer or Framer()
    packet = Packet.random(1, 2, seq, 64, np.random.default_rng(rng_seed + seq))
    return framer.build(packet)


class TestSentPacketBuffer:
    def test_store_and_lookup(self):
        buffer = SentPacketBuffer()
        frame = _frame(5)
        buffer.store(frame)
        assert buffer.lookup(1, 2, 5) is frame

    def test_lookup_missing_returns_none(self):
        assert SentPacketBuffer().lookup(1, 2, 3) is None

    def test_lookup_by_header(self):
        buffer = SentPacketBuffer()
        frame = _frame(9)
        buffer.store(frame)
        header = Header(source=1, destination=2, sequence=9)
        assert buffer.lookup_header(header) is frame
        assert buffer.contains_header(header)

    def test_capacity_eviction_is_fifo(self):
        buffer = SentPacketBuffer(capacity=3)
        frames = [_frame(i) for i in range(5)]
        buffer.store_all(frames)
        assert len(buffer) == 3
        assert buffer.lookup(1, 2, 0) is None
        assert buffer.lookup(1, 2, 1) is None
        assert buffer.lookup(1, 2, 4) is frames[4]

    def test_refresh_keeps_entry_resident(self):
        buffer = SentPacketBuffer(capacity=2)
        first, second, third = _frame(0), _frame(1), _frame(2)
        buffer.store(first)
        buffer.store(second)
        buffer.store(first)  # refresh recency
        buffer.store(third)  # evicts the stalest entry (second)
        assert buffer.lookup(1, 2, 0) is not None
        assert buffer.lookup(1, 2, 1) is None

    def test_discard(self):
        buffer = SentPacketBuffer()
        buffer.store(_frame(3))
        assert buffer.discard(1, 2, 3)
        assert not buffer.discard(1, 2, 3)

    def test_clear(self):
        buffer = SentPacketBuffer()
        buffer.store_all([_frame(0), _frame(1)])
        buffer.clear()
        assert len(buffer) == 0

    def test_identities_order(self):
        buffer = SentPacketBuffer()
        buffer.store_all([_frame(2), _frame(0), _frame(1)])
        assert buffer.identities() == ((1, 2, 2), (1, 2, 0), (1, 2, 1))

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            SentPacketBuffer(capacity=0)
