"""Tests for the frame header."""

import numpy as np
import pytest

from repro.exceptions import HeaderError
from repro.framing.header import Header


class TestHeader:
    def test_roundtrip(self):
        header = Header(source=5, destination=9, sequence=1234)
        assert Header.from_bits(header.to_bits()) == header

    def test_encoded_length(self):
        assert Header(1, 2, 3).to_bits().size == Header.ENCODED_LENGTH

    def test_crc_detects_corruption(self):
        bits = Header(1, 2, 3).to_bits()
        bits[5] ^= 1
        with pytest.raises(HeaderError):
            Header.from_bits(bits)

    def test_try_from_bits_returns_none_on_corruption(self):
        bits = Header(1, 2, 3).to_bits()
        bits[0] ^= 1
        assert Header.try_from_bits(bits) is None

    def test_try_from_bits_ok(self):
        header = Header(3, 4, 5)
        assert Header.try_from_bits(header.to_bits()) == header

    def test_wrong_length_rejected(self):
        with pytest.raises(HeaderError):
            Header.from_bits(np.zeros(10, dtype=np.uint8))

    def test_field_ranges_validated(self):
        with pytest.raises(HeaderError):
            Header(source=256, destination=0, sequence=0)
        with pytest.raises(HeaderError):
            Header(source=0, destination=256, sequence=0)
        with pytest.raises(HeaderError):
            Header(source=0, destination=0, sequence=1 << 16)
        with pytest.raises(HeaderError):
            Header(source=-1, destination=0, sequence=0)

    def test_boundary_values(self):
        header = Header(source=255, destination=255, sequence=(1 << 16) - 1)
        assert Header.from_bits(header.to_bits()) == header

    def test_identity(self):
        assert Header(1, 2, 3).identity == (1, 2, 3)

    def test_distinct_headers_have_distinct_bits(self):
        a = Header(1, 2, 3).to_bits()
        b = Header(1, 2, 4).to_bits()
        assert not np.array_equal(a, b)
