"""Tests for pilot sequences and pilot search."""

import numpy as np

from repro.framing.pilot import PilotSequence, find_all_pilots, find_pilot
from repro.utils.bits import random_bits


class TestPilotSequence:
    def test_default_length(self):
        assert PilotSequence().bits.size == 64

    def test_deterministic(self):
        assert np.array_equal(PilotSequence().bits, PilotSequence().bits)

    def test_mirrored(self):
        pilot = PilotSequence()
        assert np.array_equal(pilot.mirrored_bits, pilot.bits[::-1])

    def test_matches_exact(self):
        pilot = PilotSequence()
        assert pilot.matches(pilot.bits)

    def test_matches_with_tolerance(self):
        pilot = PilotSequence()
        noisy = pilot.bits.copy()
        noisy[0] ^= 1
        assert not pilot.matches(noisy, max_errors=0)
        assert pilot.matches(noisy, max_errors=1)

    def test_matches_wrong_length(self):
        assert not PilotSequence().matches(np.zeros(10, dtype=np.uint8))


class TestFindPilot:
    def test_finds_at_offset(self):
        pilot = PilotSequence()
        rng = np.random.default_rng(0)
        stream = np.concatenate([random_bits(37, rng), pilot.bits, random_bits(50, rng)])
        assert find_pilot(stream, pilot) == 37

    def test_finds_at_start(self):
        pilot = PilotSequence()
        stream = np.concatenate([pilot.bits, random_bits(10, np.random.default_rng(1))])
        assert find_pilot(stream, pilot) == 0

    def test_tolerates_bit_errors(self):
        pilot = PilotSequence()
        corrupted = pilot.bits.copy()
        corrupted[[3, 17, 40]] ^= 1
        stream = np.concatenate([random_bits(20, np.random.default_rng(2)), corrupted])
        assert find_pilot(stream, pilot, max_errors=4) == 20

    def test_returns_none_when_absent(self):
        pilot = PilotSequence()
        stream = random_bits(200, np.random.default_rng(3))
        assert find_pilot(stream, pilot, max_errors=2) is None

    def test_returns_none_for_short_stream(self):
        assert find_pilot(random_bits(10, np.random.default_rng(4)), PilotSequence()) is None

    def test_search_limit(self):
        pilot = PilotSequence()
        stream = np.concatenate([random_bits(100, np.random.default_rng(5)), pilot.bits])
        assert find_pilot(stream, pilot, search_limit=50) is None
        assert find_pilot(stream, pilot, search_limit=150) == 100


class TestFindAllPilots:
    def test_finds_two_pilots(self):
        pilot = PilotSequence()
        rng = np.random.default_rng(6)
        stream = np.concatenate(
            [pilot.bits, random_bits(40, rng), pilot.bits, random_bits(10, rng)]
        )
        found = find_all_pilots(stream, pilot)
        assert set(found) == {0, 104}

    def test_best_match_first(self):
        pilot = PilotSequence()
        corrupted = pilot.bits.copy()
        corrupted[0] ^= 1
        stream = np.concatenate([corrupted, np.zeros(16, dtype=np.uint8), pilot.bits])
        found = find_all_pilots(stream, pilot, max_errors=2)
        assert found[0] == 80  # the exact match outranks the 1-error match

    def test_overlapping_matches_suppressed(self):
        pilot = PilotSequence()
        stream = np.concatenate([pilot.bits, pilot.bits])
        found = find_all_pilots(stream, pilot, max_errors=0)
        assert found == [0, 64]

    def test_empty_when_absent(self):
        assert find_all_pilots(random_bits(128, np.random.default_rng(7)), PilotSequence(), max_errors=1) == []
