"""Tests for sliding-window statistics."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.windows import block_mean, moving_average, moving_energy, moving_variance


class TestMovingAverage:
    def test_constant_input(self):
        out = moving_average(np.full(10, 3.0), window=4)
        assert out == pytest.approx(np.full(10, 3.0))

    def test_output_length_matches_input(self):
        assert moving_average(np.arange(17, dtype=float), 5).size == 17

    def test_ramp_up_uses_partial_windows(self):
        out = moving_average(np.array([2.0, 4.0, 6.0]), window=2)
        assert out == pytest.approx([2.0, 3.0, 5.0])

    def test_window_larger_than_input(self):
        out = moving_average(np.array([1.0, 2.0, 3.0]), window=10)
        assert out[-1] == pytest.approx(2.0)

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            moving_average(np.ones(4), 0)

    def test_empty_input_rejected(self):
        with pytest.raises(ConfigurationError):
            moving_average(np.array([]), 3)


class TestMovingEnergy:
    def test_constant_envelope_signal(self):
        samples = 2.0 * np.exp(1j * np.linspace(0, 10, 50))
        out = moving_energy(samples, window=8)
        assert out == pytest.approx(np.full(50, 4.0))

    def test_energy_step_detected(self):
        samples = np.concatenate([np.zeros(20), np.ones(20)]).astype(complex)
        out = moving_energy(samples, window=4)
        assert out[10] == pytest.approx(0.0)
        assert out[-1] == pytest.approx(1.0)


class TestMovingVariance:
    def test_constant_input_zero_variance(self):
        out = moving_variance(np.full(30, 5.0), window=6)
        assert np.all(out <= 1e-12)

    def test_alternating_input_positive_variance(self):
        values = np.tile([0.0, 2.0], 20)
        out = moving_variance(values, window=8)
        assert out[-1] == pytest.approx(1.0)

    def test_never_negative(self):
        rng = np.random.default_rng(3)
        out = moving_variance(rng.normal(size=200), window=16)
        assert np.all(out >= 0)


class TestBlockMean:
    def test_exact_blocks(self):
        out = block_mean(np.array([1.0, 3.0, 5.0, 7.0]), block=2)
        assert out == pytest.approx([2.0, 6.0])

    def test_partial_trailing_block(self):
        out = block_mean(np.array([1.0, 1.0, 4.0]), block=2)
        assert out == pytest.approx([1.0, 4.0])
