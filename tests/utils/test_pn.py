"""Tests for the LFSR pseudo-noise generator."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.pn import DEFAULT_REGISTER_BITS, PNSequence, pn_bits


class TestPNSequence:
    def test_same_seed_same_bits(self):
        a = PNSequence(seed=0xBEEF).bits(256)
        b = PNSequence(seed=0xBEEF).bits(256)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = PNSequence(seed=0xBEEF).bits(256)
        b = PNSequence(seed=0xCAFE).bits(256)
        assert not np.array_equal(a, b)

    def test_reset_restores_stream(self):
        gen = PNSequence(seed=0x1234)
        first = gen.bits(100)
        gen.reset()
        second = gen.bits(100)
        assert np.array_equal(first, second)

    def test_zero_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            PNSequence(seed=0)

    def test_seed_reduced_modulo_register_rejected_if_zero(self):
        with pytest.raises(ConfigurationError):
            PNSequence(seed=1 << DEFAULT_REGISTER_BITS)

    def test_bits_are_binary(self):
        bits = PNSequence(seed=0x7777).bits(1000)
        assert set(np.unique(bits)) <= {0, 1}

    def test_roughly_balanced(self):
        bits = PNSequence(seed=0x2468).bits(4096)
        ones = int(bits.sum())
        assert 0.45 * 4096 < ones < 0.55 * 4096

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            PNSequence(seed=1).bits(-1)

    def test_maximal_length_period(self):
        # A maximal-length 16-bit LFSR revisits its initial state only
        # after 2^16 - 1 steps.
        gen = PNSequence(seed=0x0001)
        initial = gen.state
        period = 0
        while True:
            gen.next_bit()
            period += 1
            if gen.state == initial:
                break
            assert period <= (1 << 16)
        assert period == (1 << 16) - 1

    def test_invalid_taps_rejected(self):
        with pytest.raises(ConfigurationError):
            PNSequence(seed=1, taps=())
        with pytest.raises(ConfigurationError):
            PNSequence(seed=1, taps=(40,), register_bits=16)


class TestPnBits:
    def test_matches_class(self):
        assert np.array_equal(pn_bits(64, seed=0xABCD), PNSequence(seed=0xABCD).bits(64))
