"""Tests for bit-array helpers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.bits import (
    as_bit_array,
    bit_error_rate,
    bits_from_bytes,
    bits_from_int,
    bits_to_bytes,
    bits_to_int,
    bits_to_string,
    hamming_distance,
    random_bits,
    string_to_bits,
)


class TestConversion:
    def test_string_roundtrip(self):
        assert bits_to_string(string_to_bits("101101")) == "101101"

    def test_string_rejects_non_binary(self):
        with pytest.raises(ConfigurationError):
            string_to_bits("10201")

    def test_int_roundtrip(self):
        assert bits_to_int(bits_from_int(173, 8)) == 173

    def test_int_width_is_respected(self):
        assert bits_from_int(5, 8).size == 8

    def test_int_msb_first(self):
        assert bits_to_string(bits_from_int(1, 4)) == "0001"
        assert bits_to_string(bits_from_int(8, 4)) == "1000"

    def test_int_too_large_raises(self):
        with pytest.raises(ConfigurationError):
            bits_from_int(16, 4)

    def test_negative_int_raises(self):
        with pytest.raises(ConfigurationError):
            bits_from_int(-1, 4)

    def test_bytes_roundtrip(self):
        data = b"\x00\xff\x5a"
        assert bits_to_bytes(bits_from_bytes(data)) == data

    def test_bytes_requires_multiple_of_eight(self):
        with pytest.raises(ConfigurationError):
            bits_to_bytes([1, 0, 1])

    def test_empty_bytes(self):
        assert bits_from_bytes(b"").size == 0
        assert bits_to_bytes([]) == b""

    def test_as_bit_array_rejects_twos(self):
        with pytest.raises(ConfigurationError):
            as_bit_array([0, 1, 2])

    def test_as_bit_array_accepts_string(self):
        assert np.array_equal(as_bit_array("0110"), [0, 1, 1, 0])


class TestRandomBits:
    def test_length(self):
        assert random_bits(100, np.random.default_rng(0)).size == 100

    def test_deterministic_with_seed(self):
        a = random_bits(64, np.random.default_rng(5))
        b = random_bits(64, np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_negative_length_raises(self):
        with pytest.raises(ConfigurationError):
            random_bits(-1)

    def test_values_are_binary(self):
        bits = random_bits(500, np.random.default_rng(1))
        assert set(np.unique(bits)) <= {0, 1}


class TestDistance:
    def test_hamming_distance_zero_for_identical(self):
        assert hamming_distance([1, 0, 1], [1, 0, 1]) == 0

    def test_hamming_distance_counts_flips(self):
        assert hamming_distance("1111", "1001") == 2

    def test_hamming_distance_requires_equal_length(self):
        with pytest.raises(ConfigurationError):
            hamming_distance([1, 0], [1, 0, 1])

    def test_bit_error_rate_fraction(self):
        assert bit_error_rate("1010", "1011") == pytest.approx(0.25)

    def test_bit_error_rate_empty_is_zero(self):
        assert bit_error_rate([], []) == 0.0
