"""Tests for input validation helpers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.validation import (
    ensure_bit_array,
    ensure_complex_array,
    ensure_in_range,
    ensure_non_negative,
    ensure_non_negative_int,
    ensure_positive,
    ensure_positive_int,
    ensure_probability,
)


class TestScalarValidators:
    def test_ensure_positive_accepts(self):
        assert ensure_positive(2.5, "x") == 2.5

    def test_ensure_positive_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            ensure_positive(0, "x")

    def test_ensure_positive_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            ensure_positive(True, "x")

    def test_ensure_non_negative(self):
        assert ensure_non_negative(0, "x") == 0.0
        with pytest.raises(ConfigurationError):
            ensure_non_negative(-0.1, "x")

    def test_ensure_probability(self):
        assert ensure_probability(0.5, "p") == 0.5
        with pytest.raises(ConfigurationError):
            ensure_probability(1.2, "p")

    def test_ensure_in_range(self):
        assert ensure_in_range(3, 1, 5, "x") == 3.0
        with pytest.raises(ConfigurationError):
            ensure_in_range(6, 1, 5, "x")

    def test_ensure_positive_int(self):
        assert ensure_positive_int(4, "n") == 4
        with pytest.raises(ConfigurationError):
            ensure_positive_int(0, "n")
        with pytest.raises(ConfigurationError):
            ensure_positive_int(2.5, "n")

    def test_ensure_non_negative_int(self):
        assert ensure_non_negative_int(0, "n") == 0
        with pytest.raises(ConfigurationError):
            ensure_non_negative_int(-1, "n")

    def test_numpy_integers_accepted(self):
        assert ensure_positive_int(np.int64(3), "n") == 3


class TestArrayValidators:
    def test_bit_array_accepts_binary(self):
        out = ensure_bit_array([0, 1, 1])
        assert out.dtype == np.uint8

    def test_bit_array_rejects_other_values(self):
        with pytest.raises(ConfigurationError):
            ensure_bit_array([0, 1, 3])

    def test_bit_array_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            ensure_bit_array(np.zeros((2, 2), dtype=int))

    def test_complex_array_accepts_real(self):
        out = ensure_complex_array([1.0, 2.0])
        assert out.dtype == np.complex128

    def test_complex_array_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            ensure_complex_array(np.zeros((2, 2)))
