"""Tests for angle and phase arithmetic helpers."""

import numpy as np
import pytest

from repro.utils.angles import angular_distance, phase_difference, unwrap_phase, wrap_angle


class TestWrapAngle:
    def test_small_angle_unchanged(self):
        assert wrap_angle(0.5) == pytest.approx(0.5)

    def test_negative_small_angle_unchanged(self):
        assert wrap_angle(-1.2) == pytest.approx(-1.2)

    def test_wraps_above_pi(self):
        assert wrap_angle(np.pi + 0.1) == pytest.approx(-np.pi + 0.1)

    def test_wraps_below_minus_pi(self):
        assert wrap_angle(-np.pi - 0.1) == pytest.approx(np.pi - 0.1)

    def test_pi_maps_to_pi(self):
        assert wrap_angle(np.pi) == pytest.approx(np.pi)

    def test_two_pi_maps_to_zero(self):
        assert wrap_angle(2 * np.pi) == pytest.approx(0.0, abs=1e-12)

    def test_array_input_returns_array(self):
        out = wrap_angle(np.array([0.0, 3 * np.pi, -3 * np.pi]))
        assert isinstance(out, np.ndarray)
        assert out == pytest.approx([0.0, np.pi, np.pi])

    def test_scalar_input_returns_float(self):
        assert isinstance(wrap_angle(7.0), float)

    def test_large_multiple_of_two_pi(self):
        assert wrap_angle(10 * 2 * np.pi + 0.3) == pytest.approx(0.3)


class TestPhaseDifference:
    def test_simple_difference(self):
        assert phase_difference(1.0, 0.25) == pytest.approx(0.75)

    def test_wraps_across_boundary(self):
        # 3.0 - (-3.0) = 6.0, which wraps to 6.0 - 2*pi.
        assert phase_difference(3.0, -3.0) == pytest.approx(6.0 - 2 * np.pi)

    def test_msk_step_positive(self):
        assert phase_difference(np.pi / 2, 0.0) == pytest.approx(np.pi / 2)

    def test_array_difference(self):
        later = np.array([0.5, 1.0])
        earlier = np.array([0.0, 2.0])
        out = phase_difference(later, earlier)
        assert out == pytest.approx([0.5, -1.0])


class TestAngularDistance:
    def test_distance_is_symmetric(self):
        assert angular_distance(0.3, -0.2) == pytest.approx(angular_distance(-0.2, 0.3))

    def test_distance_wraps(self):
        # pi - epsilon and -pi + epsilon are close on the circle.
        assert angular_distance(np.pi - 0.01, -np.pi + 0.01) == pytest.approx(0.02)

    def test_distance_bounded_by_pi(self):
        values = np.linspace(-10, 10, 101)
        distances = angular_distance(values, 0.0)
        assert np.all(distances <= np.pi + 1e-12)


class TestUnwrapPhase:
    def test_unwrap_recovers_ramp(self):
        ramp = np.linspace(0, 8 * np.pi, 200)
        wrapped = wrap_angle(ramp)
        unwrapped = unwrap_phase(wrapped)
        assert np.allclose(np.diff(unwrapped), np.diff(ramp), atol=1e-9)
