"""Tests for decibel conversion helpers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.db import (
    db_to_linear,
    db_to_power_ratio,
    linear_to_db,
    power_ratio_to_db,
    sir_db_from_powers,
    snr_db_from_powers,
)


class TestPowerConversions:
    def test_zero_db_is_unity(self):
        assert db_to_power_ratio(0.0) == pytest.approx(1.0)

    def test_ten_db_is_ten(self):
        assert db_to_power_ratio(10.0) == pytest.approx(10.0)

    def test_twenty_db_is_hundred(self):
        assert db_to_power_ratio(20.0) == pytest.approx(100.0)

    def test_roundtrip(self):
        for value in (0.1, 1.0, 3.7, 250.0):
            assert db_to_power_ratio(power_ratio_to_db(value)) == pytest.approx(value)

    def test_negative_ratio_raises(self):
        with pytest.raises(ConfigurationError):
            power_ratio_to_db(-1.0)

    def test_array_support(self):
        out = db_to_power_ratio(np.array([0.0, 10.0]))
        assert out == pytest.approx([1.0, 10.0])


class TestAmplitudeConversions:
    def test_twenty_db_amplitude_is_ten(self):
        assert db_to_linear(20.0) == pytest.approx(10.0)

    def test_roundtrip(self):
        assert linear_to_db(db_to_linear(-3.0)) == pytest.approx(-3.0)

    def test_amplitude_and_power_consistency(self):
        # Power ratio is amplitude ratio squared.
        assert db_to_power_ratio(6.0) == pytest.approx(db_to_linear(6.0) ** 2)


class TestSNRandSIR:
    def test_snr_from_powers(self):
        assert snr_db_from_powers(100.0, 1.0) == pytest.approx(20.0)

    def test_snr_requires_positive_noise(self):
        with pytest.raises(ConfigurationError):
            snr_db_from_powers(1.0, 0.0)

    def test_sir_definition_matches_eq9(self):
        # SIR = 10 log10(P_bob / P_alice); equal powers give 0 dB.
        assert sir_db_from_powers(1.0, 1.0) == pytest.approx(0.0)
        assert sir_db_from_powers(0.5, 1.0) == pytest.approx(-3.0103, abs=1e-3)
