"""Tests for the empirical CDF container."""

import pytest

from repro.exceptions import ConfigurationError
from repro.utils.cdf import EmpiricalCDF


class TestConstruction:
    def test_from_samples_sorts(self):
        cdf = EmpiricalCDF.from_samples([3.0, 1.0, 2.0])
        assert cdf.samples == (1.0, 2.0, 3.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            EmpiricalCDF.from_samples([])

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            EmpiricalCDF.from_samples([1.0, float("nan")])


class TestEvaluation:
    def test_cdf_at_minimum(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0, 3.0, 4.0])
        assert cdf.evaluate(1.0) == pytest.approx(0.25)

    def test_cdf_at_maximum_is_one(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0, 3.0])
        assert cdf.evaluate(3.0) == pytest.approx(1.0)

    def test_cdf_below_minimum_is_zero(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0])
        assert cdf.evaluate(0.5) == 0.0

    def test_cdf_is_monotone(self):
        cdf = EmpiricalCDF.from_samples([5.0, 1.0, 3.0, 3.0, 8.0])
        points = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]
        values = [cdf.evaluate(p) for p in points]
        assert values == sorted(values)

    def test_fraction_below_excludes_equal(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0, 2.0, 3.0])
        assert cdf.fraction_below(2.0) == pytest.approx(0.25)

    def test_quantile_median(self):
        cdf = EmpiricalCDF.from_samples([10.0, 20.0, 30.0, 40.0])
        assert cdf.median == pytest.approx(20.0)

    def test_quantile_bounds(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0, 3.0])
        assert cdf.quantile(1.0) == 3.0
        with pytest.raises(ConfigurationError):
            cdf.quantile(0.0)
        with pytest.raises(ConfigurationError):
            cdf.quantile(1.5)

    def test_mean_min_max(self):
        cdf = EmpiricalCDF.from_samples([2.0, 4.0, 6.0])
        assert cdf.mean == pytest.approx(4.0)
        assert cdf.minimum == 2.0
        assert cdf.maximum == 6.0

    def test_plot_points_shape(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0, 3.0])
        xs, ys = cdf.as_plot_points()
        assert xs == [1.0, 2.0, 3.0]
        assert ys == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_table(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0])
        table = cdf.table([0.0, 1.5, 2.5])
        assert table == [(0.0, 0.0), (1.5, 0.5), (2.5, 1.0)]

    def test_len(self):
        assert len(EmpiricalCDF.from_samples([1.0, 1.0, 1.0])) == 3
