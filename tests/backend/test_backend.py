"""Tests for the pluggable compute-backend registry (:mod:`repro.backend`).

Covers the registry contract (lazy factories, unknown-name errors, the
import-purity rule that the default environment never imports numba),
the accuracy-gate refusal semantics for reduced-precision backends, the
ambient `use_backend` scoping, and the digest-neutrality rules the
experiment engine applies per backend.
"""

from __future__ import annotations

import subprocess
import sys
import warnings
from pathlib import Path

import numpy as np
import pytest

import repro.backend.numba_backend as numba_backend_module
from repro.anc.decoder import InterferenceDecoder
from repro.backend import (
    Backend,
    DEFAULT_BACKEND,
    active_backend_name,
    available_backends,
    get_backend,
    is_digest_neutral,
    register_backend,
    resolve_backend,
    use_backend,
)
from repro.backend.float32_fast import make_float32_fast_backend
from repro.backend.numba_backend import NumbaFallbackWarning
from repro.exceptions import BackendError, ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import ExperimentEngine
from repro.modulation.batch import BatchMSKModulator

SRC_DIR = Path(__file__).resolve().parents[2] / "src"


def _trial_fn(cfg, key):
    """Toy digestable trial function (never executed in digest tests)."""
    return key


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert available_backends() == ["float32-fast", "numba", "numpy"]

    def test_default_backend_is_numpy(self):
        assert DEFAULT_BACKEND == "numpy"
        assert get_backend().name in ("numpy", active_backend_name())

    def test_unknown_backend_rejected(self):
        with pytest.raises(BackendError, match="unknown compute backend"):
            get_backend("cuda")

    def test_backend_error_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError):
            get_backend("cuda")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(BackendError, match="already registered"):
            register_backend("numpy", lambda: get_backend("numpy"))

    def test_resolve_accepts_name_none_and_instance(self):
        by_name = resolve_backend("numpy")
        assert resolve_backend(None).name == DEFAULT_BACKEND
        assert resolve_backend(by_name) is by_name

    def test_module_import_never_imports_numba(self):
        """The registry (and the numba adapter module) stay numba-free.

        CI's default job has no numba; importing the package — or even
        resolving the numba backend's fallback — must not attempt a
        module-level ``import numba``.  Checked in a clean interpreter so
        this test is meaningful even when numba *is* installed.
        """
        code = (
            "import sys, warnings\n"
            "import repro.backend\n"
            "import repro.backend.numba_backend\n"
            "import repro.anc.decoder\n"
            "assert 'numba' not in sys.modules, 'numba imported at module import time'\n"
        )
        subprocess.run(
            [sys.executable, "-c", code],
            check=True,
            env={"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin"},
        )


class TestNumbaFallback:
    def test_fallback_warns_once_and_decodes_like_numpy(self, monkeypatch):
        """Without numba, the backend degrades to numpy with one warning."""
        monkeypatch.setattr(numba_backend_module, "_import_numba", lambda: None)
        monkeypatch.setattr(numba_backend_module, "_FALLBACK_WARNED", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = numba_backend_module.make_numba_backend()
            second = numba_backend_module.make_numba_backend()
        fallback_warnings = [
            w for w in caught if issubclass(w.category, NumbaFallbackWarning)
        ]
        assert len(fallback_warnings) == 1
        assert first.fallback_of == "numpy"
        assert first.digest_neutral
        numpy_backend = get_backend("numpy")
        assert second.phase_solutions is numpy_backend.phase_solutions
        assert second.match_phase_differences is numpy_backend.match_phase_differences


class TestAccuracyGate:
    def test_float32_fast_carries_a_gate(self):
        gate = get_backend("float32-fast").accuracy_gate
        assert gate is not None
        assert 0.0 <= float(gate["max_ber_deviation"]) < 1.0
        assert gate["reference"] == "numpy"

    def test_non_neutral_backend_without_gate_refused(self):
        backend = make_float32_fast_backend()
        gateless = Backend(
            name="float32-fast",
            description=backend.description,
            digest_neutral=False,
            phase_solutions=backend.phase_solutions,
            match_phase_differences=backend.match_phase_differences,
            differential_bits=backend.differential_bits,
            modulate_waveform=backend.modulate_waveform,
            demodulate_phase_differences=backend.demodulate_phase_differences,
            accuracy_gate=None,
        )
        with pytest.raises(BackendError, match="accuracy-gate"):
            resolve_backend(gateless)

    def test_invalid_gate_bound_refused(self):
        backend = make_float32_fast_backend()
        bogus = Backend(
            name="float32-fast",
            description=backend.description,
            digest_neutral=False,
            phase_solutions=backend.phase_solutions,
            match_phase_differences=backend.match_phase_differences,
            differential_bits=backend.differential_bits,
            modulate_waveform=backend.modulate_waveform,
            demodulate_phase_differences=backend.demodulate_phase_differences,
            accuracy_gate={"reference": "numpy", "max_ber_deviation": 1.5},
        )
        with pytest.raises(BackendError, match="invalid"):
            resolve_backend(bogus)


class TestAmbientScope:
    def test_use_backend_scopes_and_restores(self):
        assert active_backend_name() == "numpy"
        with use_backend("float32-fast") as backend:
            assert backend.name == "float32-fast"
            assert active_backend_name() == "float32-fast"
            with use_backend("numpy"):
                assert active_backend_name() == "numpy"
            assert active_backend_name() == "float32-fast"
        assert active_backend_name() == "numpy"

    def test_scope_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_backend("float32-fast"):
                raise RuntimeError("boom")
        assert active_backend_name() == "numpy"

    def test_unknown_name_refused_before_entering(self):
        with pytest.raises(BackendError):
            with use_backend("cuda"):
                pass  # pragma: no cover

    def test_ambient_backend_drives_decoder_and_modulator(self):
        """Objects built without an explicit backend resolve the ambient one."""
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, (4, 32), dtype=np.uint8)
        with use_backend("float32-fast"):
            ambient = BatchMSKModulator().modulate(bits).samples
        explicit = BatchMSKModulator(backend="float32-fast").modulate(bits).samples
        reference = BatchMSKModulator().modulate(bits).samples
        assert np.array_equal(ambient, explicit)
        # Reduced precision must actually have been used in the scope.
        assert not np.array_equal(ambient, reference)


class TestDigestNeutrality:
    def test_neutral_flags(self):
        assert is_digest_neutral("numpy")
        assert is_digest_neutral("numba")
        assert not is_digest_neutral("float32-fast")

    def test_numba_and_numpy_share_a_digest(self):
        base = ExperimentConfig.quick(seed=3)
        jit = base.with_overrides(backend="numba")
        assert ExperimentEngine.task_digest("toy", _trial_fn, base) == (
            ExperimentEngine.task_digest("toy", _trial_fn, jit)
        )

    def test_float32_fast_forks_the_digest(self):
        base = ExperimentConfig.quick(seed=3)
        fast = base.with_overrides(backend="float32-fast")
        assert ExperimentEngine.task_digest("toy", _trial_fn, base) != (
            ExperimentEngine.task_digest("toy", _trial_fn, fast)
        )

    def test_default_backend_keeps_snapshot_stable(self):
        """Pre-backend digests/fixtures must not see a new key by default."""
        assert "backend" not in ExperimentConfig.quick().snapshot()
        assert (
            ExperimentConfig.quick().with_overrides(backend="float32-fast").snapshot()[
                "backend"
            ]
            == "float32-fast"
        )


class TestConfigValidation:
    def test_unknown_backend_in_config_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown compute backend"):
            ExperimentConfig(backend="cuda")

    def test_known_backends_accepted(self):
        for name in available_backends():
            assert ExperimentConfig(backend=name).backend == name


class TestFloat32Accuracy:
    def test_decode_within_declared_gate(self):
        """BER deviation vs the numpy backend stays inside the gate.

        A noisy synthetic collision ensemble (amplitude spread, random
        phases, AWGN) — deliberately harsher than the clean benchmark
        batch, so near-boundary samples occur and the bound is exercised
        rather than trivially zero.
        """
        rng = np.random.default_rng(20070823)
        n_trials, frame_bits = 48, 256
        known_offset, unknown_offset = 0, frame_bits // 4
        total = unknown_offset + frame_bits + 1 + 12
        known_bits = rng.integers(0, 2, (n_trials, frame_bits), dtype=np.uint8)
        unknown_bits = rng.integers(0, 2, (n_trials, frame_bits), dtype=np.uint8)
        rows = np.zeros((n_trials, total), dtype=np.complex128)
        rows[:, known_offset : known_offset + frame_bits + 1] += (
            BatchMSKModulator(amplitude=1.0).modulate(known_bits).samples
            * np.exp(1j * rng.uniform(-np.pi, np.pi, (n_trials, 1)))
        )
        rows[:, unknown_offset : unknown_offset + frame_bits + 1] += (
            BatchMSKModulator(amplitude=0.6).modulate(unknown_bits).samples
            * np.exp(1j * rng.uniform(-np.pi, np.pi, (n_trials, 1)))
        )
        rows += 0.08 * (
            rng.standard_normal(rows.shape) + 1j * rng.standard_normal(rows.shape)
        ) / np.sqrt(2)

        args = (known_bits, known_offset, unknown_offset, frame_bits)
        reference_bits, _ = InterferenceDecoder(backend="numpy").decode_batch(rows, *args)
        fast_bits, _ = InterferenceDecoder(backend="float32-fast").decode_batch(rows, *args)

        gate = float(get_backend("float32-fast").accuracy_gate["max_ber_deviation"])
        deviation = float(np.mean(fast_bits != reference_bits))
        assert deviation <= gate
        # Both backends must still decode the actual payload usefully.
        assert float(np.mean(fast_bits != unknown_bits)) < 0.05
