"""Tests for the ANC-aware schedule planner."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, TopologyError
from repro.mac.planner import (
    plan_chain_pipeline,
    plan_mesh_exchanges,
    plan_relay_exchange,
)
from repro.network.flows import Flow
from repro.network.generator import generate_chain, generate_star
from repro.network.topologies import (
    ALICE,
    BOB,
    N1,
    N2,
    N3,
    N4,
    N5,
    RELAY,
    ChannelConditions,
    alice_bob_topology,
    x_topology,
)

CONDITIONS = ChannelConditions(snr_db=28.0)


def _chain(hops, seed=0):
    return generate_chain(CONDITIONS, np.random.default_rng(seed), hops=hops)


class TestChainPipelinePlan:
    def test_canonical_3_hop_anc_schedule(self):
        """The planner must derive the paper's hand-coded Fig. 12 schedule."""
        plan = plan_chain_pipeline(_chain(3), (1, 2, 3, 4), coding="anc")
        assert plan.stride == 2
        assert plan.has_deliberate_collisions
        assert len(plan.phases) == 2
        forward, inject = plan.phases
        assert forward.transmit_positions == (2,)
        assert forward.listen_positions == (3,)
        assert forward.collision_positions == ()
        assert inject.transmit_positions == (1, 3)
        assert inject.listen_positions == (2, 4)
        assert inject.collision_positions == (2,)

    def test_anc_collisions_grow_with_chain_length(self):
        plan = plan_chain_pipeline(_chain(7), tuple(range(1, 9)), coding="anc")
        all_collisions = [p for phase in plan.phases for p in phase.collision_positions]
        # Positions 2..6 all capture deliberate collisions somewhere in the cycle.
        assert sorted(all_collisions) == [2, 3, 4, 5, 6]

    def test_plain_schedule_is_collision_free(self):
        for hops in (2, 3, 5, 8):
            plan = plan_chain_pipeline(
                _chain(hops), tuple(range(1, hops + 2)), coding="plain"
            )
            assert plan.stride == 3
            assert not plan.has_deliberate_collisions
            for phase in plan.phases:
                # No two transmit candidates share a listener's ear.
                for p in phase.transmit_positions:
                    assert p + 2 not in phase.transmit_positions

    def test_every_position_transmits_somewhere(self):
        for coding in ("anc", "plain"):
            plan = plan_chain_pipeline(_chain(6), tuple(range(1, 8)), coding=coding)
            covered = sorted(
                p for phase in plan.phases for p in phase.transmit_positions
            )
            assert covered == list(range(1, 7))

    def test_rejects_bad_inputs(self):
        topo = _chain(3)
        with pytest.raises(ConfigurationError):
            plan_chain_pipeline(topo, (1, 2), coding="anc")
        with pytest.raises(ConfigurationError):
            plan_chain_pipeline(topo, (1, 2, 3, 4), coding="turbo")
        with pytest.raises(ConfigurationError):
            plan_chain_pipeline(topo, (1, 2, 1, 2), coding="anc")
        with pytest.raises(TopologyError):
            plan_chain_pipeline(topo, (1, 3, 4), coding="anc")  # 1->3 not a link


class TestRelayExchangePlan:
    def test_alice_bob_reverse_side_info(self):
        topo = alice_bob_topology(CONDITIONS, np.random.default_rng(0))
        plan = plan_relay_exchange(
            topo, Flow(ALICE, BOB, 4), Flow(BOB, ALICE, 4), relay=RELAY,
            overhearing=False,
        )
        assert plan.relay == RELAY
        assert plan.uplink_senders == (ALICE, BOB)
        assert plan.uplink_receivers == (RELAY,)
        assert plan.downlink_receivers == (BOB, ALICE)
        assert plan.side_info == {BOB: "reverse", ALICE: "reverse"}
        assert not plan.overhearing

    def test_x_topology_overhearing_side_info(self):
        topo = x_topology(CONDITIONS, np.random.default_rng(1))
        plan = plan_relay_exchange(
            topo, Flow(N1, N4, 4), Flow(N3, N2, 4), relay=N5, overhearing=True
        )
        assert plan.side_info == {N4: "overhear", N2: "overhear"}
        assert plan.uplink_receivers == (N5, N4, N2)
        assert plan.overhearing

    def test_relay_auto_detected(self):
        topo = alice_bob_topology(CONDITIONS, np.random.default_rng(2))
        plan = plan_relay_exchange(topo, Flow(ALICE, BOB, 2), Flow(BOB, ALICE, 2))
        assert plan.relay == RELAY

    def test_missing_side_info_rejected(self):
        """Crossing flows whose destinations cannot learn the paired packet."""
        topo = generate_star(CONDITIONS, np.random.default_rng(3), leaves=4)
        with pytest.raises(ConfigurationError):
            # Leaves are out of each other's range, so overhearing fails
            # and the flows are not reverses of each other.
            plan_relay_exchange(topo, Flow(1, 2, 3), Flow(3, 4, 3), relay=0)

    def test_mismatched_packet_counts_rejected(self):
        topo = alice_bob_topology(CONDITIONS, np.random.default_rng(4))
        with pytest.raises(ConfigurationError):
            plan_relay_exchange(topo, Flow(ALICE, BOB, 2), Flow(BOB, ALICE, 3))


class TestMeshExchanges:
    def test_pairs_reverse_flows_on_a_star(self):
        topo = generate_star(CONDITIONS, np.random.default_rng(5), leaves=4)
        flows = [Flow(1, 2, 3), Flow(2, 1, 3), Flow(3, 4, 3), Flow(4, 3, 3)]
        schedule = plan_mesh_exchanges(topo, flows)
        assert len(schedule.exchanges) == 2
        assert schedule.routed == ()
        assert schedule.paired_flows == 4
        for exchange in schedule.exchanges:
            assert set(exchange.side_info.values()) == {"reverse"}

    def test_unpairable_flows_fall_back_to_routing(self):
        topo = generate_star(CONDITIONS, np.random.default_rng(6), leaves=4)
        flows = [Flow(1, 2, 3), Flow(3, 4, 3)]
        schedule = plan_mesh_exchanges(topo, flows)
        assert schedule.exchanges == ()
        assert schedule.routed == tuple(flows)

    def test_x_topology_flows_pair_by_overhearing(self):
        topo = x_topology(CONDITIONS, np.random.default_rng(7))
        flows = [Flow(N1, N4, 3), Flow(N3, N2, 3)]
        schedule = plan_mesh_exchanges(topo, flows)
        assert len(schedule.exchanges) == 1
        exchange = schedule.exchanges[0]
        assert exchange.relay == N5
        assert set(exchange.side_info.values()) == {"overhear"}

    def test_deterministic_for_a_flow_list(self):
        topo = generate_star(CONDITIONS, np.random.default_rng(8), leaves=6)
        flows = [Flow(1, 2, 3), Flow(2, 1, 3), Flow(5, 6, 3), Flow(6, 5, 3)]
        first = plan_mesh_exchanges(topo, flows)
        second = plan_mesh_exchanges(topo, flows)
        assert first == second
