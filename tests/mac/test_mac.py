"""Tests for the schedule representation and the oracle scheduler."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.framing.packet import Packet
from repro.mac.optimal import OptimalScheduler
from repro.mac.schedule import Schedule, ScheduledTransmission, Slot


def _tx(sender, role="data"):
    return ScheduledTransmission(sender=sender, packet=Packet(sender, 9, 0, [1, 0]), role=role)


class TestScheduledTransmission:
    def test_roles_validated(self):
        with pytest.raises(ConfigurationError):
            ScheduledTransmission(sender=1, role="broadcast")

    def test_negative_offset_rejected(self):
        with pytest.raises(ConfigurationError):
            ScheduledTransmission(sender=1, start_offset=-1)


class TestSlot:
    def test_senders(self):
        slot = Slot(transmissions=(_tx(1), _tx(2)))
        assert slot.senders == (1, 2)
        assert slot.is_concurrent

    def test_single_sender_not_concurrent(self):
        assert not Slot(transmissions=(_tx(1),)).is_concurrent

    def test_duplicate_sender_rejected(self):
        with pytest.raises(ConfigurationError):
            Slot(transmissions=(_tx(1), _tx(1)))

    def test_empty_slot_rejected(self):
        with pytest.raises(ConfigurationError):
            Slot(transmissions=())


class TestSchedule:
    def test_append_and_iterate(self):
        schedule = Schedule()
        schedule.append(Slot(transmissions=(_tx(1),)))
        schedule.extend([Slot(transmissions=(_tx(2), _tx(3)))])
        assert len(schedule) == 2
        assert schedule.concurrent_slots == 1
        assert [slot.senders for slot in schedule] == [(1,), (2, 3)]


class TestOptimalScheduler:
    def test_sequential_one_slot_per_transmission(self):
        scheduler = OptimalScheduler(rng=np.random.default_rng(0))
        schedule = scheduler.sequential([_tx(1), _tx(2), _tx(3)])
        assert len(schedule) == 3
        assert schedule.concurrent_slots == 0

    def test_concurrent_slot_draws_offsets(self):
        scheduler = OptimalScheduler(rng=np.random.default_rng(1))
        slot = scheduler.concurrent_slot([_tx(1), _tx(2)], frame_samples=800, issuer=0)
        assert slot.is_concurrent
        offsets = [t.start_offset for t in slot.transmissions]
        assert min(offsets) == 0
        assert max(offsets) > 0

    def test_concurrent_slot_requires_two(self):
        scheduler = OptimalScheduler(rng=np.random.default_rng(2))
        with pytest.raises(ConfigurationError):
            scheduler.concurrent_slot([_tx(1)], frame_samples=800, issuer=0)
