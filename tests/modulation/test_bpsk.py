"""Tests for the BPSK scheme."""

import numpy as np
import pytest

from repro.exceptions import ModulationError
from repro.modulation.bpsk import BPSKDemodulator, BPSKModulator, BPSKScheme
from repro.utils.bits import random_bits


class TestBPSK:
    def test_roundtrip(self):
        bits = random_bits(200, np.random.default_rng(0))
        assert np.array_equal(BPSKScheme().roundtrip(bits), bits)

    def test_antipodal_mapping(self):
        sig = BPSKModulator(amplitude=2.0).modulate([1, 0])
        assert sig.samples[0] == pytest.approx(2.0)
        assert sig.samples[1] == pytest.approx(-2.0)

    def test_oversampling(self):
        sig = BPSKModulator(samples_per_symbol=3).modulate([1])
        assert len(sig) == 3

    def test_known_channel_phase_derotation(self):
        bits = random_bits(64, np.random.default_rng(1))
        sig = BPSKModulator().modulate(bits).scaled(np.exp(1j * 1.0))
        decoded = BPSKDemodulator(channel_phase=1.0).demodulate(sig)
        assert np.array_equal(decoded, bits)

    def test_demod_length_validation(self):
        from repro.signal.samples import ComplexSignal

        with pytest.raises(ModulationError):
            BPSKDemodulator(samples_per_symbol=2).demodulate(ComplexSignal([1 + 0j]))

    def test_bits_per_symbol(self):
        assert BPSKModulator().bits_per_symbol == 1
