"""Tests for batched MSK modulation/demodulation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.modulation.batch import (
    BatchMSKDemodulator,
    BatchMSKModulator,
    batch_expected_phase_differences,
    batch_msk_phase_trajectory,
)
from repro.modulation.msk import (
    MSKDemodulator,
    MSKModulator,
    expected_phase_differences,
    msk_phase_trajectory,
)


def _bit_matrix(n_trials, n_bits, seed=0):
    return np.random.default_rng(seed).integers(0, 2, (n_trials, n_bits), dtype=np.uint8)


class TestPhaseTrajectory:
    def test_rows_match_scalar(self):
        bits = _bit_matrix(5, 33)
        batch = batch_msk_phase_trajectory(bits, initial_phase=0.4)
        for i in range(5):
            assert np.array_equal(batch[i], msk_phase_trajectory(bits[i], 0.4))

    def test_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            batch_msk_phase_trajectory(np.array([0, 1]))

    def test_rejects_non_bits(self):
        with pytest.raises(ConfigurationError):
            batch_msk_phase_trajectory(np.array([[0, 2]]))


class TestExpectedDifferences:
    def test_rows_match_scalar(self):
        bits = _bit_matrix(4, 17, seed=1)
        batch = batch_expected_phase_differences(bits)
        for i in range(4):
            assert np.array_equal(batch[i], expected_phase_differences(bits[i]))


class TestBatchModulator:
    @pytest.mark.parametrize("sps", [1, 2, 4])
    def test_rows_match_scalar_modulator(self, sps):
        bits = _bit_matrix(6, 41, seed=2)
        batch_mod = BatchMSKModulator(amplitude=0.8, samples_per_symbol=sps, initial_phase=0.3)
        scalar_mod = MSKModulator(amplitude=0.8, samples_per_symbol=sps, initial_phase=0.3)
        batch = batch_mod.modulate(bits)
        assert batch.n_samples == 41 * sps + 1
        for i in range(6):
            assert np.array_equal(batch.samples[i], scalar_mod.modulate(bits[i]).samples)

    def test_invalid_amplitude(self):
        with pytest.raises(ConfigurationError):
            BatchMSKModulator(amplitude=0.0)

    def test_properties(self):
        assert BatchMSKModulator(samples_per_symbol=4).samples_per_symbol == 4


class TestBatchDemodulator:
    @pytest.mark.parametrize("sps", [1, 3])
    def test_roundtrip_matches_scalar(self, sps):
        bits = _bit_matrix(5, 29, seed=3)
        signal = BatchMSKModulator(samples_per_symbol=sps).modulate(bits)
        demod = BatchMSKDemodulator(samples_per_symbol=sps)
        decoded = demod.demodulate(signal)
        assert np.array_equal(decoded, bits)
        scalar = MSKDemodulator(samples_per_symbol=sps)
        for i in range(5):
            assert np.array_equal(decoded[i], scalar.demodulate(signal.row(i)))
            assert np.array_equal(
                demod.phase_differences(signal)[i],
                scalar.phase_differences(signal.row(i)),
            )

    def test_soft_decisions_are_phase_differences(self):
        bits = _bit_matrix(2, 8, seed=4)
        signal = BatchMSKModulator().modulate(bits)
        demod = BatchMSKDemodulator()
        assert np.array_equal(demod.soft_decisions(signal), demod.phase_differences(signal))

    def test_too_short_batch_has_no_bits(self):
        demod = BatchMSKDemodulator()
        assert demod.demodulate(np.zeros((3, 1), dtype=np.complex128)).shape == (3, 0)

    def test_properties(self):
        assert BatchMSKDemodulator(samples_per_symbol=2).samples_per_symbol == 2
