"""Tests for MSK modulation / demodulation (§5 and Fig. 3 of the paper)."""

import numpy as np
import pytest

from repro.channel.flat import FlatFadingChannel
from repro.modulation.msk import (
    MSKDemodulator,
    MSKModulator,
    MSKScheme,
    expected_phase_differences,
    msk_phase_trajectory,
    verify_constant_envelope,
)
from repro.utils.bits import random_bits, string_to_bits


class TestPhaseTrajectory:
    def test_fig3_example(self):
        """The paper's Fig. 3 example: bits 1010111000 step the phase ±pi/2."""
        bits = string_to_bits("1010111000")
        trajectory = msk_phase_trajectory(bits)
        steps = np.diff(trajectory)
        expected = np.where(bits == 1, np.pi / 2, -np.pi / 2)
        assert steps == pytest.approx(expected)
        # After 5 ones and 5 zeros the phase returns to the start.
        assert trajectory[-1] == pytest.approx(trajectory[0])

    def test_length(self):
        assert msk_phase_trajectory(np.array([1, 0, 1], dtype=np.uint8)).size == 4

    def test_initial_phase_offset(self):
        trajectory = msk_phase_trajectory(np.array([1], dtype=np.uint8), initial_phase=0.3)
        assert trajectory[0] == pytest.approx(0.3)
        assert trajectory[1] == pytest.approx(0.3 + np.pi / 2)


class TestModulator:
    def test_sample_count(self):
        mod = MSKModulator()
        assert len(mod.modulate([1, 0, 1])) == 4  # reference sample + 3

    def test_constant_envelope(self):
        sig = MSKModulator(amplitude=0.7).modulate(random_bits(128, np.random.default_rng(0)))
        assert verify_constant_envelope(sig)
        assert sig.amplitude[0] == pytest.approx(0.7)

    def test_phase_steps_encode_bits(self):
        bits = string_to_bits("1100")
        sig = MSKModulator().modulate(bits)
        diffs = sig.phase_differences()
        assert diffs == pytest.approx([np.pi / 2, np.pi / 2, -np.pi / 2, -np.pi / 2])

    def test_oversampling_length(self):
        mod = MSKModulator(samples_per_symbol=4)
        assert len(mod.modulate([1, 0])) == 9  # 2*4 + reference

    def test_overhead_samples(self):
        assert MSKModulator().overhead_samples == 1

    def test_samples_for_bits(self):
        mod = MSKModulator()
        assert mod.samples_for_bits(10) == 11


class TestVectorizedOversampling:
    """The vectorized sps>1 ramp must match the per-symbol linspace loop.

    ``MSKModulator.modulate`` used to build the oversampled phase ramp by
    appending one ``np.linspace`` slice per symbol to a Python list; the
    vectorized outer-add ramp replaced it.  These tests pin the waveform
    to the loop reference to the last ULP, so the fast path can never
    drift the PHY.
    """

    @staticmethod
    def _loop_reference(bits, amplitude, sps, initial_phase):
        """The original list-append/np.linspace implementation."""
        clean = np.asarray(bits, dtype=np.uint8)
        boundary = msk_phase_trajectory(clean, initial_phase)
        phases = [boundary[0]]
        for k in range(clean.size):
            ramp = np.linspace(boundary[k], boundary[k + 1], sps + 1)[1:]
            phases.extend(ramp)
        return amplitude * np.exp(1j * np.asarray(phases))

    @pytest.mark.parametrize("sps", [2, 3, 4, 8])
    @pytest.mark.parametrize("initial_phase", [0.0, 0.7, -2.1])
    def test_waveform_unchanged_to_last_ulp(self, sps, initial_phase):
        bits = random_bits(257, np.random.default_rng(5))
        modulator = MSKModulator(
            amplitude=1.3, samples_per_symbol=sps, initial_phase=initial_phase
        )
        reference = self._loop_reference(bits, 1.3, sps, initial_phase)
        produced = modulator.modulate(bits).samples
        # Exact array equality: not approx, not allclose — the refactor
        # must be invisible at the bit level.
        assert np.array_equal(produced, reference)

    @pytest.mark.parametrize("n_bits", [0, 1, 2])
    def test_degenerate_frame_sizes(self, n_bits):
        bits = np.ones(n_bits, dtype=np.uint8)
        produced = MSKModulator(samples_per_symbol=3).modulate(bits).samples
        reference = self._loop_reference(bits, MSKModulator().amplitude, 3, 0.0)
        assert np.array_equal(produced, reference)

    def test_oversampled_ramp_hits_boundaries_exactly(self):
        bits = string_to_bits("1101")
        sps = 5
        signal = MSKModulator(amplitude=1.0, samples_per_symbol=sps).modulate(bits)
        boundary = msk_phase_trajectory(bits)
        # Sample k*sps carries exactly the k-th boundary phase (linspace
        # pins its endpoint, and the vectorized ramp must too).
        sampled = np.angle(signal.samples[::sps])
        expected = np.angle(np.exp(1j * boundary))
        assert np.array_equal(sampled, expected)


class TestDemodulator:
    def test_roundtrip_no_channel(self):
        bits = random_bits(256, np.random.default_rng(1))
        scheme = MSKScheme()
        assert np.array_equal(scheme.roundtrip(bits), bits)

    def test_roundtrip_with_attenuation_and_phase(self):
        """Eq. 1: demodulation is invariant to channel gain and phase offset."""
        bits = random_bits(256, np.random.default_rng(2))
        sig = MSKModulator().modulate(bits)
        channel = FlatFadingChannel(attenuation=0.3, phase_shift=2.1)
        received = channel.apply(sig)
        decoded = MSKDemodulator().demodulate(received)
        assert np.array_equal(decoded, bits)

    def test_roundtrip_with_small_cfo(self):
        bits = random_bits(256, np.random.default_rng(3))
        sig = MSKModulator().modulate(bits)
        channel = FlatFadingChannel(attenuation=1.0, frequency_offset=0.05)
        decoded = MSKDemodulator().demodulate(channel.apply(sig))
        assert np.array_equal(decoded, bits)

    def test_oversampled_roundtrip(self):
        bits = random_bits(64, np.random.default_rng(4))
        scheme = MSKScheme(samples_per_symbol=4)
        assert np.array_equal(scheme.roundtrip(bits), bits)

    def test_short_signal_gives_no_bits(self):
        from repro.signal.samples import ComplexSignal

        assert MSKDemodulator().demodulate(ComplexSignal([1 + 0j])).size == 0

    def test_soft_decisions_magnitude(self):
        bits = string_to_bits("10")
        sig = MSKModulator().modulate(bits)
        soft = MSKDemodulator().soft_decisions(sig)
        assert soft == pytest.approx([np.pi / 2, -np.pi / 2])


class TestExpectedPhaseDifferences:
    def test_matches_modulator(self):
        bits = random_bits(100, np.random.default_rng(5))
        expected = expected_phase_differences(bits)
        actual = MSKModulator().modulate(bits).phase_differences()
        assert actual == pytest.approx(expected)
