"""Tests for the modulation scheme registry."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ModulationError
from repro.modulation.base import ModulationScheme
from repro.modulation.registry import available_schemes, get_scheme, register_scheme
from repro.modulation.msk import MSKScheme
from repro.utils.bits import random_bits


class TestRegistry:
    def test_available_schemes(self):
        names = available_schemes()
        assert {"msk", "bpsk", "qpsk"} <= set(names)

    def test_get_scheme_case_insensitive(self):
        assert get_scheme("MSK").name == "msk"

    def test_get_scheme_with_kwargs(self):
        scheme = get_scheme("msk", amplitude=0.5)
        assert scheme.modulator.amplitude == pytest.approx(0.5)

    def test_unknown_scheme_raises(self):
        with pytest.raises(ConfigurationError):
            get_scheme("ofdm")

    def test_register_custom_scheme(self):
        register_scheme("msk-osr2", lambda: MSKScheme(samples_per_symbol=2))
        scheme = get_scheme("msk-osr2")
        bits = random_bits(32, np.random.default_rng(0))
        assert np.array_equal(scheme.roundtrip(bits), bits)

    def test_register_invalid_name(self):
        with pytest.raises(ConfigurationError):
            register_scheme("", MSKScheme)

    def test_all_registered_schemes_roundtrip(self):
        bits = random_bits(64, np.random.default_rng(1))
        for name in ("msk", "bpsk", "qpsk"):
            scheme = get_scheme(name)
            assert isinstance(scheme, ModulationScheme)
            assert np.array_equal(scheme.roundtrip(bits), bits), name


class TestModulatorInterface:
    def test_samples_for_bits_validates_multiple(self):
        scheme = get_scheme("qpsk")
        with pytest.raises(ModulationError):
            scheme.modulator.samples_for_bits(3)

    def test_samples_for_bits_negative(self):
        with pytest.raises(ModulationError):
            get_scheme("msk").modulator.samples_for_bits(-1)
