"""Tests for the QPSK scheme."""

import numpy as np
import pytest

from repro.exceptions import ModulationError
from repro.modulation.qpsk import QPSKDemodulator, QPSKModulator, QPSKScheme
from repro.utils.bits import random_bits


class TestQPSK:
    def test_roundtrip(self):
        bits = random_bits(256, np.random.default_rng(0))
        assert np.array_equal(QPSKScheme().roundtrip(bits), bits)

    def test_two_bits_per_symbol(self):
        sig = QPSKModulator().modulate([0, 0, 1, 1])
        assert len(sig) == 2

    def test_odd_bit_count_rejected(self):
        with pytest.raises(ModulationError):
            QPSKModulator().modulate([1, 0, 1])

    def test_constant_envelope(self):
        sig = QPSKModulator(amplitude=1.5).modulate(random_bits(64, np.random.default_rng(1)))
        assert np.allclose(np.abs(sig.samples), 1.5)

    def test_gray_mapping_adjacent_symbols_differ_by_one_bit(self):
        # Walk the constellation in phase order and check Gray property.
        mod = QPSKModulator()
        phase_to_bits = {}
        for pair in ([0, 0], [0, 1], [1, 1], [1, 0]):
            sig = mod.modulate(pair)
            phase_to_bits[round(float(np.angle(sig.samples[0])), 3)] = tuple(pair)
        ordered_phases = sorted(phase_to_bits)
        for a, b in zip(ordered_phases, ordered_phases[1:]):
            differing = sum(x != y for x, y in zip(phase_to_bits[a], phase_to_bits[b]))
            assert differing == 1

    def test_channel_phase_derotation(self):
        bits = random_bits(32, np.random.default_rng(2))
        sig = QPSKModulator().modulate(bits).scaled(np.exp(1j * 0.7))
        decoded = QPSKDemodulator(channel_phase=0.7).demodulate(sig)
        assert np.array_equal(decoded, bits)

    def test_demod_length_validation(self):
        from repro.signal.samples import ComplexSignal

        with pytest.raises(ModulationError):
            QPSKDemodulator(samples_per_symbol=2).demodulate(ComplexSignal([1 + 0j]))
