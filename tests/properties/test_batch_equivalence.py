"""Differential tests: the batched PHY fast path against the scalar reference.

Every batched kernel (batch MSK modulator, batch demodulator,
:meth:`InterferenceDecoder.decode_batch`) claims to be **bit-identical**
to mapping the scalar reference implementation over the batch rows.  These
hypothesis-driven tests enforce the claim on randomly generated bits,
collision offsets, amplitudes and noise levels (i.e. SNRs), including the
§7.4 backward-decoding direction and the degenerate geometries: zero
overlap (both paths must reject identically), full overlap, and
single-bit frames (whose two-sample overlap is below the decoder's
four-sample minimum, so both paths must reject those too).

Assertions use exact array equality throughout — never ``approx`` — since
a last-ULP divergence in an intermediate would eventually flip a sliced
bit near a decision boundary.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anc.decoder import InterferenceDecoder
from repro.backend import available_backends, get_backend, is_digest_neutral
from repro.channel.cfo import CarrierFrequencyOffsetChannel
from repro.channel.fading import make_fading_channel
from repro.exceptions import ConfigurationError, DecodingError
from repro.modulation.batch import BatchMSKDemodulator, BatchMSKModulator
from repro.modulation.msk import MSKDemodulator, MSKModulator
from repro.signal.batch import SignalBatch
from repro.signal.samples import ComplexSignal

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

bit_matrices = st.tuples(
    st.integers(min_value=1, max_value=6),   # n_trials
    st.integers(min_value=1, max_value=96),  # n_bits
    st.integers(min_value=0, max_value=2**32 - 1),
).map(
    lambda spec: np.random.default_rng(spec[2]).integers(
        0, 2, (spec[0], spec[1]), dtype=np.uint8
    )
)

collision_specs = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=2**32 - 1),
        "n_trials": st.integers(min_value=1, max_value=5),
        "known_n_bits": st.integers(min_value=12, max_value=64),
        "unknown_n_bits": st.integers(min_value=12, max_value=64),
        # Offset of the later frame relative to the earlier one; kept
        # small enough that the frames always overlap by >= 4 samples.
        "offset": st.integers(min_value=0, max_value=8),
        "known_first": st.booleans(),
        "snr_db": st.floats(min_value=5.0, max_value=40.0),
        "amplitude_a": st.floats(min_value=0.3, max_value=1.5),
        "amplitude_b": st.floats(min_value=0.3, max_value=1.5),
    }
)


def _build_collision_batch(spec):
    """Synthesize one uniform-geometry collision batch from a spec."""
    rng = np.random.default_rng(spec["seed"])
    known_n_bits = spec["known_n_bits"]
    unknown_n_bits = spec["unknown_n_bits"]
    if spec["known_first"]:
        known_offset, unknown_offset = 0, spec["offset"]
    else:
        known_offset, unknown_offset = spec["offset"], 0
    total = max(
        known_offset + known_n_bits + 1, unknown_offset + unknown_n_bits + 1
    ) + 4
    noise_scale = float(10.0 ** (-spec["snr_db"] / 20.0))
    rows, known_rows = [], []
    for _ in range(spec["n_trials"]):
        known_bits = rng.integers(0, 2, known_n_bits, dtype=np.uint8)
        unknown_bits = rng.integers(0, 2, unknown_n_bits, dtype=np.uint8)
        wave_known = MSKModulator(
            amplitude=spec["amplitude_a"],
            initial_phase=float(rng.uniform(-np.pi, np.pi)),
        ).modulate(known_bits).samples
        wave_unknown = MSKModulator(
            amplitude=spec["amplitude_b"],
            initial_phase=float(rng.uniform(-np.pi, np.pi)),
        ).modulate(unknown_bits).samples
        row = np.zeros(total, dtype=np.complex128)
        row[known_offset : known_offset + wave_known.size] += wave_known
        row[unknown_offset : unknown_offset + wave_unknown.size] += wave_unknown
        row += noise_scale * (
            rng.standard_normal(total) + 1j * rng.standard_normal(total)
        ) / np.sqrt(2)
        rows.append(row)
        known_rows.append(known_bits)
    return (
        SignalBatch(np.stack(rows)),
        np.stack(known_rows),
        known_offset,
        unknown_offset,
        unknown_n_bits,
    )


#: Error types a legitimate decode rejection may raise (e.g. a degenerate
#: Eq. 5-6 solution with a zero amplitude raises through ensure_positive).
_DECODE_ERRORS = (DecodingError, ConfigurationError)


def _assert_batch_matches_scalar(batch, known, known_offsets, unknown_offsets, unknown_n_bits):
    """Decode with both paths and require bit-for-bit identical outcomes.

    ``known_offsets`` / ``unknown_offsets`` may be ints or per-trial
    arrays.  When the scalar reference rejects *any* trial (degenerate
    amplitude estimate, insufficient overlap, ...) the batch call must
    reject too — a batch cannot silently decode a trial its reference
    implementation refuses; otherwise both must produce identical bits
    and diagnostics.
    """
    decoder = InterferenceDecoder()
    n_trials = len(batch)
    known_offsets = np.broadcast_to(np.asarray(known_offsets), (n_trials,))
    unknown_offsets = np.broadcast_to(np.asarray(unknown_offsets), (n_trials,))
    scalar_results = []
    scalar_raised = False
    for i in range(n_trials):
        try:
            scalar_results.append(
                decoder.decode(
                    batch.row(i), known[i], int(known_offsets[i]),
                    int(unknown_offsets[i]), unknown_n_bits,
                )
            )
        except _DECODE_ERRORS:
            scalar_raised = True
            break
    if scalar_raised:
        with pytest.raises(_DECODE_ERRORS):
            decoder.decode_batch(
                batch, known, known_offsets, unknown_offsets, unknown_n_bits
            )
        return
    bits, diagnostics = decoder.decode_batch(
        batch, known, known_offsets, unknown_offsets, unknown_n_bits
    )
    for i, (scalar_bits, scalar_diag) in enumerate(scalar_results):
        assert np.array_equal(bits[i], scalar_bits)
        assert diagnostics[i].overlap_samples == scalar_diag.overlap_samples
        assert diagnostics[i].interfered_bits == scalar_diag.interfered_bits
        assert diagnostics[i].clean_bits == scalar_diag.clean_bits
        assert diagnostics[i].reversed_decode == scalar_diag.reversed_decode
        assert diagnostics[i].mean_match_error == scalar_diag.mean_match_error
        assert diagnostics[i].amplitude_estimate == scalar_diag.amplitude_estimate


# ----------------------------------------------------------------------
# Modulator / demodulator equivalence
# ----------------------------------------------------------------------


class TestModemEquivalence:
    @given(bits=bit_matrices, sps=st.sampled_from([1, 2, 4]),
           initial_phase=st.floats(min_value=-np.pi, max_value=np.pi))
    @settings(max_examples=60, deadline=None)
    def test_batch_modulator_bit_identical(self, bits, sps, initial_phase):
        batch = BatchMSKModulator(
            amplitude=1.1, samples_per_symbol=sps, initial_phase=initial_phase
        ).modulate(bits)
        scalar = MSKModulator(
            amplitude=1.1, samples_per_symbol=sps, initial_phase=initial_phase
        )
        for i in range(bits.shape[0]):
            assert np.array_equal(batch.samples[i], scalar.modulate(bits[i]).samples)

    @given(bits=bit_matrices, sps=st.sampled_from([1, 3]),
           snr_db=st.floats(min_value=0.0, max_value=40.0),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_batch_demodulator_bit_identical(self, bits, sps, snr_db, seed):
        """Noisy waveforms demodulate identically row-by-row and batched."""
        rng = np.random.default_rng(seed)
        clean = BatchMSKModulator(samples_per_symbol=sps).modulate(bits)
        noise_scale = float(10.0 ** (-snr_db / 20.0))
        noisy = clean.samples + noise_scale * (
            rng.standard_normal(clean.samples.shape)
            + 1j * rng.standard_normal(clean.samples.shape)
        ) / np.sqrt(2)
        noisy_batch = SignalBatch(noisy)
        batch_bits = BatchMSKDemodulator(samples_per_symbol=sps).demodulate(noisy_batch)
        scalar = MSKDemodulator(samples_per_symbol=sps)
        for i in range(bits.shape[0]):
            assert np.array_equal(batch_bits[i], scalar.demodulate(noisy_batch.row(i)))

    @given(bits=bit_matrices)
    @settings(max_examples=30, deadline=None)
    def test_modulate_demodulate_roundtrip(self, bits):
        signal = BatchMSKModulator().modulate(bits)
        assert np.array_equal(BatchMSKDemodulator().demodulate(signal), bits)


# ----------------------------------------------------------------------
# Decoder equivalence
# ----------------------------------------------------------------------


class TestDecodeBatchEquivalence:
    @given(spec=collision_specs)
    @settings(max_examples=40, deadline=None)
    def test_random_collisions_bit_identical(self, spec):
        """Random bits/offsets/SNRs decode identically, forward and §7.4 backward."""
        batch, known, known_offset, unknown_offset, unknown_n_bits = (
            _build_collision_batch(spec)
        )
        _assert_batch_matches_scalar(
            batch, known, known_offset, unknown_offset, unknown_n_bits
        )

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           n_bits=st.integers(min_value=8, max_value=48))
    @settings(max_examples=25, deadline=None)
    def test_full_overlap_bit_identical(self, seed, n_bits):
        """Degenerate geometry: both frames aligned sample-for-sample."""
        spec = {
            "seed": seed, "n_trials": 3,
            "known_n_bits": n_bits, "unknown_n_bits": n_bits,
            "offset": 0, "known_first": True,
            "snr_db": 25.0, "amplitude_a": 1.0, "amplitude_b": 0.6,
        }
        batch, known, known_offset, unknown_offset, unknown_n_bits = (
            _build_collision_batch(spec)
        )
        assert known_offset == unknown_offset == 0
        _assert_batch_matches_scalar(
            batch, known, known_offset, unknown_offset, unknown_n_bits
        )

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_zero_overlap_rejected_identically(self, seed):
        """Disjoint frames: the scalar path raises, and so must the batch."""
        rng = np.random.default_rng(seed)
        known_n_bits = unknown_n_bits = 16
        unknown_offset = known_n_bits + 5  # strictly after the known frame
        total = unknown_offset + unknown_n_bits + 1
        rows = np.stack([
            rng.standard_normal(total) + 1j * rng.standard_normal(total)
            for _ in range(2)
        ])
        known = rng.integers(0, 2, (2, known_n_bits), dtype=np.uint8)
        decoder = InterferenceDecoder()
        with pytest.raises(DecodingError):
            decoder.decode(ComplexSignal(rows[0]), known[0], 0, unknown_offset, unknown_n_bits)
        with pytest.raises(DecodingError):
            decoder.decode_batch(rows, known, 0, unknown_offset, unknown_n_bits)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           known_first=st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_single_bit_frames_rejected_identically(self, seed, known_first):
        """A single-bit frame spans two samples — below the 4-sample overlap
        minimum — so both paths must refuse it the same way."""
        spec = {
            "seed": seed, "n_trials": 2,
            "known_n_bits": 1, "unknown_n_bits": 1,
            "offset": 0, "known_first": known_first,
            "snr_db": 30.0, "amplitude_a": 1.0, "amplitude_b": 0.8,
        }
        batch, known, known_offset, unknown_offset, unknown_n_bits = (
            _build_collision_batch(spec)
        )
        decoder = InterferenceDecoder()
        with pytest.raises(DecodingError):
            decoder.decode(
                batch.row(0), known[0], known_offset, unknown_offset, unknown_n_bits
            )
        with pytest.raises(DecodingError):
            decoder.decode_batch(
                batch, known, known_offset, unknown_offset, unknown_n_bits
            )

    impaired_specs = st.fixed_dictionaries(
        {
            "seed": st.integers(min_value=0, max_value=2**32 - 1),
            "n_trials": st.integers(min_value=1, max_value=4),
            "n_bits": st.integers(min_value=16, max_value=48),
            "offset": st.integers(min_value=0, max_value=8),
            "cfo": st.floats(min_value=0.0, max_value=0.15),
            "fading": st.sampled_from(["none", "rayleigh", "rician"]),
            "k_db": st.floats(min_value=-5.0, max_value=12.0),
            "mode": st.sampled_from(["block", "drift"]),
            "snr_db": st.floats(min_value=12.0, max_value=40.0),
        }
    )

    @given(spec=impaired_specs)
    @settings(max_examples=30, deadline=None)
    def test_cfo_and_fading_collisions_bit_identical(self, spec):
        """Collisions shaped by the impairment stages decode identically.

        Each component passes through a per-sender CFO ramp (opposite
        signs, the §6 relative-offset geometry) and a seeded
        Rayleigh/Rician fade before superposition — proving the batched
        decoder stays bit-identical to the scalar reference when its
        inputs went through the new channel stages.
        """
        rng = np.random.default_rng(spec["seed"])
        n_bits = spec["n_bits"]
        offset = spec["offset"]
        total = offset + n_bits + 1 + 4
        noise_scale = float(10.0 ** (-spec["snr_db"] / 20.0))
        doppler = 0.003 if spec["mode"] == "drift" else 0.0
        cfo_known = CarrierFrequencyOffsetChannel(spec["cfo"])
        cfo_unknown = CarrierFrequencyOffsetChannel(-spec["cfo"])
        rows, known_rows = [], []
        for _ in range(spec["n_trials"]):
            known_bits = rng.integers(0, 2, n_bits, dtype=np.uint8)
            unknown_bits = rng.integers(0, 2, n_bits, dtype=np.uint8)
            wave_known = cfo_known.apply(
                MSKModulator(
                    amplitude=1.0, initial_phase=float(rng.uniform(-np.pi, np.pi))
                ).modulate(known_bits)
            )
            wave_unknown = cfo_unknown.apply(
                MSKModulator(
                    amplitude=0.7, initial_phase=float(rng.uniform(-np.pi, np.pi))
                ).modulate(unknown_bits)
            )
            for_stage = []
            for wave in (wave_known, wave_unknown):
                stage = make_fading_channel(
                    spec["fading"],
                    k_db=spec["k_db"],
                    los_phase=float(rng.uniform(-np.pi, np.pi)),
                    mode=spec["mode"],
                    doppler=doppler,
                    rng=rng,
                )
                for_stage.append(wave if stage is None else stage.apply(wave))
            wave_known, wave_unknown = for_stage
            row = np.zeros(total, dtype=np.complex128)
            row[: wave_known.samples.size] += wave_known.samples
            row[offset : offset + wave_unknown.samples.size] += wave_unknown.samples
            row += noise_scale * (
                rng.standard_normal(total) + 1j * rng.standard_normal(total)
            ) / np.sqrt(2)
            rows.append(row)
            known_rows.append(known_bits)
        _assert_batch_matches_scalar(
            SignalBatch(np.stack(rows)), np.stack(known_rows), 0, offset, n_bits
        )

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_mixed_geometry_batches_bit_identical(self, seed):
        """One call covering several offset groups, both decode directions."""
        rng = np.random.default_rng(seed)
        known_n_bits = unknown_n_bits = 32
        geometries = [(0, int(rng.integers(0, 8))) for _ in range(2)]
        geometries += [(int(rng.integers(1, 8)), 0) for _ in range(2)]
        total = known_n_bits + unknown_n_bits  # ample room for every geometry
        rows, known_rows, kos, uos = [], [], [], []
        for known_offset, unknown_offset in geometries:
            known_bits = rng.integers(0, 2, known_n_bits, dtype=np.uint8)
            unknown_bits = rng.integers(0, 2, unknown_n_bits, dtype=np.uint8)
            row = np.zeros(total, dtype=np.complex128)
            wave_known = MSKModulator(
                amplitude=1.0, initial_phase=float(rng.uniform(-np.pi, np.pi))
            ).modulate(known_bits).samples
            wave_unknown = MSKModulator(
                amplitude=0.7, initial_phase=float(rng.uniform(-np.pi, np.pi))
            ).modulate(unknown_bits).samples
            row[known_offset : known_offset + wave_known.size] += wave_known
            row[unknown_offset : unknown_offset + wave_unknown.size] += wave_unknown
            row += 0.02 * (
                rng.standard_normal(total) + 1j * rng.standard_normal(total)
            ) / np.sqrt(2)
            rows.append(row)
            known_rows.append(known_bits)
            kos.append(known_offset)
            uos.append(unknown_offset)
        batch = SignalBatch(np.stack(rows))
        known = np.stack(known_rows)
        _assert_batch_matches_scalar(
            batch, known, np.array(kos), np.array(uos), unknown_n_bits
        )


# ----------------------------------------------------------------------
# Per-backend equivalence
# ----------------------------------------------------------------------


class TestBackendEquivalence:
    """Every registered compute backend honours its declared contract.

    Digest-neutral backends (``numpy``, and ``numba`` — JIT or numpy
    fallback alike) must be **bit-identical** to the scalar reference:
    same bits, same diagnostics.  The non-neutral ``float32-fast``
    backend instead must stay within its declared BER accuracy gate
    against the reference bits.
    """

    @pytest.mark.parametrize(
        "name", [n for n in available_backends() if is_digest_neutral(n)]
    )
    @given(spec=collision_specs)
    @settings(max_examples=25, deadline=None)
    def test_digest_neutral_backends_bit_identical(self, name, spec):
        batch, known, known_offset, unknown_offset, unknown_n_bits = (
            _build_collision_batch(spec)
        )
        reference = InterferenceDecoder()
        candidate = InterferenceDecoder(backend=name)
        args = (known, known_offset, unknown_offset, unknown_n_bits)
        try:
            ref_bits, ref_diags = reference.decode_batch(batch, *args)
        except _DECODE_ERRORS:
            with pytest.raises(_DECODE_ERRORS):
                candidate.decode_batch(batch, *args)
            return
        bits, diags = candidate.decode_batch(batch, *args)
        assert np.array_equal(bits, ref_bits)
        for got, expected in zip(diags, ref_diags):
            assert got.mean_match_error == expected.mean_match_error
            assert got.amplitude_estimate == expected.amplitude_estimate
            assert got.reversed_decode == expected.reversed_decode

    @given(spec=collision_specs)
    @settings(max_examples=25, deadline=None)
    def test_float32_fast_within_accuracy_gate(self, spec):
        batch, known, known_offset, unknown_offset, unknown_n_bits = (
            _build_collision_batch(spec)
        )
        reference = InterferenceDecoder()
        candidate = InterferenceDecoder(backend="float32-fast")
        args = (known, known_offset, unknown_offset, unknown_n_bits)
        try:
            ref_bits, _ = reference.decode_batch(batch, *args)
        except _DECODE_ERRORS:
            # The reduced-precision path must also refuse what the
            # reference refuses (insufficient overlap, degenerate Eq. 5-6
            # amplitudes) rather than fabricate bits.
            with pytest.raises(_DECODE_ERRORS):
                candidate.decode_batch(batch, *args)
            return
        bits, _ = candidate.decode_batch(batch, *args)
        gate = float(get_backend("float32-fast").accuracy_gate["max_ber_deviation"])
        assert float(np.mean(bits != ref_bits)) <= gate

    @given(bits=bit_matrices)
    @settings(max_examples=20, deadline=None)
    def test_digest_neutral_modem_bit_identical(self, bits):
        reference_wave = BatchMSKModulator().modulate(bits).samples
        for name in available_backends():
            if not is_digest_neutral(name):
                continue
            wave = BatchMSKModulator(backend=name).modulate(bits).samples
            assert np.array_equal(wave, reference_wave)
            decoded = BatchMSKDemodulator(backend=name).demodulate(
                SignalBatch(reference_wave)
            )
            assert np.array_equal(decoded, bits)

    @given(bits=bit_matrices)
    @settings(max_examples=20, deadline=None)
    def test_float32_fast_modem_roundtrip(self, bits):
        """Reduced precision still round-trips clean waveforms exactly.

        The batch container upcasts the synthesised complex64 samples to
        its canonical complex128 layout; the decision margins (±pi/2) are
        orders of magnitude above float32 rounding, so the bits survive.
        """
        wave = BatchMSKModulator(backend="float32-fast").modulate(bits)
        decoded = BatchMSKDemodulator(backend="float32-fast").demodulate(wave)
        assert np.array_equal(decoded, bits)
