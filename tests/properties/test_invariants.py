"""Property-based tests of the library's core invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.anc.lemma import phase_solutions, reconstruct_sample
from repro.coding.crc import CRC16
from repro.coding.hamming import Hamming74Code
from repro.coding.interleaver import BlockInterleaver
from repro.coding.repetition import RepetitionCode
from repro.framing.frame import Deframer, Framer
from repro.framing.header import Header
from repro.framing.packet import Packet
from repro.modulation.msk import MSKDemodulator, MSKModulator
from repro.scrambler.whitening import Scrambler
from repro.utils.angles import wrap_angle
from repro.utils.bits import bits_from_int, bits_to_int
from repro.utils.cdf import EmpiricalCDF

bit_lists = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=256)


class TestModulationInvariants:
    @given(bits=bit_lists)
    @settings(max_examples=50, deadline=None)
    def test_msk_roundtrip_is_identity(self, bits):
        data = np.array(bits, dtype=np.uint8)
        decoded = MSKDemodulator().demodulate(MSKModulator().modulate(data))
        assert np.array_equal(decoded, data)

    @given(bits=bit_lists, attenuation=st.floats(0.05, 2.0), phase=st.floats(-np.pi, np.pi))
    @settings(max_examples=50, deadline=None)
    def test_msk_invariant_to_flat_channel(self, bits, attenuation, phase):
        """Eq. 1: differential demodulation cancels h and gamma exactly."""
        data = np.array(bits, dtype=np.uint8)
        signal = MSKModulator().modulate(data).scaled(attenuation * np.exp(1j * phase))
        decoded = MSKDemodulator().demodulate(signal)
        assert np.array_equal(decoded, data)

    @given(bits=bit_lists)
    @settings(max_examples=30, deadline=None)
    def test_msk_constant_envelope(self, bits):
        signal = MSKModulator(amplitude=1.3).modulate(np.array(bits, dtype=np.uint8))
        assert np.allclose(np.abs(signal.samples), 1.3)


class TestLemmaInvariants:
    @given(
        amplitude_a=st.floats(0.1, 2.0),
        amplitude_b=st.floats(0.1, 2.0),
        theta=st.floats(-np.pi, np.pi),
        phi=st.floats(-np.pi, np.pi),
    )
    @settings(max_examples=200, deadline=None)
    def test_lemma_solutions_reconstruct_observation(self, amplitude_a, amplitude_b, theta, phi):
        """Both Lemma 6.1 branches regenerate the observed sample exactly."""
        y = amplitude_a * np.exp(1j * theta) + amplitude_b * np.exp(1j * phi)
        # The lemma is singular under (near-)complete destructive
        # cancellation — a zero observation has no recoverable phases.
        assume(abs(y) > 1e-3)
        solutions = phase_solutions(np.array([y]), amplitude_a, amplitude_b)
        for branch in (1, 2):
            rebuilt = reconstruct_sample(
                amplitude_a, amplitude_b,
                float(solutions.theta(branch)[0]), float(solutions.phi(branch)[0]),
            )
            assert abs(rebuilt - y) < 1e-7

    @given(
        amplitude_a=st.floats(0.1, 2.0),
        amplitude_b=st.floats(0.1, 2.0),
        theta=st.floats(-np.pi, np.pi),
        phi=st.floats(-np.pi, np.pi),
    )
    @settings(max_examples=200, deadline=None)
    def test_true_phase_pair_is_among_solutions(self, amplitude_a, amplitude_b, theta, phi):
        y = amplitude_a * np.exp(1j * theta) + amplitude_b * np.exp(1j * phi)
        # Lemma 6.1 is singular under (near-)complete destructive
        # cancellation: a zero observation carries no phase information,
        # so no finite solution pair can be expected to match.
        assume(abs(y) > 1e-3)
        solutions = phase_solutions(np.array([y]), amplitude_a, amplitude_b)
        close1 = abs(wrap_angle(solutions.theta1[0] - theta)) < 1e-5 and abs(
            wrap_angle(solutions.phi1[0] - phi)
        ) < 1e-5
        close2 = abs(wrap_angle(solutions.theta2[0] - theta)) < 1e-5 and abs(
            wrap_angle(solutions.phi2[0] - phi)
        ) < 1e-5
        assert close1 or close2


class TestCodingInvariants:
    @given(bits=bit_lists)
    @settings(max_examples=50, deadline=None)
    def test_crc_roundtrip(self, bits):
        data = np.array(bits, dtype=np.uint8)
        assert CRC16.verify(CRC16.append(data))

    @given(data=st.lists(st.integers(0, 1), min_size=4, max_size=64).filter(lambda x: len(x) % 4 == 0))
    @settings(max_examples=50, deadline=None)
    def test_hamming_roundtrip(self, data):
        code = Hamming74Code()
        bits = np.array(data, dtype=np.uint8)
        assert np.array_equal(code.decode(code.encode(bits)), bits)

    @given(
        data=st.lists(st.integers(0, 1), min_size=4, max_size=64).filter(lambda x: len(x) % 4 == 0),
        error_position=st.integers(0, 10_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_hamming_corrects_any_single_error(self, data, error_position):
        code = Hamming74Code()
        bits = np.array(data, dtype=np.uint8)
        coded = code.encode(bits)
        corrupted = coded.copy()
        corrupted[error_position % coded.size] ^= 1
        assert np.array_equal(code.decode(corrupted), bits)

    @given(bits=bit_lists, repetitions=st.sampled_from([3, 5, 7]))
    @settings(max_examples=30, deadline=None)
    def test_repetition_roundtrip(self, bits, repetitions):
        code = RepetitionCode(repetitions)
        data = np.array(bits, dtype=np.uint8)
        assert np.array_equal(code.decode(code.encode(data)), data)

    @given(bits=st.lists(st.integers(0, 1), min_size=64, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_interleaver_is_permutation(self, bits):
        interleaver = BlockInterleaver(rows=8, columns=8)
        data = np.array(bits, dtype=np.uint8)
        encoded = interleaver.encode(data)
        assert sorted(encoded.tolist()) == sorted(data.tolist())
        assert np.array_equal(interleaver.decode(encoded), data)

    @given(bits=bit_lists)
    @settings(max_examples=50, deadline=None)
    def test_scrambler_involution(self, bits):
        scrambler = Scrambler()
        data = np.array(bits, dtype=np.uint8)
        assert np.array_equal(scrambler.scramble(scrambler.scramble(data)), data)


class TestFramingInvariants:
    @given(
        source=st.integers(0, 255),
        destination=st.integers(0, 255),
        sequence=st.integers(0, 65535),
    )
    @settings(max_examples=100, deadline=None)
    def test_header_roundtrip(self, source, destination, sequence):
        header = Header(source, destination, sequence)
        assert Header.from_bits(header.to_bits()) == header

    @given(
        payload=st.lists(st.integers(0, 1), min_size=0, max_size=128),
        source=st.integers(0, 255),
        destination=st.integers(0, 255),
        sequence=st.integers(0, 65535),
    )
    @settings(max_examples=50, deadline=None)
    def test_frame_roundtrip_forward_and_backward(self, payload, source, destination, sequence):
        packet = Packet(source, destination, sequence, np.array(payload, dtype=np.uint8))
        framer, deframer = Framer(), Deframer()
        frame = framer.build(packet)
        forward = deframer.parse(frame.bits)
        backward = deframer.parse_backward(frame.bits[::-1])
        assert forward.delivered and backward.delivered
        assert np.array_equal(forward.packet.payload, packet.payload)
        assert np.array_equal(backward.packet.payload, packet.payload)


class TestUtilityInvariants:
    @given(value=st.integers(0, 2 ** 16 - 1), width=st.just(16))
    @settings(max_examples=50, deadline=None)
    def test_int_bits_roundtrip(self, value, width):
        assert bits_to_int(bits_from_int(value, width)) == value

    @given(angle=st.floats(-100.0, 100.0))
    @settings(max_examples=100, deadline=None)
    def test_wrap_angle_range_and_equivalence(self, angle):
        wrapped = wrap_angle(angle)
        assert -np.pi < wrapped <= np.pi + 1e-12
        assert np.isclose(np.exp(1j * wrapped), np.exp(1j * angle), atol=1e-9)

    @given(samples=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_cdf_monotone_and_bounded(self, samples):
        cdf = EmpiricalCDF.from_samples(samples)
        points = sorted(samples)
        values = [cdf.evaluate(p) for p in points]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)
