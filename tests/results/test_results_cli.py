"""Tests for the CLI's structured-output formats and unified registry."""

import json

import pytest

from repro import __version__, api
from repro.cli import EXPERIMENTS, FORMATS, SCENARIO_NAMES, build_parser, main
from repro.experiments import ExperimentConfig
from repro.experiments.alice_bob import run_alice_bob_experiment
from repro.results import ExperimentResult, SCHEMA_VERSION

SMALL = ["--runs", "2", "--packets", "3", "--payload-bits", "512"]


class TestRegistryDerivation:
    def test_experiment_lists_derive_from_unified_registry(self):
        assert list(EXPERIMENTS) == api.list_experiments(kind="figure")
        assert list(SCENARIO_NAMES) == api.list_experiments(kind="scenario")

    def test_main_parser_accepts_scenarios_too(self):
        args = build_parser().parse_args(["chain_sweep", "--quick"])
        assert args.experiment == "chain_sweep"
        assert args.quick is True

    def test_format_choices(self):
        args = build_parser().parse_args(["alice-bob", "--format", "json"])
        assert args.format == "json"
        assert set(FORMATS) == {"text", "json", "csv"}
        with pytest.raises(SystemExit):
            build_parser().parse_args(["alice-bob", "--format", "xml"])


class TestVersionFlag:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"anc-repro {__version__}"

    def test_scenario_parser_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--version"])
        assert excinfo.value.code == 0
        assert "anc-repro run" in capsys.readouterr().out


class TestFormats:
    def test_text_format_is_byte_identical_to_legacy_report(self, capsys):
        assert main(["alice-bob"] + SMALL) == 0
        out = capsys.readouterr().out
        legacy = run_alice_bob_experiment(
            ExperimentConfig(runs=2, packets_per_run=3, payload_bits=512)
        ).render()
        assert out == legacy + "\n"

    def test_json_format_parses_and_is_schema_versioned(self, capsys):
        assert main(["alice-bob"] + SMALL + ["--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["name"] == "alice-bob"
        result = ExperimentResult.from_dict(payload)
        assert result.config["runs"] == 2

    def test_csv_format_is_schema_versioned(self, capsys):
        assert main(["sir"] + SMALL + ["--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith(f"schema_version,{SCHEMA_VERSION}")
        assert "[series points]" in out

    def test_output_flag_writes_file(self, tmp_path, capsys):
        target = tmp_path / "result.json"
        assert main(
            ["chain"] + SMALL + ["--format", "json", "--output", str(target)]
        ) == 0
        assert capsys.readouterr().out == ""
        result = ExperimentResult.from_json(target.read_text())
        assert result.name == "chain"
        assert result.meta["engine"]["workers"] == 1

    def test_scenario_subcommand_json(self, capsys):
        assert main(
            ["run", "chain_sweep", "--quick", "--runs", "1", "--packets", "2",
             "--payload-bits", "512", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "scenario"
        assert payload["meta"]["runs"] == 1

    def test_scenario_via_main_parser(self, capsys):
        assert main(["chain_sweep", "--quick", "--runs", "1", "--packets", "2",
                     "--payload-bits", "512"]) == 0
        assert "=== scenario chain_sweep ===" in capsys.readouterr().out

    def test_scenario_quick_config_matches_run_subcommand(self):
        # 'anc-repro chain_sweep --quick' must use the same smoke-test
        # config base as 'anc-repro run chain_sweep --quick'.
        from repro.cli import _unified_config_from_args

        parser = build_parser()
        args = parser.parse_args(["chain_sweep", "--quick"])
        assert _unified_config_from_args(args, parser) == ExperimentConfig.quick(
            seed=args.seed
        )
        # Explicit flags still override the quick base.
        args = parser.parse_args(["chain_sweep", "--quick", "--runs", "5"])
        config = _unified_config_from_args(args, parser)
        assert config.runs == 5
        assert config.packets_per_run == ExperimentConfig.quick().packets_per_run
        # Figures keep the parser defaults.
        args = parser.parse_args(["alice-bob", "--quick"])
        assert _unified_config_from_args(args, parser).runs == 10

    def test_unwritable_output_is_clean_error(self, capsys):
        code = main(["capacity"] + SMALL + [
            "--format", "json", "--output", "/nonexistent-dir/result.json",
        ])
        assert code == 2
        assert "anc-repro: error:" in capsys.readouterr().err
