"""Byte-identity of the text view over structured results.

For every figure runner and scenario sweep, ``render_text(result)`` must
reproduce the legacy ``.render()`` report *exactly* — the acceptance
contract that makes text a pure view over the structured data.  Each
comparison also pushes the result through a JSON round-trip first, so the
view is proven to survive serialization, not just in-memory conversion.
"""

import pytest

from repro import api
from repro.experiments import ExperimentConfig
from repro.experiments.capacity_fig7 import render_capacity_table, run_capacity_experiment
from repro.experiments.alice_bob import run_alice_bob_experiment
from repro.experiments.chain import run_chain_experiment
from repro.experiments.scenarios import get_scenario, run_scenario
from repro.experiments.sir_sweep import render_sir_table, run_sir_sweep
from repro.experiments.snr_sweep import render_snr_table, run_snr_sweep
from repro.experiments.summary import run_summary
from repro.experiments.x_topology import run_x_topology_experiment
from repro.results import ExperimentResult, render_text


@pytest.fixture(scope="module")
def quick_config():
    return ExperimentConfig.quick(seed=11)


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(runs=1, packets_per_run=2, payload_bits=512, seed=3)


def roundtripped(result):
    """Push a result through JSON and back before rendering it."""
    return ExperimentResult.from_json(result.to_json())


class TestFigureByteIdentity:
    def test_alice_bob(self, quick_config):
        legacy = run_alice_bob_experiment(quick_config).render()
        result = api.run("alice-bob", config=quick_config)
        assert render_text(roundtripped(result)) == legacy

    def test_x_topology(self, quick_config):
        legacy = run_x_topology_experiment(quick_config).render()
        result = api.run("x", config=quick_config)
        assert render_text(roundtripped(result)) == legacy

    def test_chain(self, quick_config):
        legacy = run_chain_experiment(quick_config).render()
        result = api.run("chain", config=quick_config)
        assert render_text(roundtripped(result)) == legacy

    def test_capacity(self, quick_config):
        legacy = render_capacity_table(run_capacity_experiment(config=quick_config))
        result = api.run("capacity", config=quick_config)
        assert render_text(roundtripped(result)) == legacy

    def test_sir(self, quick_config):
        legacy = render_sir_table(
            run_sir_sweep(quick_config, packets_per_point=quick_config.packets_per_run)
        )
        result = api.run("sir", config=quick_config)
        assert render_text(roundtripped(result)) == legacy

    def test_snr(self, tiny_config):
        legacy = render_snr_table(run_snr_sweep(tiny_config))
        result = api.run("snr", config=tiny_config)
        assert render_text(roundtripped(result)) == legacy

    def test_summary(self, quick_config):
        legacy = run_summary(quick_config).render()
        result = api.run("summary", config=quick_config)
        assert render_text(roundtripped(result)) == legacy


class TestScenarioByteIdentity:
    @pytest.mark.parametrize("name", ["chain_sweep", "mesh_sweep"])
    def test_scenarios(self, name, tiny_config):
        legacy = run_scenario(get_scenario(name), tiny_config, quick=True).render()
        result = api.run(name, config=tiny_config, quick=True)
        assert render_text(roundtripped(result)) == legacy

    def test_scenario_report_to_result(self, tiny_config):
        report = run_scenario(get_scenario("chain_sweep"), tiny_config, quick=True)
        result = report.to_result(tiny_config)
        assert result.kind == "scenario"
        assert render_text(result) == report.render()


class TestReportToResult:
    def test_experiment_report_to_result(self, quick_config):
        report = run_alice_bob_experiment(quick_config)
        result = report.to_result("alice-bob", quick_config)
        assert result.name == "alice-bob"
        assert result.kind == "figure"
        assert render_text(result) == report.render()
        # Per-run table covers every scheme of the experiment.
        runs = result.get_series("runs")
        assert set(runs.column("scheme")) == {"anc", "traditional", "cope"}
        assert len(runs) == 3 * quick_config.runs

    def test_renderer_dispatch_rejects_unknown(self):
        from repro.exceptions import ConfigurationError

        stray = ExperimentResult(name="toy", kind="figure", config={}, meta={})
        with pytest.raises(ConfigurationError):
            render_text(stray)

    def test_capacity_nan_crossover_omitted_and_restored(self, quick_config):
        from repro.capacity.sweep import CapacityCurve
        from repro.results.adapters import capacity_result

        curve = CapacityCurve(
            snr_db=(10.0, 20.0),
            traditional=(1.0, 2.0),
            anc=(1.5, 3.0),
            gain=(1.5, 1.5),
            crossover_db=float("nan"),
        )
        result = capacity_result("capacity", curve, quick_config)
        # The model stores only finite numbers; the undefined crossover is
        # omitted and the text view restores the legacy NaN rendering.
        assert "crossover_db" not in result.scalars
        assert "crossover SNR: nan dB" in render_text(result)
        assert ExperimentResult.from_json(result.to_json()) == result
