"""Unit and property tests for the typed result model and its serialization.

The JSON round-trip property tests are the contract behind the
machine-readable exports: ``from_dict(to_dict(r)) == r`` and
``from_json(to_json(r)) == r`` must hold for *any* representable result,
not just the ones today's experiments produce.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.results.model import (
    SCHEMA_VERSION,
    ExperimentResult,
    Record,
    Series,
    config_digest,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
cells = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=16),
)

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12
)


@st.composite
def series_tables(draw):
    """A structurally valid Series with random cells."""
    columns = draw(st.lists(names, min_size=1, max_size=4, unique=True))
    rows = draw(
        st.lists(
            st.tuples(*([cells] * len(columns))),
            min_size=0,
            max_size=6,
        )
    )
    return Series(name=draw(names), columns=tuple(columns), rows=tuple(rows))


@st.composite
def experiment_results(draw):
    """A structurally valid ExperimentResult with random content."""
    tables = draw(st.lists(series_tables(), min_size=0, max_size=3))
    series = {}
    for table in tables:
        if table.name not in series:
            series[table.name] = table
    return ExperimentResult(
        name=draw(names),
        kind=draw(st.sampled_from(["figure", "scenario"])),
        config=draw(
            st.dictionaries(names, cells, max_size=5)
        ),
        seed=draw(st.integers(min_value=0, max_value=2**31)),
        series=series,
        scalars=draw(
            st.dictionaries(
                names,
                st.floats(allow_nan=False, allow_infinity=False),
                max_size=4,
            )
        ),
        meta=draw(st.dictionaries(names, cells, max_size=4)),
    )


# ----------------------------------------------------------------------
# Property tests: lossless serialization
# ----------------------------------------------------------------------
class TestRoundTripProperties:
    @given(series_tables())
    @settings(max_examples=100, deadline=None)
    def test_series_dict_round_trip(self, table):
        assert Series.from_dict(table.to_dict()) == table

    @given(experiment_results())
    @settings(max_examples=100, deadline=None)
    def test_result_dict_round_trip(self, result):
        assert ExperimentResult.from_dict(result.to_dict()) == result

    @given(experiment_results())
    @settings(max_examples=100, deadline=None)
    def test_result_json_round_trip(self, result):
        assert ExperimentResult.from_json(result.to_json()) == result

    @given(experiment_results())
    @settings(max_examples=50, deadline=None)
    def test_csv_is_schema_versioned(self, result):
        text = result.to_csv()
        assert text.startswith(f"schema_version,{SCHEMA_VERSION}")
        for table in result.series.values():
            assert f"[series {table.name}]" in text

    @given(experiment_results())
    @settings(max_examples=50, deadline=None)
    def test_digest_is_stable_and_config_keyed(self, result):
        assert result.config_digest == config_digest(result.config)


# ----------------------------------------------------------------------
# Unit tests: validation and accessors
# ----------------------------------------------------------------------
class TestSeries:
    def test_records_and_column(self):
        table = Series(name="points", columns=("x", "y"), rows=((1, 2.0), (3, 4.0)))
        assert table.column("x") == [1, 3]
        assert len(table) == 2
        records = table.records()
        assert isinstance(records[0], Record)
        assert records[0]["y"] == 2.0
        assert dict(records[1]) == {"x": 3, "y": 4.0}

    def test_row_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Series(name="bad", columns=("a", "b"), rows=((1,),))

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            Series(name="bad", columns=("a", "a"), rows=())

    def test_non_scalar_cell_rejected(self):
        with pytest.raises(ConfigurationError):
            Series(name="bad", columns=("a",), rows=(([1, 2],),))

    def test_unknown_column_lookup(self):
        table = Series(name="points", columns=("x",), rows=())
        with pytest.raises(ConfigurationError):
            table.column("nope")


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            name="toy",
            kind="figure",
            config={"seed": 7, "runs": 3},
            seed=7,
            series={"t": Series(name="t", columns=("v",), rows=((1,),))},
            scalars={"answer": 42.0},
            meta={"renderer": "report"},
        )

    def test_unknown_schema_version_rejected(self):
        payload = self._result().to_dict()
        payload["schema_version"] = "anc-repro.result/999"
        with pytest.raises(ConfigurationError):
            ExperimentResult.from_dict(payload)

    def test_missing_schema_version_rejected(self):
        payload = self._result().to_dict()
        del payload["schema_version"]
        with pytest.raises(ConfigurationError):
            ExperimentResult.from_dict(payload)

    def test_series_key_must_match_table_name(self):
        with pytest.raises(ConfigurationError):
            ExperimentResult(
                name="toy",
                kind="figure",
                config={},
                series={"a": Series(name="b", columns=("v",), rows=())},
            )

    def test_scalars_must_be_numbers(self):
        with pytest.raises(ConfigurationError):
            ExperimentResult(name="toy", kind="figure", config={}, scalars={"k": "v"})

    def test_non_finite_values_rejected_everywhere(self):
        # NaN/inf cannot survive strict JSON nor the equality round-trip,
        # so the model refuses them at construction.
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ConfigurationError):
                ExperimentResult(name="toy", kind="figure", config={}, scalars={"k": bad})
            with pytest.raises(ConfigurationError):
                Series(name="s", columns=("v",), rows=((bad,),))
            with pytest.raises(ConfigurationError):
                ExperimentResult(name="toy", kind="figure", config={}, meta={"k": bad})

    def test_json_export_is_strict(self):
        # allow_nan=False end to end: a well-formed result always emits
        # RFC-compliant JSON that json.loads(strict parsers) accept.
        result = self._result()
        import json

        payload = json.loads(result.to_json())
        assert payload["scalars"]["answer"] == 42.0

    def test_get_series_error_names_available(self):
        with pytest.raises(ConfigurationError):
            self._result().get_series("missing")

    def test_with_meta_merges(self):
        enriched = self._result().with_meta(engine={"workers": 2})
        assert enriched.meta["renderer"] == "report"
        assert enriched.meta["engine"]["workers"] == 2

    def test_tuples_normalised_for_json_equality(self):
        result = ExperimentResult(
            name="toy", kind="figure", config={"range": (1.0, 2.0)},
            meta={"values": (1, 2, 3)},
        )
        assert result.config["range"] == [1.0, 2.0]
        assert ExperimentResult.from_json(result.to_json()) == result

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentResult.from_json("not json")
        with pytest.raises(ConfigurationError):
            ExperimentResult.from_json("[1, 2]")
