"""Golden-schema test: the exported JSON of a quick ``alice-bob`` run.

Pins the *entire* serialized result — schema version, key layout, config
snapshot, digest, series tables, scalars, metadata — for the quick-scale
Alice-Bob experiment.  The replay configuration is read back out of the
fixture's own ``config`` snapshot (no duplicated constants): whatever
configuration ``tools/make_golden.py`` pinned is exactly what this test
re-runs.  Any change to the export layout or to the reproduced numbers
fails here; after an intentional change, regenerate with
``PYTHONPATH=src python tools/make_golden.py`` and commit the updated
fixture alongside the change that justifies it.
"""

import json
from pathlib import Path

from repro import api
from repro.experiments import ExperimentConfig
from repro.results import ExperimentResult, SCHEMA_VERSION, render_text

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "result_alice_bob_quick.json"


def _normalized(result) -> dict:
    """The result's dict with the one volatile field pinned.

    Mirrors ``tools/make_golden.py``'s ``normalized_result_dict``:
    wall-clock timing is the only non-deterministic field of a serial,
    cache-less run.
    """
    payload = result.to_dict()
    payload["meta"]["engine"]["elapsed_seconds"] = 0.0
    return payload


class TestGoldenResultSchema:
    def test_exported_json_matches_fixture(self):
        fixture = json.loads(GOLDEN_PATH.read_text())
        config = ExperimentConfig(
            **{k: tuple(v) if isinstance(v, list) else v
               for k, v in fixture["config"].items()}
        )
        result = api.run(fixture["name"], config=config)
        assert _normalized(result) == fixture

    def test_fixture_is_schema_versioned_and_parseable(self):
        fixture = json.loads(GOLDEN_PATH.read_text())
        assert fixture["schema_version"] == SCHEMA_VERSION
        result = ExperimentResult.from_dict(fixture)
        assert result.name == "alice-bob"
        assert result.seed == fixture["config"]["seed"]
        # The pinned structured data still renders as a full text report.
        text = render_text(result)
        assert "fig09_alice_bob" in text
        assert "gain" in text
