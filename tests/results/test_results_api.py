"""Tests for the unified :mod:`repro.api` facade."""

import pytest

from repro import api
from repro.exceptions import ConfigurationError
from repro.experiments import ExperimentConfig, ExperimentEngine
from repro.experiments.runner import RUNNERS, get_runner
from repro.experiments.scenarios import SCENARIOS
from repro.results import ExperimentResult, SCHEMA_VERSION, render_text

QUICK = ExperimentConfig.quick(seed=11)
TINY = ExperimentConfig(runs=1, packets_per_run=2, payload_bits=512, seed=3)


class TestRegistry:
    def test_namespace_merges_both_registries(self):
        names = api.list_experiments()
        assert names == list(RUNNERS) + list(SCENARIOS)

    def test_kind_filters(self):
        assert api.list_experiments(kind="figure") == list(RUNNERS)
        assert api.list_experiments(kind="scenario") == list(SCENARIOS)
        with pytest.raises(ConfigurationError):
            api.list_experiments(kind="nope")

    def test_get_experiment(self):
        entry = api.get_experiment("alice-bob")
        assert entry.kind == "figure"
        assert entry.description == RUNNERS["alice-bob"].description
        assert api.get_experiment("mesh_sweep").kind == "scenario"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            api.get_experiment("does-not-exist")
        with pytest.raises(ConfigurationError):
            api.run("does-not-exist")


class TestRun:
    def test_figure_run_returns_schema_versioned_result(self):
        result = api.run("alice-bob", config=QUICK)
        assert isinstance(result, ExperimentResult)
        assert result.schema_version == SCHEMA_VERSION
        assert result.name == "alice-bob"
        assert result.kind == "figure"
        assert result.seed == QUICK.seed
        assert result.config["runs"] == QUICK.runs

    def test_scenario_run_round_trips_losslessly(self):
        result = api.run("chain_sweep", config=TINY, quick=True)
        assert result.kind == "scenario"
        assert ExperimentResult.from_dict(result.to_dict()) == result

    def test_engine_metadata_attached(self):
        engine = ExperimentEngine(workers=1)
        result = api.run("chain", config=QUICK, engine=engine)
        meta = result.meta["engine"]
        assert meta["workers"] == 1
        assert meta["invocations"] == 1
        assert meta["total_trials"] == QUICK.runs
        assert meta["executed_trials"] == QUICK.runs
        assert meta["cached_trials"] == 0
        assert meta["elapsed_seconds"] >= 0.0
        assert meta["digests"]

    def test_engine_cache_metadata_reflects_resume(self, tmp_path):
        engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
        api.run("chain", config=QUICK, engine=engine)
        again = api.run("chain", config=QUICK, engine=engine)
        meta = again.meta["engine"]
        assert meta["executed_trials"] == 0
        assert meta["cached_trials"] == QUICK.runs
        assert meta["cache_dir"] == str(tmp_path)

    def test_summary_aggregates_multiple_engine_invocations(self):
        engine = ExperimentEngine(workers=1)
        result = api.run("summary", config=QUICK, engine=engine)
        assert result.meta["engine"]["invocations"] > 1

    def test_quick_thins_scenario_axis(self):
        spec = SCENARIOS["chain_sweep"]
        result = api.run("chain_sweep", config=TINY, quick=True)
        assert tuple(result.meta["sweep_values"]) == spec.values_for(quick=True)


class TestDeprecationShims:
    def test_runner_text_shim_matches_render_text(self):
        spec = get_runner("capacity")
        assert spec.run(QUICK, None) == render_text(spec.run_result(QUICK, None))

    def test_parallel_equals_serial_through_facade(self):
        serial = api.run("chain_sweep", config=TINY, quick=True)
        parallel = api.run(
            "chain_sweep", config=TINY, engine=ExperimentEngine(workers=2), quick=True
        )
        assert render_text(serial) == render_text(parallel)
        assert serial.get_series("cells") == parallel.get_series("cells")
