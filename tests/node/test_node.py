"""Tests for the basic Node abstraction."""

import pytest

from repro.anc.pipeline import ReceiveOutcome
from repro.channel.link import Link
from repro.exceptions import ConfigurationError
from repro.node.node import Node, NodeConfig


class TestNodeConfig:
    def test_defaults(self):
        config = NodeConfig()
        assert config.payload_bits == 512
        assert config.noise_power > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(payload_bits=0)
        with pytest.raises(ConfigurationError):
            NodeConfig(tx_amplitude=0)
        with pytest.raises(ConfigurationError):
            NodeConfig(noise_power=-1)


class TestNode:
    def test_invalid_id(self):
        with pytest.raises(ConfigurationError):
            Node(-1)

    def test_sequence_numbers_increment(self):
        node = Node(1)
        assert node.next_sequence() == 0
        assert node.next_sequence() == 1

    def test_make_packet_fields(self, rng):
        node = Node(3, NodeConfig(payload_bits=64))
        packet = node.make_packet(destination=9, rng=rng)
        assert packet.source == 3
        assert packet.destination == 9
        assert packet.payload_length == 64

    def test_transmit_stores_frame(self, rng):
        node = Node(1, NodeConfig(payload_bits=64))
        packet = node.make_packet(2, rng)
        node.transmit(packet)
        assert node.known_frames.lookup(*packet.identity) is not None

    def test_transmit_waveform_length(self, rng):
        node = Node(1, NodeConfig(payload_bits=64))
        packet = node.make_packet(2, rng)
        wave = node.transmit(packet)
        assert len(wave) == node.frame_samples

    def test_overhear_and_remember(self, rng):
        node = Node(5, NodeConfig(payload_bits=64))
        other = Node(1, NodeConfig(payload_bits=64))
        packet = other.make_packet(9, rng)
        frame = other.build_frame(packet)
        node.overhear(frame)
        assert node.known_frames.contains_header(frame.header)
        node.known_frames.clear()
        node.remember_packet(packet)
        assert node.known_frames.lookup(*packet.identity) is not None

    def test_receive_clean_packet(self, rng):
        sender = Node(1, NodeConfig(payload_bits=64, noise_power=1e-3))
        receiver = Node(2, NodeConfig(payload_bits=64, noise_power=1e-3))
        packet = sender.make_packet(2, rng)
        wave = sender.transmit(packet)
        link = Link(attenuation=0.8, phase_shift=0.3, noise_power=1e-3)
        result = receiver.receive(link.propagate(wave, rng=rng))
        assert result.outcome == ReceiveOutcome.CLEAN_DECODED
        assert packet.identity in receiver.delivered

    def test_receive_ignores_packets_for_others(self, rng):
        sender = Node(1, NodeConfig(payload_bits=64, noise_power=1e-3))
        receiver = Node(7, NodeConfig(payload_bits=64, noise_power=1e-3))
        packet = sender.make_packet(2, rng)
        wave = sender.transmit(packet)
        link = Link(attenuation=0.8, noise_power=1e-3)
        result = receiver.receive(link.propagate(wave, rng=rng))
        assert result.delivered
        assert packet.identity not in receiver.delivered

    def test_forward_keeps_original_addressing(self, rng):
        origin = Node(1, NodeConfig(payload_bits=64))
        router = Node(2, NodeConfig(payload_bits=64))
        packet = origin.make_packet(4, rng)
        router.forward(packet)
        stored = router.known_frames.lookup(*packet.identity)
        assert stored is not None
        assert stored.packet.source == 1
