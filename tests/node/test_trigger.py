"""Tests for the trigger protocol (§7.6)."""

import numpy as np
import pytest

from repro.channel.interference import OverlapModel
from repro.exceptions import ConfigurationError
from repro.node.trigger import Trigger, TriggerScheduler


class TestTrigger:
    def test_valid_trigger(self):
        trigger = Trigger(issuer=0, targets=(1, 2))
        assert trigger.issuer == 0
        assert trigger.targets == (1, 2)

    def test_empty_targets_rejected(self):
        with pytest.raises(ConfigurationError):
            Trigger(issuer=0, targets=())

    def test_duplicate_targets_rejected(self):
        with pytest.raises(ConfigurationError):
            Trigger(issuer=0, targets=(1, 1))

    def test_self_trigger_rejected(self):
        with pytest.raises(ConfigurationError):
            Trigger(issuer=1, targets=(1, 2))


class TestTriggerScheduler:
    def test_offsets_for_two_targets(self):
        scheduler = TriggerScheduler(rng=np.random.default_rng(0))
        offsets = scheduler.schedule(Trigger(0, (1, 2)), frame_samples=1000)
        assert set(offsets) == {1, 2}
        assert min(offsets.values()) == 0
        assert max(offsets.values()) < 1000

    def test_either_target_can_lead(self):
        scheduler = TriggerScheduler(rng=np.random.default_rng(1))
        leaders = set()
        for _ in range(50):
            offsets = scheduler.schedule(Trigger(0, (1, 2)), frame_samples=1000)
            leaders.add(min(offsets, key=offsets.get))
        assert leaders == {1, 2}

    def test_overlap_statistics_respect_model(self):
        model = OverlapModel(mean_overlap=0.8, jitter=0.02, rng=np.random.default_rng(2))
        scheduler = TriggerScheduler(overlap_model=model, rng=np.random.default_rng(2))
        overlaps = []
        for _ in range(200):
            offsets = scheduler.schedule(Trigger(0, (1, 2)), frame_samples=1000)
            overlaps.append(1.0 - max(offsets.values()) / 1000)
        assert np.mean(overlaps) == pytest.approx(0.8, abs=0.03)

    def test_three_targets_all_scheduled(self):
        scheduler = TriggerScheduler(rng=np.random.default_rng(3))
        offsets = scheduler.schedule(Trigger(0, (1, 2, 3)), frame_samples=500)
        assert set(offsets) == {1, 2, 3}

    def test_invalid_frame_length(self):
        scheduler = TriggerScheduler(rng=np.random.default_rng(4))
        with pytest.raises(ConfigurationError):
            scheduler.schedule(Trigger(0, (1, 2)), frame_samples=0)
