"""Tests for the relay and router nodes (§7.5)."""

import numpy as np
import pytest

from repro.channel.interference import InterferenceCombiner
from repro.channel.link import Link
from repro.node.node import NodeConfig
from repro.node.relay import RelayNode
from repro.node.router import RouterAction, RouterNode

PAYLOAD = 128
NOISE = 1e-3


def _config():
    return NodeConfig(payload_bits=PAYLOAD, noise_power=NOISE)


def _collision(frame_a_node, frame_b_node, dst_a=2, dst_b=1, offset=140, seed=0):
    rng = np.random.default_rng(seed)
    packet_a = frame_a_node.make_packet(dst_a, rng)
    packet_b = frame_b_node.make_packet(dst_b, rng)
    wave_a = frame_a_node.transmit(packet_a)
    wave_b = frame_b_node.transmit(packet_b)
    link_a = Link(attenuation=0.85, phase_shift=0.5, frequency_offset=0.03)
    link_b = Link(attenuation=0.8, phase_shift=-1.0, frequency_offset=-0.02)
    combiner = InterferenceCombiner(noise_power=NOISE, rng=rng)
    collision = combiner.combine([(wave_a, link_a, 0), (wave_b, link_b, offset)], tail_padding=32)
    return packet_a, packet_b, collision.signal


class TestRelayNode:
    def test_amplify_to_power_budget(self, rng):
        from repro.node.node import Node

        alice = Node(1, _config())
        relay = RelayNode(0, _config())
        wave = alice.transmit(alice.make_packet(2, rng))
        attenuated = Link(attenuation=0.3).distort(wave)
        rebroadcast = relay.amplify_and_forward(attenuated)
        assert rebroadcast.average_power == pytest.approx(1.0, rel=0.05)


class TestRouterNode:
    def test_amplify_forward_when_neither_known_and_crossing(self):
        from repro.node.node import Node

        alice = Node(1, _config())
        bob = Node(2, _config())
        router = RouterNode(0, neighbors=[1, 2], config=_config())
        _, _, collision = _collision(alice, bob)
        decision = router.process(collision)
        assert decision.action == RouterAction.AMPLIFY_FORWARD
        assert decision.broadcast is not None
        # The broadcast is rescaled to the relay's power budget; the average
        # over the whole waveform is a little lower because the partially
        # overlapped head and tail carry only one of the two signals.
        assert 0.6 < decision.broadcast.average_power <= 1.2

    def test_decode_when_one_packet_known(self):
        """The chain case: the router already forwarded the interfering packet."""
        from repro.node.node import Node

        upstream = Node(1, _config())
        downstream = Node(3, _config())
        router = RouterNode(2, neighbors=[1, 3], config=_config())
        # The router knows downstream's packet because it forwarded it earlier.
        rng = np.random.default_rng(1)
        forwarded = upstream.make_packet(4, rng)
        router.remember_packet(forwarded)
        new_packet = upstream.make_packet(4, rng)
        wave_new = upstream.transmit(new_packet)
        wave_fwd = downstream.framer.build(forwarded)
        wave_fwd = downstream.modulator.modulate(wave_fwd.bits)
        combiner = InterferenceCombiner(noise_power=NOISE, rng=rng)
        collision = combiner.combine(
            [
                (wave_new, Link(attenuation=0.85, frequency_offset=0.03), 0),
                (wave_fwd, Link(attenuation=0.8, frequency_offset=-0.02), 150),
            ],
            tail_padding=32,
        )
        decision = router.process(collision.signal)
        assert decision.action == RouterAction.DECODE
        assert decision.packet.identity == new_packet.identity

    def test_drop_when_not_crossing(self):
        """Two unknown packets heading to the same destination are dropped."""
        from repro.node.node import Node

        a = Node(1, _config())
        b = Node(3, _config())
        router = RouterNode(0, neighbors=[1, 2, 3], config=_config())
        _, _, collision = _collision(a, b, dst_a=2, dst_b=2, seed=3)
        decision = router.process(collision)
        assert decision.action == RouterAction.DROP

    def test_deliver_clean_packet(self, rng):
        from repro.node.node import Node

        alice = Node(1, _config())
        router = RouterNode(0, neighbors=[1, 2], config=_config())
        wave = alice.transmit(alice.make_packet(2, rng))
        received = Link(attenuation=0.8, noise_power=NOISE).propagate(wave, rng=rng)
        decision = router.process(received)
        assert decision.action == RouterAction.DELIVER

    def test_drop_on_noise(self, rng):
        from repro.signal.noise import awgn
        from repro.signal.samples import ComplexSignal

        router = RouterNode(0, neighbors=[1, 2], config=_config())
        decision = router.process(awgn(ComplexSignal.silence(500), NOISE, rng))
        assert decision.action == RouterAction.DROP

    def test_set_neighbors(self):
        router = RouterNode(0, neighbors=[1], config=_config())
        router.set_neighbors([1, 2, 3])
        assert router.neighbors == {1, 2, 3}
