"""Tests for the CRC implementations."""

import numpy as np
import pytest

from repro.coding.crc import CRC16, CRC32, append_crc, check_and_strip_crc
from repro.exceptions import CRCError
from repro.utils.bits import random_bits


class TestCRC16:
    def test_append_and_verify(self):
        data = random_bits(120, np.random.default_rng(0))
        coded = CRC16.append(data)
        assert coded.size == 120 + 16
        assert CRC16.verify(coded)

    def test_detects_single_bit_error(self):
        data = random_bits(120, np.random.default_rng(1))
        coded = CRC16.append(data)
        for position in (0, 50, coded.size - 1):
            corrupted = coded.copy()
            corrupted[position] ^= 1
            assert not CRC16.verify(corrupted)

    def test_detects_burst_errors(self):
        data = random_bits(200, np.random.default_rng(2))
        coded = CRC16.append(data)
        corrupted = coded.copy()
        corrupted[40:52] ^= 1
        assert not CRC16.verify(corrupted)

    def test_strip_returns_payload(self):
        data = random_bits(64, np.random.default_rng(3))
        assert np.array_equal(CRC16.strip(CRC16.append(data)), data)

    def test_strip_raises_on_corruption(self):
        data = random_bits(64, np.random.default_rng(4))
        coded = CRC16.append(data)
        coded[3] ^= 1
        with pytest.raises(CRCError):
            CRC16.strip(coded)

    def test_too_short_fails_verification(self):
        assert not CRC16.verify(random_bits(8, np.random.default_rng(5)))

    def test_deterministic(self):
        data = random_bits(64, np.random.default_rng(6))
        assert CRC16.compute(data) == CRC16.compute(data)

    def test_empty_payload(self):
        coded = CRC16.append(np.array([], dtype=np.uint8))
        assert coded.size == 16
        assert CRC16.verify(coded)


class TestCRC32:
    def test_roundtrip(self):
        data = random_bits(256, np.random.default_rng(7))
        assert CRC32.verify(CRC32.append(data))

    def test_detects_error(self):
        data = random_bits(256, np.random.default_rng(8))
        coded = CRC32.append(data)
        coded[100] ^= 1
        assert not CRC32.verify(coded)


class TestHelpers:
    def test_append_crc_default(self):
        data = random_bits(32, np.random.default_rng(9))
        assert append_crc(data).size == 48

    def test_check_and_strip_ok(self):
        data = random_bits(32, np.random.default_rng(10))
        payload, ok = check_and_strip_crc(append_crc(data))
        assert ok
        assert np.array_equal(payload, data)

    def test_check_and_strip_corrupted_does_not_raise(self):
        data = random_bits(32, np.random.default_rng(11))
        coded = append_crc(data)
        coded[0] ^= 1
        payload, ok = check_and_strip_crc(coded)
        assert not ok
        assert payload.size == 32

    def test_check_and_strip_too_short(self):
        payload, ok = check_and_strip_crc(np.array([1, 0, 1], dtype=np.uint8))
        assert not ok
