"""Tests for the repetition code, Hamming(7,4), interleaver and FEC pipeline."""

import numpy as np
import pytest

from repro.coding.fec import FECPipeline, IdentityCode
from repro.coding.hamming import Hamming74Code
from repro.coding.interleaver import BlockInterleaver
from repro.coding.repetition import RepetitionCode
from repro.exceptions import CodingError
from repro.utils.bits import random_bits


class TestRepetitionCode:
    def test_roundtrip_clean(self):
        code = RepetitionCode(3)
        data = random_bits(50, np.random.default_rng(0))
        assert np.array_equal(code.decode(code.encode(data)), data)

    def test_corrects_single_error_per_block(self):
        code = RepetitionCode(3)
        data = np.array([1, 0, 1, 1], dtype=np.uint8)
        coded = code.encode(data)
        coded[0] ^= 1  # one error in the first block
        coded[5] ^= 1  # one error in the second block
        assert np.array_equal(code.decode(coded), data)

    def test_fails_with_majority_errors(self):
        code = RepetitionCode(3)
        coded = code.encode(np.array([1], dtype=np.uint8))
        coded[0] ^= 1
        coded[1] ^= 1
        assert code.decode(coded)[0] == 0

    def test_even_repetitions_rejected(self):
        with pytest.raises(CodingError):
            RepetitionCode(4)

    def test_rate_and_overhead(self):
        code = RepetitionCode(3)
        assert code.rate == pytest.approx(1 / 3)
        assert code.redundancy_overhead == pytest.approx(2.0)
        assert code.correctable_errors_per_block() == 1

    def test_decode_length_validation(self):
        with pytest.raises(CodingError):
            RepetitionCode(3).decode([1, 0])


class TestHamming74:
    def test_roundtrip_clean(self):
        code = Hamming74Code()
        data = random_bits(64, np.random.default_rng(1))
        assert np.array_equal(code.decode(code.encode(data)), data)

    def test_corrects_any_single_error(self):
        code = Hamming74Code()
        data = random_bits(4, np.random.default_rng(2))
        coded = code.encode(data)
        for position in range(7):
            corrupted = coded.copy()
            corrupted[position] ^= 1
            assert np.array_equal(code.decode(corrupted), data), position

    def test_double_error_not_corrected(self):
        code = Hamming74Code()
        data = np.array([1, 0, 1, 0], dtype=np.uint8)
        coded = code.encode(data)
        coded[0] ^= 1
        coded[1] ^= 1
        assert not np.array_equal(code.decode(coded), data)

    def test_rate(self):
        assert Hamming74Code().rate == pytest.approx(4 / 7)

    def test_encode_length_validation(self):
        with pytest.raises(CodingError):
            Hamming74Code().encode([1, 0, 1])

    def test_empty_input(self):
        assert Hamming74Code().encode(np.array([], dtype=np.uint8)).size == 0


class TestBlockInterleaver:
    def test_roundtrip(self):
        interleaver = BlockInterleaver(rows=4, columns=8)
        data = random_bits(64, np.random.default_rng(3))
        assert np.array_equal(interleaver.decode(interleaver.encode(data)), data)

    def test_rate_one(self):
        assert BlockInterleaver(4, 4).rate == 1.0

    def test_spreads_bursts(self):
        """A burst of consecutive errors lands in distinct de-interleaved blocks."""
        rows, columns = 7, 8
        interleaver = BlockInterleaver(rows=rows, columns=columns)
        data = np.zeros(rows * columns, dtype=np.uint8)
        coded = interleaver.encode(data)
        coded[:4] ^= 1  # a 4-bit burst on the wire
        decoded = interleaver.decode(coded)
        error_positions = np.nonzero(decoded)[0]
        blocks = set(int(p) // 7 for p in error_positions)
        assert len(blocks) == 4  # each error falls into a different Hamming block

    def test_length_validation(self):
        with pytest.raises(CodingError):
            BlockInterleaver(4, 4).encode(random_bits(10, np.random.default_rng(4)))


class TestFECPipeline:
    def test_identity_default(self):
        pipeline = FECPipeline([])
        data = random_bits(16, np.random.default_rng(5))
        assert np.array_equal(pipeline.encode(data), data)

    def test_hamming_plus_repetition_roundtrip(self):
        pipeline = FECPipeline([Hamming74Code(), RepetitionCode(3)])
        data = random_bits(32, np.random.default_rng(6))
        assert np.array_equal(pipeline.decode(pipeline.encode(data)), data)

    def test_combined_rate(self):
        pipeline = FECPipeline([Hamming74Code(), RepetitionCode(3)])
        assert pipeline.rate == pytest.approx(4 / 21)

    def test_expansion(self):
        pipeline = FECPipeline([Hamming74Code()])
        assert pipeline.expansion(8) == 14

    def test_expansion_validates_length(self):
        with pytest.raises(CodingError):
            FECPipeline([Hamming74Code()]).expansion(10)

    def test_interleaved_hamming_corrects_burst(self):
        """Interleaving lets Hamming(7,4) fix a burst it could not fix alone."""
        pipeline = FECPipeline([Hamming74Code(), BlockInterleaver(rows=7, columns=8)])
        data = random_bits(32, np.random.default_rng(7))
        coded = pipeline.encode(data)
        corrupted = coded.copy()
        corrupted[10:14] ^= 1  # 4-bit burst
        assert np.array_equal(pipeline.decode(corrupted), data)

    def test_rejects_non_code_stage(self):
        with pytest.raises(CodingError):
            FECPipeline([Hamming74Code(), "xor"])

    def test_identity_code_properties(self):
        code = IdentityCode()
        assert code.rate == 1.0
        assert code.redundancy_overhead == 0.0

    def test_random_error_correction_rate(self):
        """Hamming+interleaver repairs a 2 % random BER almost always."""
        rng = np.random.default_rng(8)
        pipeline = FECPipeline([Hamming74Code(), BlockInterleaver(rows=7, columns=8)])
        data = random_bits(448, rng)
        coded = pipeline.encode(data)
        flips = rng.uniform(size=coded.size) < 0.02
        corrupted = np.bitwise_xor(coded, flips.astype(np.uint8))
        decoded = pipeline.decode(corrupted)
        residual = np.mean(decoded != data)
        assert residual < 0.01
