"""Tests for the parameterized topology generators."""

import numpy as np
import pytest

from repro.channel.pathloss import PathLossModel
from repro.exceptions import ConfigurationError
from repro.network.generator import (
    GENERATORS,
    available_generators,
    generate_chain,
    generate_geometric_mesh,
    generate_random_mesh,
    generate_star,
    get_generator,
)
from repro.network.topologies import ChannelConditions

CONDITIONS = ChannelConditions(snr_db=28.0)


class TestRegistry:
    def test_all_generators_listed(self):
        assert available_generators() == [
            "chain",
            "star",
            "random_mesh",
            "geometric_mesh",
        ]

    def test_lookup_by_name(self):
        for name in available_generators():
            assert get_generator(name) is GENERATORS[name]

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_generator("torus")


class TestChain:
    def test_lengths(self):
        for hops in (2, 3, 5, 8):
            topo = generate_chain(CONDITIONS, np.random.default_rng(0), hops=hops)
            assert len(topo) == hops + 1
            assert topo.shortest_path(1, hops + 1) == list(range(1, hops + 2))

    def test_only_adjacent_nodes_in_range(self):
        topo = generate_chain(CONDITIONS, np.random.default_rng(1), hops=5)
        assert topo.in_range(2, 3) and topo.in_range(3, 2)
        assert not topo.in_range(1, 3)
        assert not topo.in_range(2, 5)


class TestStar:
    def test_structure(self):
        topo = generate_star(CONDITIONS, np.random.default_rng(2), leaves=5)
        assert len(topo) == 6
        for leaf in range(1, 6):
            assert topo.in_range(leaf, 0) and topo.in_range(0, leaf)
        assert not topo.in_range(1, 2)
        assert topo.shortest_path(1, 4) == [1, 0, 4]

    def test_too_few_leaves_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_star(CONDITIONS, np.random.default_rng(3), leaves=1)


class TestRandomMesh:
    def test_deterministic_given_seed(self):
        first = generate_random_mesh(CONDITIONS, np.random.default_rng(7), nodes=10)
        second = generate_random_mesh(CONDITIONS, np.random.default_rng(7), nodes=10)
        assert sorted(first.graph.edges) == sorted(second.graph.edges)
        for a, b in first.graph.edges:
            assert first.link(a, b).attenuation == second.link(a, b).attenuation

    @pytest.mark.parametrize("seed", range(6))
    def test_always_connected(self, seed):
        topo = generate_random_mesh(
            CONDITIONS, np.random.default_rng(seed), nodes=10, radius=0.3
        )
        nodes = topo.nodes
        for destination in nodes[1:]:
            assert topo.shortest_path(nodes[0], destination)

    def test_attenuation_decays_with_distance(self):
        topo = generate_random_mesh(CONDITIONS, np.random.default_rng(11), nodes=12)
        attenuations = [topo.link(a, b).attenuation for a, b in topo.graph.edges]
        jitter = CONDITIONS.attenuation_jitter
        assert max(attenuations) <= CONDITIONS.mean_attenuation + jitter + 1e-9
        assert min(attenuations) >= 0.05

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            generate_random_mesh(CONDITIONS, np.random.default_rng(0), nodes=2)
        with pytest.raises(ConfigurationError):
            generate_random_mesh(CONDITIONS, np.random.default_rng(0), radius=0.0)


class TestGeometricMesh:
    def test_deterministic_given_seed(self):
        first = generate_geometric_mesh(CONDITIONS, np.random.default_rng(7), nodes=10)
        second = generate_geometric_mesh(CONDITIONS, np.random.default_rng(7), nodes=10)
        assert sorted(first.graph.edges) == sorted(second.graph.edges)
        for a, b in first.graph.edges:
            assert first.link(a, b).attenuation == second.link(a, b).attenuation
        assert first.positions == second.positions

    @pytest.mark.parametrize("seed", range(4))
    def test_always_connected(self, seed):
        topo = generate_geometric_mesh(
            CONDITIONS, np.random.default_rng(seed), nodes=10, radius=0.3
        )
        nodes = topo.nodes
        for destination in nodes[1:]:
            assert topo.shortest_path(nodes[0], destination)

    def test_gain_follows_the_path_loss_law(self):
        model = PathLossModel(
            exponent=2.0,
            reference_distance=0.2,
            reference_attenuation=0.95,
            min_attenuation=0.05,
        )
        conditions = ChannelConditions(snr_db=28.0, attenuation_jitter=0.0)
        topo = generate_geometric_mesh(
            conditions, np.random.default_rng(11), nodes=12, path_loss=model
        )
        for a, b in topo.graph.edges:
            pos_a = np.asarray(topo.positions[a])
            pos_b = np.asarray(topo.positions[b])
            distance = float(np.linalg.norm(pos_a - pos_b))
            expected = float(np.clip(model.attenuation(distance), 0.05, 1.5))
            assert topo.link(a, b).attenuation == pytest.approx(expected)

    def test_positions_cover_every_node(self):
        topo = generate_geometric_mesh(CONDITIONS, np.random.default_rng(2), nodes=8)
        assert sorted(topo.positions) == topo.nodes
        for x, y in topo.positions.values():
            assert 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0

    def test_same_placement_as_random_mesh(self):
        """Both mesh families share the placement draw, so a given seed
        yields the same radio graph — only the gain law differs."""
        random_mesh = generate_random_mesh(
            CONDITIONS, np.random.default_rng(9), nodes=10
        )
        geometric = generate_geometric_mesh(
            CONDITIONS, np.random.default_rng(9), nodes=10
        )
        assert sorted(random_mesh.graph.edges) == sorted(geometric.graph.edges)
        assert random_mesh.positions == geometric.positions

    def test_positions_declared_on_every_topology(self):
        """`positions` is a declared Topology attribute: mesh families set
        it, placement-free generators leave it None (no AttributeError)."""
        assert generate_chain(CONDITIONS, np.random.default_rng(0)).positions is None
        assert generate_star(CONDITIONS, np.random.default_rng(0)).positions is None
        mesh = generate_random_mesh(CONDITIONS, np.random.default_rng(0), nodes=8)
        assert sorted(mesh.positions) == mesh.nodes

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            generate_geometric_mesh(CONDITIONS, np.random.default_rng(0), nodes=2)
        with pytest.raises(ConfigurationError):
            generate_geometric_mesh(CONDITIONS, np.random.default_rng(0), radius=0.0)
