"""Tests for the canonical topology factories."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.network.topologies import (
    ALICE,
    BOB,
    N1,
    N2,
    N3,
    N4,
    N5,
    RELAY,
    ChannelConditions,
    alice_bob_topology,
    chain_topology,
    x_topology,
)


class TestChannelConditions:
    def test_noise_power_from_snr(self):
        conditions = ChannelConditions(snr_db=20.0, mean_attenuation=1.0, tx_amplitude=1.0)
        assert conditions.noise_power == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChannelConditions(mean_attenuation=0.0)
        with pytest.raises(ConfigurationError):
            ChannelConditions(attenuation_jitter=-1)
        with pytest.raises(ConfigurationError):
            ChannelConditions(max_cfo=-0.1)
        with pytest.raises(ConfigurationError):
            ChannelConditions(max_phase_drift=-0.1)


class TestAliceBobTopology:
    def test_structure(self, rng):
        topo = alice_bob_topology(rng=rng)
        assert set(topo.nodes) == {RELAY, ALICE, BOB}
        assert topo.in_range(ALICE, RELAY)
        assert topo.in_range(BOB, RELAY)
        assert not topo.in_range(ALICE, BOB)

    def test_routing_goes_through_relay(self, rng):
        topo = alice_bob_topology(rng=rng)
        assert topo.shortest_path(ALICE, BOB) == [ALICE, RELAY, BOB]

    def test_different_seeds_draw_different_links(self):
        a = alice_bob_topology(rng=np.random.default_rng(1))
        b = alice_bob_topology(rng=np.random.default_rng(2))
        assert a.link(ALICE, RELAY).phase_shift != b.link(ALICE, RELAY).phase_shift

    def test_noise_power_propagates(self, rng):
        conditions = ChannelConditions(snr_db=25.0)
        topo = alice_bob_topology(conditions, rng)
        assert topo.noise_power(ALICE) == pytest.approx(conditions.noise_power)


class TestChainTopology:
    def test_structure(self, rng):
        topo = chain_topology(rng=rng)
        assert topo.nodes == [1, 2, 3, 4]
        assert topo.in_range(1, 2) and topo.in_range(3, 4)
        assert not topo.in_range(1, 3)
        assert not topo.in_range(1, 4)

    def test_route_is_the_chain(self, rng):
        topo = chain_topology(rng=rng)
        assert topo.shortest_path(1, 4) == [1, 2, 3, 4]

    def test_custom_hop_count(self, rng):
        topo = chain_topology(rng=rng, hops=5)
        assert len(topo) == 6

    def test_minimum_hops(self, rng):
        with pytest.raises(ConfigurationError):
            chain_topology(rng=rng, hops=1)


class TestXTopology:
    def test_structure(self, rng):
        topo = x_topology(rng=rng)
        assert set(topo.nodes) == {N1, N2, N3, N4, N5}
        for endpoint in (N1, N2, N3, N4):
            assert topo.in_range(endpoint, N5)
        # Overhearing links exist but are not routable.
        assert topo.in_range(N1, N2)
        assert topo.in_range(N3, N4)
        assert not topo.is_routable(N1, N2)

    def test_routes_cross_at_router(self, rng):
        topo = x_topology(rng=rng)
        assert topo.shortest_path(N1, N4) == [N1, N5, N4]
        assert topo.shortest_path(N3, N2) == [N3, N5, N2]

    def test_cross_interference_weaker_than_overhearing(self, rng):
        conditions = ChannelConditions()
        topo = x_topology(conditions, rng)
        assert topo.link(N3, N2).attenuation < topo.link(N1, N2).attenuation
