"""Tests for the Topology graph."""

import pytest

from repro.channel.link import Link
from repro.exceptions import TopologyError
from repro.network.topology import Topology


def _triangle():
    topo = Topology()
    for node in (1, 2, 3):
        topo.add_node(node, noise_power=1e-3)
    topo.add_symmetric_link(1, 2, Link(attenuation=0.8))
    topo.add_symmetric_link(2, 3, Link(attenuation=0.7))
    return topo


class TestConstruction:
    def test_nodes_sorted(self):
        topo = _triangle()
        assert topo.nodes == [1, 2, 3]
        assert len(topo) == 3

    def test_contains(self):
        topo = _triangle()
        assert 2 in topo
        assert 9 not in topo

    def test_link_before_node_rejected(self):
        topo = Topology()
        topo.add_node(1)
        with pytest.raises(TopologyError):
            topo.add_link(1, 2, Link())

    def test_self_link_rejected(self):
        topo = Topology()
        topo.add_node(1)
        with pytest.raises(TopologyError):
            topo.add_link(1, 1, Link())

    def test_negative_node_rejected(self):
        with pytest.raises(TopologyError):
            Topology().add_node(-1)

    def test_validate_passes_for_wellformed(self):
        _triangle().validate()


class TestQueries:
    def test_in_range(self):
        topo = _triangle()
        assert topo.in_range(1, 2)
        assert not topo.in_range(1, 3)

    def test_link_lookup(self):
        topo = _triangle()
        assert topo.link(1, 2).attenuation == pytest.approx(0.8)
        with pytest.raises(TopologyError):
            topo.link(1, 3)

    def test_noise_power(self):
        topo = _triangle()
        assert topo.noise_power(1) == pytest.approx(1e-3)
        with pytest.raises(TopologyError):
            topo.noise_power(42)

    def test_neighbors(self):
        topo = _triangle()
        assert topo.neighbors(2) == [1, 3]
        with pytest.raises(TopologyError):
            topo.neighbors(99)

    def test_shortest_path(self):
        topo = _triangle()
        assert topo.shortest_path(1, 3) == [1, 2, 3]

    def test_no_route_raises(self):
        topo = Topology()
        topo.add_node(1)
        topo.add_node(2)
        with pytest.raises(TopologyError):
            topo.shortest_path(1, 2)

    def test_asymmetric_links(self):
        topo = Topology()
        topo.add_node(1)
        topo.add_node(2)
        topo.add_symmetric_link(1, 2, Link(attenuation=0.9), Link(attenuation=0.4))
        assert topo.link(1, 2).attenuation == pytest.approx(0.9)
        assert topo.link(2, 1).attenuation == pytest.approx(0.4)


class TestRoutableLinks:
    def test_non_routable_excluded_from_paths(self):
        topo = Topology()
        for node in (1, 2, 3):
            topo.add_node(node)
        topo.add_symmetric_link(1, 2, Link())
        topo.add_symmetric_link(2, 3, Link())
        topo.add_link(1, 3, Link(attenuation=0.1), routable=False)
        assert topo.in_range(1, 3)
        assert not topo.is_routable(1, 3)
        assert topo.shortest_path(1, 3) == [1, 2, 3]

    def test_routable_graph_subset(self):
        topo = Topology()
        for node in (1, 2):
            topo.add_node(node)
        topo.add_link(1, 2, Link(), routable=False)
        assert topo.routable_graph().number_of_edges() == 0
