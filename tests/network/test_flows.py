"""Tests for traffic flow definitions."""

import pytest

from repro.exceptions import ConfigurationError
from repro.network.flows import Flow


class TestFlow:
    def test_construction(self):
        flow = Flow(source=1, destination=2, packets=10)
        assert flow.source == 1
        assert flow.packets == 10

    def test_reverse(self):
        flow = Flow(1, 2, 5)
        assert flow.reverse == Flow(2, 1, 5)

    def test_same_endpoints_rejected(self):
        with pytest.raises(ConfigurationError):
            Flow(1, 1, 5)

    def test_zero_packets_rejected(self):
        with pytest.raises(ConfigurationError):
            Flow(1, 2, 0)

    def test_equality(self):
        assert Flow(1, 2, 3) == Flow(1, 2, 3)
        assert Flow(1, 2, 3) != Flow(1, 2, 4)
