"""Tests for the wireless medium and slot simulator."""

import numpy as np
import pytest

from repro.channel.link import Link
from repro.exceptions import SimulationError
from repro.modulation.msk import MSKModulator
from repro.network.medium import Transmission, WirelessMedium
from repro.network.simulator import SlotSimulator
from repro.network.topology import Topology
from repro.utils.bits import random_bits


def _simple_topology(noise=1e-4):
    topo = Topology()
    for node in (1, 2, 3):
        topo.add_node(node, noise_power=noise)
    topo.add_symmetric_link(1, 2, Link(attenuation=0.8, phase_shift=0.2))
    topo.add_symmetric_link(2, 3, Link(attenuation=0.7, phase_shift=-0.5))
    return topo


def _burst(seed=0, n=80):
    return MSKModulator().modulate(random_bits(n, np.random.default_rng(seed)))


class TestWirelessMedium:
    def test_receiver_in_range_hears_distorted_signal(self):
        topo = _simple_topology(noise=0.0)
        medium = WirelessMedium(topo, tail_padding=0)
        wave = _burst()
        out = medium.deliver([Transmission(sender=1, waveform=wave)])
        received = out[2]
        expected = topo.link(1, 2).distort(wave)
        assert np.allclose(received.samples[: len(expected)], expected.samples)

    def test_out_of_range_receiver_hears_only_noise(self):
        topo = _simple_topology(noise=1e-4)
        medium = WirelessMedium(topo, rng=np.random.default_rng(0))
        out = medium.deliver([Transmission(sender=1, waveform=_burst())])
        assert out[3].average_power < 1e-3

    def test_transmitter_does_not_hear_itself(self):
        topo = _simple_topology()
        medium = WirelessMedium(topo)
        out = medium.deliver([Transmission(sender=1, waveform=_burst())])
        assert 1 not in out

    def test_concurrent_transmissions_superpose(self):
        topo = _simple_topology(noise=0.0)
        medium = WirelessMedium(topo, tail_padding=0)
        wave_a, wave_b = _burst(1), _burst(2)
        out = medium.deliver(
            [
                Transmission(sender=1, waveform=wave_a, start_offset=0),
                Transmission(sender=3, waveform=wave_b, start_offset=10),
            ]
        )
        at_2 = out[2].samples
        manual = np.zeros_like(at_2)
        manual[: len(wave_a)] += topo.link(1, 2).distort(wave_a).samples
        manual[10 : 10 + len(wave_b)] += topo.link(3, 2).distort(wave_b).samples
        assert np.allclose(at_2, manual)

    def test_receivers_filter(self):
        topo = _simple_topology()
        medium = WirelessMedium(topo)
        out = medium.deliver([Transmission(sender=1, waveform=_burst())], receivers=[2])
        assert set(out) == {2}

    def test_slot_duration(self):
        medium = WirelessMedium(_simple_topology())
        wave = _burst()
        duration = medium.slot_duration(
            [Transmission(sender=1, waveform=wave, start_offset=25)]
        )
        assert duration == len(wave) + 25

    def test_duplicate_sender_rejected(self):
        medium = WirelessMedium(_simple_topology())
        wave = _burst()
        with pytest.raises(SimulationError):
            medium.deliver(
                [Transmission(sender=1, waveform=wave), Transmission(sender=1, waveform=wave)]
            )

    def test_unknown_sender_rejected(self):
        medium = WirelessMedium(_simple_topology())
        with pytest.raises(SimulationError):
            medium.deliver([Transmission(sender=9, waveform=_burst())])

    def test_empty_slot_rejected(self):
        with pytest.raises(SimulationError):
            WirelessMedium(_simple_topology()).deliver([])


class TestSlotSimulator:
    def test_air_time_accumulates(self):
        topo = _simple_topology()
        simulator = SlotSimulator(topo, rng=np.random.default_rng(0))
        wave = _burst()
        simulator.run_slot([Transmission(sender=1, waveform=wave)])
        simulator.run_slot([Transmission(sender=2, waveform=wave, start_offset=30)])
        assert simulator.slots_run == 2
        assert simulator.total_air_time == 2 * len(wave) + 30

    def test_slot_result_waveforms(self):
        topo = _simple_topology()
        simulator = SlotSimulator(topo, rng=np.random.default_rng(1))
        result = simulator.run_slot([Transmission(sender=1, waveform=_burst())], receivers=[2])
        assert result.waveform_at(2) is not None
        with pytest.raises(SimulationError):
            result.waveform_at(3)

    def test_history_recording(self):
        topo = _simple_topology()
        simulator = SlotSimulator(topo)
        simulator.run_slot([Transmission(sender=1, waveform=_burst())], record=True)
        simulator.run_slot([Transmission(sender=1, waveform=_burst())], record=False)
        assert len(simulator.history) == 1

    def test_reset(self):
        topo = _simple_topology()
        simulator = SlotSimulator(topo)
        simulator.run_slot([Transmission(sender=1, waveform=_burst())])
        simulator.reset()
        assert simulator.slots_run == 0
        assert simulator.total_air_time == 0
