"""Tests for campaign grid specs: expansion determinism and validation."""

import json

import pytest

from repro.campaign.spec import (
    CAMPAIGN_SCHEMA,
    CampaignSpec,
    audit_snapshot_roundtrip,
    job_digest,
)
from repro.exceptions import ConfigurationError
from repro.experiments.config import ExperimentConfig


def small_spec(**overrides):
    """A 2x2 alice-bob grid used throughout these tests."""
    kwargs = dict(
        experiment="alice-bob",
        base={"runs": 1, "packets_per_run": 2, "payload_bits": 64},
        axes={"seed": (1, 2), "snr_db_range": ((20, 20), (25, 25))},
        quick=True,
        name="unit",
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestExpansionDeterminism:
    def test_grid_size(self):
        spec = small_spec()
        assert spec.total_jobs == 4
        assert len(spec.jobs()) == 4

    def test_axis_order_is_sorted_last_fastest(self):
        jobs = small_spec().jobs()
        # sorted axes: seed, snr_db_range -> snr varies fastest
        assert [dict(j.overrides)["seed"] for j in jobs] == [1, 1, 2, 2]
        assert [dict(j.overrides)["snr_db_range"] for j in jobs] == [
            (20, 20), (25, 25), (20, 20), (25, 25),
        ]
        assert [j.index for j in jobs] == [0, 1, 2, 3]

    def test_digests_stable_across_expansions(self):
        first = [j.digest for j in small_spec().jobs()]
        second = [j.digest for j in small_spec().jobs()]
        assert first == second

    def test_digests_stable_across_json_roundtrip(self):
        spec = small_spec()
        rebuilt = CampaignSpec.from_json(spec.to_json())
        assert [j.digest for j in rebuilt.jobs()] == [j.digest for j in spec.jobs()]
        assert rebuilt.campaign_id() == spec.campaign_id()

    def test_digests_distinct_per_job(self):
        digests = [j.digest for j in small_spec().jobs()]
        assert len(set(digests)) == len(digests)

    def test_digest_is_full_sha256_hex(self):
        job = small_spec().jobs()[0]
        assert len(job.digest) == 64
        int(job.digest, 16)

    def test_quick_flag_forks_digests(self):
        quick = [j.digest for j in small_spec(quick=True).jobs()]
        full = [j.digest for j in small_spec(quick=False).jobs()]
        assert not set(quick) & set(full)

    def test_campaign_id_ignores_name(self):
        assert (
            small_spec(name="a").campaign_id() == small_spec(name="b").campaign_id()
        )
        assert small_spec().campaign_id() != small_spec(quick=False).campaign_id()


class TestSharding:
    def test_round_robin_partition(self):
        spec = small_spec()
        full = {j.index for j in spec.jobs()}
        shard0 = spec.jobs(shard_index=0, shard_count=2)
        shard1 = spec.jobs(shard_index=1, shard_count=2)
        assert {j.index for j in shard0} == {0, 2}
        assert {j.index for j in shard1} == {1, 3}
        assert {j.index for j in shard0} | {j.index for j in shard1} == full

    def test_shards_agree_on_digests(self):
        spec = small_spec()
        by_index = {j.index: j.digest for j in spec.jobs()}
        for shard in range(3):
            for job in spec.jobs(shard_index=shard, shard_count=3):
                assert job.digest == by_index[job.index]

    def test_invalid_shard_rejected(self):
        with pytest.raises(ConfigurationError):
            small_spec().jobs(shard_index=2, shard_count=2)
        with pytest.raises(ConfigurationError):
            small_spec().jobs(shard_index=0, shard_count=0)


class TestValidation:
    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            small_spec(experiment="not-an-experiment")

    def test_unknown_config_field(self):
        with pytest.raises(ConfigurationError, match="unknown config field"):
            small_spec(axes={"bogus_knob": (1, 2)})

    def test_base_axis_overlap(self):
        with pytest.raises(ConfigurationError, match="both"):
            small_spec(base={"seed": 1}, axes={"seed": (1, 2)})

    def test_empty_axis(self):
        with pytest.raises(ConfigurationError, match="no values"):
            small_spec(axes={"seed": ()})

    def test_non_scalar_axis_value(self):
        with pytest.raises(ConfigurationError, match="JSON scalars"):
            small_spec(axes={"seed": ({"nested": 1},)})

    def test_duplicate_grid_point_raises(self):
        with pytest.raises(ConfigurationError, match="duplicate grid point"):
            small_spec(axes={"seed": (1, 1)}).jobs()

    def test_figure_rejects_traffic_knobs(self):
        with pytest.raises(ConfigurationError, match="traffic"):
            small_spec(axes={"arrival_rate": (0.2, 0.4)})

    def test_scenario_consumes_contract(self):
        # offered_load_sweep consumes sim_duration/mac_policy but sweeps
        # arrival_rate itself; chain_sweep consumes none of them.
        with pytest.raises(ConfigurationError, match="consume"):
            CampaignSpec(
                experiment="chain_sweep",
                base={"arrival_rate": 0.5},
                axes={"seed": (1, 2)},
            )
        spec = CampaignSpec(
            experiment="offered_load_sweep",
            base={"sim_duration": 100.0},
            axes={"seed": (1, 2)},
            quick=True,
        )
        assert spec.total_jobs == 2


class TestSerialization:
    def test_schema_tag_emitted(self):
        assert small_spec().to_dict()["schema"] == CAMPAIGN_SCHEMA

    def test_unknown_schema_rejected(self):
        payload = small_spec().to_dict()
        payload["schema"] = "anc-repro.campaign/999"
        with pytest.raises(ConfigurationError, match="schema"):
            CampaignSpec.from_dict(payload)

    def test_unknown_key_rejected(self):
        payload = small_spec().to_dict()
        payload["surprise"] = True
        with pytest.raises(ConfigurationError, match="unknown key"):
            CampaignSpec.from_dict(payload)

    def test_missing_experiment_rejected(self):
        with pytest.raises(ConfigurationError, match="experiment"):
            CampaignSpec.from_dict({"axes": {"seed": [1]}})

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON"):
            CampaignSpec.from_json("{not json")

    def test_schema_optional_on_input(self):
        payload = small_spec().to_dict()
        del payload["schema"]
        assert CampaignSpec.from_dict(payload).campaign_id() == (
            small_spec().campaign_id()
        )


class TestDigestInjectivity:
    def test_audit_accepts_defaults_and_tuples(self):
        audit_snapshot_roundtrip(ExperimentConfig())
        audit_snapshot_roundtrip(
            ExperimentConfig(snr_db_range=(3, 9), arrival_rate=0.7)
        )

    def test_distinct_configs_distinct_digests(self):
        base = ExperimentConfig(runs=1, packets_per_run=2)
        variants = [
            base,
            base.with_overrides(seed=base.seed + 1),
            base.with_overrides(snr_db_range=(3, 9)),
            base.with_overrides(arrival_rate=0.7),
            base.with_overrides(mac_policy="scheduled"),
        ]
        digests = {job_digest("alice-bob", False, cfg) for cfg in variants}
        assert len(digests) == len(variants)

    def test_digest_payload_carries_schema_tag(self):
        # The digest must be derived from a schema-tagged payload so a
        # format change can bump the tag and invalidate old stores.
        cfg = ExperimentConfig(runs=1, packets_per_run=2)
        payload = {
            "schema": CAMPAIGN_SCHEMA,
            "experiment": "alice-bob",
            "quick": False,
            "config": cfg.snapshot(),
        }
        import hashlib

        expected = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()
        assert job_digest("alice-bob", False, cfg) == expected
