"""Tests for the asyncio campaign runner: retries, dedupe, resume."""

import threading

import pytest

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.exceptions import ConfigurationError
from repro.results.model import ExperimentResult


def toy_spec(seeds=(1, 2, 3, 4), **overrides):
    """A tiny alice-bob grid; tests inject job_fn so nothing real runs."""
    kwargs = dict(
        experiment="alice-bob",
        base={"runs": 1, "packets_per_run": 2, "payload_bits": 64},
        axes={"seed": tuple(seeds)},
        quick=True,
        name="runner-unit",
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def fake_result(job):
    """A schema-valid stand-in for a computed experiment result."""
    return ExperimentResult(
        name=job.experiment,
        kind="figure",
        config=job.config.snapshot(),
        scalars={"seed": float(job.config.seed)},
    )


class TestPolicyValidation:
    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignRunner(concurrency=0)
        with pytest.raises(ConfigurationError):
            CampaignRunner(retries=-1)
        with pytest.raises(ConfigurationError):
            CampaignRunner(backoff=-0.1)


class TestExecution:
    def test_all_jobs_complete_and_store(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = CampaignRunner(store=store, concurrency=2, job_fn=fake_result)
        report = runner.run_sync(toy_spec())
        assert report.completed == 4 and report.cached == 0 and report.failed == 0
        assert len(store.digests()) == 4

    def test_concurrency_bound_respected(self, tmp_path):
        active = {"now": 0, "peak": 0}
        lock = threading.Lock()

        def tracked(job):
            with lock:
                active["now"] += 1
                active["peak"] = max(active["peak"], active["now"])
            try:
                return fake_result(job)
            finally:
                with lock:
                    active["now"] -= 1

        runner = CampaignRunner(store=tmp_path, concurrency=2, job_fn=tracked)
        report = runner.run_sync(toy_spec(seeds=tuple(range(1, 9))))
        assert report.completed == 8
        assert active["peak"] <= 2

    def test_results_recorded_in_grid_order(self, tmp_path):
        runner = CampaignRunner(store=tmp_path, concurrency=4, job_fn=fake_result)
        report = runner.run_sync(toy_spec())
        assert [o.job.index for o in report.outcomes] == [0, 1, 2, 3]


class TestRetries:
    def test_flaky_job_retried_to_success(self, tmp_path):
        calls = {}
        lock = threading.Lock()

        def flaky(job):
            with lock:
                calls[job.digest] = calls.get(job.digest, 0) + 1
                attempt = calls[job.digest]
            if job.config.seed == 2 and attempt < 3:
                raise RuntimeError(f"injected failure {attempt}")
            return fake_result(job)

        events = []
        runner = CampaignRunner(
            store=tmp_path, concurrency=2, retries=2, backoff=0.0,
            job_fn=flaky, progress=events.append,
        )
        report = runner.run_sync(toy_spec(seeds=(1, 2)))
        assert report.completed == 2 and report.failed == 0
        flaky_outcome = next(o for o in report.outcomes if o.job.config.seed == 2)
        assert flaky_outcome.attempts == 3
        retries = [e for e in events if e["event"] == "retry"]
        assert len(retries) == 2
        assert "injected failure" in retries[0]["error"]

    def test_exhausted_retries_fail_without_sinking_campaign(self, tmp_path):
        def doomed(job):
            if job.config.seed == 2:
                raise RuntimeError("always broken")
            return fake_result(job)

        store = ResultStore(tmp_path)
        runner = CampaignRunner(
            store=store, concurrency=2, retries=1, backoff=0.0, job_fn=doomed
        )
        report = runner.run_sync(toy_spec(seeds=(1, 2, 3)))
        assert report.completed == 2 and report.failed == 1
        failure = report.failures()[0]
        assert failure.attempts == 2
        assert "always broken" in failure.error
        # The failed job must not be stored (a re-run retries it).
        assert len(store.digests()) == 2

    def test_backoff_doubles(self, tmp_path):
        events = []

        def doomed(job):
            raise RuntimeError("nope")

        runner = CampaignRunner(
            store=tmp_path, concurrency=1, retries=2, backoff=0.01,
            job_fn=doomed, progress=events.append,
        )
        report = runner.run_sync(toy_spec(seeds=(1,)))
        assert report.failed == 1
        delays = [e["delay_seconds"] for e in events if e["event"] == "retry"]
        assert delays == [0.01, 0.02]


class TestResume:
    def test_rerun_serves_everything_from_store(self, tmp_path):
        runner = CampaignRunner(store=tmp_path, concurrency=2, job_fn=fake_result)
        assert runner.run_sync(toy_spec()).completed == 4

        def must_not_run(job):
            raise AssertionError("stored job was recomputed")

        rerun = CampaignRunner(store=tmp_path, concurrency=2, job_fn=must_not_run)
        report = rerun.run_sync(toy_spec())
        assert report.cached == 4 and report.completed == 0 and report.failed == 0

    def test_thousand_job_resume_zero_recompute(self, tmp_path):
        # The acceptance criterion: a killed 1000-job campaign re-run
        # completes with zero recomputation.  The store is pre-populated
        # (as if the first run finished all jobs before dying) and the
        # injected executor asserts nothing executes.
        spec = toy_spec(seeds=tuple(range(1, 1001)))
        jobs = spec.jobs()
        assert len(jobs) == 1000
        store = ResultStore(tmp_path)
        for job in jobs:
            store.put(job.digest, fake_result(job))

        def must_not_run(job):
            raise AssertionError("stored job was recomputed")

        runner = CampaignRunner(store=tmp_path, concurrency=8, job_fn=must_not_run)
        report = runner.run_sync(spec)
        assert report.total == 1000
        assert report.cached == 1000 and report.completed == 0 and report.failed == 0
        # Store accounting: 1000 hits for this handle, zero new puts.
        assert report.store_stats["hits"] == 1000
        assert report.store_stats["puts"] == 0

    def test_partial_store_computes_only_the_gap(self, tmp_path):
        spec = toy_spec(seeds=tuple(range(1, 11)))
        jobs = spec.jobs()
        store = ResultStore(tmp_path)
        for job in jobs[:7]:
            store.put(job.digest, fake_result(job))
        executed = []
        lock = threading.Lock()

        def counting(job):
            with lock:
                executed.append(job.config.seed)
            return fake_result(job)

        runner = CampaignRunner(store=tmp_path, concurrency=4, job_fn=counting)
        report = runner.run_sync(spec)
        assert report.cached == 7 and report.completed == 3
        assert sorted(executed) == [j.config.seed for j in jobs[7:]]


class TestInFlightDedupe:
    def test_overlapping_campaigns_share_execution(self, tmp_path):
        import asyncio

        executions = []
        lock = threading.Lock()
        gate = threading.Event()

        def slow(job):
            with lock:
                executions.append(job.digest)
            gate.wait(5.0)
            return fake_result(job)

        runner = CampaignRunner(store=tmp_path, concurrency=4, job_fn=slow)
        spec = toy_spec(seeds=(1, 2))

        async def overlapping():
            first = asyncio.ensure_future(runner.run(spec))
            await asyncio.sleep(0.2)  # let campaign one start executing
            second = asyncio.ensure_future(runner.run(spec))
            await asyncio.sleep(0.2)
            gate.set()
            return await asyncio.gather(first, second)

        report1, report2 = asyncio.run(overlapping())
        assert report1.completed == 2
        # Campaign two shared the in-flight executions: nothing ran twice.
        assert len(executions) == 2
        assert report2.cached == 2 and report2.completed == 0

    def test_shared_failure_propagates(self, tmp_path):
        import asyncio

        gate = threading.Event()

        def doomed(job):
            gate.wait(5.0)
            raise RuntimeError("shared crash")

        runner = CampaignRunner(
            store=tmp_path, concurrency=4, retries=0, backoff=0.0, job_fn=doomed
        )
        spec = toy_spec(seeds=(1,))

        async def overlapping():
            first = asyncio.ensure_future(runner.run(spec))
            await asyncio.sleep(0.2)
            second = asyncio.ensure_future(runner.run(spec))
            await asyncio.sleep(0.2)
            gate.set()
            return await asyncio.gather(first, second)

        report1, report2 = asyncio.run(overlapping())
        assert report1.failed == 1
        assert report2.failed == 1
        assert "shared" in report2.failures()[0].error


class TestReport:
    def test_report_shapes(self, tmp_path):
        runner = CampaignRunner(store=tmp_path, concurrency=2, job_fn=fake_result)
        report = runner.run_sync(toy_spec(seeds=(1, 2)))
        payload = report.as_dict()
        assert payload["total"] == 2
        assert payload["campaign"] == toy_spec(seeds=(1, 2)).campaign_id()
        assert len(payload["jobs"]) == 2
        assert "campaign runner-unit" in report.summary()
        with pytest.raises(ConfigurationError):
            report.count("bogus")
