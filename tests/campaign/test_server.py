"""Tests for the campaign HTTP/JSON server: live round-trips over a socket."""

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.campaign import client
from repro.campaign.server import CampaignServer
from repro.campaign.spec import CampaignSpec
from repro.exceptions import ConfigurationError
from repro.results.model import SCHEMA_VERSION, ExperimentResult


def toy_spec(seeds=(1, 2), name="server-unit"):
    """A tiny grid; the server under test injects a fake executor."""
    return CampaignSpec(
        experiment="alice-bob",
        base={"runs": 1, "packets_per_run": 2, "payload_bits": 64},
        axes={"seed": tuple(seeds)},
        quick=True,
        name=name,
    )


def fake_result(job):
    """A schema-valid stand-in for a computed result."""
    return ExperimentResult(
        name=job.experiment,
        kind="figure",
        config=job.config.snapshot(),
        scalars={"seed": float(job.config.seed)},
    )


@pytest.fixture
def live_server(tmp_path):
    """A CampaignServer bound to a free port on a background event loop."""
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    server = CampaignServer(
        store=tmp_path / "store",
        port=0,
        concurrency=2,
        retries=0,
        backoff=0.0,
        max_pending_jobs=50,
        job_fn=fake_result,
    )
    asyncio.run_coroutine_threadsafe(server.start(), loop).result(timeout=10)
    try:
        yield server, f"http://127.0.0.1:{server.port}"
    finally:
        asyncio.run_coroutine_threadsafe(server.stop(), loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)


class TestRoundTrip:
    def test_submit_status_results(self, live_server):
        server, base = live_server
        health = client.server_health(base)
        assert health["status"] == "ok" and health["campaigns"] == 0

        status = client.submit_campaign(base, toy_spec())
        assert status["created"] is True
        assert status["total"] == 2

        final = client.wait_for_campaign(base, status["campaign"], timeout=30)
        assert final["state"] == "completed"
        assert final["completed"] + final["cached"] == 2 and final["pending"] == 0

        results = client.campaign_results(base, status["campaign"])
        assert len(results) == 2
        assert all(r.schema_version == SCHEMA_VERSION for r in results)
        assert sorted(r.scalars["seed"] for r in results) == [1.0, 2.0]

    def test_resubmit_is_idempotent(self, live_server):
        _, base = live_server
        first = client.submit_campaign(base, toy_spec())
        again = client.submit_campaign(base, toy_spec(name="other-label"))
        assert again["campaign"] == first["campaign"]
        assert again["created"] is False
        assert len(client.list_campaigns(base)) == 1

    def test_fetch_single_result_by_digest(self, live_server):
        _, base = live_server
        spec = toy_spec()
        status = client.submit_campaign(base, spec)
        client.wait_for_campaign(base, status["campaign"], timeout=30)
        job = spec.jobs()[0]
        result = client.fetch_result(base, job.digest)
        assert result.scalars["seed"] == float(job.config.seed)

    def test_events_stream_ends_with_terminal_status(self, live_server):
        _, base = live_server
        status = client.submit_campaign(base, toy_spec(seeds=(5, 6, 7)))
        url = f"{base}/campaigns/{status['campaign']}/events"
        with urllib.request.urlopen(url, timeout=30) as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            lines = [json.loads(line) for line in response]
        # First line is the status snapshot, last is the terminal status.
        # (Jobs that finished before the stream connected appear in the
        # counters, not as live events, so only the totals are stable.)
        assert lines[0]["campaign"] == status["campaign"]
        assert lines[-1]["state"] == "completed"
        assert lines[-1]["completed"] + lines[-1]["cached"] == 3
        for event in lines[1:-1]:
            assert event["event"] in ("started", "retry", "completed", "cached")


class TestErrorPaths:
    def test_unknown_campaign_404(self, live_server):
        _, base = live_server
        with pytest.raises(ConfigurationError, match="404"):
            client.campaign_status(base, "deadbeef")

    def test_unknown_digest_404(self, live_server):
        _, base = live_server
        with pytest.raises(ConfigurationError, match="404"):
            client.fetch_result(base, "ab" * 32)

    def test_unknown_endpoint_404(self, live_server):
        _, base = live_server
        with pytest.raises(ConfigurationError, match="404"):
            client._request(f"{base}/nope")

    def test_bad_spec_400(self, live_server):
        _, base = live_server
        request = urllib.request.Request(
            f"{base}/campaigns", data=b'{"bogus": true}', method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400

    def test_admission_control_503(self, live_server):
        _, base = live_server
        # max_pending_jobs=50: a 100-job grid must be refused up front.
        big = toy_spec(seeds=tuple(range(1, 101)), name="too-big")
        with pytest.raises(ConfigurationError, match="503"):
            client.submit_campaign(base, big)
        assert client.list_campaigns(base) == []

    def test_unreachable_server(self):
        with pytest.raises(ConfigurationError, match="cannot reach"):
            client.server_health("http://127.0.0.1:9", timeout=1.0)


class TestResume:
    def test_second_campaign_reuses_stored_results(self, live_server, tmp_path):
        _, base = live_server
        spec = toy_spec()
        status = client.submit_campaign(base, spec)
        client.wait_for_campaign(base, status["campaign"], timeout=30)
        # Submit a superset grid: the overlap must come from the store.
        superset = toy_spec(seeds=(1, 2, 3), name="superset")
        status2 = client.submit_campaign(base, superset)
        final = client.wait_for_campaign(base, status2["campaign"], timeout=30)
        assert final["state"] == "completed"
        assert final["cached"] == 2 and final["completed"] == 1
