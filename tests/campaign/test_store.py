"""Tests for the content-addressed result store: atomicity, concurrency."""

import json
import multiprocessing
import os

import pytest

from repro.campaign.store import NullResultStore, ResultStore
from repro.exceptions import ConfigurationError
from repro.results.model import ExperimentResult

DIGEST = "ab" * 32


def toy_result(tag="toy"):
    """A minimal valid result document."""
    return ExperimentResult(
        name=tag, kind="figure", config={"runs": 1}, scalars={"value": 1.0}
    )


class TestBasics:
    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(DIGEST) is None
        assert store.put(DIGEST, toy_result())
        loaded = store.get(DIGEST)
        assert loaded is not None and loaded.name == "toy"
        assert store.stats.as_dict() == {"hits": 1, "misses": 1, "puts": 1, "races": 0}

    def test_layout_fans_by_prefix(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.path(DIGEST) == tmp_path / DIGEST[:2] / f"{DIGEST}.json"

    def test_contains_len_iter(self, tmp_path):
        store = ResultStore(tmp_path)
        assert DIGEST not in store and len(store) == 0
        store.put(DIGEST, toy_result())
        assert DIGEST in store
        assert list(store) == [DIGEST]

    def test_invalid_digest_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        for bad in ("", "XYZ", "../escape", "ab/cd", "short"):
            with pytest.raises(ConfigurationError):
                store.path(bad)

    def test_second_put_keeps_winner(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.put(DIGEST, toy_result("first"))
        assert not store.put(DIGEST, toy_result("second"))
        assert store.get(DIGEST).name == "first"
        assert store.stats.races == 1

    def test_corrupt_document_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.path(DIGEST)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert store.get(DIGEST) is None
        assert store.stats.misses == 1 and store.stats.hits == 0

    def test_wrong_schema_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(DIGEST, toy_result())
        doc = json.loads(store.get_raw(DIGEST))
        doc["schema_version"] = "anc-repro.result/999"
        store.path(DIGEST).write_text(json.dumps(doc))
        assert store.get(DIGEST) is None

    def test_get_raw_returns_exact_bytes(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(DIGEST, toy_result())
        assert store.get_raw(DIGEST) == store.path(DIGEST).read_text()

    def test_no_temp_litter_after_put(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(DIGEST, toy_result())
        leftovers = [p for p in (tmp_path / DIGEST[:2]).iterdir() if p.suffix != ".json"]
        assert leftovers == []

    def test_null_store_remembers_nothing(self):
        store = NullResultStore()
        assert store.put(DIGEST, toy_result())
        assert store.get(DIGEST) is None
        assert DIGEST not in store
        assert store.stats.as_dict() == {"hits": 0, "misses": 0, "puts": 0, "races": 0}


def _hammer(root, digest, tag, count):
    """Worker: repeatedly publish under one digest (racing its sibling)."""
    store = ResultStore(root)
    for _ in range(count):
        store.put(digest, toy_result(tag))


class TestConcurrency:
    def test_two_processes_one_winner_no_torn_reads(self, tmp_path):
        ctx = multiprocessing.get_context("spawn")
        digests = [f"{i:02x}" * 32 for i in range(8)]
        workers = [
            ctx.Process(target=_hammer_many, args=(str(tmp_path), digests, tag))
            for tag in ("alpha", "beta")
        ]
        for w in workers:
            w.start()
        # Read concurrently while the writers race: every observed
        # document must be complete and schema-valid (atomic publish).
        reader = ResultStore(tmp_path)
        observed = 0
        while any(w.is_alive() for w in workers):
            for digest in digests:
                raw = reader.get_raw(digest)
                if raw is not None:
                    result = ExperimentResult.from_json(raw)
                    assert result.name in ("alpha", "beta")
                    observed += 1
        for w in workers:
            w.join(timeout=60)
            assert w.exitcode == 0
        # Exactly one winner per digest, and it parses.
        for digest in digests:
            result = ResultStore(tmp_path).get(digest)
            assert result is not None
            assert result.name in ("alpha", "beta")
        assert len(ResultStore(tmp_path).digests()) == len(digests)


def _hammer_many(root, digests, tag):
    """Worker: publish every digest repeatedly."""
    store = ResultStore(root)
    for _ in range(20):
        for digest in digests:
            store.put(digest, toy_result(tag))


class TestCrashSafety:
    def test_reader_never_sees_partial_write(self, tmp_path):
        # Simulate the moment before os.replace: a temp file next to the
        # final path must be invisible to the store's read path.
        store = ResultStore(tmp_path)
        path = store.path(DIGEST)
        path.parent.mkdir(parents=True)
        (path.parent / "pending.tmp").write_text('{"half": ')
        assert store.get(DIGEST) is None
        assert store.digests() == []
        assert os.listdir(path.parent) == ["pending.tmp"]
