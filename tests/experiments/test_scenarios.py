"""Tests for the scenario registry and the two shipped sweeps."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import (
    SCENARIOS,
    ExperimentConfig,
    ExperimentEngine,
    available_scenarios,
    get_scenario,
    run_scenario,
)
from repro.experiments.chain_sweep import run_chain_sweep_trial
from repro.experiments.mesh_sweep import draw_mesh_flows, run_mesh_sweep_trial
from repro.network.generator import generate_random_mesh
from repro.network.topologies import ChannelConditions

QUICK = ExperimentConfig(runs=2, packets_per_run=3, payload_bits=512, seed=11)
TINY = ExperimentConfig(runs=1, packets_per_run=2, payload_bits=512, seed=3)


class TestRegistry:
    def test_shipped_scenarios_registered(self):
        assert "chain_sweep" in available_scenarios()
        assert "mesh_sweep" in available_scenarios()

    def test_lookup(self):
        spec = get_scenario("chain_sweep")
        assert spec is SCENARIOS["chain_sweep"]
        assert spec.schemes[0] == "anc"
        assert spec.topology == "chain"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            get_scenario("does-not-exist")

    def test_quick_values_thin_the_axis(self):
        spec = get_scenario("chain_sweep")
        assert set(spec.values_for(quick=True)) <= set(spec.values_for(quick=False))


class TestChainSweep:
    def test_trial_reports_all_schemes(self):
        cell = run_chain_sweep_trial(QUICK, (3, 0))
        assert set(cell) == {"anc", "cope", "traditional"}
        for scheme in cell:
            assert cell[scheme]["throughput"] > 0
            assert cell[scheme]["offered"] == QUICK.packets_per_run

    def test_trial_deterministic(self):
        assert run_chain_sweep_trial(QUICK, (4, 1)) == run_chain_sweep_trial(
            QUICK, (4, 1)
        )

    def test_three_hop_point_shows_anc_gain(self):
        cell = run_chain_sweep_trial(QUICK, (3, 0))
        assert cell["anc"]["throughput"] > cell["cope"]["throughput"]
        # Digital coding has nothing to XOR on a one-way chain: it equals
        # the optimal-MAC pipelined routing schedule.
        assert cell["cope"]["throughput"] >= cell["traditional"]["throughput"]

    def test_report_renders_table(self):
        spec = get_scenario("chain_sweep")
        report = run_scenario(spec, QUICK, quick=True)
        text = report.render()
        assert "=== scenario chain_sweep ===" in text
        assert "anc/traditional" in text
        assert f"runs per point: {QUICK.runs}" in text
        for hops in spec.values_for(quick=True):
            assert f"\n{hops:>8}" in text


class TestMeshSweep:
    def test_flow_draw_prefers_two_hop_pairs(self):
        conditions = ChannelConditions(snr_db=28.0)
        rng = np.random.default_rng(5)
        topology = generate_random_mesh(conditions, rng, nodes=12, radius=0.45)
        flows = draw_mesh_flows(topology, 6, packets=3, rng=rng)
        assert len(flows) == 6
        assert len({(f.source, f.destination) for f in flows}) == 6
        for flow in flows:
            assert len(topology.shortest_path(flow.source, flow.destination)) >= 3

    def test_trial_reports_all_schemes(self):
        cell = run_mesh_sweep_trial(QUICK, (4, 0), nodes=10, radius=0.5)
        assert set(cell) == {"anc", "cope", "traditional"}
        assert cell["traditional"]["paired"] == 0.0
        assert cell["anc"]["paired"] == cell["cope"]["paired"]
        assert cell["anc"]["offered"] == cell["traditional"]["offered"]

    def test_trial_deterministic(self):
        assert run_mesh_sweep_trial(QUICK, (4, 1)) == run_mesh_sweep_trial(QUICK, (4, 1))


class TestEngineIntegration:
    def test_parallel_equals_serial(self):
        spec = get_scenario("chain_sweep")
        serial = run_scenario(spec, TINY, engine=ExperimentEngine(workers=1), quick=True)
        parallel = run_scenario(spec, TINY, engine=ExperimentEngine(workers=2), quick=True)
        assert serial.render() == parallel.render()

    def test_cache_resume(self, tmp_path):
        spec = get_scenario("chain_sweep")
        engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
        first = run_scenario(spec, TINY, engine=engine, quick=True)
        assert engine.last_stats.executed_trials > 0
        second = run_scenario(spec, TINY, engine=engine, quick=True)
        assert engine.last_stats.executed_trials == 0
        assert engine.last_stats.cached_trials == engine.last_stats.total_trials
        assert first.render() == second.render()
