"""Tests for the command-line interface."""

import pytest

from repro.cli import (
    EXPERIMENTS,
    SCENARIO_NAMES,
    build_parser,
    build_scenario_parser,
    main,
)


class TestParser:
    def test_all_experiments_listed(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["does-not-exist"])

    def test_defaults(self):
        args = build_parser().parse_args(["capacity"])
        assert args.runs == 10
        assert args.packets == 10
        assert args.payload_bits == 768
        assert args.workers == 1
        assert args.resume is False
        assert args.cache_dir is None

    def test_engine_flags(self):
        args = build_parser().parse_args(
            ["alice-bob", "--workers", "4", "--resume", "--cache-dir", "/tmp/c"]
        )
        assert args.workers == 4
        assert args.resume is True
        assert args.cache_dir == "/tmp/c"


class TestMain:
    def test_capacity_runs_and_prints(self, capsys):
        assert main(["capacity"]) == 0
        out = capsys.readouterr().out
        assert "crossover" in out

    def test_alice_bob_small(self, capsys):
        assert main(["alice-bob", "--runs", "2", "--packets", "3", "--payload-bits", "512"]) == 0
        out = capsys.readouterr().out
        assert "fig09_alice_bob" in out
        assert "gain" in out

    def test_sir_small(self, capsys):
        assert main(["sir", "--runs", "1", "--packets", "3", "--payload-bits", "512"]) == 0
        assert "SIR" in capsys.readouterr().out

    def test_chain_small(self, capsys):
        assert main(["chain", "--runs", "2", "--packets", "3", "--payload-bits", "512"]) == 0
        assert "fig12_chain" in capsys.readouterr().out

    def test_parallel_output_matches_serial(self, capsys):
        base = ["alice-bob", "--runs", "2", "--packets", "3", "--payload-bits", "512"]
        assert main(base) == 0
        serial_out = capsys.readouterr().out
        assert main(base + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_invalid_workers_is_clean_error(self, capsys):
        assert main(["alice-bob", "--workers", "0"]) == 2
        assert "workers must be a positive integer" in capsys.readouterr().err

    def test_resume_reuses_cache(self, capsys, tmp_path):
        base = [
            "sir", "--runs", "1", "--packets", "3", "--payload-bits", "512",
            "--cache-dir", str(tmp_path),
        ]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert any(tmp_path.iterdir()), "trials should have been cached"
        assert main(base) == 0
        assert capsys.readouterr().out == first


class TestScenarioCommand:
    def test_all_scenarios_listed(self):
        parser = build_scenario_parser()
        assert set(SCENARIO_NAMES) == {
            "chain_sweep",
            "mesh_sweep",
            "cfo_sweep",
            "fading_sweep",
            "geometry_mesh",
            "offered_load_sweep",
            "queueing_delay",
        }
        for name in SCENARIO_NAMES:
            args = parser.parse_args([name, "--quick"])
            assert args.scenario == name
            assert args.quick is True

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_scenario_parser().parse_args(["does-not-exist"])

    def test_chain_sweep_quick_runs(self, capsys):
        assert main(["run", "chain_sweep", "--quick", "--runs", "1",
                     "--packets", "2"]) == 0
        out = capsys.readouterr().out
        assert "=== scenario chain_sweep ===" in out
        assert "anc/traditional" in out

    def test_mesh_sweep_quick_runs(self, capsys):
        assert main(["run", "mesh_sweep", "--quick", "--runs", "1",
                     "--packets", "2"]) == 0
        assert "=== scenario mesh_sweep ===" in capsys.readouterr().out

    def test_parallel_output_matches_serial(self, capsys):
        base = ["run", "chain_sweep", "--quick", "--runs", "1", "--packets", "2"]
        assert main(base) == 0
        serial_out = capsys.readouterr().out
        assert main(base + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_invalid_workers_is_clean_error(self, capsys):
        assert main(["run", "chain_sweep", "--quick", "--workers", "0"]) == 2
        assert "workers must be a positive integer" in capsys.readouterr().err
