"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_listed(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["does-not-exist"])

    def test_defaults(self):
        args = build_parser().parse_args(["capacity"])
        assert args.runs == 10
        assert args.packets == 10
        assert args.payload_bits == 768


class TestMain:
    def test_capacity_runs_and_prints(self, capsys):
        assert main(["capacity"]) == 0
        out = capsys.readouterr().out
        assert "crossover" in out

    def test_alice_bob_small(self, capsys):
        assert main(["alice-bob", "--runs", "2", "--packets", "3", "--payload-bits", "512"]) == 0
        out = capsys.readouterr().out
        assert "fig09_alice_bob" in out
        assert "gain" in out

    def test_sir_small(self, capsys):
        assert main(["sir", "--runs", "1", "--packets", "3", "--payload-bits", "512"]) == 0
        assert "SIR" in capsys.readouterr().out

    def test_chain_small(self, capsys):
        assert main(["chain", "--runs", "2", "--packets", "3", "--payload-bits", "512"]) == 0
        assert "fig12_chain" in capsys.readouterr().out
