"""Quick-configuration end-to-end tests for every figure experiment.

These use ``ExperimentConfig.quick()`` so the whole module runs in tens of
seconds; the benchmark harness runs the full-size versions.
"""

import pytest

from repro.experiments.alice_bob import run_alice_bob_experiment
from repro.experiments.capacity_fig7 import render_capacity_table, run_capacity_experiment
from repro.experiments.chain import run_chain_experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.sir_sweep import render_sir_table, run_sir_sweep
from repro.experiments.summary import run_summary
from repro.experiments.x_topology import run_x_topology_experiment


@pytest.fixture(scope="module")
def quick_config():
    return ExperimentConfig.quick(seed=11)


@pytest.fixture(scope="module")
def alice_bob_report(quick_config):
    return run_alice_bob_experiment(quick_config)


class TestAliceBobExperiment:
    def test_runs_and_pairs(self, quick_config, alice_bob_report):
        report = alice_bob_report
        assert len(report.anc_runs) == quick_config.runs
        assert len(report.baseline_runs["traditional"]) == quick_config.runs
        assert len(report.comparisons["traditional"].samples) == quick_config.runs

    def test_anc_beats_baselines_on_average(self, alice_bob_report):
        assert alice_bob_report.comparisons["traditional"].mean_gain > 1.2
        assert alice_bob_report.comparisons["cope"].mean_gain > 1.0

    def test_ber_cdf_present_and_small(self, alice_bob_report):
        assert alice_bob_report.ber_cdf is not None
        assert alice_bob_report.ber_cdf.mean < 0.2

    def test_report_renders(self, alice_bob_report):
        text = alice_bob_report.render()
        assert "fig09_alice_bob" in text
        assert "gain" in text

    def test_deterministic_given_seed(self, quick_config):
        again = run_alice_bob_experiment(quick_config)
        first = run_alice_bob_experiment(quick_config)
        assert first.comparisons["traditional"].mean_gain == pytest.approx(
            again.comparisons["traditional"].mean_gain
        )


class TestXTopologyExperiment:
    def test_shape(self, quick_config):
        report = run_x_topology_experiment(quick_config)
        assert report.name == "fig10_x_topology"
        assert report.comparisons["traditional"].mean_gain > 1.0
        assert 0.5 <= report.extras["anc_delivery_ratio"] <= 1.0


class TestChainExperiment:
    def test_shape(self, quick_config):
        report = run_chain_experiment(quick_config)
        assert report.name == "fig12_chain"
        assert "cope" not in report.comparisons  # COPE does not apply (§11.6)
        assert report.comparisons["traditional"].mean_gain > 1.1
        assert report.ber_cdf.mean < 0.1


class TestSIRSweep:
    def test_points_and_rendering(self, quick_config):
        points = run_sir_sweep(quick_config, sir_db_values=(-3.0, 0.0, 3.0), packets_per_point=3)
        assert [p.sir_db for p in points] == [-3.0, 0.0, 3.0]
        assert all(0.0 <= p.mean_ber <= 0.5 for p in points)
        table = render_sir_table(points)
        assert "SIR" in table

    def test_decodes_at_negative_sir(self, quick_config):
        """§11.7: decoding still works at -3 dB SIR (BER below ~5 %)."""
        points = run_sir_sweep(quick_config, sir_db_values=(-3.0,), packets_per_point=6)
        assert points[0].mean_ber < 0.08


class TestCapacityExperiment:
    def test_curve_and_table(self):
        curve = run_capacity_experiment()
        assert curve.asymptotic_gain > 1.7
        table = render_capacity_table(curve)
        assert "crossover" in table


class TestSummary:
    def test_summary_rows(self):
        config = ExperimentConfig.quick(seed=5)
        summary = run_summary(config, include_sir_sweep=False)
        rows = summary.rows()
        assert rows["alice_bob_gain_over_traditional"] > 1.2
        assert rows["chain_gain_over_traditional"] > 1.1
        assert "=== Summary" in summary.render()
