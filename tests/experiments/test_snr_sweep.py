"""Tests for the SNR-sweep extension experiment."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.snr_sweep import render_snr_table, run_snr_sweep


@pytest.fixture(scope="module")
def sweep_points():
    config = ExperimentConfig(runs=1, packets_per_run=4, payload_bits=512, seed=17)
    return run_snr_sweep(config, snr_db_values=(18.0, 26.0, 32.0), runs_per_point=1)


class TestSnrSweep:
    def test_point_per_snr_value(self, sweep_points):
        assert [p.snr_db for p in sweep_points] == [18.0, 26.0, 32.0]

    def test_anc_wins_in_operating_range(self, sweep_points):
        """The WLAN regime (>= 18 dB) is well above the ~8 dB crossover."""
        assert all(p.anc_wins for p in sweep_points)

    def test_theoretical_gain_attached(self, sweep_points):
        for point in sweep_points:
            assert 0.9 < point.theoretical_gain < 2.0
            # Measured gain never exceeds the information-theoretic bound's 2x.
            assert point.gain_over_traditional < 2.0

    def test_ber_decreases_with_snr(self, sweep_points):
        assert sweep_points[-1].mean_ber <= sweep_points[0].mean_ber + 1e-9

    def test_delivery_high_across_range(self, sweep_points):
        assert all(p.delivery_ratio > 0.8 for p in sweep_points)

    def test_render_table(self, sweep_points):
        table = render_snr_table(sweep_points)
        assert "SNR (dB)" in table
        assert "18.0" in table
