"""Tests of the time-domain scenarios: offered_load_sweep and queueing_delay."""

import pytest

from repro import api
from repro.exceptions import ConfigurationError
from repro.results.model import config_digest
from repro.experiments import ExperimentConfig, ExperimentEngine, run_scenario
from repro.experiments.config import DEFAULT_MAC_POLICY
from repro.experiments.offered_load import run_offered_load_trial
from repro.experiments.queueing_delay import run_queueing_delay_trial
from repro.experiments.scenarios import get_scenario
from repro.sim.traffic import TRAFFIC_MODELS

QUICK = ExperimentConfig(runs=1, packets_per_run=2, payload_bits=512, seed=7)
SHORT = QUICK.with_overrides(sim_duration=24.0)


class TestRegistration:
    def test_offered_load_spec_shape(self):
        spec = get_scenario("offered_load_sweep")
        assert spec.sweep_axis == "load"
        assert spec.schemes == ("anc", "cope", "traditional")
        assert set(spec.values_for(quick=True)) <= set(spec.values_for(quick=False))
        assert set(spec.consumes) == {"sim_duration", "mac_policy"}

    def test_queueing_delay_spec_shape(self):
        spec = get_scenario("queueing_delay")
        assert spec.sweep_axis == "traffic"
        assert spec.sweep_values == TRAFFIC_MODELS
        assert set(spec.consumes) == {"arrival_rate", "sim_duration", "mac_policy"}

    def test_reachable_through_api(self):
        for name in ("offered_load_sweep", "queueing_delay"):
            assert api.get_experiment(name).kind == "scenario"


class TestTrials:
    def test_offered_load_cell_reports_every_scheme(self):
        cell = run_offered_load_trial(SHORT, (0.8, 0))
        assert set(cell) == {"anc", "cope", "traditional"}
        for metrics in cell.values():
            assert {
                "throughput",
                "drop_rate",
                "delay_mean",
                "delay_p95",
                "queue_wait_mean",
            } <= set(metrics)

    def test_trials_are_deterministic(self):
        assert run_offered_load_trial(SHORT, (0.8, 0)) == run_offered_load_trial(
            SHORT, (0.8, 0)
        )
        assert run_queueing_delay_trial(SHORT, ("cbr", 0)) == run_queueing_delay_trial(
            SHORT, ("cbr", 0)
        )

    def test_schemes_share_the_offered_sample_path(self):
        cell = run_offered_load_trial(SHORT, (0.8, 0))
        offered = {metrics["offered"] for metrics in cell.values()}
        assert len(offered) == 1, "identical entropy must give identical arrivals"

    def test_high_load_reproduces_the_section8_ordering(self):
        """§8's qualitative result: ANC goodput > COPE > traditional when
        the Alice-relay-Bob exchange saturates (hidden-terminal collapse)."""
        cell = run_offered_load_trial(QUICK, (1.2, 0))
        assert cell["anc"]["throughput"] > cell["cope"]["throughput"]
        assert cell["anc"]["throughput"] > cell["traditional"]["throughput"]
        assert cell["anc"]["drop_rate"] < cell["traditional"]["drop_rate"]

    def test_queueing_delay_honours_arrival_rate_knob(self):
        low = run_queueing_delay_trial(SHORT.with_overrides(arrival_rate=0.2), ("poisson", 0))
        high = run_queueing_delay_trial(SHORT.with_overrides(arrival_rate=1.2), ("poisson", 0))
        assert high["anc"]["offered"] > low["anc"]["offered"]


class TestEngineParity:
    def test_serial_and_parallel_results_identical(self):
        serial = api.run("offered_load_sweep", config=SHORT, quick=True)
        parallel = api.run(
            "offered_load_sweep",
            config=SHORT,
            engine=ExperimentEngine(workers=2),
            quick=True,
        )
        a, b = serial.to_dict(), parallel.to_dict()
        assert a["series"] == b["series"]
        assert a["scalars"] == b["scalars"]
        assert a["config_digest"] == b["config_digest"]


class TestConfigKnobs:
    def test_defaults_are_digest_neutral(self):
        snapshot = QUICK.snapshot()
        assert "arrival_rate" not in snapshot
        assert "sim_duration" not in snapshot
        assert "mac_policy" not in snapshot
        explicit_default = ExperimentConfig(
            runs=1, packets_per_run=2, payload_bits=512, seed=7,
            mac_policy=DEFAULT_MAC_POLICY,
        )
        assert config_digest(QUICK.snapshot()) == config_digest(
            explicit_default.snapshot()
        )

    def test_consumed_knobs_fork_the_digest(self):
        assert config_digest(SHORT.snapshot()) != config_digest(QUICK.snapshot())

    def test_knob_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(arrival_rate=-0.5)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(mac_policy="aloha")

    def test_unconsumed_knob_rejected_by_scenarios(self):
        spec = get_scenario("chain_sweep")
        with pytest.raises(ConfigurationError, match="ignores the traffic knob"):
            run_scenario(spec, QUICK.with_overrides(arrival_rate=0.5), quick=True)

    def test_sweep_axis_knob_rejected_by_offered_load(self):
        # arrival_rate IS the sweep axis: setting it would be silently wrong.
        spec = get_scenario("offered_load_sweep")
        with pytest.raises(ConfigurationError, match="arrival_rate"):
            run_scenario(spec, QUICK.with_overrides(arrival_rate=0.5), quick=True)

    def test_unconsumed_knob_rejected_by_figures(self):
        with pytest.raises(ConfigurationError, match="ignores the traffic knob"):
            api.run("alice-bob", config=QUICK.with_overrides(sim_duration=10.0))
