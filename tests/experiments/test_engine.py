"""Tests for the parallel, resumable :class:`ExperimentEngine`.

Covers the three guarantees the experiment runners rely on:

* serial (``workers=1``) and parallel (``workers>1``) execution produce
  bit-identical results, because every trial's randomness is keyed by its
  trial index rather than by execution order;
* completed trials cached to disk are reused on resume, and only the
  missing trials are recomputed;
* the cache is keyed by the full (experiment, trial function, config,
  params) digest, so changing any of them invalidates it.
"""

from __future__ import annotations

from multiprocessing.shared_memory import SharedMemory

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.alice_bob import run_alice_bob_experiment, run_alice_bob_trial
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import (
    _SHM_MIN_BYTES,
    ExperimentEngine,
    _key_slug,
    default_engine,
)
from repro.experiments.runner import RUNNERS, available_runners, get_runner
from repro.experiments.sir_sweep import run_sir_sweep
from repro.experiments.snr_sweep import run_snr_sweep


def _draw_trial(cfg: ExperimentConfig, key: int) -> float:
    """Toy trial: one deterministic draw from the key's substream."""
    return float(cfg.run_rng(key, stream=0).uniform())


def _echo_trial(cfg: ExperimentConfig, key, scale: float = 1.0):
    """Toy trial echoing its key (scaled), for ordering/params tests."""
    return (key, scale)


def _failing_trial(cfg: ExperimentConfig, key: int) -> float:
    """Toy trial that always raises."""
    raise RuntimeError(f"trial {key} exploded")


def _none_trial(cfg: ExperimentConfig, key: int) -> None:
    """Toy trial whose legitimate result is ``None``."""
    return None


def _weighted_trial(cfg: ExperimentConfig, key: int, weights=None) -> float:
    """Toy trial reading a (possibly shared-memory) array parameter."""
    return float(weights[key % weights.size]) * (key + 1)


def _crashing_weighted_trial(cfg: ExperimentConfig, key: int, weights=None) -> float:
    """Toy trial that crashes after touching its shared array."""
    raise RuntimeError(f"trial {key} exploded with {float(weights[0])}")


@pytest.fixture
def quick_config() -> ExperimentConfig:
    return ExperimentConfig.quick(seed=11)


class TestMapBasics:
    def test_results_in_key_order(self, quick_config):
        engine = ExperimentEngine()
        results = engine.map("toy", _echo_trial, quick_config, [4, 2, 9])
        assert [r[0] for r in results] == [4, 2, 9]

    def test_params_are_forwarded(self, quick_config):
        engine = ExperimentEngine()
        results = engine.map(
            "toy", _echo_trial, quick_config, [0, 1], params={"scale": 2.5}
        )
        assert all(r[1] == 2.5 for r in results)

    def test_duplicate_keys_rejected(self, quick_config):
        with pytest.raises(ConfigurationError):
            ExperimentEngine().map("toy", _echo_trial, quick_config, [1, 1])

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentEngine(workers=0)

    def test_trial_errors_propagate(self, quick_config):
        with pytest.raises(RuntimeError, match="exploded"):
            ExperimentEngine().map("toy", _failing_trial, quick_config, range(2))

    def test_stats_recorded(self, quick_config):
        engine = ExperimentEngine()
        engine.map("toy", _draw_trial, quick_config, range(5))
        stats = engine.last_stats
        assert stats.total_trials == 5
        assert stats.executed_trials == 5
        assert stats.cached_trials == 0
        assert stats.workers == 1

    def test_default_engine_fallback(self):
        engine = ExperimentEngine(workers=1)
        assert default_engine(engine) is engine
        assert default_engine(None).workers == 1


class TestSerialParallelEquivalence:
    def test_toy_trials_identical(self, quick_config):
        serial = ExperimentEngine(workers=1).map(
            "toy", _draw_trial, quick_config, range(6)
        )
        parallel = ExperimentEngine(workers=2).map(
            "toy", _draw_trial, quick_config, range(6)
        )
        assert serial == parallel

    def test_alice_bob_report_bit_identical(self, quick_config):
        serial = run_alice_bob_experiment(quick_config, engine=ExperimentEngine(workers=1))
        parallel = run_alice_bob_experiment(quick_config, engine=ExperimentEngine(workers=2))
        # Exact equality, not approx: parallel execution must reproduce the
        # serial reports bit for bit.
        assert serial.render() == parallel.render()
        assert [r.throughput for r in serial.anc_runs] == [
            r.throughput for r in parallel.anc_runs
        ]
        assert serial.comparisons["traditional"].mean_gain == (
            parallel.comparisons["traditional"].mean_gain
        )
        assert serial.ber_cdf.mean == parallel.ber_cdf.mean

    def test_sir_sweep_bit_identical(self, quick_config):
        kwargs = dict(sir_db_values=(-3.0, 1.0), packets_per_point=2)
        serial = run_sir_sweep(quick_config, engine=ExperimentEngine(workers=1), **kwargs)
        parallel = run_sir_sweep(quick_config, engine=ExperimentEngine(workers=2), **kwargs)
        assert serial == parallel


class TestRunBatched:
    """Block dispatch must be invisible in results, caching and ordering."""

    def test_results_identical_at_every_batch_size(self, quick_config):
        reference = ExperimentEngine().map("toy", _draw_trial, quick_config, range(10))
        for batch_size in (1, 3, 4, 10, 99):
            batched = ExperimentEngine().run_batched(
                "toy", _draw_trial, quick_config, range(10), batch_size=batch_size
            )
            assert batched == reference

    def test_parallel_batched_identical_to_serial(self, quick_config):
        serial = ExperimentEngine(workers=1).map("toy", _draw_trial, quick_config, range(8))
        parallel = ExperimentEngine(workers=2).run_batched(
            "toy", _draw_trial, quick_config, range(8), batch_size=3
        )
        assert parallel == serial

    def test_constructor_default_batch_size(self, quick_config):
        engine = ExperimentEngine(batch_size=4)
        results = engine.run_batched("toy", _draw_trial, quick_config, range(6))
        assert results == ExperimentEngine().map("toy", _draw_trial, quick_config, range(6))
        assert engine.last_stats.batch_size == 4

    def test_invalid_batch_size_rejected(self, quick_config):
        with pytest.raises(ConfigurationError):
            ExperimentEngine(batch_size=0)
        with pytest.raises(ConfigurationError):
            ExperimentEngine().map("toy", _draw_trial, quick_config, range(2), batch_size=0)

    def test_batched_cache_is_per_trial(self, quick_config, tmp_path):
        batched = ExperimentEngine(cache_dir=tmp_path, batch_size=3)
        results = batched.run_batched("toy", _draw_trial, quick_config, range(7))
        assert batched.last_stats.executed_trials == 7
        # A later run at a *different* batch size reuses every trial: the
        # cache layout (and the digest) are independent of batching.
        resumed = ExperimentEngine(cache_dir=tmp_path)
        assert resumed.map("toy", _draw_trial, quick_config, range(7)) == results
        assert resumed.last_stats.cached_trials == 7
        assert resumed.last_stats.executed_trials == 0

    def test_config_batch_size_not_in_digest(self, quick_config):
        bigger = quick_config.with_overrides(batch_size=32)
        assert ExperimentEngine.task_digest("toy", _draw_trial, quick_config) == (
            ExperimentEngine.task_digest("toy", _draw_trial, bigger)
        )

    def test_serial_batched_run_persists_per_trial(self, quick_config, tmp_path):
        """A serial block must not lose completed trials to an interruption."""

        def _fail_on_two(cfg, key):
            if key == 2:
                raise RuntimeError("boom")
            return key

        # Module-level picklability is not needed on the serial path.
        engine = ExperimentEngine(cache_dir=tmp_path, batch_size=4)
        with pytest.raises(RuntimeError):
            engine.run_batched("toy", _fail_on_two, quick_config, range(4))
        digest = ExperimentEngine.task_digest("toy", _fail_on_two, quick_config)
        cached = sorted(p.name for p in (tmp_path / digest).glob("*.pkl"))
        assert cached == [f"{_key_slug(0)}.pkl", f"{_key_slug(1)}.pkl"]

    def test_config_batch_size_reaches_every_figure_runner(self, quick_config):
        """chain/x/capacity honor the config knob like alice-bob does."""
        from repro.experiments.capacity_fig7 import run_capacity_experiment
        from repro.experiments.chain import run_chain_experiment
        from repro.experiments.x_topology import run_x_topology_experiment

        config = quick_config.with_overrides(batch_size=2)
        for runner in (run_chain_experiment, run_x_topology_experiment):
            engine = ExperimentEngine()
            runner(config, engine=engine)
            assert engine.last_stats.batch_size == 2
        engine = ExperimentEngine()
        run_capacity_experiment(config=config, snr_db_values=[10.0, 20.0], engine=engine)
        assert engine.last_stats.batch_size == 2

    def test_engine_batch_size_survives_default_config(self, quick_config):
        """A config that keeps batch_size=1 must not clobber the engine's."""
        engine = ExperimentEngine(batch_size=3)
        run_alice_bob_experiment(quick_config, engine=engine)
        assert engine.last_stats.batch_size == 3
        # An explicitly configured batch size wins over the engine default.
        run_alice_bob_experiment(quick_config.with_overrides(batch_size=2), engine=engine)
        assert engine.last_stats.batch_size == 2

    def test_alice_bob_batched_report_bit_identical(self, quick_config):
        serial = run_alice_bob_experiment(quick_config, engine=ExperimentEngine(workers=1))
        batched = run_alice_bob_experiment(
            quick_config.with_overrides(batch_size=2),
            engine=ExperimentEngine(workers=2),
        )
        assert serial.render() == batched.render()


class TestResume:
    def test_second_run_fully_cached(self, quick_config, tmp_path):
        first = ExperimentEngine(cache_dir=tmp_path)
        results = first.map("toy", _draw_trial, quick_config, range(4))
        assert first.last_stats.executed_trials == 4

        second = ExperimentEngine(cache_dir=tmp_path)
        resumed = second.map("toy", _draw_trial, quick_config, range(4))
        assert resumed == results
        assert second.last_stats.cached_trials == 4
        assert second.last_stats.executed_trials == 0

    def test_partial_resume_recomputes_only_missing(self, quick_config, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path)
        results = engine.map("toy", _draw_trial, quick_config, range(4))
        digest = engine.last_stats.digest
        (tmp_path / digest / f"{_key_slug(2)}.pkl").unlink()

        resumed = ExperimentEngine(cache_dir=tmp_path)
        assert resumed.map("toy", _draw_trial, quick_config, range(4)) == results
        assert resumed.last_stats.cached_trials == 3
        assert resumed.last_stats.executed_trials == 1

    def test_corrupt_cache_entry_recomputed(self, quick_config, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path)
        results = engine.map("toy", _draw_trial, quick_config, range(2))
        digest = engine.last_stats.digest
        (tmp_path / digest / f"{_key_slug(1)}.pkl").write_bytes(b"torn write")

        resumed = ExperimentEngine(cache_dir=tmp_path)
        assert resumed.map("toy", _draw_trial, quick_config, range(2)) == results
        assert resumed.last_stats.executed_trials == 1

    def test_truncated_cache_entry_recomputed(self, quick_config, tmp_path):
        """A torn write that is a *prefix* of a valid pickle still recomputes.

        Unlike random garbage, a truncated pickle begins with a valid
        opcode stream and only fails at EOF — the resume path must treat
        that as a miss, not crash mid-resume.
        """
        engine = ExperimentEngine(cache_dir=tmp_path)
        results = engine.map("toy", _draw_trial, quick_config, range(3))
        digest = engine.last_stats.digest
        victim = tmp_path / digest / f"{_key_slug(1)}.pkl"
        valid = victim.read_bytes()
        assert len(valid) > 2
        victim.write_bytes(valid[: len(valid) // 2])

        resumed = ExperimentEngine(cache_dir=tmp_path)
        assert resumed.map("toy", _draw_trial, quick_config, range(3)) == results
        assert resumed.last_stats.cached_trials == 2
        assert resumed.last_stats.executed_trials == 1

    def test_empty_cache_entry_recomputed(self, quick_config, tmp_path):
        """Zero-byte files (crash between create and write) are misses too."""
        engine = ExperimentEngine(cache_dir=tmp_path)
        results = engine.map("toy", _draw_trial, quick_config, range(2))
        digest = engine.last_stats.digest
        (tmp_path / digest / f"{_key_slug(0)}.pkl").write_bytes(b"")

        resumed = ExperimentEngine(cache_dir=tmp_path)
        assert resumed.map("toy", _draw_trial, quick_config, range(2)) == results
        assert resumed.last_stats.executed_trials == 1

    def test_none_results_are_cacheable(self, quick_config, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path)
        assert engine.map("toy", _none_trial, quick_config, range(2)) == [None, None]
        resumed = ExperimentEngine(cache_dir=tmp_path)
        assert resumed.map("toy", _none_trial, quick_config, range(2)) == [None, None]
        assert resumed.last_stats.cached_trials == 2
        assert resumed.last_stats.executed_trials == 0

    def test_experiment_resume_matches_uncached_run(self, quick_config, tmp_path):
        kwargs = dict(snr_db_values=(20.0, 30.0), runs_per_point=1)
        cached_engine = ExperimentEngine(cache_dir=tmp_path)
        first = run_snr_sweep(quick_config, engine=cached_engine, **kwargs)
        resumed = run_snr_sweep(quick_config, engine=ExperimentEngine(cache_dir=tmp_path), **kwargs)
        uncached = run_snr_sweep(quick_config, engine=ExperimentEngine(), **kwargs)
        assert first == resumed == uncached


class TestCacheKeying:
    def test_config_change_invalidates_cache(self, quick_config, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path)
        engine.map("toy", _draw_trial, quick_config, range(3))

        reseeded = quick_config.with_overrides(seed=99)
        engine.map("toy", _draw_trial, reseeded, range(3))
        assert engine.last_stats.cached_trials == 0
        assert engine.last_stats.executed_trials == 3

    def test_params_change_invalidates_cache(self, quick_config, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path)
        engine.map("toy", _echo_trial, quick_config, range(3), params={"scale": 1.0})
        engine.map("toy", _echo_trial, quick_config, range(3), params={"scale": 2.0})
        assert engine.last_stats.cached_trials == 0

    def test_digest_stable_across_instances(self, quick_config):
        first = ExperimentEngine.task_digest("toy", _draw_trial, quick_config)
        second = ExperimentEngine.task_digest("toy", _draw_trial, quick_config)
        assert first == second

    def test_undigestable_config_rejected_loudly(self):
        """A config whose only repr embeds memory addresses must be refused.

        ``repr(object())`` is ``<object object at 0x...>`` — a digest built
        from it changes every process start, so resume would silently never
        hit.  The engine now refuses instead of silently falling back.
        """

        class Opaque:
            pass

        with pytest.raises(ConfigurationError, match="stable cache digest"):
            ExperimentEngine.task_digest("toy", _draw_trial, Opaque())

    def test_json_serializable_plain_config_still_digests(self):
        plain = {"seed": 7, "snr_db": 15.0}
        first = ExperimentEngine.task_digest("toy", _draw_trial, plain)
        second = ExperimentEngine.task_digest("toy", _draw_trial, dict(plain))
        assert first == second


class TestCacheKeySlugs:
    """Regression tests for the historical slug collisions.

    The old sanitising slug mapped distinct keys to one cache file —
    ``"a/b"`` and ``"a_b"`` both became ``a_b``; ``("a", "b")`` and
    ``("a_b",)`` both became ``t_a_b`` — so on resume one key could be
    served another key's cached result.  The slug now appends a short
    hash of an injective key encoding.
    """

    @pytest.mark.parametrize(
        "left, right",
        [
            ("a/b", "a_b"),
            (("a", "b"), ("a_b",)),
            (("a", "b"), ("a", "b", "")),
            (1, "00000001"),
            (1, 1.0),
            ("a b", "a.b"),
        ],
    )
    def test_distinct_keys_get_distinct_slugs(self, left, right):
        assert _key_slug(left) != _key_slug(right)

    def test_slugs_stay_filesystem_safe_and_bounded(self):
        slug = _key_slug(("x" * 500, "y/z", 3, 2.5))
        assert len(slug) <= 96 + 9
        assert "/" not in slug

    def test_bool_keys_rejected(self):
        # bool is an int subclass; allowing it would alias True with 1.
        with pytest.raises(ConfigurationError):
            _key_slug(True)

    def test_colliding_keys_resume_to_their_own_results(self, quick_config, tmp_path):
        """Keys the old slug merged now cache — and resume — separately."""
        keys = ["a/b", "a_b", ("a", "b"), ("a_b",)]
        engine = ExperimentEngine(cache_dir=tmp_path)
        results = engine.map("toy", _echo_trial, quick_config, keys)
        assert [r[0] for r in results] == keys

        resumed = ExperimentEngine(cache_dir=tmp_path)
        assert resumed.map("toy", _echo_trial, quick_config, keys) == results
        assert resumed.last_stats.cached_trials == 4
        assert resumed.last_stats.executed_trials == 0


class TestSharedMemoryHandoff:
    """Zero-copy parameter shipping must be invisible except in speed.

    Large ndarray params cross the process boundary as
    ``multiprocessing.shared_memory`` segments instead of being pickled
    per block; results must be bit-identical either way, and the parent
    must unlink every segment when the run ends — including when a worker
    crashes.
    """

    #: Big enough to cross the export threshold (float64 elements).
    _BIG = np.arange(_SHM_MIN_BYTES // 8 + 512, dtype=np.float64)

    def _run(self, config, *, shared_memory, trial=_weighted_trial):
        engine = ExperimentEngine(workers=2, shared_memory=shared_memory)
        results = engine.run_batched(
            "toy", trial, config, range(8),
            params={"weights": self._BIG}, batch_size=2,
        )
        return engine, results

    def test_shm_results_bit_identical_to_pickled(self, quick_config):
        shm_engine, shm_results = self._run(quick_config, shared_memory=True)
        pickled_engine, pickled_results = self._run(quick_config, shared_memory=False)
        assert shm_results == pickled_results
        # The shm run really took the zero-copy path; the control didn't.
        assert shm_engine._last_shm_names
        assert not pickled_engine._last_shm_names

    def test_segments_unlinked_after_run(self, quick_config):
        engine, _ = self._run(quick_config, shared_memory=True)
        for name in engine._last_shm_names:
            with pytest.raises(FileNotFoundError):
                SharedMemory(name=name)

    def test_segments_unlinked_after_worker_crash(self, quick_config):
        engine = ExperimentEngine(workers=2, shared_memory=True)
        with pytest.raises(RuntimeError, match="exploded"):
            engine.run_batched(
                "toy", _crashing_weighted_trial, quick_config, range(8),
                params={"weights": self._BIG}, batch_size=2,
            )
        assert engine._last_shm_names
        for name in engine._last_shm_names:
            with pytest.raises(FileNotFoundError):
                SharedMemory(name=name)

    def test_small_arrays_still_pickled(self, quick_config):
        """Below the size threshold the segment overhead isn't worth it."""
        small = np.arange(16, dtype=np.float64)
        engine = ExperimentEngine(workers=2, shared_memory=True)
        results = engine.run_batched(
            "toy", _weighted_trial, quick_config, range(8),
            params={"weights": small}, batch_size=2,
        )
        assert not engine._last_shm_names
        assert results == [float(small[k % 16]) * (k + 1) for k in range(8)]

    def test_serial_path_matches_parallel_shm(self, quick_config):
        serial = ExperimentEngine(workers=1).map(
            "toy", _weighted_trial, quick_config, range(8),
            params={"weights": self._BIG},
        )
        _, parallel = self._run(quick_config, shared_memory=True)
        assert serial == parallel


class TestRunnerRegistry:
    def test_registry_covers_every_cli_experiment(self):
        assert available_runners() == [
            "capacity", "alice-bob", "x", "chain", "sir", "snr", "summary",
        ]

    def test_get_runner_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_runner("does-not-exist")

    def test_capacity_runner_renders(self, quick_config):
        text = RUNNERS["capacity"].run(quick_config, ExperimentEngine())
        assert "crossover" in text

    def test_alice_bob_runner_matches_direct_call(self, quick_config):
        via_registry = get_runner("alice-bob").run(quick_config, None)
        direct = run_alice_bob_experiment(quick_config).render()
        assert via_registry == direct


class TestTrialFunctionsAreEngineCompatible:
    def test_trial_function_is_picklable_toplevel(self):
        import pickle

        assert pickle.loads(pickle.dumps(run_alice_bob_trial)) is run_alice_bob_trial

    def test_trial_matches_experiment_runs(self, quick_config):
        traditional, cope, anc = run_alice_bob_trial(quick_config, 0)
        report = run_alice_bob_experiment(quick_config)
        assert report.baseline_runs["traditional"][0].throughput == traditional.throughput
        assert report.baseline_runs["cope"][0].throughput == cope.throughput
        assert report.anc_runs[0].throughput == anc.throughput
