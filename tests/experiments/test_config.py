"""Tests for the experiment configuration."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.config import ExperimentConfig


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert config.runs == 40

    def test_quick_is_small(self):
        quick = ExperimentConfig.quick()
        assert quick.runs <= 5
        assert quick.packets_per_run <= 10

    def test_paper_scale(self):
        paper = ExperimentConfig.paper_scale()
        assert paper.packets_per_run == 1000

    def test_with_overrides(self):
        config = ExperimentConfig().with_overrides(runs=3)
        assert config.runs == 3
        assert ExperimentConfig().runs == 40

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(runs=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(packets_per_run=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(payload_bits=100)  # not a multiple of 8
        with pytest.raises(ConfigurationError):
            ExperimentConfig(snr_db_range=(30.0, 20.0))
        with pytest.raises(ConfigurationError):
            ExperimentConfig(overlap_range=(0.9, 0.5))
        with pytest.raises(ConfigurationError):
            ExperimentConfig(overlap_jitter=0.9)

    def test_run_rng_deterministic(self):
        config = ExperimentConfig(seed=99)
        a = config.run_rng(3, stream=1).integers(0, 1000, 5)
        b = config.run_rng(3, stream=1).integers(0, 1000, 5)
        c = config.run_rng(3, stream=2).integers(0, 1000, 5)
        assert list(a) == list(b)
        assert list(a) != list(c)

    def test_draws_within_ranges(self):
        config = ExperimentConfig(snr_db_range=(20.0, 25.0), overlap_range=(0.7, 0.9))
        rng = config.run_rng(0)
        for _ in range(20):
            assert 20.0 <= config.draw_run_snr(rng) <= 25.0
            assert 0.7 <= config.draw_run_overlap(rng) <= 0.9

    def test_degenerate_ranges(self):
        config = ExperimentConfig(snr_db_range=(25.0, 25.0), overlap_range=(0.8, 0.8))
        rng = config.run_rng(1)
        assert config.draw_run_snr(rng) == 25.0
        assert config.draw_run_overlap(rng) == 0.8
