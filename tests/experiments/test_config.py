"""Tests for the experiment configuration."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.config import ExperimentConfig


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert config.runs == 40

    def test_quick_is_small(self):
        quick = ExperimentConfig.quick()
        assert quick.runs <= 5
        assert quick.packets_per_run <= 10

    def test_paper_scale(self):
        paper = ExperimentConfig.paper_scale()
        assert paper.packets_per_run == 1000

    def test_with_overrides(self):
        config = ExperimentConfig().with_overrides(runs=3)
        assert config.runs == 3
        assert ExperimentConfig().runs == 40

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(runs=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(packets_per_run=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(payload_bits=100)  # not a multiple of 8
        with pytest.raises(ConfigurationError):
            ExperimentConfig(snr_db_range=(30.0, 20.0))
        with pytest.raises(ConfigurationError):
            ExperimentConfig(overlap_range=(0.9, 0.5))
        with pytest.raises(ConfigurationError):
            ExperimentConfig(overlap_jitter=0.9)

    def test_run_rng_deterministic(self):
        config = ExperimentConfig(seed=99)
        a = config.run_rng(3, stream=1).integers(0, 1000, 5)
        b = config.run_rng(3, stream=1).integers(0, 1000, 5)
        c = config.run_rng(3, stream=2).integers(0, 1000, 5)
        assert list(a) == list(b)
        assert list(a) != list(c)

    def test_draws_within_ranges(self):
        config = ExperimentConfig(snr_db_range=(20.0, 25.0), overlap_range=(0.7, 0.9))
        rng = config.run_rng(0)
        for _ in range(20):
            assert 20.0 <= config.draw_run_snr(rng) <= 25.0
            assert 0.7 <= config.draw_run_overlap(rng) <= 0.9

    def test_degenerate_ranges(self):
        config = ExperimentConfig(snr_db_range=(25.0, 25.0), overlap_range=(0.8, 0.8))
        rng = config.run_rng(1)
        assert config.draw_run_snr(rng) == 25.0
        assert config.draw_run_overlap(rng) == 0.8


class TestSnapshotRoundTrip:
    """Regression: snapshot() omission rules must be injective.

    Campaign job digests hash the config snapshot
    (repro.campaign.spec.job_digest), so every knob — in particular
    every knob a scenario declares in its ``consumes`` contract — must
    survive ``from_snapshot(cfg.snapshot())`` unchanged.  A lossy
    omission rule would let two distinct grid points collide on one
    digest and silently dedupe wrong results.
    """

    def test_default_round_trips(self):
        config = ExperimentConfig()
        assert ExperimentConfig.from_snapshot(config.snapshot()) == config

    def test_every_consumed_knob_round_trips(self):
        from repro.experiments.scenarios import SCENARIOS

        non_default = {
            "arrival_rate": 0.7,
            "sim_duration": 123.0,
            "mac_policy": "scheduled",
        }
        consumed = {
            knob for spec in SCENARIOS.values() for knob in spec.consumes
        }
        assert consumed  # the contract exists
        for knob in sorted(consumed):
            config = ExperimentConfig(**{knob: non_default[knob]})
            rebuilt = ExperimentConfig.from_snapshot(config.snapshot())
            assert rebuilt == config, f"knob {knob} lost in snapshot round-trip"
            assert config.snapshot() != ExperimentConfig().snapshot(), (
                f"knob {knob} missing from snapshot: digests would collide"
            )

    def test_every_field_round_trips(self):
        from dataclasses import fields

        from repro.channel.impairments import ImpairmentConfig

        variants = {
            "runs": 3,
            "packets_per_run": 5,
            "payload_bits": 256,
            "snr_db_range": (5.0, 9.0),
            "overlap_range": (0.8, 0.9),
            "overlap_jitter": 0.01,
            "ber_acceptance": 0.02,
            "anc_redundancy_overhead": 0.2,
            "chain_redundancy_overhead": 0.1,
            "seed": 7,
            "batch_size": 4,
            "backend": "float32-fast",
            "impairments": ImpairmentConfig(sender_cfo=0.01),
            "arrival_rate": 0.4,
            "sim_duration": 55.0,
            "mac_policy": "scheduled",
        }
        assert set(variants) == {f.name for f in fields(ExperimentConfig)}
        for name, value in variants.items():
            config = ExperimentConfig(**{name: value})
            rebuilt = ExperimentConfig.from_snapshot(config.snapshot())
            assert rebuilt == config, f"field {name} lost in snapshot round-trip"

    def test_snapshot_json_round_trip_coerces_types(self):
        import json

        config = ExperimentConfig(
            snr_db_range=(5.0, 9.0), arrival_rate=0.4
        )
        wire = json.loads(json.dumps(config.snapshot()))
        rebuilt = ExperimentConfig.from_snapshot(wire)
        assert rebuilt == config  # lists coerce back to tuples

    def test_unknown_snapshot_key_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig.from_snapshot({"bogus": 1})
