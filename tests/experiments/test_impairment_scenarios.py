"""Tests of the impairment-sweep scenarios (cfo, fading, geometry)."""

import numpy as np
import pytest

from repro import api
from repro.channel.impairments import ImpairmentConfig
from repro.experiments.cfo_sweep import run_cfo_sweep_trial
from repro.experiments.config import ExperimentConfig
from repro.experiments.fading_sweep import RAYLEIGH_K_DB, run_fading_sweep_trial
from repro.experiments.geometry_mesh import run_geometry_mesh_trial
from repro.experiments.scenarios import get_scenario, run_scenario

TINY = ExperimentConfig(runs=1, packets_per_run=2, payload_bits=512, seed=5)


class TestRegistration:
    @pytest.mark.parametrize(
        "name,axis,schemes",
        [
            ("cfo_sweep", "cfo", ("anc", "traditional")),
            ("fading_sweep", "k_db", ("anc", "cope", "traditional")),
            ("geometry_mesh", "flows", ("anc", "cope", "traditional")),
        ],
    )
    def test_specs_registered_with_expected_shape(self, name, axis, schemes):
        spec = get_scenario(name)
        assert spec.sweep_axis == axis
        assert spec.schemes == schemes
        assert len(spec.values_for(quick=True)) < len(spec.values_for(quick=False))

    def test_scenarios_reachable_through_api(self):
        for name in ("cfo_sweep", "fading_sweep", "geometry_mesh"):
            assert api.get_experiment(name).kind == "scenario"


class TestCfoSweepTrial:
    def test_cell_reports_every_scheme_metric(self):
        cell = run_cfo_sweep_trial(TINY, (0.02, 0))
        assert set(cell) == {"anc", "traditional"}
        for metrics in cell.values():
            assert {"throughput", "delivered", "offered", "mean_ber", "slots"} <= set(
                metrics
            )

    def test_trial_is_deterministic(self):
        assert run_cfo_sweep_trial(TINY, (0.05, 1)) == run_cfo_sweep_trial(
            TINY, (0.05, 1)
        )

    def test_zero_cfo_point_matches_unimpaired_baseline(self):
        """The Δω=0 cell must be the exact baseline exchange: the axis
        origin proves the sweep machinery adds nothing when disabled."""
        baseline = run_cfo_sweep_trial(TINY, (0.0, 0))
        again = run_cfo_sweep_trial(
            TINY.with_overrides(impairments=ImpairmentConfig()), (0.0, 0)
        )
        assert baseline == again

    def test_sweep_points_share_the_run_environment(self):
        """Different Δω points of one run see identical traditional cells
        (routing never collides, so sender CFO cannot affect it... it does
        shift every link's ramp, but the topology draw is shared)."""
        low = run_cfo_sweep_trial(TINY, (0.0, 2))
        high = run_cfo_sweep_trial(TINY, (0.1, 2))
        assert low["traditional"]["offered"] == high["traditional"]["offered"]


class TestFadingSweepTrial:
    def test_cell_reports_every_scheme(self):
        cell = run_fading_sweep_trial(TINY, (6.0, 0))
        assert set(cell) == {"anc", "cope", "traditional"}

    def test_trial_is_deterministic(self):
        assert run_fading_sweep_trial(TINY, (0.0, 1)) == run_fading_sweep_trial(
            TINY, (0.0, 1)
        )

    def test_sentinel_selects_rayleigh(self):
        # At/below the sentinel the trial must run (pure Rayleigh) and
        # produce valid cells rather than a degenerate K-factor.
        cell = run_fading_sweep_trial(TINY, (RAYLEIGH_K_DB - 9.0, 0))
        assert cell["anc"]["offered"] > 0

    def test_drift_mode_params_accepted(self):
        cell = run_fading_sweep_trial(
            TINY, (6.0, 0), fading_mode="drift", fading_doppler=0.005
        )
        assert cell["anc"]["offered"] > 0


class TestGeometryMeshTrial:
    def test_cell_reports_every_scheme_with_pairing(self):
        cell = run_geometry_mesh_trial(TINY, (2, 0), nodes=10, radius=0.5)
        assert set(cell) == {"anc", "cope", "traditional"}
        assert cell["anc"]["paired"] >= 0.0
        assert cell["traditional"]["paired"] == 0.0

    def test_trial_is_deterministic(self):
        assert run_geometry_mesh_trial(TINY, (2, 1)) == run_geometry_mesh_trial(
            TINY, (2, 1)
        )

    def test_exponent_shapes_the_link_budget(self):
        """A harsher path-loss exponent weakens the generated links (the
        trial metrics can tie at smoke scale when every packet still
        gets through, so assert on the geometry-derived gains)."""
        from repro.channel.pathloss import PathLossModel
        from repro.network.generator import generate_geometric_mesh

        def mean_gain(exponent):
            topology = generate_geometric_mesh(
                rng=np.random.default_rng(6),
                nodes=10,
                radius=0.5,
                path_loss=PathLossModel(
                    exponent=exponent,
                    reference_distance=0.2,
                    reference_attenuation=0.95,
                    min_attenuation=0.05,
                ),
            )
            return np.mean(
                [
                    topology.link(s, d).attenuation
                    for s, d in topology.graph.edges
                ]
            )

        assert mean_gain(3.5) < mean_gain(2.0)


class TestImpairmentThreading:
    """Every waveform experiment honours cfg.impairments; the analytic
    capacity runner rejects them instead of silently recording them."""

    IMPAIRED = TINY.with_overrides(
        impairments=ImpairmentConfig(sender_cfo=0.1, fading="rayleigh")
    )

    def test_capacity_rejects_impairments(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="analytic"):
            api.run("capacity", config=self.IMPAIRED)

    def test_mesh_sweep_trial_honours_impairments(self):
        from repro.experiments.mesh_sweep import run_mesh_sweep_trial

        clean = run_mesh_sweep_trial(TINY, (2, 0))
        impaired = run_mesh_sweep_trial(self.IMPAIRED, (2, 0))
        assert clean != impaired

    def test_chain_sweep_trial_honours_impairments(self):
        from repro.experiments.chain_sweep import run_chain_sweep_trial

        # 3 hops: the K=2 chain decodes every packet perfectly with or
        # without impairments at this smoke scale, so its metrics tie.
        clean = run_chain_sweep_trial(TINY, (3, 0))
        impaired = run_chain_sweep_trial(self.IMPAIRED, (3, 0))
        assert clean != impaired

    def test_snr_point_trial_honours_impairments(self):
        from repro.experiments.snr_sweep import run_snr_point_trial

        clean = run_snr_point_trial(TINY, 0, (24.0,), 1)
        impaired = run_snr_point_trial(self.IMPAIRED, 0, (24.0,), 1)
        assert clean != impaired

    def test_sir_sweep_honours_impairments(self):
        from repro.experiments.sir_sweep import run_sir_sweep

        clean = run_sir_sweep(TINY, sir_db_values=(0.0,), packets_per_point=3)
        impaired = run_sir_sweep(
            self.IMPAIRED, sir_db_values=(0.0,), packets_per_point=3
        )
        assert clean != impaired

    def test_fading_sweep_respects_drift_request_in_config(self):
        """--fading-mode drift must not be silently reset to block."""
        drift_cfg = TINY.with_overrides(
            impairments=ImpairmentConfig(
                fading_mode="drift", fading_doppler=0.005
            )
        )
        block = run_fading_sweep_trial(TINY, (6.0, 0))
        drift = run_fading_sweep_trial(drift_cfg, (6.0, 0))
        assert block != drift

    def test_cli_scenario_config_carries_bare_drift_flags(self):
        """A lone --fading-mode/--fading-doppler reaches the config even
        though no impairment is 'enabled' by it."""
        from repro.cli import _scenario_config_from_args, build_scenario_parser

        args = build_scenario_parser().parse_args(
            ["fading_sweep", "--quick", "--fading-mode", "drift",
             "--fading-doppler", "0.01"]
        )
        cfg = _scenario_config_from_args(args)
        assert cfg.impairments.fading_mode == "drift"
        assert cfg.impairments.fading_doppler == 0.01
        # ... and it forks the snapshot/digest, so cached block-mode
        # cells can never be served to a drift-mode sweep.
        assert "impairments" in cfg.snapshot()

    def test_cfo_sweep_rejects_configured_sender_cfo(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="sweeps the per-sender"):
            run_cfo_sweep_trial(
                TINY.with_overrides(
                    impairments=ImpairmentConfig(sender_cfo=0.05)
                ),
                (0.0, 0),
            )

    def test_fading_sweep_rejects_configured_fading(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="sweeps the fading"):
            run_fading_sweep_trial(
                TINY.with_overrides(
                    impairments=ImpairmentConfig(fading="rayleigh")
                ),
                (6.0, 0),
            )


class TestScenarioRuns:
    def test_cfo_sweep_report_renders(self):
        report = run_scenario(get_scenario("cfo_sweep"), TINY, quick=True)
        text = report.render()
        assert "=== scenario cfo_sweep ===" in text
        assert "anc/traditional" in text

    def test_fading_sweep_through_api_round_trips(self):
        result = api.run("fading_sweep", config=TINY, quick=True)
        assert result.name == "fading_sweep"
        from repro.results.model import ExperimentResult

        clone = ExperimentResult.from_dict(result.to_dict())
        assert clone.to_dict() == result.to_dict()

    def test_impaired_config_digest_differs(self):
        """Engine caches can never serve impaired cells to clean configs."""
        from repro.experiments.engine import ExperimentEngine

        clean = ExperimentEngine.task_digest("s", run_cfo_sweep_trial, TINY)
        impaired = ExperimentEngine.task_digest(
            "s",
            run_cfo_sweep_trial,
            TINY.with_overrides(impairments=ImpairmentConfig(fading="rayleigh")),
        )
        assert clean != impaired

    def test_parallel_matches_serial(self):
        from repro.experiments.engine import ExperimentEngine

        serial = api.run("cfo_sweep", config=TINY, quick=True)
        parallel = api.run(
            "cfo_sweep", config=TINY, engine=ExperimentEngine(workers=2), quick=True
        )
        assert serial.get_series("cells").rows == parallel.get_series("cells").rows
