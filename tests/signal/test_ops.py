"""Tests for structural signal operations."""

import numpy as np
import pytest

from repro.exceptions import ChannelError
from repro.signal.ops import add_signals, delay_signal, normalize_power, overlap_add, scale_to_power
from repro.signal.samples import ComplexSignal


class TestDelaySignal:
    def test_prepends_zeros(self):
        out = delay_signal(ComplexSignal([1 + 0j]), 3)
        assert len(out) == 4
        assert np.all(out.samples[:3] == 0)
        assert out.samples[3] == 1

    def test_zero_delay(self):
        sig = ComplexSignal([1 + 0j, 2 + 0j])
        assert delay_signal(sig, 0) == sig

    def test_total_length_pads(self):
        out = delay_signal(ComplexSignal([1 + 0j]), 1, total_length=5)
        assert len(out) == 5

    def test_total_length_truncates(self):
        out = delay_signal(ComplexSignal(np.ones(10, dtype=complex)), 0, total_length=4)
        assert len(out) == 4

    def test_negative_delay_rejected(self):
        with pytest.raises(ChannelError):
            delay_signal(ComplexSignal([1 + 0j]), -1)


class TestAddSignals:
    def test_superposition(self):
        out = add_signals([ComplexSignal([1 + 0j]), ComplexSignal([2 + 0j])])
        assert out.samples[0] == 3

    def test_length_mismatch_rejected(self):
        with pytest.raises(ChannelError):
            add_signals([ComplexSignal([1 + 0j]), ComplexSignal([1 + 0j, 2 + 0j])])

    def test_empty_list_rejected(self):
        with pytest.raises(ChannelError):
            add_signals([])


class TestOverlapAdd:
    def test_offsets_respected(self):
        a = ComplexSignal([1 + 0j, 1 + 0j])
        b = ComplexSignal([2 + 0j, 2 + 0j])
        out = overlap_add([(a, 0), (b, 1)])
        assert np.array_equal(out.samples, [1, 3, 2])

    def test_total_length_padding(self):
        out = overlap_add([(ComplexSignal([1 + 0j]), 0)], total_length=4)
        assert len(out) == 4

    def test_component_beyond_length_ignored(self):
        out = overlap_add([(ComplexSignal([1 + 0j]), 10)], total_length=5)
        assert np.all(out.samples == 0)

    def test_negative_offset_rejected(self):
        with pytest.raises(ChannelError):
            overlap_add([(ComplexSignal([1 + 0j]), -1)])

    def test_collision_is_sum_of_delayed_components(self):
        rng = np.random.default_rng(0)
        a = ComplexSignal(rng.normal(size=20) + 1j * rng.normal(size=20))
        b = ComplexSignal(rng.normal(size=20) + 1j * rng.normal(size=20))
        composite = overlap_add([(a, 0), (b, 5)])
        manual = delay_signal(a, 0, total_length=25).samples + delay_signal(
            b, 5, total_length=25
        ).samples
        assert np.allclose(composite.samples, manual)


class TestPowerScaling:
    def test_scale_to_power(self):
        sig = ComplexSignal(np.full(100, 2.0, dtype=complex))
        out = scale_to_power(sig, 1.0)
        assert out.average_power == pytest.approx(1.0)

    def test_normalize_power(self):
        rng = np.random.default_rng(1)
        sig = ComplexSignal(3 * (rng.normal(size=500) + 1j * rng.normal(size=500)))
        assert normalize_power(sig).average_power == pytest.approx(1.0)

    def test_zero_signal_to_zero_power_ok(self):
        out = scale_to_power(ComplexSignal.silence(5), 0.0)
        assert out.average_power == 0.0

    def test_zero_signal_to_positive_power_rejected(self):
        with pytest.raises(ChannelError):
            scale_to_power(ComplexSignal.silence(5), 1.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ChannelError):
            scale_to_power(ComplexSignal([1 + 0j]), -1.0)
