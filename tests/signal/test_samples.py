"""Tests for the ComplexSignal container."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.signal.samples import ComplexSignal


class TestConstruction:
    def test_from_list(self):
        sig = ComplexSignal([1 + 1j, 2])
        assert len(sig) == 2

    def test_samples_are_immutable(self):
        sig = ComplexSignal([1 + 0j])
        with pytest.raises(ValueError):
            sig.samples[0] = 0

    def test_empty(self):
        assert len(ComplexSignal.empty()) == 0

    def test_silence(self):
        sig = ComplexSignal.silence(10)
        assert len(sig) == 10
        assert sig.total_energy == 0.0

    def test_silence_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ComplexSignal.silence(-1)

    def test_from_polar(self):
        sig = ComplexSignal.from_polar(2.0, np.array([0.0, np.pi / 2]))
        assert sig.samples[0] == pytest.approx(2.0)
        assert sig.samples[1] == pytest.approx(2j)

    def test_from_polar_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            ComplexSignal.from_polar(np.array([1.0, 2.0]), np.array([0.0]))

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            ComplexSignal(np.zeros((2, 2)))


class TestDerivedQuantities:
    def test_amplitude_and_phase(self):
        sig = ComplexSignal([3 * np.exp(1j * 0.5)])
        assert sig.amplitude[0] == pytest.approx(3.0)
        assert sig.phase[0] == pytest.approx(0.5)

    def test_energy(self):
        sig = ComplexSignal([2.0, 2j])
        assert sig.energy == pytest.approx([4.0, 4.0])
        assert sig.total_energy == pytest.approx(8.0)
        assert sig.average_power == pytest.approx(4.0)

    def test_average_power_of_empty_is_zero(self):
        assert ComplexSignal.empty().average_power == 0.0

    def test_phase_differences(self):
        phases = np.array([0.0, np.pi / 2, 0.0])
        sig = ComplexSignal.from_polar(1.0, phases)
        diffs = sig.phase_differences()
        assert diffs == pytest.approx([np.pi / 2, -np.pi / 2])

    def test_phase_differences_short_signal(self):
        assert ComplexSignal([1 + 0j]).phase_differences().size == 0


class TestStructuralOps:
    def test_slice(self):
        sig = ComplexSignal(np.arange(5, dtype=complex))
        assert np.array_equal(sig.slice(1, 3).samples, [1, 2])

    def test_concatenate(self):
        a = ComplexSignal([1 + 0j])
        b = ComplexSignal([2 + 0j, 3 + 0j])
        assert len(a.concatenate(b)) == 3

    def test_reversed(self):
        sig = ComplexSignal([1 + 0j, 2 + 0j])
        assert np.array_equal(sig.reversed().samples, [2, 1])

    def test_padded(self):
        sig = ComplexSignal([1 + 0j]).padded(2, 3)
        assert len(sig) == 6
        assert sig.samples[2] == 1

    def test_padded_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ComplexSignal([1 + 0j]).padded(-1, 0)

    def test_scaled(self):
        sig = ComplexSignal([1 + 0j]).scaled(2j)
        assert sig.samples[0] == pytest.approx(2j)

    def test_add_superposes(self):
        a = ComplexSignal([1 + 0j, 1 + 0j])
        b = ComplexSignal([0 + 1j, 1 + 0j])
        assert np.array_equal((a + b).samples, [1 + 1j, 2 + 0j])

    def test_add_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            ComplexSignal([1 + 0j]) + ComplexSignal([1 + 0j, 2 + 0j])

    def test_equality_and_isclose(self):
        a = ComplexSignal([1 + 1j])
        b = ComplexSignal([1 + 1j + 1e-12])
        assert a == b
        assert a.isclose(b)
        assert not a.isclose(ComplexSignal([2 + 0j]))
