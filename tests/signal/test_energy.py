"""Tests for the energy and interference detectors (§7.1)."""

import numpy as np
import pytest

from repro.exceptions import DetectionError
from repro.modulation.msk import MSKModulator
from repro.signal.energy import (
    EnergyDetector,
    InterferenceDetector,
    average_power,
    energy_variance,
    peak_power,
)
from repro.signal.noise import awgn
from repro.signal.ops import overlap_add
from repro.signal.samples import ComplexSignal
from repro.utils.bits import random_bits

NOISE = 1e-3


def _msk_burst(n_bits=200, amplitude=1.0, seed=0):
    bits = random_bits(n_bits, np.random.default_rng(seed))
    return MSKModulator(amplitude=amplitude).modulate(bits)


class TestPowerHelpers:
    def test_average_power(self):
        assert average_power(ComplexSignal([2.0, 2.0j])) == pytest.approx(4.0)

    def test_peak_power(self):
        assert peak_power(ComplexSignal([1.0, 3.0j])) == pytest.approx(9.0)

    def test_energy_variance_constant_envelope(self):
        assert energy_variance(_msk_burst()) == pytest.approx(0.0, abs=1e-12)

    def test_empty_signal_zero(self):
        assert average_power(ComplexSignal.empty()) == 0.0
        assert peak_power(ComplexSignal.empty()) == 0.0


class TestEnergyDetector:
    def test_detects_packet_in_noise(self):
        rng = np.random.default_rng(1)
        burst = _msk_burst()
        padded = burst.padded(50, 80)
        noisy = awgn(padded, NOISE, rng)
        detection = EnergyDetector(noise_power=NOISE).detect(noisy)
        assert detection.detected
        assert abs(detection.start_index - 50) <= 16
        assert detection.end_index >= 50 + len(burst) - 16

    def test_no_packet_in_pure_noise(self):
        rng = np.random.default_rng(2)
        noise_only = awgn(ComplexSignal.silence(400), NOISE, rng)
        detection = EnergyDetector(noise_power=NOISE).detect(noise_only)
        assert not detection.detected
        assert detection.length == 0

    def test_is_busy(self):
        burst = _msk_burst()
        assert EnergyDetector(noise_power=NOISE).is_busy(burst)

    def test_empty_signal_raises(self):
        with pytest.raises(DetectionError):
            EnergyDetector(noise_power=NOISE).detect(ComplexSignal.empty())

    def test_threshold_power_scales_with_noise(self):
        detector = EnergyDetector(noise_power=0.01, threshold_db=20.0)
        assert detector.threshold_power == pytest.approx(1.0)


class TestInterferenceDetector:
    def test_clean_msk_not_flagged(self):
        rng = np.random.default_rng(3)
        noisy = awgn(_msk_burst(), NOISE, rng)
        assert not InterferenceDetector(noise_power=NOISE).detect(noisy)

    def test_collision_flagged(self):
        rng = np.random.default_rng(4)
        a = _msk_burst(seed=10)
        b = _msk_burst(seed=11, amplitude=0.8)
        collision = overlap_add([(a, 0), (b, 40)])
        noisy = awgn(collision, NOISE, rng)
        assert InterferenceDetector(noise_power=NOISE).detect(noisy)

    def test_interference_metric_orders_cases(self):
        rng = np.random.default_rng(5)
        detector = InterferenceDetector(noise_power=NOISE)
        clean = awgn(_msk_burst(seed=20), NOISE, rng)
        collision = awgn(
            overlap_add([(_msk_burst(seed=21), 0), (_msk_burst(seed=22, amplitude=0.9), 30)]),
            NOISE,
            rng,
        )
        assert detector.interference_metric(collision) > detector.interference_metric(clean)

    def test_empty_signal_raises(self):
        with pytest.raises(DetectionError):
            InterferenceDetector(noise_power=NOISE).detect(ComplexSignal.empty())
