"""Tests for the :class:`SignalBatch` container."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.signal.batch import SignalBatch, ensure_batch_array
from repro.signal.samples import ComplexSignal


def _signals(n, length, seed=0):
    rng = np.random.default_rng(seed)
    return [
        ComplexSignal(rng.standard_normal(length) + 1j * rng.standard_normal(length))
        for _ in range(n)
    ]


class TestConstruction:
    def test_from_signals_stacks_rows(self):
        signals = _signals(3, 16)
        batch = SignalBatch.from_signals(signals)
        assert batch.n_trials == 3
        assert batch.n_samples == 16
        for i, signal in enumerate(signals):
            assert np.array_equal(batch.samples[i], signal.samples)

    def test_from_signals_rejects_unequal_lengths(self):
        with pytest.raises(ConfigurationError):
            SignalBatch.from_signals(
                [ComplexSignal(np.zeros(4)), ComplexSignal(np.zeros(5))]
            )

    def test_from_signals_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            SignalBatch.from_signals([])

    def test_rejects_non_2d(self):
        with pytest.raises(ConfigurationError):
            SignalBatch(np.zeros(4, dtype=np.complex128))

    def test_silence(self):
        batch = SignalBatch.silence(2, 8)
        assert np.all(batch.samples == 0)
        with pytest.raises(ConfigurationError):
            SignalBatch.silence(0, 8)

    def test_samples_are_frozen(self):
        batch = SignalBatch.silence(1, 4)
        with pytest.raises(ValueError):
            batch.samples[0, 0] = 1.0

    def test_ensure_batch_array_is_contiguous(self):
        strided = np.zeros((3, 16), dtype=np.complex128)[:, ::-1]
        out = ensure_batch_array(strided)
        assert out.flags["C_CONTIGUOUS"]


class TestAccessors:
    def test_rows_roundtrip(self):
        signals = _signals(4, 9, seed=1)
        batch = SignalBatch.from_signals(signals)
        assert len(batch) == 4
        for original, row in zip(signals, batch):
            assert np.array_equal(row.samples, original.samples)
        assert np.array_equal(batch.row(2).samples, signals[2].samples)

    def test_amplitude_phase_power_match_scalar(self):
        signals = _signals(3, 32, seed=2)
        batch = SignalBatch.from_signals(signals)
        for i, signal in enumerate(signals):
            assert np.array_equal(batch.amplitude[i], signal.amplitude)
            assert np.array_equal(batch.phase[i], signal.phase)
            assert batch.average_power[i] == signal.average_power

    def test_empty_batch_power(self):
        assert np.array_equal(SignalBatch.silence(2, 0).average_power, np.zeros(2))


class TestStructuralOps:
    def test_slice(self):
        batch = SignalBatch.from_signals(_signals(2, 10, seed=3))
        sliced = batch.slice(2, 7)
        assert sliced.n_samples == 5
        assert np.array_equal(sliced.samples, batch.samples[:, 2:7])

    def test_scaled_scalar_and_per_row(self):
        batch = SignalBatch.from_signals(_signals(2, 6, seed=4))
        assert np.array_equal(batch.scaled(2.0).samples, batch.samples * 2.0)
        factors = np.array([1.0, 3.0])
        per_row = batch.scaled(factors)
        assert np.array_equal(per_row.samples, batch.samples * factors[:, None])
        with pytest.raises(ConfigurationError):
            batch.scaled(np.zeros((1, 2, 3)))

    def test_reversed(self):
        batch = SignalBatch.from_signals(_signals(2, 6, seed=5))
        assert np.array_equal(batch.reversed().samples, batch.samples[:, ::-1])

    def test_add_requires_same_shape(self):
        a = SignalBatch.silence(2, 4)
        b = SignalBatch.from_signals(_signals(2, 4, seed=6))
        assert np.array_equal((a + b).samples, b.samples)
        with pytest.raises(ConfigurationError):
            a + SignalBatch.silence(2, 5)
        assert a.__add__(object()) is NotImplemented
