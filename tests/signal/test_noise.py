"""Tests for AWGN generation."""

import numpy as np
import pytest

from repro.exceptions import ChannelError
from repro.signal.noise import awgn, complex_gaussian_noise, noise_power_for_snr
from repro.signal.samples import ComplexSignal


class TestComplexGaussianNoise:
    def test_length(self):
        assert complex_gaussian_noise(100, 0.5).size == 100

    def test_zero_power_is_silent(self):
        noise = complex_gaussian_noise(50, 0.0)
        assert np.all(noise == 0)

    def test_power_matches_request(self):
        rng = np.random.default_rng(0)
        noise = complex_gaussian_noise(200_000, 0.25, rng)
        measured = float(np.mean(np.abs(noise) ** 2))
        assert measured == pytest.approx(0.25, rel=0.05)

    def test_circular_symmetry(self):
        rng = np.random.default_rng(1)
        noise = complex_gaussian_noise(100_000, 1.0, rng)
        assert float(np.mean(noise.real ** 2)) == pytest.approx(0.5, rel=0.1)
        assert float(np.mean(noise.imag ** 2)) == pytest.approx(0.5, rel=0.1)

    def test_negative_power_rejected(self):
        with pytest.raises(ChannelError):
            complex_gaussian_noise(10, -1.0)

    def test_negative_length_rejected(self):
        with pytest.raises(ChannelError):
            complex_gaussian_noise(-5, 1.0)


class TestAwgn:
    def test_preserves_length(self):
        sig = ComplexSignal(np.ones(64, dtype=complex))
        assert len(awgn(sig, 0.1, np.random.default_rng(2))) == 64

    def test_zero_noise_identity(self):
        sig = ComplexSignal(np.ones(16, dtype=complex))
        assert awgn(sig, 0.0) == sig

    def test_snr_after_noise(self):
        rng = np.random.default_rng(3)
        sig = ComplexSignal(np.ones(100_000, dtype=complex))
        noise_power = noise_power_for_snr(1.0, 20.0)
        noisy = awgn(sig, noise_power, rng)
        error = noisy.samples - sig.samples
        measured_snr = 1.0 / float(np.mean(np.abs(error) ** 2))
        assert 10 * np.log10(measured_snr) == pytest.approx(20.0, abs=0.5)


class TestNoisePowerForSnr:
    def test_simple_values(self):
        assert noise_power_for_snr(1.0, 10.0) == pytest.approx(0.1)
        assert noise_power_for_snr(4.0, 3.0) == pytest.approx(4.0 / 10 ** 0.3)

    def test_rejects_non_positive_signal(self):
        with pytest.raises(ChannelError):
            noise_power_for_snr(0.0, 10.0)
