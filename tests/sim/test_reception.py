"""Tests of the SINR-segment sessions, capture rules, and decode service."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.node.node import Node, NodeConfig
from repro.sim.reception import (
    PHY_MODES,
    DecodeService,
    ReceptionKind,
    ReceptionSession,
    classify_reception,
)

FRAME = 1000.0


def _session(noise=1e-6):
    return ReceptionSession(noise_power=noise)


class TestReceptionSession:
    def test_component_validation(self):
        session = _session()
        with pytest.raises(ConfigurationError):
            session.add(0, power=-1.0, start=0.0, end=FRAME)
        with pytest.raises(ConfigurationError):
            session.add(0, power=1.0, start=FRAME, end=FRAME)

    def test_single_component_is_one_clean_segment(self):
        session = _session(noise=1e-3)
        session.add(0, power=1.0, start=0.0, end=FRAME)
        segments = session.segments_for(0)
        assert len(segments) == 1
        assert segments[0].interferer_count == 0
        assert segments[0].sinr_db == pytest.approx(30.0, abs=0.1)

    def test_partial_overlap_cuts_segments(self):
        session = _session()
        session.add(0, power=1.0, start=0.0, end=FRAME)
        session.add(1, power=0.5, start=600.0, end=FRAME + 600.0)
        segments = session.segments_for(0)
        assert [s.interferer_count for s in segments] == [0, 1]
        assert segments[0].end == 600.0
        # The overlapped tail's SINR reflects the interferer power ratio.
        assert segments[1].sinr_db == pytest.approx(10.0 * np.log10(2.0), abs=0.1)
        assert session.min_sinr_db(0) == segments[1].sinr_db

    def test_strongest_and_lookup(self):
        session = _session()
        session.add(0, power=0.2, start=0.0, end=FRAME)
        session.add(1, power=0.9, start=0.0, end=FRAME)
        assert session.strongest().tx_id == 1
        assert session.component(0).power == 0.2
        with pytest.raises(SimulationError):
            session.component(99)


class TestClassifyReception:
    def test_empty_session_rejected(self):
        with pytest.raises(SimulationError):
            classify_reception(_session(), capture_threshold_db=10.0)

    def test_single_component_is_clean(self):
        session = _session()
        session.add(7, power=1.0, start=0.0, end=FRAME)
        assert classify_reception(session, 10.0) == (ReceptionKind.CLEAN, 7)

    def test_strong_component_captures(self):
        session = _session()
        session.add(0, power=1.0, start=0.0, end=FRAME)
        session.add(1, power=0.01, start=100.0, end=FRAME + 100.0)
        kind, primary = classify_reception(session, capture_threshold_db=10.0)
        assert kind is ReceptionKind.CAPTURED
        assert primary == 0

    def test_comparable_pair_with_known_frame_is_anc_decodable(self):
        session = _session()
        session.add(0, power=1.0, start=0.0, end=FRAME)
        session.add(1, power=0.9, start=200.0, end=FRAME + 200.0)
        kind, primary = classify_reception(session, 10.0, known_tx_ids=(0,))
        assert kind is ReceptionKind.ANC_COLLISION
        assert primary == 1, "decode target is the unknown component"

    def test_comparable_pair_without_knowledge_collides(self):
        session = _session()
        session.add(0, power=1.0, start=0.0, end=FRAME)
        session.add(1, power=0.9, start=200.0, end=FRAME + 200.0)
        assert classify_reception(session, 10.0) == (ReceptionKind.COLLIDED, None)

    def test_three_way_pileup_collides(self):
        session = _session()
        for tx_id in range(3):
            session.add(tx_id, power=1.0, start=tx_id * 100.0, end=FRAME + tx_id * 100.0)
        kind, _ = classify_reception(session, 10.0, known_tx_ids=(0, 1))
        assert kind is ReceptionKind.COLLIDED


class TestDecodeService:
    def test_unknown_phy_rejected(self):
        with pytest.raises(ConfigurationError):
            DecodeService(phy="quantum")

    @pytest.mark.parametrize("phy", PHY_MODES)
    def test_roundtrip_through_each_phy(self, phy):
        node = Node(1, NodeConfig(payload_bits=64))
        packet = node.make_packet(destination=2, rng=np.random.default_rng(0))
        waveform = node.transmit(packet)
        result = DecodeService(phy=phy).decode_window(waveform, 0, len(waveform))
        assert result.packet is not None
        assert np.array_equal(result.packet.payload, packet.payload)

    def test_scalar_and_batched_bit_identical(self):
        node = Node(1, NodeConfig(payload_bits=64))
        rng = np.random.default_rng(1)
        windows = []
        for _ in range(4):
            waveform = node.transmit(node.make_packet(destination=2, rng=rng))
            windows.append((waveform, 0, len(waveform)))
        scalar = DecodeService(phy="scalar").decode_windows(windows)
        batched = DecodeService(phy="batched").decode_windows(windows)
        for a, b in zip(scalar, batched):
            assert a.delivered and b.delivered
            assert np.array_equal(a.packet.payload, b.packet.payload)

    def test_invalid_window_rejected(self):
        node = Node(1, NodeConfig(payload_bits=64))
        waveform = node.transmit(node.make_packet(2, rng=np.random.default_rng(2)))
        with pytest.raises(ConfigurationError):
            DecodeService().decode_window(waveform, -1, len(waveform))

    def test_payload_ber(self):
        truth = np.array([0, 1, 0, 1], dtype=np.uint8)
        assert DecodeService.payload_ber(None, truth) == 0.5
        assert DecodeService.payload_ber(np.array([0, 1], dtype=np.uint8), truth) == 0.5
        flipped = np.array([1, 1, 0, 1], dtype=np.uint8)
        assert DecodeService.payload_ber(flipped, truth) == pytest.approx(0.25)
