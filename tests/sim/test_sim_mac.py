"""Tests of the pluggable MAC policies (CSMA/BEB and the TDMA grid)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sim.mac import MAC_POLICIES, CsmaBackoffMac, ScheduledMac


class TestRegistry:
    def test_policy_names(self):
        assert MAC_POLICIES == ("csma", "scheduled")
        assert CsmaBackoffMac.policy_name == "csma"
        assert ScheduledMac.policy_name == "scheduled"


class TestCsmaBackoffMac:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            CsmaBackoffMac(slot_samples=0)
        with pytest.raises(ConfigurationError):
            CsmaBackoffMac(cw_min=8, cw_max=4)
        with pytest.raises(ConfigurationError):
            CsmaBackoffMac(max_retries=0)

    def test_access_delay_within_window(self):
        mac = CsmaBackoffMac(slot_samples=32, difs_samples=64, cw_min=4)
        state = mac.fresh_state()
        rng = np.random.default_rng(0)
        delays = {mac.access_delay(state, rng) for _ in range(200)}
        assert min(delays) >= 64.0
        assert max(delays) <= 64.0 + 4 * 32.0
        # Whole slots only: every delay is DIFS plus a multiple of the slot.
        assert all((d - 64.0) % 32.0 == 0.0 for d in delays)

    def test_binary_exponential_backoff_bounded(self):
        mac = CsmaBackoffMac(cw_min=4, cw_max=16)
        state = mac.fresh_state()
        widths = []
        for _ in range(4):
            mac.on_failure(state)
            widths.append(state.cw)
        assert widths == [8, 16, 16, 16]
        assert state.retries == 4

    def test_success_resets_window(self):
        mac = CsmaBackoffMac(cw_min=4, cw_max=64)
        state = mac.fresh_state()
        mac.on_failure(state)
        mac.on_failure(state)
        mac.on_success(state)
        assert state.cw == 4
        assert state.retries == 0

    def test_exhaustion_after_max_retries(self):
        mac = CsmaBackoffMac(max_retries=2)
        state = mac.fresh_state()
        assert not mac.exhausted(state)
        mac.on_failure(state)
        assert not mac.exhausted(state)
        mac.on_failure(state)
        assert mac.exhausted(state)


class TestScheduledMac:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            ScheduledMac(slot_samples=0, n_ranks=3)
        with pytest.raises(ConfigurationError):
            ScheduledMac(slot_samples=100, n_ranks=0)

    def test_round_robin_ownership(self):
        mac = ScheduledMac(slot_samples=100, n_ranks=3)
        assert [mac.slot_owner(i) for i in range(6)] == [0, 1, 2, 0, 1, 2]
        assert mac.slot_start(4) == 400.0

    def test_next_owned_slot_at_or_after_now(self):
        mac = ScheduledMac(slot_samples=100, n_ranks=3)
        assert mac.next_owned_slot(0.0, rank=0) == 0.0
        assert mac.next_owned_slot(0.0, rank=2) == 200.0
        assert mac.next_owned_slot(150.0, rank=1) == 400.0
        for now in (0.0, 37.0, 99.9, 100.0, 512.0):
            for rank in range(3):
                start = mac.next_owned_slot(now, rank)
                assert start >= now
                assert mac.slot_owner(int(start) // 100) == rank

    def test_foreign_rank_rejected(self):
        with pytest.raises(ConfigurationError):
            ScheduledMac(slot_samples=100, n_ranks=3).next_owned_slot(0.0, rank=3)
