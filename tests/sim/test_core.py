"""Tests of the discrete-event core: ordering, cancellation, trace, RNG."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, SimulationError
from repro.sim.core import EventScheduler, RngStreams


class TestEventScheduler:
    def test_events_fire_in_time_order(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(3.0, lambda: fired.append("c"))
        sched.schedule(1.0, lambda: fired.append("a"))
        sched.schedule(2.0, lambda: fired.append("b"))
        assert sched.run_until(10.0) == 3
        assert fired == ["a", "b", "c"]
        assert sched.now == 3.0

    def test_priority_breaks_equal_times(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, lambda: fired.append("low"), priority=5)
        sched.schedule(1.0, lambda: fired.append("high"), priority=-1)
        sched.run_until(2.0)
        assert fired == ["high", "low"]

    def test_insertion_order_breaks_full_ties(self):
        sched = EventScheduler()
        fired = []
        for label in ("first", "second", "third"):
            sched.schedule(1.0, lambda l=label: fired.append(l))
        sched.run_until(2.0)
        assert fired == ["first", "second", "third"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventScheduler().schedule(-0.5, lambda: None)

    def test_schedule_at_absolute_time(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, lambda: sched.schedule_at(5.0, lambda: fired.append(sched.now)))
        sched.run_until(10.0)
        assert fired == [5.0]

    def test_cancelled_event_skipped_and_untraced(self):
        sched = EventScheduler()
        fired = []
        event = sched.schedule(1.0, lambda: fired.append("cancelled"))
        sched.schedule(2.0, lambda: fired.append("kept"), kind="kept")
        sched.cancel(event)
        assert sched.run_until(5.0) == 1
        assert fired == ["kept"]
        assert [entry[3] for entry in sched.trace] == ["kept"]

    def test_run_until_leaves_future_events_pending(self):
        sched = EventScheduler()
        sched.schedule(1.0, lambda: None)
        sched.schedule(9.0, lambda: None)
        assert sched.run_until(5.0) == 1
        assert sched.pending == 1
        assert sched.now == 1.0

    def test_trace_digest_deterministic_and_sensitive(self):
        def build(kinds):
            sched = EventScheduler()
            for i, kind in enumerate(kinds):
                sched.schedule(float(i), lambda: None, kind=kind)
            sched.run_until(10.0)
            return sched.trace_digest()

        assert build(["a", "b"]) == build(["a", "b"])
        assert build(["a", "b"]) != build(["a", "c"])

    @given(
        specs=st.lists(
            st.tuples(
                st.sampled_from([0.0, 1.0, 1.5, 2.0]),
                st.integers(min_value=-1, max_value=2),
            ),
            min_size=1,
            max_size=32,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_simultaneous_events_dequeue_in_stable_insertion_order(self, specs):
        """Equal (time, priority) events must fire in scheduling order."""
        sched = EventScheduler()
        fired = []
        for index, (time, priority) in enumerate(specs):
            sched.schedule(time, lambda i=index: fired.append(i), priority=priority)
        sched.run_until(10.0)
        expected = [
            index
            for index, _ in sorted(
                enumerate(specs), key=lambda item: (item[1][0], item[1][1], item[0])
            )
        ]
        assert fired == expected


class TestRngStreams:
    def test_requires_entropy(self):
        with pytest.raises(ConfigurationError):
            RngStreams([])

    def test_streams_are_cached(self):
        streams = RngStreams([7])
        assert streams.stream(1, "noise") is streams.stream(1, "noise")
        assert streams.node_stream(1, "noise") is streams.stream(1, "noise")

    def test_named_streams_are_independent(self):
        streams = RngStreams([7])
        first = streams.stream(1, "noise").standard_normal(4)
        # Drawing from an unrelated stream must not perturb stream (1, noise).
        RngStreams([7]).stream(2, "payload").standard_normal(100)
        again = RngStreams([7]).stream(1, "noise").standard_normal(4)
        assert np.array_equal(first, again)

    def test_different_entropy_diverges(self):
        a = RngStreams([7]).stream(0, "x").standard_normal(4)
        b = RngStreams([8]).stream(0, "x").standard_normal(4)
        assert not np.array_equal(a, b)

    def test_string_key_material_is_stable(self):
        # SHA-256 folding, not Python hash(): stable across processes.
        assert RngStreams._key_material("payload") == RngStreams._key_material("payload")
        assert RngStreams._key_material("payload") != RngStreams._key_material("noise")
        assert RngStreams._key_material(np.int64(5)) == 5
