"""Tests of the arrival-process traffic models."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sim.traffic import (
    TRAFFIC_MODELS,
    BurstyOnOffArrivals,
    CBRArrivals,
    PoissonArrivals,
    make_arrival_process,
)


class TestRegistry:
    def test_model_names(self):
        assert TRAFFIC_MODELS == ("poisson", "cbr", "bursty")

    def test_factory_dispatch(self):
        for name, cls in (
            ("poisson", PoissonArrivals),
            ("cbr", CBRArrivals),
            ("bursty", BurstyOnOffArrivals),
        ):
            process = make_arrival_process(name, 100.0)
            assert isinstance(process, cls)
            assert process.rate == pytest.approx(0.01)

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            make_arrival_process("fractal", 100.0)

    def test_mean_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(0.0)


class TestPoisson:
    def test_long_run_mean_matches(self):
        rng = np.random.default_rng(0)
        process = PoissonArrivals(50.0)
        draws = [process.next_interarrival(rng) for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(50.0, rel=0.1)

    def test_draws_are_memoryless_spread(self):
        rng = np.random.default_rng(1)
        process = PoissonArrivals(50.0)
        draws = [process.next_interarrival(rng) for _ in range(2000)]
        # Exponential: std equals the mean (within sampling error).
        assert np.std(draws) == pytest.approx(50.0, rel=0.15)


class TestCBR:
    def test_perfectly_periodic(self):
        rng = np.random.default_rng(2)
        process = CBRArrivals(64.0)
        assert [process.next_interarrival(rng) for _ in range(5)] == [64.0] * 5


class TestBursty:
    def test_long_run_mean_matches(self):
        rng = np.random.default_rng(3)
        process = BurstyOnOffArrivals(50.0)
        draws = [process.next_interarrival(rng) for _ in range(8000)]
        assert np.mean(draws) == pytest.approx(50.0, rel=0.1)

    def test_in_burst_spacing_is_denser(self):
        rng = np.random.default_rng(4)
        process = BurstyOnOffArrivals(100.0, burst_length=8.0, peak_factor=4.0)
        draws = [process.next_interarrival(rng) for _ in range(2000)]
        in_burst = [d for d in draws if d == pytest.approx(25.0)]
        assert in_burst, "bursts should produce mean/peak_factor spacings"
        assert max(draws) > 100.0, "off periods should exceed the long-run mean"

    def test_higher_variance_than_poisson(self):
        rng = np.random.default_rng(5)
        bursty = BurstyOnOffArrivals(50.0)
        draws = [bursty.next_interarrival(rng) for _ in range(4000)]
        # Same long-run rate, much burstier: coefficient of variation > 1.
        assert np.std(draws) / np.mean(draws) > 1.1

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            BurstyOnOffArrivals(50.0, burst_length=0.5)
        with pytest.raises(ConfigurationError):
            BurstyOnOffArrivals(50.0, peak_factor=1.0)
