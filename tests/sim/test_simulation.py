"""End-to-end tests of the event-driven Alice-relay-Bob traffic simulation."""

import dataclasses

import pytest

from repro.exceptions import ConfigurationError
from repro.network.topologies import ChannelConditions
from repro.sim.simulation import SCHEMES, SimParams, TrafficSimulation

ENTROPY = [7, 600, 0]
CONDITIONS = ChannelConditions(snr_db=18.0)

METRIC_KEYS = {
    "throughput",
    "delivered",
    "offered",
    "mean_ber",
    "drop_rate",
    "delay_mean",
    "delay_p95",
    "queue_wait_mean",
    "slots",
}


def _run(**overrides):
    params = SimParams(**{"sim_duration_frames": 24.0, **overrides})
    return TrafficSimulation(params, entropy=ENTROPY, conditions=CONDITIONS).run()


class TestSimParams:
    def test_defaults_are_valid(self):
        params = SimParams()
        assert params.scheme == "anc"
        assert params.mac_policy == "csma"

    @pytest.mark.parametrize(
        "field,value",
        [
            ("scheme", "flooding"),
            ("mac_policy", "aloha"),
            ("traffic_model", "fractal"),
            ("phy", "quantum"),
            ("arrival_rate", 0.0),
            ("sim_duration_frames", -1.0),
            ("payload_bits", 100),
            ("mean_overlap", 1.5),
            ("queue_capacity", 0),
            ("patience_frames", -1.0),
        ],
    )
    def test_bad_knobs_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            SimParams(**{field: value})


class TestSchemes:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_each_scheme_delivers_at_moderate_load(self, scheme):
        report = _run(scheme=scheme, arrival_rate=0.4)
        metrics = report.metrics()
        assert set(metrics) == METRIC_KEYS
        assert metrics["offered"] > 0
        assert metrics["delivered"] > 0
        assert metrics["throughput"] > 0
        assert 0.0 <= metrics["drop_rate"] <= 1.0
        assert report.trace_digest

    def test_anc_beats_traditional_at_high_load(self):
        anc = _run(scheme="anc", arrival_rate=1.2, sim_duration_frames=48.0)
        trad = _run(scheme="traditional", arrival_rate=1.2, sim_duration_frames=48.0)
        assert anc.metrics()["throughput"] > trad.metrics()["throughput"]
        assert anc.metrics()["drop_rate"] < trad.metrics()["drop_rate"]

    def test_redundancy_overhead_charges_goodput(self):
        plain = _run(scheme="anc", redundancy_overhead=0.0)
        taxed = _run(scheme="anc", redundancy_overhead=0.25)
        assert taxed.metrics()["throughput"] == pytest.approx(
            plain.metrics()["throughput"] / 1.25
        )


class TestDeterminism:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_same_entropy_reproduces_run_exactly(self, scheme):
        first = _run(scheme=scheme)
        second = _run(scheme=scheme)
        assert first.metrics() == second.metrics()
        assert first.trace_digest == second.trace_digest
        assert first.events == second.events

    def test_different_entropy_diverges(self):
        params = SimParams(sim_duration_frames=24.0)
        a = TrafficSimulation(params, entropy=[1], conditions=CONDITIONS).run()
        b = TrafficSimulation(params, entropy=[2], conditions=CONDITIONS).run()
        assert a.trace_digest != b.trace_digest

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_scalar_and_batched_phy_are_bit_identical(self, scheme):
        scalar = _run(scheme=scheme, phy="scalar")
        batched = _run(scheme=scheme, phy="batched")
        assert scalar.metrics() == batched.metrics()
        assert scalar.trace_digest == batched.trace_digest


class TestPatienceRegression:
    """The float-epsilon wake-up bug: patience wake-ups fired a few ulps
    before their nominal deadline (schedule_at round-trips through a
    delay), failed the age test, and rescheduled the same instant forever.
    These exact (scheme, load, entropy) combinations used to hang."""

    @pytest.mark.parametrize(
        "scheme,rate,run",
        [("cope", 0.3, 0), ("anc", 0.3, 0), ("anc", 0.3, 1), ("anc", 0.8, 0)],
    )
    def test_formerly_hanging_combinations_terminate(self, scheme, rate, run):
        params = SimParams(scheme=scheme, arrival_rate=rate, sim_duration_frames=48.0)
        entropy = [7, 600, run, 1049846468, int(round(rate * 1000))]
        report = TrafficSimulation(params, entropy=entropy, conditions=CONDITIONS).run()
        assert report.events < 200_000, "event count bounded (no zero-delay loop)"


class TestMacPolicies:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_scheduled_grid_never_drops_to_retries(self, scheme):
        report = _run(scheme=scheme, mac_policy="scheduled", arrival_rate=0.6)
        assert report.retry_drops == 0
        assert report.metrics()["delivered"] > 0

    def test_csma_contention_costs_throughput_vs_tdma_at_load(self):
        csma = _run(scheme="traditional", arrival_rate=1.0, sim_duration_frames=48.0)
        tdma = _run(
            scheme="traditional",
            mac_policy="scheduled",
            arrival_rate=1.0,
            sim_duration_frames=48.0,
        )
        # Hidden terminals collapse contention; the collision-free grid keeps going.
        assert tdma.metrics()["throughput"] > csma.metrics()["throughput"]


class TestTrafficModels:
    def test_bursty_stretches_the_delay_tail_vs_cbr(self):
        cbr = _run(mac_policy="scheduled", traffic_model="cbr", arrival_rate=0.5)
        bursty = _run(mac_policy="scheduled", traffic_model="bursty", arrival_rate=0.5)
        assert bursty.metrics()["delay_p95"] > cbr.metrics()["delay_p95"]

    def test_queue_capacity_bounds_backlog_drops(self):
        small = _run(traffic_model="bursty", arrival_rate=1.5, queue_capacity=1)
        large = _run(traffic_model="bursty", arrival_rate=1.5, queue_capacity=64)
        assert small.queue_drops > large.queue_drops


class TestReportShape:
    def test_params_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SimParams().scheme = "cope"

    def test_empty_run_yields_zero_metrics(self):
        report = _run(arrival_rate=0.01, sim_duration_frames=1.0)
        metrics = report.metrics()
        assert metrics["offered"] == 0.0
        assert metrics["drop_rate"] == 0.0
        assert metrics["throughput"] == 0.0
