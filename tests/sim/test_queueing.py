"""Tests of the bounded per-node FIFO packet queues."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.framing.packet import Packet
from repro.sim.queueing import PacketQueue


def _packet(sequence: int) -> Packet:
    return Packet(
        source=1,
        destination=2,
        sequence=sequence,
        payload=np.zeros(8, dtype=np.uint8),
    )


class TestPacketQueue:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            PacketQueue(capacity=0)

    def test_fifo_order(self):
        queue = PacketQueue(capacity=4)
        for seq in range(3):
            assert queue.offer(_packet(seq), now=float(seq))
        assert len(queue) == 3
        assert queue.peek().packet.sequence == 0
        popped = [queue.pop(now=10.0).packet.sequence for _ in range(3)]
        assert popped == [0, 1, 2]
        assert queue.is_empty

    def test_tail_drop_beyond_capacity(self):
        queue = PacketQueue(capacity=2)
        assert queue.offer(_packet(0), now=0.0)
        assert queue.offer(_packet(1), now=1.0)
        assert queue.is_full
        assert not queue.offer(_packet(2), now=2.0)
        assert queue.drops == 1
        assert queue.accepted == 2
        # The dropped packet never enters the FIFO.
        assert [e.packet.sequence for e in (queue.pop(3.0), queue.pop(3.0))] == [0, 1]

    def test_waiting_times_recorded_on_pop(self):
        queue = PacketQueue(capacity=4)
        queue.offer(_packet(0), now=10.0)
        queue.offer(_packet(1), now=12.0)
        queue.pop(now=20.0)
        queue.pop(now=25.0)
        assert queue.waiting_times == [10.0, 13.0]

    def test_pop_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            PacketQueue().pop(now=0.0)

    def test_peek_empty_returns_none(self):
        assert PacketQueue().peek() is None
