"""Unit tests of the CI perf-regression gate's comparison logic."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
GATE = REPO_ROOT / "tools" / "check_bench_regression.py"

sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_bench_regression import find_regressions, load_metrics  # noqa: E402

BASELINE = {"decoder_speedup": 5.0, "modulate_speedup": 3.0, "demodulate_speedup": 2.5}


class TestFindRegressions:
    def test_identical_metrics_are_clean(self):
        assert find_regressions(BASELINE, dict(BASELINE), 0.30) == []

    def test_drop_within_tolerance_is_clean(self):
        fresh = dict(BASELINE, decoder_speedup=5.0 * 0.71)
        assert find_regressions(BASELINE, fresh, 0.30) == []

    def test_drop_beyond_tolerance_is_flagged(self):
        fresh = dict(BASELINE, decoder_speedup=5.0 * 0.69)
        findings = find_regressions(BASELINE, fresh, 0.30)
        assert len(findings) == 1
        assert "decoder_speedup" in findings[0]

    def test_improvement_is_clean(self):
        fresh = dict(BASELINE, decoder_speedup=9.0)
        assert find_regressions(BASELINE, fresh, 0.30) == []

    def test_missing_fresh_metric_is_flagged(self):
        fresh = {k: v for k, v in BASELINE.items() if k != "modulate_speedup"}
        findings = find_regressions(BASELINE, fresh, 0.30)
        assert findings == ["modulate_speedup: missing from the fresh measurement"]

    def test_metric_absent_from_baseline_is_ignored(self):
        baseline = {"decoder_speedup": 5.0}
        fresh = dict(BASELINE)
        assert find_regressions(baseline, fresh, 0.30) == []


class TestCommandLine:
    def _write(self, tmp_path, name, metrics):
        path = tmp_path / name
        path.write_text(json.dumps({"benchmark": "phy_batch", "metrics": metrics}))
        return path

    def test_exit_zero_when_clean(self, tmp_path):
        baseline = self._write(tmp_path, "base.json", BASELINE)
        fresh = self._write(tmp_path, "fresh.json", BASELINE)
        result = subprocess.run(
            [sys.executable, str(GATE), "--baseline", str(baseline), "--fresh", str(fresh)],
            capture_output=True,
            text=True,
            check=False,
        )
        assert result.returncode == 0
        assert "perf gate: clean" in result.stdout

    def test_exit_one_on_regression(self, tmp_path):
        baseline = self._write(tmp_path, "base.json", BASELINE)
        fresh = self._write(
            tmp_path, "fresh.json", dict(BASELINE, decoder_speedup=1.0)
        )
        result = subprocess.run(
            [sys.executable, str(GATE), "--baseline", str(baseline), "--fresh", str(fresh)],
            capture_output=True,
            text=True,
            check=False,
        )
        assert result.returncode == 1
        assert "perf regression: decoder_speedup" in result.stdout

    def test_malformed_file_is_a_clean_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"no": "metrics"}))
        try:
            load_metrics(path)
        except SystemExit as error:
            assert "metrics" in str(error)
        else:  # pragma: no cover - the gate must refuse malformed input
            raise AssertionError("load_metrics accepted a file without metrics")
