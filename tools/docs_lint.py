#!/usr/bin/env python
"""Documentation lint: markdown link check + public docstring check.

Self-contained (stdlib only) so it runs identically in CI and offline:

* every relative link in ``README.md`` and ``docs/*.md`` must point at a
  file or directory that exists in the repo;
* every public module, class, function and method in the documented
  packages (``repro.experiments``, ``repro.network``, ``repro.mac``,
  ``repro.node``, ``repro.results``, ``repro.channel``,
  ``repro.backend``, ``repro.sim``, ``repro.campaign``) must carry a
  docstring (a lightweight, dependency-free subset of ``pydocstyle``).

Exit code 0 when clean; 1 with one line per finding otherwise.

Usage::

    python tools/docs_lint.py [repo_root]
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import Iterator, List

#: Markdown files whose relative links must resolve.
DOC_GLOBS = ("README.md", "docs/*.md")

#: Packages whose public API must be fully docstringed.
DOCSTRING_PACKAGES = (
    "src/repro/experiments",
    "src/repro/network",
    "src/repro/mac",
    "src/repro/node",
    "src/repro/results",
    "src/repro/channel",
    "src/repro/backend",
    "src/repro/sim",
    "src/repro/campaign",
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def iter_markdown_files(root: Path) -> Iterator[Path]:
    """Yield every markdown file covered by the link check."""
    for pattern in DOC_GLOBS:
        yield from sorted(root.glob(pattern))


def check_links(root: Path) -> List[str]:
    """Return one finding per broken relative link in the doc files."""
    findings: List[str] = []
    for md_file in iter_markdown_files(root):
        for match in _LINK.finditer(md_file.read_text()):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md_file.parent / path).resolve()
            if not resolved.exists():
                findings.append(
                    f"{md_file.relative_to(root)}: broken link -> {target}"
                )
    return findings


def _is_public(name: str) -> bool:
    return not name.startswith("_") or name == "__init__"


def _missing_docstrings(tree: ast.Module) -> Iterator[str]:
    """Yield ``name:lineno`` for each public definition lacking a docstring."""
    if ast.get_docstring(tree) is None:
        yield "<module>:1"
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if not _is_public(node.name):
            continue
        if ast.get_docstring(node) is None:
            yield f"{node.name}:{node.lineno}"


def check_docstrings(root: Path) -> List[str]:
    """Return one finding per missing public docstring in the packages."""
    findings: List[str] = []
    for package in DOCSTRING_PACKAGES:
        for py_file in sorted((root / package).glob("*.py")):
            tree = ast.parse(py_file.read_text())
            for where in _missing_docstrings(tree):
                findings.append(
                    f"{py_file.relative_to(root)}: missing docstring at {where}"
                )
    return findings


def main(argv: List[str]) -> int:
    """Run both checks; print findings and return a process exit code."""
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parents[1]
    findings = check_links(root) + check_docstrings(root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"docs lint: {len(findings)} finding(s)")
        return 1
    print("docs lint: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
