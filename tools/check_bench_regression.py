#!/usr/bin/env python
"""Perf-regression gate: compare a fresh BENCH_phy.json against a baseline.

The PHY microbenchmark (``benchmarks/test_microbench_batch.py``) writes
the ``BENCH_phy.json`` trajectory artifact with the batched decoder's
headline metrics.  Absolute timings are machine-specific, so the gate
compares the machine-independent *ratio* metrics — ``decoder_speedup``
(batched decode throughput over the scalar reference on the same box,
i.e. the relative decode throughput) plus the modem speedups — between a
freshly measured file and the committed baseline.  A fresh ratio more
than ``--tolerance`` (default 30 %) below the baseline fails the gate.

CI copies the committed ``BENCH_phy.json`` aside before running the
benchmark (the run overwrites it in place), then calls::

    python tools/check_bench_regression.py \
        --baseline /tmp/bench-baseline.json --fresh BENCH_phy.json

and uploads the refreshed JSON as a build artifact.  CI-machine timings
are never committed back (see ``docs/PERFORMANCE.md``).

Exit code 0 when every gated metric holds; 1 with one line per
regression otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

#: Ratio metrics the gate enforces (machine-independent speedups).
GATED_METRICS = ("decoder_speedup", "modulate_speedup", "demodulate_speedup")

#: Ratio metrics gated inside the optional ``"sim"`` section (the
#: discrete-event traffic core's throughput relative to the scalar PHY
#: decode on the same box).  Baselines that predate the section are
#: skipped, so the gate stays backward-compatible.
GATED_SIM_METRICS = ("event_throughput_vs_scalar_decode",)


def load_metrics(path: Path) -> dict:
    """Read the gated metrics out of one trajectory file.

    Returns one flat dict: the ``metrics`` object plus the ``sim``
    section's gated ratios (prefixed keys would obscure the report, and
    the two namespaces never collide).
    """
    payload = json.loads(path.read_text())
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        raise SystemExit(f"{path}: no 'metrics' object found")
    sim = payload.get("sim")
    if isinstance(sim, dict):
        metrics = {**metrics, **{k: sim[k] for k in GATED_SIM_METRICS if k in sim}}
    return metrics


def find_regressions(baseline: dict, fresh: dict, tolerance: float) -> List[str]:
    """One finding per gated metric that regressed beyond the tolerance."""
    findings: List[str] = []
    for metric in GATED_METRICS + GATED_SIM_METRICS:
        base = baseline.get(metric)
        new = fresh.get(metric)
        if base is None:
            continue  # baseline predates the metric: nothing to gate
        if new is None:
            findings.append(f"{metric}: missing from the fresh measurement")
            continue
        floor = (1.0 - tolerance) * float(base)
        if float(new) < floor:
            findings.append(
                f"{metric}: {new:.3f} < {floor:.3f} "
                f"(baseline {base:.3f} minus {tolerance:.0%} tolerance)"
            )
    return findings


def main(argv: List[str]) -> int:
    """Compare fresh metrics against the baseline; report regressions."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, required=True, help="committed BENCH_phy.json"
    )
    parser.add_argument(
        "--fresh", type=Path, required=True, help="freshly measured BENCH_phy.json"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop below the baseline (default 0.30)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        raise SystemExit("tolerance must lie in [0, 1)")
    baseline = load_metrics(args.baseline)
    fresh = load_metrics(args.fresh)
    findings = find_regressions(baseline, fresh, args.tolerance)
    for finding in findings:
        print(f"perf regression: {finding}")
    if findings:
        return 1
    gated = {m: fresh.get(m) for m in GATED_METRICS + GATED_SIM_METRICS if m in fresh}
    print(f"perf gate: clean ({gated})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
