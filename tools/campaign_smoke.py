#!/usr/bin/env python
"""CI smoke test: round-trip a campaign through a live server over HTTP.

Starts ``python -m repro.cli campaign serve`` as a real subprocess on a
free port, submits a 4-point quick grid over HTTP, waits for the
campaign to finish, fetches the results, and asserts every returned
document validates as an ``anc-repro.result/1``
:class:`~repro.results.model.ExperimentResult`.  Exit code 0 means the
whole submit -> run -> fetch -> validate loop works end to end.

Run with::

    PYTHONPATH=src python tools/campaign_smoke.py
"""

import json
import os
import socket
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.campaign import client  # noqa: E402
from repro.campaign.spec import CampaignSpec  # noqa: E402
from repro.results.model import SCHEMA_VERSION, ExperimentResult  # noqa: E402


def free_port() -> int:
    """Ask the OS for an unused TCP port."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def smoke_spec() -> CampaignSpec:
    """The 2x2 quick grid the smoke test submits."""
    return CampaignSpec(
        experiment="alice-bob",
        base={"runs": 1, "packets_per_run": 2, "payload_bits": 64},
        axes={"seed": [1, 2], "snr_db_range": [[20.0, 20.0], [25.0, 25.0]]},
        quick=True,
        name="ci-smoke",
    )


def main() -> int:
    """Run the smoke sequence; returns a process exit code."""
    port = free_port()
    base = f"http://127.0.0.1:{port}"
    spec = smoke_spec()
    with tempfile.TemporaryDirectory(prefix="anc-smoke-") as store_dir:
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "campaign", "serve",
                "--store", store_dir, "--port", str(port), "--concurrency", "2",
            ],
            env={**os.environ, "PYTHONPATH": "src"},
        )
        try:
            health = client.wait_for_server(base, timeout=30.0)
            print(f"server up: {json.dumps(health)}")

            status = client.submit_campaign(base, spec)
            assert status["created"] is True, status
            assert status["total"] == spec.total_jobs, status
            print(f"submitted campaign {status['campaign']} "
                  f"({status['total']} jobs)")

            again = client.submit_campaign(base, spec)
            assert again["created"] is False, "resubmission must dedupe"

            final = client.wait_for_campaign(base, status["campaign"], timeout=120)
            print(f"terminal status: {json.dumps(final)}")
            assert final["state"] == "completed", final
            assert final["failed"] == 0, final

            results = client.campaign_results(base, status["campaign"])
            assert len(results) == spec.total_jobs, len(results)
            for result in results:
                assert isinstance(result, ExperimentResult)
                assert result.schema_version == SCHEMA_VERSION
                rebuilt = ExperimentResult.from_json(result.to_json())
                assert rebuilt.schema_version == SCHEMA_VERSION
            print(f"fetched {len(results)} schema-valid "
                  f"{SCHEMA_VERSION} results")

            digest = spec.jobs()[0].digest
            one = client.fetch_result(base, digest)
            assert one.schema_version == SCHEMA_VERSION
            print(f"single-result fetch by digest OK ({digest[:12]})")
        finally:
            server.terminate()
            server.wait(timeout=30)
    print("campaign smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
