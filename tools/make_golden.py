#!/usr/bin/env python
"""Regenerate the golden regression fixtures under ``tests/golden/``.

Each fixture freezes the full plain-text rendering of one quick-scale
figure reproduction (fig09 Alice-Bob, fig10 X topology, fig12 chain) at a
pinned configuration.  ``tests/integration/test_golden.py`` replays the
same experiments — through the scalar engine and through the batched
engine — and requires byte-identical renderings, so any refactor that
silently drifts the reproduced numbers fails CI.

Run from the repository root after an *intentional* change to the
reproduced numbers::

    PYTHONPATH=src python tools/make_golden.py

and commit the updated JSON files together with the change that justifies
them.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.alice_bob import run_alice_bob_experiment  # noqa: E402
from repro.experiments.chain import run_chain_experiment  # noqa: E402
from repro.experiments.config import ExperimentConfig  # noqa: E402
from repro.experiments.x_topology import run_x_topology_experiment  # noqa: E402

GOLDEN_DIR = REPO_ROOT / "tests" / "golden"

#: The pinned quick-scale configuration every fixture is generated at.
GOLDEN_CONFIG_FIELDS = {"runs": 3, "packets_per_run": 4, "payload_bits": 512, "seed": 7}

#: The three figure experiments frozen as fixtures.
GOLDEN_EXPERIMENTS = {
    "fig09_alice_bob": run_alice_bob_experiment,
    "fig10_x_topology": run_x_topology_experiment,
    "fig12_chain": run_chain_experiment,
}


#: The structured-result schema fixture: experiment and file name.
RESULT_FIXTURE_EXPERIMENT = "alice-bob"
RESULT_FIXTURE_NAME = "result_alice_bob_quick.json"


def golden_config() -> ExperimentConfig:
    """The configuration the fixtures are pinned to."""
    return ExperimentConfig(**GOLDEN_CONFIG_FIELDS)


def normalized_result_dict(result) -> dict:
    """A result's ``to_dict`` with volatile fields pinned.

    Wall-clock timing is the only non-deterministic part of an
    :class:`~repro.results.model.ExperimentResult` produced by a serial
    cache-less engine; zeroing it makes the exported JSON reproducible,
    which is what lets ``tests/results/test_results_golden.py`` pin the
    whole schema byte-for-byte.
    """
    payload = result.to_dict()
    engine_meta = payload.get("meta", {}).get("engine")
    if engine_meta is not None:
        engine_meta["elapsed_seconds"] = 0.0
    return payload


def main() -> int:
    """Write one JSON fixture per golden experiment."""
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    config = golden_config()
    for name, runner in GOLDEN_EXPERIMENTS.items():
        report = runner(config)
        payload = {
            "experiment": name,
            "config": GOLDEN_CONFIG_FIELDS,
            "render": report.render(),
        }
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path.relative_to(REPO_ROOT)}")

    from repro import api  # noqa: E402  (after sys.path setup)

    result = api.run(RESULT_FIXTURE_EXPERIMENT, config=config)
    path = GOLDEN_DIR / RESULT_FIXTURE_NAME
    path.write_text(
        json.dumps(normalized_result_dict(result), indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {path.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
