#!/usr/bin/env python
"""Regenerate the golden regression fixtures under ``tests/golden/``.

Each fixture freezes the full plain-text rendering of one quick-scale
figure reproduction (fig09 Alice-Bob, fig10 X topology, fig12 chain) at a
pinned configuration.  ``tests/integration/test_golden.py`` replays the
same experiments — through the scalar engine and through the batched
engine — and requires byte-identical renderings, so any refactor that
silently drifts the reproduced numbers fails CI.

Run from the repository root after an *intentional* change to the
reproduced numbers::

    PYTHONPATH=src python tools/make_golden.py

and commit the updated JSON files together with the change that justifies
them.  ``--output-dir DIR`` writes the fixtures somewhere else instead —
CI's golden-drift job regenerates into a temporary directory and diffs it
against ``tests/golden/``, so fixture regeneration can never silently
diverge from what is committed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.alice_bob import run_alice_bob_experiment  # noqa: E402
from repro.experiments.chain import run_chain_experiment  # noqa: E402
from repro.experiments.config import ExperimentConfig  # noqa: E402
from repro.experiments.x_topology import run_x_topology_experiment  # noqa: E402

GOLDEN_DIR = REPO_ROOT / "tests" / "golden"

#: The pinned quick-scale configuration every fixture is generated at.
GOLDEN_CONFIG_FIELDS = {"runs": 3, "packets_per_run": 4, "payload_bits": 512, "seed": 7}

#: The three figure experiments frozen as fixtures.
GOLDEN_EXPERIMENTS = {
    "fig09_alice_bob": run_alice_bob_experiment,
    "fig10_x_topology": run_x_topology_experiment,
    "fig12_chain": run_chain_experiment,
}


#: The structured-result schema fixture: experiment and file name.
RESULT_FIXTURE_EXPERIMENT = "alice-bob"
RESULT_FIXTURE_NAME = "result_alice_bob_quick.json"

#: Time-domain scenarios frozen as structured-result fixtures (quick
#: sweep, serial engine).  ``tests/integration/test_golden.py`` replays
#: them serially (full-dict identity) and with a parallel engine
#: (series/scalars/digest identity).
GOLDEN_SCENARIOS = ("offered_load_sweep", "queueing_delay")


def scenario_fixture_name(scenario: str) -> str:
    """Fixture file name for one golden scenario."""
    return f"scenario_{scenario}_quick.json"


def golden_config() -> ExperimentConfig:
    """The configuration the fixtures are pinned to."""
    return ExperimentConfig(**GOLDEN_CONFIG_FIELDS)


def normalized_result_dict(result) -> dict:
    """A result's ``to_dict`` with volatile fields pinned.

    Wall-clock timing is the only non-deterministic part of an
    :class:`~repro.results.model.ExperimentResult` produced by a serial
    cache-less engine; zeroing it makes the exported JSON reproducible,
    which is what lets ``tests/results/test_results_golden.py`` pin the
    whole schema byte-for-byte.
    """
    payload = result.to_dict()
    engine_meta = payload.get("meta", {}).get("engine")
    if engine_meta is not None:
        engine_meta["elapsed_seconds"] = 0.0
    return payload


def _describe(path: Path) -> str:
    """The path as printed: repo-relative when inside the repo."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def main(argv=None) -> int:
    """Write one JSON fixture per golden experiment."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=GOLDEN_DIR,
        help="directory to write the fixtures into (default: tests/golden/; "
        "CI's golden-drift job points this at a temp dir and diffs)",
    )
    args = parser.parse_args(argv)
    output_dir = args.output_dir
    output_dir.mkdir(parents=True, exist_ok=True)
    config = golden_config()
    for name, runner in GOLDEN_EXPERIMENTS.items():
        report = runner(config)
        payload = {
            "experiment": name,
            "config": GOLDEN_CONFIG_FIELDS,
            "render": report.render(),
        }
        path = output_dir / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {_describe(path)}")

    from repro import api  # noqa: E402  (after sys.path setup)

    result = api.run(RESULT_FIXTURE_EXPERIMENT, config=config)
    path = output_dir / RESULT_FIXTURE_NAME
    path.write_text(
        json.dumps(normalized_result_dict(result), indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {_describe(path)}")

    for scenario in GOLDEN_SCENARIOS:
        result = api.run(scenario, config=config, quick=True)
        path = output_dir / scenario_fixture_name(scenario)
        path.write_text(
            json.dumps(normalized_result_dict(result), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {_describe(path)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
