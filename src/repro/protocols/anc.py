"""Analog network coding protocols.

Two protocol shapes cover the paper's evaluation:

* :class:`ANCRelayProtocol` — the Alice–Bob and "X" topologies (§2a,
  §11.4, §11.5).  In slot 1 the two senders transmit *simultaneously*
  (triggered, with the §7.2 random start offsets); the router receives the
  collision and, in slot 2, amplifies and rebroadcasts it.  Each
  destination cancels the component it already knows — its own packet
  (Alice–Bob) or one it overheard during slot 1 ("X") — and decodes the
  other.  Two slots deliver two packets.

* :class:`ANCChainProtocol` — the 3-hop chain (§2b, §11.6).  The middle
  node's forwarding transmission triggers the source and the third node to
  transmit concurrently in the next slot; the middle node decodes the new
  packet out of the collision because it forwarded the interfering packet
  itself one slot earlier, while the destination hears only the third
  node.  Two slots move each packet three hops.

Since the scenario subsystem landed, neither protocol hand-codes its slot
structure: the relay protocol executes a
:class:`~repro.mac.planner.RelayExchangePlan` and the chain protocol is a
3-hop pin of the generalized
:class:`~repro.protocols.scheduled.ChainPipelineProtocol`, both produced
by the ANC-aware planner in :mod:`repro.mac.planner`.  The byte-for-byte
figure benchmarks (Figs. 9, 10, 12) are the regression net proving the
planned schedules match the formerly hand-rolled ones exactly.

Both protocols enforce the paper's *incomplete overlap* requirement: the
default overlap model never lets the second packet start before the first
packet's pilot and header have gone out interference-free (§7.2).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.anc.pipeline import ReceiveOutcome
from repro.channel.interference import OverlapModel
from repro.constants import DEFAULT_ANC_REDUNDANCY_OVERHEAD
from repro.exceptions import ConfigurationError
from repro.framing.header import Header
from repro.framing.packet import Packet
from repro.framing.pilot import PilotSequence
from repro.mac.planner import RelayExchangePlan, plan_relay_exchange
from repro.network.flows import Flow
from repro.network.medium import Transmission
from repro.network.simulator import SlotSimulator
from repro.network.topology import Topology
from repro.protocols.base import ProtocolRun, fresh_run_result, RunResult
from repro.protocols.scheduled import ChainPipelineProtocol


def default_min_offset(margin_bits: int = 24) -> int:
    """Smallest collision offset that keeps pilot + header interference-free.

    The paper's randomisation scheme deliberately prevents complete overlap
    so that the synchronisation fields at the start of the first packet and
    the end of the second stay clean (§7.2); this returns that minimum in
    samples (one sample per bit plus a safety margin).
    """
    return PilotSequence().length + Header.ENCODED_LENGTH + int(margin_bits)


class ANCRelayProtocol(ProtocolRun):
    """Analog network coding through an amplify-and-forward router.

    The slot structure — who collides in the uplink slot, who must listen,
    and how each destination obtains its side information — comes from the
    MAC planner's :class:`~repro.mac.planner.RelayExchangePlan`, so the
    same class also serves arbitrary crossing flow pairs found by the mesh
    scheduler, not just the canonical figures.
    """

    scheme_name = "anc"

    def __init__(
        self,
        topology: Topology,
        relay: int,
        flow_a: Flow,
        flow_b: Flow,
        payload_bits: int = 512,
        ber_acceptance: float = 0.05,
        redundancy_overhead: float = DEFAULT_ANC_REDUNDANCY_OVERHEAD,
        overhearing: bool = False,
        overlap_model: Optional[OverlapModel] = None,
        rng: Optional[np.random.Generator] = None,
        topology_name: str = "alice_bob",
    ) -> None:
        super().__init__(
            topology,
            payload_bits=payload_bits,
            ber_acceptance=ber_acceptance,
            redundancy_overhead=redundancy_overhead,
            rng=rng,
        )
        self.plan: RelayExchangePlan = plan_relay_exchange(
            topology, flow_a, flow_b, relay=relay, overhearing=bool(overhearing)
        )
        self.relay_id = self.plan.relay
        self.flow_a = flow_a
        self.flow_b = flow_b
        self.overhearing = self.plan.overhearing
        self.overlap_model = (
            overlap_model
            if overlap_model is not None
            else OverlapModel(rng=self.rng, min_offset=default_min_offset())
        )
        self.topology_name = topology_name
        for node_id in topology.nodes:
            self.make_node(node_id)
        self.make_relay(self.relay_id)

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute every two-slot exchange and return the run's accounting."""
        simulator = SlotSimulator(self.topology, rng=self.rng)
        result = fresh_run_result(self, self.topology_name)
        for _ in range(self.flow_a.packets):
            self._run_exchange(simulator, result)
        result.air_time_samples = simulator.total_air_time
        result.slots_used = simulator.slots_run
        return result

    # ------------------------------------------------------------------
    def _run_exchange(self, simulator: SlotSimulator, result: RunResult) -> None:
        plan = self.plan
        src_a, dst_a = plan.flow_a.source, plan.flow_a.destination
        src_b, dst_b = plan.flow_b.source, plan.flow_b.destination
        node_a = self.nodes[src_a]
        node_b = self.nodes[src_b]
        packet_a = node_a.make_packet(dst_a, rng=self.rng)
        packet_b = node_b.make_packet(dst_b, rng=self.rng)
        result.packets_offered += 2

        # Slot 1: the plan's deliberately concurrent uplink transmissions.
        waveform_a = node_a.transmit(packet_a)
        waveform_b = node_b.transmit(packet_b)
        frame_samples = len(waveform_a)
        first_offset, second_offset = self.overlap_model.draw_offsets(frame_samples)
        if self.rng.uniform() < 0.5:
            offset_a, offset_b = first_offset, second_offset
        else:
            offset_a, offset_b = second_offset, first_offset
        result.overlap_fractions.append(
            1.0 - abs(offset_a - offset_b) / frame_samples
        )

        uplink = simulator.run_slot(
            [
                Transmission(sender=src_a, waveform=waveform_a, start_offset=offset_a),
                Transmission(sender=src_b, waveform=waveform_b, start_offset=offset_b),
            ],
            receivers=list(plan.uplink_receivers),
        )

        # Destinations the plan marks as "overhear" must snoop the uplink
        # collision to learn the packet they will later cancel.
        overheard: Dict[int, bool] = {}
        if plan.side_info[dst_b] == "overhear":
            overheard[dst_b] = self._try_overhear(dst_b, uplink.waveform_at(dst_b), packet_a)
        if plan.side_info[dst_a] == "overhear":
            overheard[dst_a] = self._try_overhear(dst_a, uplink.waveform_at(dst_a), packet_b)

        # Slot 2: the router amplifies the collision and broadcasts it.
        relay_node = self.nodes[self.relay_id]
        broadcast = relay_node.amplify_and_forward(uplink.waveform_at(self.relay_id))
        downlink = simulator.run_slot(
            [Transmission(sender=self.relay_id, waveform=broadcast)],
            receivers=list(plan.downlink_receivers),
        )

        self._account_destination(
            result,
            destination=dst_a,
            waveform=downlink.waveform_at(dst_a),
            truth=packet_a,
            side_available=plan.side_info[dst_a] == "reverse" or overheard.get(dst_a, False),
        )
        self._account_destination(
            result,
            destination=dst_b,
            waveform=downlink.waveform_at(dst_b),
            truth=packet_b,
            side_available=plan.side_info[dst_b] == "reverse" or overheard.get(dst_b, False),
        )

    # ------------------------------------------------------------------
    def _try_overhear(self, listener: int, waveform, truth: Packet) -> bool:
        """A destination snoops on the concurrent uplink slot ("X" topology).

        The overheard signal may itself be degraded by the other sender's
        weak cross interference; a failed overhear means the later ANC
        decode has no known signal to cancel, so that packet is lost —
        exactly the effect §11.5 blames for the "X" topology's slightly
        lower gain and heavier BER tail.
        """
        node = self.nodes[listener]
        outcome = node.receive(waveform)
        if outcome.packet is None or outcome.packet.identity != truth.identity:
            return False
        ber = self.packet_ber(outcome.packet, truth)
        if not self.counts_as_delivered(ber, outcome.crc_ok):
            return False
        # Within FEC reach: the corrected copy is the original packet, and
        # that corrected copy is what the node keeps for cancellation.
        node.remember_packet(truth if ber > 0 else outcome.packet)
        return True

    def _account_destination(
        self,
        result: RunResult,
        destination: int,
        waveform,
        truth: Packet,
        side_available: bool,
    ) -> None:
        """Decode the relayed collision at one destination and record the outcome."""
        if not side_available:
            result.packets_lost += 1
            result.packet_bers.append(0.5)
            return
        outcome = self.nodes[destination].receive(waveform)
        if outcome.outcome != ReceiveOutcome.ANC_DECODED or outcome.packet is None:
            result.packets_lost += 1
            result.packet_bers.append(0.5)
            return
        ber = self.packet_ber(outcome.packet, truth)
        result.packet_bers.append(ber)
        if self.counts_as_delivered(ber, outcome.crc_ok):
            result.packets_delivered += 1
        else:
            result.packets_lost += 1


class ANCChainProtocol(ChainPipelineProtocol):
    """Analog network coding on the 3-hop chain (unidirectional traffic).

    A 4-node pin of the generalized
    :class:`~repro.protocols.scheduled.ChainPipelineProtocol`: the Fig. 12
    experiment (and its byte-for-byte benchmark reference) runs exactly
    the schedule the planner derives for the paper's canonical chain.
    """

    scheme_name = "anc"

    def __init__(
        self,
        topology: Topology,
        path: Tuple[int, int, int, int] = (1, 2, 3, 4),
        packets: int = 20,
        payload_bits: int = 512,
        ber_acceptance: float = 0.05,
        redundancy_overhead: float = DEFAULT_ANC_REDUNDANCY_OVERHEAD,
        overlap_model: Optional[OverlapModel] = None,
        rng: Optional[np.random.Generator] = None,
        topology_name: str = "chain",
    ) -> None:
        if len(path) != 4:
            raise ConfigurationError("the chain protocol expects a 4-node path (3 hops)")
        super().__init__(
            topology,
            path=path,
            coding="anc",
            packets=packets,
            payload_bits=payload_bits,
            ber_acceptance=ber_acceptance,
            redundancy_overhead=redundancy_overhead,
            overlap_model=overlap_model,
            rng=rng,
            topology_name=topology_name,
        )
