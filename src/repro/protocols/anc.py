"""Analog network coding protocols.

Two protocol shapes cover the paper's evaluation:

* :class:`ANCRelayProtocol` — the Alice–Bob and "X" topologies (§2a,
  §11.4, §11.5).  In slot 1 the two senders transmit *simultaneously*
  (triggered, with the §7.2 random start offsets); the router receives the
  collision and, in slot 2, amplifies and rebroadcasts it.  Each
  destination cancels the component it already knows — its own packet
  (Alice–Bob) or one it overheard during slot 1 ("X") — and decodes the
  other.  Two slots deliver two packets.

* :class:`ANCChainProtocol` — the 3-hop chain (§2b, §11.6).  The middle
  node's forwarding transmission triggers the source and the third node to
  transmit concurrently in the next slot; the middle node decodes the new
  packet out of the collision because it forwarded the interfering packet
  itself one slot earlier, while the destination hears only the third
  node.  Two slots move each packet three hops.

Both protocols enforce the paper's *incomplete overlap* requirement: the
default overlap model never lets the second packet start before the first
packet's pilot and header have gone out interference-free (§7.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.anc.pipeline import ReceiveOutcome, ReceiveResult
from repro.channel.interference import OverlapModel
from repro.constants import DEFAULT_ANC_REDUNDANCY_OVERHEAD
from repro.exceptions import ConfigurationError
from repro.framing.header import Header
from repro.framing.packet import Packet
from repro.framing.pilot import PilotSequence
from repro.network.flows import Flow
from repro.network.medium import Transmission
from repro.network.simulator import SlotSimulator
from repro.network.topology import Topology
from repro.protocols.base import ProtocolRun, fresh_run_result, RunResult


def default_min_offset(margin_bits: int = 24) -> int:
    """Smallest collision offset that keeps pilot + header interference-free.

    The paper's randomisation scheme deliberately prevents complete overlap
    so that the synchronisation fields at the start of the first packet and
    the end of the second stay clean (§7.2); this returns that minimum in
    samples (one sample per bit plus a safety margin).
    """
    return PilotSequence().length + Header.ENCODED_LENGTH + int(margin_bits)


class ANCRelayProtocol(ProtocolRun):
    """Analog network coding through an amplify-and-forward router."""

    scheme_name = "anc"

    def __init__(
        self,
        topology: Topology,
        relay: int,
        flow_a: Flow,
        flow_b: Flow,
        payload_bits: int = 512,
        ber_acceptance: float = 0.05,
        redundancy_overhead: float = DEFAULT_ANC_REDUNDANCY_OVERHEAD,
        overhearing: bool = False,
        overlap_model: Optional[OverlapModel] = None,
        rng: Optional[np.random.Generator] = None,
        topology_name: str = "alice_bob",
    ) -> None:
        super().__init__(
            topology,
            payload_bits=payload_bits,
            ber_acceptance=ber_acceptance,
            redundancy_overhead=redundancy_overhead,
            rng=rng,
        )
        if flow_a.packets != flow_b.packets:
            raise ConfigurationError("ANC pairing requires both flows to carry the same packet count")
        self.relay_id = int(relay)
        self.flow_a = flow_a
        self.flow_b = flow_b
        self.overhearing = bool(overhearing)
        self.overlap_model = (
            overlap_model
            if overlap_model is not None
            else OverlapModel(rng=self.rng, min_offset=default_min_offset())
        )
        self.topology_name = topology_name
        for node_id in topology.nodes:
            self.make_node(node_id)
        self.make_relay(self.relay_id)

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute every two-slot exchange and return the run's accounting."""
        simulator = SlotSimulator(self.topology, rng=self.rng)
        result = fresh_run_result(self, self.topology_name)
        for _ in range(self.flow_a.packets):
            self._run_exchange(simulator, result)
        result.air_time_samples = simulator.total_air_time
        result.slots_used = simulator.slots_run
        return result

    # ------------------------------------------------------------------
    def _run_exchange(self, simulator: SlotSimulator, result: RunResult) -> None:
        src_a, dst_a = self.flow_a.source, self.flow_a.destination
        src_b, dst_b = self.flow_b.source, self.flow_b.destination
        node_a = self.nodes[src_a]
        node_b = self.nodes[src_b]
        packet_a = node_a.make_packet(dst_a, rng=self.rng)
        packet_b = node_b.make_packet(dst_b, rng=self.rng)
        result.packets_offered += 2

        # Slot 1: triggered concurrent uplink transmissions.
        waveform_a = node_a.transmit(packet_a)
        waveform_b = node_b.transmit(packet_b)
        frame_samples = len(waveform_a)
        first_offset, second_offset = self.overlap_model.draw_offsets(frame_samples)
        if self.rng.uniform() < 0.5:
            offset_a, offset_b = first_offset, second_offset
        else:
            offset_a, offset_b = second_offset, first_offset
        result.overlap_fractions.append(
            1.0 - abs(offset_a - offset_b) / frame_samples
        )

        uplink_receivers = [self.relay_id]
        if self.overhearing:
            uplink_receivers.extend([dst_a, dst_b])
        uplink = simulator.run_slot(
            [
                Transmission(sender=src_a, waveform=waveform_a, start_offset=offset_a),
                Transmission(sender=src_b, waveform=waveform_b, start_offset=offset_b),
            ],
            receivers=uplink_receivers,
        )

        # In the "X" topology the destinations must overhear the uplink
        # slot to learn the packet they will later cancel.
        overheard: Dict[int, bool] = {}
        if self.overhearing:
            overheard[dst_b] = self._try_overhear(dst_b, uplink.waveform_at(dst_b), packet_a)
            overheard[dst_a] = self._try_overhear(dst_a, uplink.waveform_at(dst_a), packet_b)

        # Slot 2: the router amplifies the collision and broadcasts it.
        relay_node = self.nodes[self.relay_id]
        broadcast = relay_node.amplify_and_forward(uplink.waveform_at(self.relay_id))
        downlink = simulator.run_slot(
            [Transmission(sender=self.relay_id, waveform=broadcast)],
            receivers=[dst_a, dst_b],
        )

        self._account_destination(
            result,
            destination=dst_a,
            waveform=downlink.waveform_at(dst_a),
            truth=packet_a,
            side_available=(not self.overhearing) or overheard.get(dst_a, False),
        )
        self._account_destination(
            result,
            destination=dst_b,
            waveform=downlink.waveform_at(dst_b),
            truth=packet_b,
            side_available=(not self.overhearing) or overheard.get(dst_b, False),
        )

    # ------------------------------------------------------------------
    def _try_overhear(self, listener: int, waveform, truth: Packet) -> bool:
        """A destination snoops on the concurrent uplink slot ("X" topology).

        The overheard signal may itself be degraded by the other sender's
        weak cross interference; a failed overhear means the later ANC
        decode has no known signal to cancel, so that packet is lost —
        exactly the effect §11.5 blames for the "X" topology's slightly
        lower gain and heavier BER tail.
        """
        node = self.nodes[listener]
        outcome = node.receive(waveform)
        if outcome.packet is None or outcome.packet.identity != truth.identity:
            return False
        ber = self.packet_ber(outcome.packet, truth)
        if not self.counts_as_delivered(ber, outcome.crc_ok):
            return False
        # Within FEC reach: the corrected copy is the original packet, and
        # that corrected copy is what the node keeps for cancellation.
        node.remember_packet(truth if ber > 0 else outcome.packet)
        return True

    def _account_destination(
        self,
        result: RunResult,
        destination: int,
        waveform,
        truth: Packet,
        side_available: bool,
    ) -> None:
        """Decode the relayed collision at one destination and record the outcome."""
        if not side_available:
            result.packets_lost += 1
            result.packet_bers.append(0.5)
            return
        outcome = self.nodes[destination].receive(waveform)
        if outcome.outcome != ReceiveOutcome.ANC_DECODED or outcome.packet is None:
            result.packets_lost += 1
            result.packet_bers.append(0.5)
            return
        ber = self.packet_ber(outcome.packet, truth)
        result.packet_bers.append(ber)
        if self.counts_as_delivered(ber, outcome.crc_ok):
            result.packets_delivered += 1
        else:
            result.packets_lost += 1


class ANCChainProtocol(ProtocolRun):
    """Analog network coding on the 3-hop chain (unidirectional traffic)."""

    scheme_name = "anc"

    def __init__(
        self,
        topology: Topology,
        path: Tuple[int, int, int, int] = (1, 2, 3, 4),
        packets: int = 20,
        payload_bits: int = 512,
        ber_acceptance: float = 0.05,
        redundancy_overhead: float = DEFAULT_ANC_REDUNDANCY_OVERHEAD,
        overlap_model: Optional[OverlapModel] = None,
        rng: Optional[np.random.Generator] = None,
        topology_name: str = "chain",
    ) -> None:
        super().__init__(
            topology,
            payload_bits=payload_bits,
            ber_acceptance=ber_acceptance,
            redundancy_overhead=redundancy_overhead,
            rng=rng,
        )
        if len(path) != 4:
            raise ConfigurationError("the chain protocol expects a 4-node path (3 hops)")
        if packets <= 0:
            raise ConfigurationError("packets must be positive")
        self.path = tuple(int(p) for p in path)
        self.packets = int(packets)
        self.overlap_model = (
            overlap_model
            if overlap_model is not None
            else OverlapModel(rng=self.rng, min_offset=default_min_offset())
        )
        self.topology_name = topology_name
        for node_id in topology.nodes:
            self.make_node(node_id)

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Pipeline the packets down the chain, two slots per packet."""
        n1, n2, n3, n4 = self.path
        node1, node2, node3, node4 = (self.nodes[n] for n in self.path)
        simulator = SlotSimulator(self.topology, rng=self.rng)
        result = fresh_run_result(self, self.topology_name)

        packets = [node1.make_packet(n4, rng=self.rng) for _ in range(self.packets)]
        result.packets_offered = len(packets)

        # Bootstrap: the first packet needs two conventional hops before the
        # pipeline can run (N1 -> N2, then the steady-state pattern begins).
        at_n2: Optional[Packet] = None  # packet currently held by N2
        at_n3: Optional[Packet] = None  # packet currently held by N3
        next_index = 0

        waveform = node1.transmit(packets[next_index])
        slot = simulator.run_slot(
            [Transmission(sender=n1, waveform=waveform)], receivers=[n2]
        )
        receive = node2.receive(slot.waveform_at(n2))
        at_n2 = receive.packet if receive.delivered else None
        if at_n2 is None:
            result.packets_lost += 1
        next_index += 1

        # Steady state: alternate (a) N2 forwards to N3 and (b) N1 + N3
        # transmit concurrently, until every packet has been injected and
        # the pipeline has drained.
        pending_injection = next_index < len(packets)
        while at_n2 is not None or at_n3 is not None or pending_injection:
            # Slot (a): N2 forwards its packet to N3 (this transmission also
            # acts as the trigger for the concurrent slot that follows).
            if at_n2 is not None:
                waveform = node2.forward(at_n2)
                slot = simulator.run_slot(
                    [Transmission(sender=n2, waveform=waveform)], receivers=[n3]
                )
                receive = node3.receive(slot.waveform_at(n3))
                if receive.delivered and receive.packet is not None:
                    at_n3 = receive.packet
                    node3.remember_packet(receive.packet)
                else:
                    at_n3 = None
                    result.packets_lost += 1
                at_n2 = None

            # Slot (b): N1 sends the next packet while N3 forwards its
            # packet to N4 — concurrently.
            transmissions: List[Transmission] = []
            injected: Optional[Packet] = None
            frame_samples = None
            if pending_injection:
                injected = packets[next_index]
                wave_new = node1.transmit(injected)
                frame_samples = len(wave_new)
            wave_fwd = None
            if at_n3 is not None:
                wave_fwd = node3.forward(at_n3)
                frame_samples = len(wave_fwd)

            if injected is not None and wave_fwd is not None:
                first_offset, second_offset = self.overlap_model.draw_offsets(frame_samples)
                result.overlap_fractions.append(
                    1.0 - abs(first_offset - second_offset) / frame_samples
                )
                transmissions.append(
                    Transmission(sender=n1, waveform=wave_new, start_offset=first_offset)
                )
                transmissions.append(
                    Transmission(sender=n3, waveform=wave_fwd, start_offset=second_offset)
                )
            elif injected is not None:
                transmissions.append(Transmission(sender=n1, waveform=wave_new))
            elif wave_fwd is not None:
                transmissions.append(Transmission(sender=n3, waveform=wave_fwd))
            else:
                break

            slot = simulator.run_slot(transmissions, receivers=[n2, n4])

            # N4 receives the forwarded packet (it is out of N1's range).
            if wave_fwd is not None:
                receive4 = node4.receive(slot.waveform_at(n4))
                if receive4.delivered and receive4.packet is not None:
                    result.packets_delivered += 1
                else:
                    result.packets_lost += 1
                at_n3 = None

            # N2 decodes the new packet out of the collision (or cleanly, if
            # N3 had nothing to forward this round).
            if injected is not None:
                receive2 = node2.receive(slot.waveform_at(n2))
                ber = self.packet_ber(receive2.packet, injected)
                if receive2.interfered:
                    result.packet_bers.append(ber)
                if receive2.packet is not None and self.counts_as_delivered(ber, receive2.crc_ok):
                    # Forward the *original* payload: in a real system the
                    # FEC would have repaired the residual errors the BER
                    # acceptance models.
                    at_n2 = injected
                else:
                    at_n2 = None
                    result.packets_lost += 1
                next_index += 1
                pending_injection = next_index < len(packets)

        result.air_time_samples = simulator.total_air_time
        result.slots_used = simulator.slots_run
        return result
