"""Protocols under comparison (§11.1).

Three forwarding schemes run over the same topologies, nodes, medium and
optimal MAC, so that throughput differences are intrinsic to the schemes:

* :class:`~repro.protocols.traditional.TraditionalRouting` — store-and-
  forward routing, one transmission per slot ("No Coding" in the paper).
* :class:`~repro.protocols.cope.CopeRelayProtocol` — digital network
  coding: the relay XORs the two packets it holds and broadcasts the XOR
  (the COPE baseline of [17]).
* :class:`~repro.protocols.anc.ANCRelayProtocol` /
  :class:`~repro.protocols.anc.ANCChainProtocol` — analog network coding:
  deliberately concurrent transmissions, amplify-and-forward relaying
  (Alice–Bob, "X") or in-place interference decoding (chain).

The scenario subsystem adds the plan-driven
:class:`~repro.protocols.scheduled.ChainPipelineProtocol`, which executes
the MAC planner's pipelined chain schedules for *any* hop count — the
stride-2 ANC discipline with deliberate collisions, or the stride-3
collision-free spatial-reuse discipline that plain routing and digital
coding fall back to on a one-way chain.
"""

from repro.protocols.base import ProtocolRun, RunResult
from repro.protocols.traditional import TraditionalRouting
from repro.protocols.cope import CopeRelayProtocol
from repro.protocols.anc import ANCChainProtocol, ANCRelayProtocol
from repro.protocols.scheduled import ChainPipelineProtocol

__all__ = [
    "ANCChainProtocol",
    "ANCRelayProtocol",
    "ChainPipelineProtocol",
    "CopeRelayProtocol",
    "ProtocolRun",
    "RunResult",
    "TraditionalRouting",
]
