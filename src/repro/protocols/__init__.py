"""Protocols under comparison (§11.1).

Three forwarding schemes run over the same topologies, nodes, medium and
optimal MAC, so that throughput differences are intrinsic to the schemes:

* :class:`~repro.protocols.traditional.TraditionalRouting` — store-and-
  forward routing, one transmission per slot ("No Coding" in the paper).
* :class:`~repro.protocols.cope.CopeRelayProtocol` — digital network
  coding: the relay XORs the two packets it holds and broadcasts the XOR
  (the COPE baseline of [17]).
* :class:`~repro.protocols.anc.ANCRelayProtocol` /
  :class:`~repro.protocols.anc.ANCChainProtocol` — analog network coding:
  deliberately concurrent transmissions, amplify-and-forward relaying
  (Alice–Bob, "X") or in-place interference decoding (chain).
"""

from repro.protocols.base import ProtocolRun, RunResult
from repro.protocols.traditional import TraditionalRouting
from repro.protocols.cope import CopeRelayProtocol
from repro.protocols.anc import ANCChainProtocol, ANCRelayProtocol

__all__ = [
    "ANCChainProtocol",
    "ANCRelayProtocol",
    "CopeRelayProtocol",
    "ProtocolRun",
    "RunResult",
    "TraditionalRouting",
]
