"""Traditional store-and-forward routing ("No Coding", §11.1a).

Every packet travels its shortest path one hop per slot, with the optimal
MAC scheduling exactly one transmission per slot so there are never
collisions or backoffs.  The implementation is fully signal-level: every
hop is a real MSK transmission over the simulated medium, decoded by the
receiving node's pipeline — so the baseline pays for channel noise exactly
like ANC does, just never for interference.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.anc.pipeline import ReceiveOutcome
from repro.network.flows import Flow
from repro.network.medium import Transmission
from repro.network.simulator import SlotSimulator
from repro.network.topology import Topology
from repro.protocols.base import ProtocolRun, fresh_run_result, RunResult


class TraditionalRouting(ProtocolRun):
    """Shortest-path routing with one transmission per slot."""

    scheme_name = "traditional"

    def __init__(
        self,
        topology: Topology,
        flows: Sequence[Flow],
        payload_bits: int = 512,
        ber_acceptance: float = 0.05,
        rng: Optional[np.random.Generator] = None,
        topology_name: str = "generic",
    ) -> None:
        super().__init__(
            topology,
            payload_bits=payload_bits,
            ber_acceptance=ber_acceptance,
            redundancy_overhead=0.0,
            rng=rng,
        )
        if not flows:
            raise ValueError("at least one flow is required")
        self.flows = list(flows)
        self.topology_name = topology_name
        for node_id in topology.nodes:
            self.make_node(node_id)

    def run(self) -> RunResult:
        """Deliver every flow's packets hop by hop and account the air time."""
        simulator = SlotSimulator(self.topology, rng=self.rng)
        result = fresh_run_result(self, self.topology_name)

        # Interleave the flows round-robin, matching the fair time-sharing
        # assumed by the capacity analysis (§8).
        remaining = [[flow, flow.packets] for flow in self.flows]
        while any(count > 0 for _, count in remaining):
            for entry in remaining:
                flow, count = entry
                if count <= 0:
                    continue
                delivered = self._send_one_packet(flow, simulator)
                result.packets_offered += 1
                if delivered:
                    result.packets_delivered += 1
                else:
                    result.packets_lost += 1
                entry[1] = count - 1

        result.air_time_samples = simulator.total_air_time
        result.slots_used = simulator.slots_run
        return result

    # ------------------------------------------------------------------
    def _send_one_packet(self, flow: Flow, simulator: SlotSimulator) -> bool:
        """Push one packet along the flow's path, one hop per slot."""
        path = self.topology.shortest_path(flow.source, flow.destination)
        source_node = self.nodes[flow.source]
        packet = source_node.make_packet(flow.destination, rng=self.rng)
        current_packet = packet
        for hop_index in range(len(path) - 1):
            sender_id = path[hop_index]
            receiver_id = path[hop_index + 1]
            sender = self.nodes[sender_id]
            waveform = sender.transmit(current_packet)
            slot = simulator.run_slot(
                [Transmission(sender=sender_id, waveform=waveform)],
                receivers=[receiver_id],
            )
            outcome = self.nodes[receiver_id].receive(slot.waveform_at(receiver_id))
            if outcome.outcome != ReceiveOutcome.CLEAN_DECODED or not outcome.delivered:
                return False
            current_packet = outcome.packet
        return current_packet.payload_equals(packet)
