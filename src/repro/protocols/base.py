"""Common machinery for the protocol implementations.

Every protocol run produces a :class:`RunResult`: how many useful payload
bits reached their destinations, how much air time (in samples) was spent
delivering them, and the per-packet bit error rates of any packets that
were decoded out of interference.  Throughput is useful bits per unit air
time; measuring time in samples makes a partially-overlapped collision
slot automatically cost more than a perfectly aligned one, which is the
dominant practical effect behind the gap between ANC's theoretical and
measured gains (§11.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError
from repro.framing.packet import Packet
from repro.network.topology import Topology
from repro.node.node import Node, NodeConfig
from repro.node.relay import RelayNode
from repro.node.router import RouterNode
from repro.utils.bits import bit_error_rate


@dataclass
class RunResult:
    """Outcome of running one protocol over one topology for one run."""

    scheme: str
    topology: str
    payload_bits: int
    packets_offered: int = 0
    packets_delivered: int = 0
    packets_lost: int = 0
    air_time_samples: int = 0
    slots_used: int = 0
    packet_bers: List[float] = field(default_factory=list)
    overlap_fractions: List[float] = field(default_factory=list)
    redundancy_overhead: float = 0.0
    notes: str = ""

    @property
    def delivered_payload_bits(self) -> int:
        """Raw payload bits that reached their destinations."""
        return self.packets_delivered * self.payload_bits

    @property
    def useful_bits(self) -> float:
        """Payload bits after charging the scheme's FEC redundancy overhead."""
        return self.delivered_payload_bits / (1.0 + self.redundancy_overhead)

    @property
    def throughput(self) -> float:
        """Useful bits per sample of air time (the paper's network throughput)."""
        if self.air_time_samples <= 0:
            raise SimulationError("run consumed no air time; throughput undefined")
        return self.useful_bits / self.air_time_samples

    @property
    def mean_ber(self) -> float:
        """Mean per-packet BER of interference-decoded packets (0 if none)."""
        if not self.packet_bers:
            return 0.0
        return float(np.mean(self.packet_bers))

    @property
    def delivery_ratio(self) -> float:
        """Fraction of offered packets that were delivered."""
        if self.packets_offered == 0:
            return 0.0
        return self.packets_delivered / self.packets_offered

    @property
    def mean_overlap(self) -> float:
        """Mean fraction of collision overlap observed during the run."""
        if not self.overlap_fractions:
            return 0.0
        return float(np.mean(self.overlap_fractions))

    # ------------------------------------------------------------------
    # Structured-results surface
    # ------------------------------------------------------------------
    def to_record(self) -> Dict[str, object]:
        """Flat scalar summary of the run (one row of a results table).

        Derived quantities (throughput, delivery ratio, mean BER, mean
        overlap) are materialised as plain floats so the record is
        self-contained; the per-packet lists stay out of it — use
        :meth:`to_dict` for the full lossless representation.
        """
        return {
            "scheme": self.scheme,
            "topology": self.topology,
            "payload_bits": self.payload_bits,
            "packets_offered": self.packets_offered,
            "packets_delivered": self.packets_delivered,
            "packets_lost": self.packets_lost,
            "air_time_samples": self.air_time_samples,
            "slots_used": self.slots_used,
            "redundancy_overhead": float(self.redundancy_overhead),
            "throughput": float(self.throughput) if self.air_time_samples > 0 else 0.0,
            "mean_ber": float(self.mean_ber),
            "delivery_ratio": float(self.delivery_ratio),
            "mean_overlap": float(self.mean_overlap),
        }

    def to_dict(self) -> Dict[str, object]:
        """Lossless plain-data representation (JSON-ready)."""
        return {
            "scheme": self.scheme,
            "topology": self.topology,
            "payload_bits": self.payload_bits,
            "packets_offered": self.packets_offered,
            "packets_delivered": self.packets_delivered,
            "packets_lost": self.packets_lost,
            "air_time_samples": self.air_time_samples,
            "slots_used": self.slots_used,
            "packet_bers": [float(b) for b in self.packet_bers],
            "overlap_fractions": [float(f) for f in self.overlap_fractions],
            "redundancy_overhead": float(self.redundancy_overhead),
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunResult":
        """Rebuild a run result from :meth:`to_dict` output (lossless)."""
        try:
            return cls(
                scheme=str(payload["scheme"]),
                topology=str(payload["topology"]),
                payload_bits=int(payload["payload_bits"]),
                packets_offered=int(payload["packets_offered"]),
                packets_delivered=int(payload["packets_delivered"]),
                packets_lost=int(payload["packets_lost"]),
                air_time_samples=int(payload["air_time_samples"]),
                slots_used=int(payload["slots_used"]),
                packet_bers=[float(b) for b in payload["packet_bers"]],
                overlap_fractions=[float(f) for f in payload["overlap_fractions"]],
                redundancy_overhead=float(payload["redundancy_overhead"]),
                notes=str(payload["notes"]),
            )
        except KeyError as missing:
            raise ConfigurationError(
                f"run-result payload is missing key {missing}"
            ) from None


class ProtocolRun:
    """Base class holding the pieces every protocol run needs."""

    #: Name reported in RunResult.scheme; subclasses override.
    scheme_name = "base"

    def __init__(
        self,
        topology: Topology,
        payload_bits: int = 512,
        ber_acceptance: float = 0.05,
        redundancy_overhead: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if payload_bits <= 0:
            raise ConfigurationError("payload_bits must be positive")
        if not 0.0 <= ber_acceptance < 0.5:
            raise ConfigurationError("ber_acceptance must lie in [0, 0.5)")
        if redundancy_overhead < 0:
            raise ConfigurationError("redundancy_overhead must be non-negative")
        self.topology = topology
        self.payload_bits = int(payload_bits)
        self.ber_acceptance = float(ber_acceptance)
        self.redundancy_overhead = float(redundancy_overhead)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.nodes: Dict[int, Node] = {}

    # ------------------------------------------------------------------
    # Node construction helpers
    # ------------------------------------------------------------------
    def _node_config(self, node_id: int) -> NodeConfig:
        return NodeConfig(
            payload_bits=self.payload_bits,
            noise_power=self.topology.noise_power(node_id),
        )

    def make_node(self, node_id: int) -> Node:
        """Create (or return the cached) plain node for an id."""
        if node_id not in self.nodes:
            self.nodes[node_id] = Node(node_id, self._node_config(node_id))
        return self.nodes[node_id]

    def make_relay(self, node_id: int) -> RelayNode:
        """Create (or return the cached) amplify-and-forward relay node.

        If the id is currently bound to a plain node (e.g. because the
        constructor instantiated every topology node generically first),
        it is upgraded to a relay.
        """
        existing = self.nodes.get(node_id)
        if not isinstance(existing, RelayNode):
            self.nodes[node_id] = RelayNode(node_id, self._node_config(node_id))
        return self.nodes[node_id]

    def make_router(self, node_id: int) -> RouterNode:
        """Create (or return the cached) decision-making router node.

        As with :meth:`make_relay`, a plain node already registered under
        this id is upgraded in place.
        """
        existing = self.nodes.get(node_id)
        if not isinstance(existing, RouterNode):
            self.nodes[node_id] = RouterNode(
                node_id,
                neighbors=self.topology.neighbors(node_id),
                config=self._node_config(node_id),
            )
        return self.nodes[node_id]

    # ------------------------------------------------------------------
    # Delivery accounting helpers
    # ------------------------------------------------------------------
    def packet_ber(self, decoded: Optional[Packet], truth: Packet) -> float:
        """Per-packet payload BER; a missing or mis-sized decode counts as 0.5."""
        if decoded is None or decoded.payload.size != truth.payload.size:
            return 0.5
        return bit_error_rate(truth.payload, decoded.payload)

    def counts_as_delivered(self, ber: float, crc_ok: bool) -> bool:
        """Is a decoded packet considered delivered?

        A packet whose CRC validates is always delivered.  A packet with
        residual bit errors is delivered when the error rate is within what
        the scheme's error-correcting redundancy can repair
        (``ber_acceptance``); this models the extra FEC the paper adds to
        ANC packets rather than simulating retransmissions.
        """
        if crc_ok:
            return True
        return ber <= self.ber_acceptance


def fresh_run_result(protocol: ProtocolRun, topology_name: str) -> RunResult:
    """Construct an empty RunResult for a protocol instance."""
    return RunResult(
        scheme=protocol.scheme_name,
        topology=topology_name,
        payload_bits=protocol.payload_bits,
        redundancy_overhead=protocol.redundancy_overhead,
    )
