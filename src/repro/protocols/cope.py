"""Digital network coding baseline (COPE, §11.1b).

The relay collects one packet from each of two crossing flows — in
separate, collision-free slots — XORs their payloads and broadcasts the
XOR-ed packet once.  Each destination recovers the packet it wants by
XOR-ing again with the packet it already has:

* in the Alice–Bob topology each endpoint uses its *own* packet (it is the
  source of the reverse flow), and
* in the "X" topology each destination uses the packet it *overheard* from
  the nearby sender in the sender's clean uplink slot.

Three slots deliver two packets, versus four for traditional routing —
COPE's 4/3 advantage — and every transmission is a clean one, which is why
the paper's COPE numbers have essentially no residual BER.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.anc.pipeline import ReceiveOutcome
from repro.framing.packet import Packet
from repro.network.flows import Flow
from repro.network.medium import Transmission
from repro.network.simulator import SlotSimulator
from repro.network.topology import Topology
from repro.protocols.base import ProtocolRun, fresh_run_result, RunResult


class CopeRelayProtocol(ProtocolRun):
    """XOR-in-the-router network coding for two flows crossing at a relay."""

    scheme_name = "cope"

    def __init__(
        self,
        topology: Topology,
        relay: int,
        flow_a: Flow,
        flow_b: Flow,
        payload_bits: int = 512,
        ber_acceptance: float = 0.05,
        overhearing: bool = False,
        rng: Optional[np.random.Generator] = None,
        topology_name: str = "alice_bob",
    ) -> None:
        super().__init__(
            topology,
            payload_bits=payload_bits,
            ber_acceptance=ber_acceptance,
            redundancy_overhead=0.0,
            rng=rng,
        )
        if flow_a.packets != flow_b.packets:
            raise ValueError("COPE pairing requires both flows to carry the same packet count")
        self.relay_id = int(relay)
        self.flow_a = flow_a
        self.flow_b = flow_b
        self.overhearing = bool(overhearing)
        self.topology_name = topology_name
        for node_id in topology.nodes:
            self.make_node(node_id)
        self.make_relay(self.relay_id)

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute every coded exchange and return the run's accounting."""
        simulator = SlotSimulator(self.topology, rng=self.rng)
        result = fresh_run_result(self, self.topology_name)
        for _ in range(self.flow_a.packets):
            self._run_exchange(simulator, result)
        result.air_time_samples = simulator.total_air_time
        result.slots_used = simulator.slots_run
        return result

    # ------------------------------------------------------------------
    def _uplink(
        self,
        simulator: SlotSimulator,
        sender_id: int,
        packet: Packet,
        overhearer: Optional[int],
    ) -> Tuple[Optional[Packet], Optional[Packet]]:
        """One clean uplink slot: relay receives, an optional overhearer snoops."""
        sender = self.nodes[sender_id]
        waveform = sender.transmit(packet)
        receivers = [self.relay_id]
        if overhearer is not None:
            receivers.append(overhearer)
        slot = simulator.run_slot(
            [Transmission(sender=sender_id, waveform=waveform)], receivers=receivers
        )
        relay_result = self.nodes[self.relay_id].receive(slot.waveform_at(self.relay_id))
        relay_packet = relay_result.packet if relay_result.delivered else None
        overheard_packet = None
        if overhearer is not None:
            ov_result = self.nodes[overhearer].receive(slot.waveform_at(overhearer))
            if ov_result.delivered:
                overheard_packet = ov_result.packet
                # Remember the overheard frame (useful to ANC; harmless here).
                self.nodes[overhearer].remember_packet(ov_result.packet)
        return relay_packet, overheard_packet

    def _run_exchange(self, simulator: SlotSimulator, result: RunResult) -> None:
        """Three slots: two clean uplinks and one XOR broadcast."""
        src_a, dst_a = self.flow_a.source, self.flow_a.destination
        src_b, dst_b = self.flow_b.source, self.flow_b.destination
        node_a = self.nodes[src_a]
        node_b = self.nodes[src_b]
        packet_a = node_a.make_packet(dst_a, rng=self.rng)
        packet_b = node_b.make_packet(dst_b, rng=self.rng)
        result.packets_offered += 2

        overhear_a = dst_b if self.overhearing else None  # dst of flow B hears src A
        overhear_b = dst_a if self.overhearing else None
        relay_a, overheard_by_dst_b = self._uplink(simulator, src_a, packet_a, overhear_a)
        relay_b, overheard_by_dst_a = self._uplink(simulator, src_b, packet_b, overhear_b)

        if relay_a is None or relay_b is None:
            # The relay failed to receive one of the packets: nothing to code.
            result.packets_lost += 2
            return

        # The relay XORs the two payloads and broadcasts the coded packet.
        relay_node = self.nodes[self.relay_id]
        xor_payload = relay_a.xor_payload(relay_b)
        coded = Packet(
            source=self.relay_id,
            destination=0 if self.relay_id != 0 else 255,
            sequence=relay_node.next_sequence(),
            payload=xor_payload,
        )
        waveform = relay_node.transmit(coded)
        slot = simulator.run_slot(
            [Transmission(sender=self.relay_id, waveform=waveform)],
            receivers=[dst_a, dst_b],
        )

        delivered_a = self._decode_at_destination(
            destination=dst_a,
            coded_slot_waveform=slot.waveform_at(dst_a),
            side_packet=packet_b if not self.overhearing else overheard_by_dst_a,
            truth=packet_a,
        )
        delivered_b = self._decode_at_destination(
            destination=dst_b,
            coded_slot_waveform=slot.waveform_at(dst_b),
            side_packet=packet_a if not self.overhearing else overheard_by_dst_b,
            truth=packet_b,
        )
        for delivered in (delivered_a, delivered_b):
            if delivered:
                result.packets_delivered += 1
            else:
                result.packets_lost += 1

    def _decode_at_destination(
        self,
        destination: int,
        coded_slot_waveform,
        side_packet: Optional[Packet],
        truth: Packet,
    ) -> bool:
        """XOR the received coded payload with the side packet and check it."""
        if side_packet is None:
            return False
        receive = self.nodes[destination].receive(coded_slot_waveform)
        if receive.outcome != ReceiveOutcome.CLEAN_DECODED or not receive.delivered:
            return False
        recovered = np.bitwise_xor(receive.packet.payload, side_packet.payload).astype(np.uint8)
        ber = float(np.mean(recovered != truth.payload)) if truth.payload.size else 0.0
        return ber <= self.ber_acceptance
