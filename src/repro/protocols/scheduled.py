"""Plan-driven protocol execution.

:class:`ChainPipelineProtocol` executes a
:class:`~repro.mac.planner.ChainPipelinePlan` at the signal level: it
pipelines one flow's packets down a chain of any length, transmitting in
the plan's repeating phases and decoding the plan's deliberate collisions
with ANC.  With the stride-2 ANC plan every interior node captures the
collision of its predecessor's new packet with its successor's forwarded
packet and cancels the half it forwarded itself one phase earlier; with
the stride-3 plain plan the same machinery degenerates to collision-free
spatial-reuse pipelining (the strongest schedule available to routing or
digital coding on a one-way chain).

The legacy 3-hop :class:`~repro.protocols.anc.ANCChainProtocol` is a thin
subclass pinned to 4-node paths; the Fig. 12 benchmark's byte-for-byte
reference rendering is the regression net proving this generalized
executor reproduces the formerly hand-coded schedule exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.channel.interference import OverlapModel
from repro.constants import DEFAULT_ANC_REDUNDANCY_OVERHEAD
from repro.exceptions import ConfigurationError
from repro.framing.packet import Packet
from repro.mac.planner import ChainPipelinePlan, PhaseTemplate, plan_chain_pipeline
from repro.network.medium import Transmission
from repro.network.simulator import SlotSimulator
from repro.network.topology import Topology
from repro.protocols.base import ProtocolRun, fresh_run_result, RunResult


def chain_min_offset() -> int:
    """Default minimum collision offset for chain pipelines (see §7.2)."""
    from repro.protocols.anc import default_min_offset

    return default_min_offset()


class ChainPipelineProtocol(ProtocolRun):
    """Executes a pipelined chain schedule produced by the MAC planner.

    Parameters
    ----------
    topology:
        The network the chain lives in.
    plan:
        The phase schedule from
        :func:`~repro.mac.planner.plan_chain_pipeline` (pass ``None`` to
        plan ``path`` with the given ``coding`` here).
    path:
        Node ids from source to destination; only used when ``plan`` is
        ``None``.
    coding:
        Planner discipline when ``plan`` is ``None`` (``"anc"`` or
        ``"plain"``).
    packets:
        Number of packets the source injects.
    overlap_model:
        Draws the random start offsets of deliberately colliding
        transmissions; unused by collision-free plans.
    scheme:
        Overrides the reported ``RunResult.scheme`` (defaults to
        ``"anc"`` for collision plans and ``"plain"`` otherwise).
    """

    scheme_name = "anc"

    def __init__(
        self,
        topology: Topology,
        plan: Optional[ChainPipelinePlan] = None,
        path: Optional[Sequence[int]] = None,
        coding: str = "anc",
        packets: int = 20,
        payload_bits: int = 512,
        ber_acceptance: float = 0.05,
        redundancy_overhead: float = DEFAULT_ANC_REDUNDANCY_OVERHEAD,
        overlap_model: Optional[OverlapModel] = None,
        rng: Optional[np.random.Generator] = None,
        topology_name: str = "chain",
        scheme: Optional[str] = None,
    ) -> None:
        super().__init__(
            topology,
            payload_bits=payload_bits,
            ber_acceptance=ber_acceptance,
            redundancy_overhead=redundancy_overhead,
            rng=rng,
        )
        if plan is None:
            if path is None:
                raise ConfigurationError("either a plan or a path is required")
            plan = plan_chain_pipeline(topology, path, coding=coding)
        if packets <= 0:
            raise ConfigurationError("packets must be positive")
        self.plan = plan
        self.path = plan.path
        self.packets = int(packets)
        self.overlap_model = (
            overlap_model
            if overlap_model is not None
            else OverlapModel(rng=self.rng, min_offset=chain_min_offset())
        )
        self.topology_name = topology_name
        if scheme is not None:
            self.scheme_name = scheme
        elif not plan.has_deliberate_collisions:
            self.scheme_name = "plain"
        for node_id in topology.nodes:
            self.make_node(node_id)

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Pipeline the packets down the chain following the plan's phases."""
        plan = self.plan
        length = len(plan.path)
        simulator = SlotSimulator(self.topology, rng=self.rng)
        result = fresh_run_result(self, self.topology_name)

        source_node = self.nodes[plan.node_at(1)]
        destination_id = plan.node_at(length)
        packets = [
            source_node.make_packet(destination_id, rng=self.rng)
            for _ in range(self.packets)
        ]
        result.packets_offered = len(packets)

        #: Packet currently held by each interior position (2 .. length-1).
        held: Dict[int, Optional[Packet]] = {pos: None for pos in range(2, length)}
        next_index = 0

        # Bootstrap: the first packet's hand-off to position 2 happens in a
        # dedicated clean slot before the steady-state phase cycle starts.
        waveform = source_node.transmit(packets[next_index])
        slot = simulator.run_slot(
            [Transmission(sender=plan.node_at(1), waveform=waveform)],
            receivers=[plan.node_at(2)],
        )
        receive = self.nodes[plan.node_at(2)].receive(slot.waveform_at(plan.node_at(2)))
        held[2] = receive.packet if receive.delivered else None
        if held[2] is None:
            result.packets_lost += 1
        next_index += 1

        pending = next_index < len(packets)
        while any(packet is not None for packet in held.values()) or pending:
            for phase in plan.phases:
                pending = next_index < len(packets)
                if not self._run_phase(
                    phase, simulator, result, packets, held, next_index, pending
                ):
                    continue
                if 1 in phase.transmit_positions and pending:
                    next_index += 1
            pending = next_index < len(packets)

        result.air_time_samples = simulator.total_air_time
        result.slots_used = simulator.slots_run
        return result

    # ------------------------------------------------------------------
    def _run_phase(
        self,
        phase: PhaseTemplate,
        simulator: SlotSimulator,
        result: RunResult,
        packets: List[Packet],
        held: Dict[int, Optional[Packet]],
        next_index: int,
        pending: bool,
    ) -> bool:
        """Execute one phase slot; returns False when nothing transmitted."""
        plan = self.plan
        length = len(plan.path)

        active: List[int] = []
        for position in phase.transmit_positions:
            if position == 1:
                if pending:
                    active.append(position)
            elif held.get(position) is not None:
                active.append(position)
        if not active:
            return False

        # Build the transmissions in ascending position order (this fixes
        # the per-receiver channel-distortion draw order in the medium).
        outgoing: Dict[int, Packet] = {}
        waveforms: List = []
        for position in active:
            if position == 1:
                packet = packets[next_index]
                waveforms.append(self.nodes[plan.node_at(1)].transmit(packet))
            else:
                packet = held[position]
                waveforms.append(self.nodes[plan.node_at(position)].forward(packet))
            outgoing[position] = packet

        frame_samples = len(waveforms[0])
        offsets = self._draw_offsets(active, frame_samples, result)
        transmissions = [
            Transmission(
                sender=plan.node_at(position),
                waveform=waveform,
                start_offset=offset,
            )
            if offset
            else Transmission(sender=plan.node_at(position), waveform=waveform)
            for position, waveform, offset in zip(active, waveforms, offsets)
        ]

        listeners = [plan.node_at(position) for position in phase.listen_positions]
        slot = simulator.run_slot(transmissions, receivers=listeners)

        # Transmitted packets leave their positions; receptions below then
        # place them one hop further (or count them delivered / lost).
        for position in active:
            if position != 1:
                held[position] = None

        # Process listeners from the front of the pipeline backwards,
        # matching the destination-first accounting of the 3-hop schedule.
        for position in sorted(phase.listen_positions, reverse=True):
            if (position - 1) not in outgoing:
                continue
            truth = outgoing[position - 1]
            node = self.nodes[plan.node_at(position)]
            receive = node.receive(slot.waveform_at(plan.node_at(position)))
            if position == length:
                if receive.delivered and receive.packet is not None:
                    result.packets_delivered += 1
                else:
                    result.packets_lost += 1
            elif position in phase.collision_positions:
                # Deliberate-collision receiver: ANC decode, judged against
                # the truth with the FEC acceptance; the repaired (original)
                # payload is what travels on.
                ber = self.packet_ber(receive.packet, truth)
                if receive.interfered:
                    result.packet_bers.append(ber)
                if receive.packet is not None and self.counts_as_delivered(
                    ber, receive.crc_ok
                ):
                    held[position] = truth
                else:
                    held[position] = None
                    result.packets_lost += 1
            else:
                # Clean hand-off: store what was actually decoded and
                # remember it for later interference cancellation.
                if receive.delivered and receive.packet is not None:
                    held[position] = receive.packet
                    node.remember_packet(receive.packet)
                else:
                    held[position] = None
                    result.packets_lost += 1
        return True

    # ------------------------------------------------------------------
    def _draw_offsets(
        self, active: Sequence[int], frame_samples: int, result: RunResult
    ) -> List[int]:
        """Start offsets for the active transmitters of one phase slot.

        Collision-free plans transmit in lockstep (all offsets zero); ANC
        plans chain the overlap model's pairwise draws so every pair of
        transmitters sharing a receiver gets the paper's randomised
        partial overlap, recorded in ``result.overlap_fractions``.
        """
        if len(active) < 2 or not self.plan.has_deliberate_collisions:
            return [0] * len(active)
        offsets: List[int] = [0]
        for _ in range(len(active) - 1):
            first_offset, second_offset = self.overlap_model.draw_offsets(frame_samples)
            offsets.append(offsets[-1] + (second_offset - first_offset))
        for earlier, later, gap_start, gap_end in zip(
            active[:-1], active[1:], offsets[:-1], offsets[1:]
        ):
            if later - earlier == 2:
                result.overlap_fractions.append(
                    1.0 - abs(gap_end - gap_start) / frame_samples
                )
        return offsets
