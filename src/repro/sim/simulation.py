"""The event-driven Alice–relay–Bob traffic simulation (§8-style load runs).

This module ties the :mod:`repro.sim` pieces together into one
:class:`TrafficSimulation`: Poisson/CBR/bursty arrivals feed per-endpoint
FIFO queues, a pluggable MAC (CSMA with binary exponential backoff, or
the planner-style TDMA grid) grants channel access, overlapping
transmissions are resolved through SINR-segment capture rules, and every
surviving waveform is decoded by the *existing* PHY — aligned
scalar/batched MSK demodulation for clean and captured frames, the full
:class:`~repro.anc.pipeline.ReceivePipeline` for ANC collisions.

Three relaying schemes compete on the same arrival sample paths:

* ``traditional`` — store-and-forward routing: every packet costs an
  endpoint→relay transmission plus a relay→endpoint transmission, and
  the hidden-terminal geometry (Alice and Bob cannot hear each other)
  makes uplink collisions at the relay increasingly likely with load;
* ``cope`` — the relay XORs one head-of-line packet per direction into a
  single coded broadcast (3 transmissions per 2 packets), falling back
  to plain forwarding when only one direction has patient traffic;
* ``anc`` — when both directions have traffic and the channel is idle,
  the endpoints are triggered to transmit *concurrently* with the §7.2
  partial-overlap offsets; the relay amplifies the collision and
  broadcasts it, and each endpoint cancels its own frame to decode the
  other's (2 transmissions per 2 packets).

At low offered load all three deliver whatever arrives; past their
saturation points they diverge — the goodput ordering
``anc > cope > traditional`` at high load is the paper's §8 qualitative
result, reproduced by the ``offered_load_sweep`` scenario.

Everything is deterministic given the entropy passed in: arrivals,
payloads, backoffs and noise all come from named
:class:`~repro.sim.core.RngStreams`, and the event order is captured in
the scheduler's trace digest.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.interference import InterferenceCombiner, OverlapModel
from repro.exceptions import ConfigurationError
from repro.framing.packet import Packet
from repro.network.topologies import ALICE, BOB, RELAY, ChannelConditions, alice_bob_topology
from repro.network.topology import Topology
from repro.node.node import Node, NodeConfig
from repro.node.relay import RelayNode
from repro.protocols.anc import default_min_offset
from repro.sim.core import EventScheduler, RngStreams
from repro.sim.mac import MAC_POLICIES, CsmaBackoffMac, CsmaState, ScheduledMac
from repro.sim.queueing import PacketQueue
from repro.sim.reception import (
    DecodeService,
    PHY_MODES,
    ReceptionKind,
    ReceptionSession,
    classify_reception,
)
from repro.sim.traffic import TRAFFIC_MODELS, make_arrival_process
from repro.utils.bits import bit_error_rate

__all__ = ["SCHEMES", "SimParams", "SimReport", "TrafficSimulation"]

#: The relaying schemes the traffic simulation can run.
SCHEMES: Tuple[str, ...] = ("anc", "cope", "traditional")

#: Broadcast destination id used by COPE-coded relay frames.
_BROADCAST = 255

#: Tolerance (samples) for comparing event times against deadlines.
#: ``schedule_at`` round-trips absolute times through a relative delay,
#: so a wake-up can fire a few ulps before its nominal deadline; without
#: the epsilon an exact ``age >= patience`` test could reschedule the
#: same instant forever.
_TIME_EPS = 1e-6


@dataclass(frozen=True)
class SimParams:
    """Knobs of one traffic-simulation run.

    Attributes
    ----------
    scheme:
        Relaying scheme (:data:`SCHEMES`).
    mac_policy:
        ``"csma"`` (contention + BEB) or ``"scheduled"`` (TDMA grid) —
        :data:`repro.sim.mac.MAC_POLICIES`.
    traffic_model:
        Arrival process family (:data:`repro.sim.traffic.TRAFFIC_MODELS`).
    arrival_rate:
        Total offered load, in packets per frame-time summed over both
        directions (each endpoint generates half).
    sim_duration_frames:
        Simulated horizon in frame-times.
    payload_bits:
        Packet payload size (fixed MTU).
    ber_acceptance:
        Residual BER the per-scheme FEC is assumed to repair.
    redundancy_overhead:
        Redundancy charged against the scheme's goodput.
    mean_overlap, overlap_jitter:
        §7.2 deliberate-overlap geometry for the ANC exchanges.
    queue_capacity:
        Per-queue packet capacity (tail drop beyond it).
    capture_threshold_db:
        Worst-segment SINR above which the strongest colliding frame is
        captured (decoded despite interference).
    patience_frames:
        How long a lone head-of-line packet waits for a coding partner
        (COPE) or a reverse-direction packet (ANC) before it is plainly
        forwarded.
    phy:
        ``"scalar"`` or ``"batched"`` decode execution
        (:data:`repro.sim.reception.PHY_MODES`); bit-identical results.
    guard_samples:
        Guard time appended to scheduled slots.
    """

    scheme: str = "anc"
    mac_policy: str = "csma"
    traffic_model: str = "poisson"
    arrival_rate: float = 0.6
    sim_duration_frames: float = 48.0
    payload_bits: int = 512
    ber_acceptance: float = 0.05
    redundancy_overhead: float = 0.0
    mean_overlap: float = 0.85
    overlap_jitter: float = 0.05
    queue_capacity: int = 8
    capture_threshold_db: float = 10.0
    patience_frames: float = 3.0
    phy: str = "scalar"
    guard_samples: int = 64

    def __post_init__(self) -> None:
        """Validate every knob against its registry / admissible range."""
        if self.scheme not in SCHEMES:
            raise ConfigurationError(
                f"unknown scheme {self.scheme!r}; choose from {', '.join(SCHEMES)}"
            )
        if self.mac_policy not in MAC_POLICIES:
            raise ConfigurationError(
                f"unknown mac policy {self.mac_policy!r}; choose from {', '.join(MAC_POLICIES)}"
            )
        if self.traffic_model not in TRAFFIC_MODELS:
            raise ConfigurationError(
                f"unknown traffic model {self.traffic_model!r}; choose from "
                f"{', '.join(TRAFFIC_MODELS)}"
            )
        if self.phy not in PHY_MODES:
            raise ConfigurationError(
                f"unknown phy mode {self.phy!r}; choose from {', '.join(PHY_MODES)}"
            )
        if self.arrival_rate <= 0:
            raise ConfigurationError("arrival_rate must be positive")
        if self.sim_duration_frames <= 0:
            raise ConfigurationError("sim_duration_frames must be positive")
        if self.payload_bits <= 0 or self.payload_bits % 8 != 0:
            raise ConfigurationError("payload_bits must be a positive multiple of 8")
        if not 0.0 < self.mean_overlap <= 1.0:
            raise ConfigurationError("mean_overlap must lie in (0, 1]")
        if self.queue_capacity <= 0:
            raise ConfigurationError("queue_capacity must be positive")
        if self.patience_frames < 0:
            raise ConfigurationError("patience_frames must be non-negative")


@dataclass
class SimReport:
    """Aggregated outcome of one traffic-simulation run."""

    params: SimParams
    duration_samples: float
    frame_samples: int
    offered: int = 0
    delivered: int = 0
    delivered_bits: int = 0
    queue_drops: int = 0
    retry_drops: int = 0
    losses: int = 0
    transmissions: int = 0
    events: int = 0
    delays: List[float] = field(default_factory=list)
    queue_waits: List[float] = field(default_factory=list)
    bers: List[float] = field(default_factory=list)
    trace_digest: str = ""

    def metrics(self) -> Dict[str, float]:
        """Flatten the run into the plain floats a scenario trial returns.

        ``throughput`` is goodput — delivered payload bits net of the
        scheme's redundancy overhead, per sample of simulated time.
        Delay statistics are in frame-time units.
        """
        frame = float(self.frame_samples)
        delays = [d / frame for d in self.delays]
        waits = [w / frame for w in self.queue_waits]
        goodput = (
            self.delivered_bits
            / (1.0 + self.params.redundancy_overhead)
            / self.duration_samples
        )
        dropped = self.queue_drops + self.retry_drops + self.losses
        return {
            "throughput": float(goodput),
            "delivered": float(self.delivered),
            "offered": float(self.offered),
            "mean_ber": float(np.mean(self.bers)) if self.bers else 0.0,
            "drop_rate": float(dropped / self.offered) if self.offered else 0.0,
            "delay_mean": float(np.mean(delays)) if delays else 0.0,
            "delay_p95": float(np.percentile(delays, 95)) if delays else 0.0,
            "queue_wait_mean": float(np.mean(waits)) if waits else 0.0,
            "slots": float(self.transmissions),
        }


@dataclass
class _Tx:
    """One in-flight transmission on the shared medium."""

    tx_id: int
    sender: int
    waveform: Any
    start: float
    end: float
    kind: str
    meta: Dict[str, Any]


class TrafficSimulation:
    """One seeded, deterministic Alice–relay–Bob traffic run.

    Parameters
    ----------
    params:
        The run's knobs.
    entropy:
        Integer seed material for the :class:`RngStreams`; two runs with
        equal params and entropy are bit-identical (equal metrics *and*
        equal event-trace digests) wherever they execute.
    conditions:
        Channel conditions for the topology draw (defaults to the
        standard operating point).
    """

    def __init__(
        self,
        params: SimParams,
        entropy: Sequence[int],
        conditions: Optional[ChannelConditions] = None,
    ) -> None:
        """Build nodes, queues, MAC and traffic state for one run."""
        self.params = params
        self.streams = RngStreams(entropy)
        self.conditions = conditions if conditions is not None else ChannelConditions()
        self.topology: Topology = alice_bob_topology(
            self.conditions, self.streams.stream("topology")
        )
        self.nodes: Dict[int, Node] = {}
        for node_id in self.topology.nodes:
            node_config = NodeConfig(
                payload_bits=params.payload_bits,
                noise_power=self.topology.noise_power(node_id),
            )
            if node_id == RELAY:
                self.nodes[node_id] = RelayNode(node_id, node_config)
            else:
                self.nodes[node_id] = Node(node_id, node_config)
        self.frame_samples = self.nodes[ALICE].frame_samples
        self.duration_samples = params.sim_duration_frames * self.frame_samples
        self.sched = EventScheduler()
        self.decoder = DecodeService(phy=params.phy)
        self.report = SimReport(
            params=params,
            duration_samples=self.duration_samples,
            frame_samples=self.frame_samples,
        )

        # Traffic: each endpoint generates half the configured load.
        per_endpoint_interarrival = 2.0 * self.frame_samples / params.arrival_rate
        self._arrivals = {
            endpoint: make_arrival_process(params.traffic_model, per_endpoint_interarrival)
            for endpoint in (ALICE, BOB)
        }
        self.queues = {
            endpoint: PacketQueue(capacity=params.queue_capacity)
            for endpoint in (ALICE, BOB)
        }
        #: Relay store-and-forward buffer: dicts with packet/arrival/dst.
        self._relay_buffer: Deque[Dict[str, Any]] = deque()
        #: Relay ANC broadcast jobs, ahead of any plain forwards.
        self._relay_broadcasts: Deque[Dict[str, Any]] = deque()

        # MAC state.
        self.mac = CsmaBackoffMac()
        self._csma: Dict[int, CsmaState] = {
            node_id: self.mac.fresh_state() for node_id in self.topology.nodes
        }
        self._pending_access: Dict[int, bool] = {
            node_id: False for node_id in self.topology.nodes
        }
        #: Head-of-line unit per node: the frame currently being contended
        #: for / retransmitted (endpoints: packet dicts; relay: jobs).
        self._hol: Dict[int, Optional[Dict[str, Any]]] = {
            node_id: None for node_id in self.topology.nodes
        }
        self._patience_events: Dict[int, Any] = {}
        self._relay_recheck: Any = None
        self._scheduled: Optional[ScheduledMac] = None
        if params.mac_policy == "scheduled":
            self._scheduled = self._build_slot_grid()

        # Medium state.
        self._active: List[_Tx] = []
        self._group: List[_Tx] = []
        self._tx_counter = 0
        self._anc_active = False

        self.overlap_model = OverlapModel(
            mean_overlap=params.mean_overlap,
            jitter=params.overlap_jitter,
            min_offset=default_min_offset(),
            rng=self.streams.stream("overlap"),
        )
        self._patience_samples = params.patience_frames * self.frame_samples

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------
    def _build_slot_grid(self) -> ScheduledMac:
        """Size the TDMA grid for the scheme (ANC slots fit the overlap)."""
        guard = self.params.guard_samples
        if self.params.scheme == "anc":
            max_offset = int(
                np.ceil(
                    (1.0 - self.params.mean_overlap + self.params.overlap_jitter)
                    * self.frame_samples
                )
            )
            max_offset = max(max_offset, default_min_offset())
            return ScheduledMac(
                slot_samples=self.frame_samples + max_offset + guard, n_ranks=2
            )
        return ScheduledMac(slot_samples=self.frame_samples + guard, n_ranks=3)

    @staticmethod
    def _other_endpoint(endpoint: int) -> int:
        """The opposite endpoint of the bidirectional flow."""
        return BOB if endpoint == ALICE else ALICE

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self) -> SimReport:
        """Execute the run and return its aggregated report."""
        for endpoint in (ALICE, BOB):
            delay = self._arrivals[endpoint].next_interarrival(
                self.streams.node_stream(endpoint, "arrivals")
            )
            self.sched.schedule(
                delay, lambda e=endpoint: self._on_arrival(e), kind=f"arrival@{endpoint}"
            )
        if self._scheduled is not None:
            self.sched.schedule_at(0.0, self._on_slot, kind="slot", priority=-1)
        self.report.events = self.sched.run_until(self.duration_samples)
        self.report.trace_digest = self.sched.trace_digest()
        return self.report

    # ------------------------------------------------------------------
    # Arrivals
    # ------------------------------------------------------------------
    def _on_arrival(self, endpoint: int) -> None:
        """One packet arrives at an endpoint; schedule the next arrival."""
        now = self.sched.now
        packet = self.nodes[endpoint].make_packet(
            self._other_endpoint(endpoint),
            rng=self.streams.node_stream(endpoint, "payload"),
        )
        self.report.offered += 1
        accepted = self.queues[endpoint].offer(packet, now)
        if not accepted:
            self.report.queue_drops += 1
        delay = self._arrivals[endpoint].next_interarrival(
            self.streams.node_stream(endpoint, "arrivals")
        )
        self.sched.schedule(
            delay, lambda e=endpoint: self._on_arrival(e), kind=f"arrival@{endpoint}"
        )
        if accepted and self._scheduled is None:
            self._kick_endpoint(endpoint)
            if self.params.scheme == "anc":
                self._kick_endpoint(self._other_endpoint(endpoint))

    # ------------------------------------------------------------------
    # CSMA access
    # ------------------------------------------------------------------
    def _sense_busy(self, node_id: int) -> bool:
        """Carrier sense: does this node currently hear any transmission?"""
        for tx in self._active:
            if tx.sender == node_id or self.topology.in_range(tx.sender, node_id):
                return True
        return False

    def _busy_end(self, node_id: int) -> float:
        """Latest end time among the transmissions this node can hear."""
        ends = [
            tx.end
            for tx in self._active
            if tx.sender == node_id or self.topology.in_range(tx.sender, node_id)
        ]
        return max(ends) if ends else self.sched.now

    def _kick_all(self) -> None:
        """Re-evaluate every node's send opportunity (after a resolution)."""
        if self._scheduled is not None:
            return
        for endpoint in (ALICE, BOB):
            self._kick_endpoint(endpoint)
        self._kick_relay()

    def _kick_endpoint(self, endpoint: int) -> None:
        """Endpoint send decision under CSMA (scheme-aware)."""
        if self._scheduled is not None:
            return
        if self._hol[endpoint] is not None or self._pending_access[endpoint]:
            return
        queue = self.queues[endpoint]
        if queue.is_empty:
            return
        if self.params.scheme == "anc":
            other = self._other_endpoint(endpoint)
            if not self.queues[other].is_empty:
                self._maybe_anc_exchange()
                return
            head = queue.peek()
            age = self.sched.now - head.arrival_time
            if age < self._patience_samples - _TIME_EPS:
                self._schedule_patience(endpoint, head.arrival_time)
                return
        entry = queue.pop(self.sched.now)
        self.report.queue_waits.append(self.sched.now - entry.arrival_time)
        self._hol[endpoint] = {
            "packet": entry.packet,
            "arrival": entry.arrival_time,
            "dst": self._other_endpoint(endpoint),
        }
        self._request_access(endpoint)

    def _schedule_patience(self, endpoint: int, arrival_time: float) -> None:
        """Wake the endpoint when its lone head-of-line packet turns patient."""
        if endpoint in self._patience_events:
            return
        wake_at = arrival_time + self._patience_samples + 1.0
        self._patience_events[endpoint] = self.sched.schedule_at(
            max(wake_at, self.sched.now),
            lambda e=endpoint: self._on_patience(e),
            kind=f"patience@{endpoint}",
        )

    def _on_patience(self, endpoint: int) -> None:
        """The patience horizon passed; retry the endpoint send decision."""
        self._patience_events.pop(endpoint, None)
        self._kick_endpoint(endpoint)

    def _request_access(self, node_id: int) -> None:
        """Begin a DIFS + backoff countdown toward channel access."""
        self._pending_access[node_id] = True
        delay = self.mac.access_delay(
            self._csma[node_id], self.streams.node_stream(node_id, "mac")
        )
        self.sched.schedule(
            delay, lambda n=node_id: self._on_access(n), kind=f"access@{node_id}"
        )

    def _on_access(self, node_id: int) -> None:
        """Backoff expired: transmit if the channel is idle, else re-arm."""
        self._pending_access[node_id] = False
        if self._hol[node_id] is None:
            return
        if self._sense_busy(node_id):
            self._pending_access[node_id] = True
            resume = self._busy_end(node_id) - self.sched.now
            delay = resume + self.mac.access_delay(
                self._csma[node_id], self.streams.node_stream(node_id, "mac")
            )
            self.sched.schedule(
                delay, lambda n=node_id: self._on_access(n), kind=f"access@{node_id}"
            )
            return
        self._transmit_hol(node_id)

    def _transmit_hol(self, node_id: int) -> None:
        """Put the node's head-of-line unit on the air."""
        unit = self._hol[node_id]
        if unit is None:
            return
        if node_id == RELAY:
            self._transmit_relay_job(unit)
            return
        waveform = self.nodes[node_id].transmit(unit["packet"])
        self._begin_tx(node_id, waveform, kind="data", meta=dict(unit, origin=node_id))

    # ------------------------------------------------------------------
    # Relay job management
    # ------------------------------------------------------------------
    def _kick_relay(self) -> None:
        """Relay send decision under CSMA."""
        if self._scheduled is not None:
            return
        if self._hol[RELAY] is not None or self._pending_access[RELAY]:
            return
        job = self._dequeue_relay_job()
        if job is None:
            return
        self._hol[RELAY] = job
        self._request_access(RELAY)

    def _dequeue_relay_job(self) -> Optional[Dict[str, Any]]:
        """Pick the relay's next unit of work (scheme-aware)."""
        if self._relay_broadcasts:
            return self._relay_broadcasts.popleft()
        if not self._relay_buffer:
            return None
        if self.params.scheme == "cope":
            return self._dequeue_cope_job()
        entry = self._relay_buffer.popleft()
        return {"kind": "forward", **entry}

    def _dequeue_cope_job(self) -> Optional[Dict[str, Any]]:
        """Pair opposite-direction packets into one XOR-coded broadcast.

        With only one direction buffered, the head packet waits up to the
        patience horizon for a partner before being plainly forwarded.
        """
        for_alice = next((e for e in self._relay_buffer if e["dst"] == ALICE), None)
        for_bob = next((e for e in self._relay_buffer if e["dst"] == BOB), None)
        if for_alice is not None and for_bob is not None:
            self._relay_buffer.remove(for_alice)
            self._relay_buffer.remove(for_bob)
            return {"kind": "cope_coded", "pair": {ALICE: for_alice, BOB: for_bob}}
        oldest = self._relay_buffer[0]
        if self.sched.now - oldest["relay_time"] >= self._patience_samples - _TIME_EPS:
            self._relay_buffer.popleft()
            return {"kind": "forward", **oldest}
        if self._relay_recheck is None:
            self._relay_recheck = self.sched.schedule_at(
                max(oldest["relay_time"] + self._patience_samples + 1.0, self.sched.now),
                self._on_relay_recheck,
                kind="relay_patience",
            )
        return None

    def _on_relay_recheck(self) -> None:
        """Patience horizon reached: retry the relay send decision."""
        self._relay_recheck = None
        if self._scheduled is None:
            self._kick_relay()

    def _transmit_relay_job(self, job: Dict[str, Any]) -> None:
        """Put one relay job on the air."""
        relay = self.nodes[RELAY]
        if job["kind"] == "anc_broadcast":
            self._begin_tx(RELAY, job["waveform"], kind="anc_broadcast", meta=job)
        elif job["kind"] == "cope_coded":
            pair = job["pair"]
            coded_payload = np.bitwise_xor(
                pair[ALICE]["packet"].payload, pair[BOB]["packet"].payload
            ).astype(np.uint8)
            coded = Packet(
                source=RELAY,
                destination=_BROADCAST,
                sequence=relay.next_sequence(),
                payload=coded_payload,
            )
            self._begin_tx(RELAY, relay.transmit(coded), kind="cope_coded", meta=job)
        else:
            self._begin_tx(
                RELAY,
                relay.forward(job["packet"]),
                kind="data",
                meta=dict(job, origin=RELAY),
            )

    # ------------------------------------------------------------------
    # Scheduled (TDMA) MAC
    # ------------------------------------------------------------------
    def _on_slot(self) -> None:
        """One TDMA slot boundary: the owner transmits, the chain continues."""
        grid = self._scheduled
        assert grid is not None
        slot_index = int(round(self.sched.now / grid.slot_samples))
        owner = grid.slot_owner(slot_index)
        self.sched.schedule(
            grid.slot_samples, self._on_slot, kind="slot", priority=-1
        )
        if self.params.scheme == "anc":
            if owner == 0:
                self._scheduled_anc_uplink()
            else:
                self._scheduled_relay_send()
        else:
            if owner == 0:
                self._scheduled_endpoint_send(ALICE)
            elif owner == 1:
                self._scheduled_endpoint_send(BOB)
            else:
                self._scheduled_relay_send()

    def _scheduled_endpoint_send(self, endpoint: int) -> None:
        """A scheduled endpoint slot: send the head of line, if any."""
        queue = self.queues[endpoint]
        if queue.is_empty:
            return
        entry = queue.pop(self.sched.now)
        self.report.queue_waits.append(self.sched.now - entry.arrival_time)
        packet, arrival = entry.packet, entry.arrival_time
        waveform = self.nodes[endpoint].transmit(packet)
        self._begin_tx(
            endpoint,
            waveform,
            kind="data",
            meta={
                "packet": packet,
                "arrival": arrival,
                "dst": self._other_endpoint(endpoint),
                "origin": endpoint,
            },
        )

    def _scheduled_anc_uplink(self) -> None:
        """The ANC grid's endpoint phase: paired uplink, or patient forward."""
        alice_q, bob_q = self.queues[ALICE], self.queues[BOB]
        if not alice_q.is_empty and not bob_q.is_empty:
            self._launch_anc_uplink()
            return
        for endpoint in (ALICE, BOB):
            queue = self.queues[endpoint]
            head = queue.peek()
            if head is None:
                continue
            if self.sched.now - head.arrival_time >= self._patience_samples:
                self._scheduled_endpoint_send(endpoint)
            return

    def _scheduled_relay_send(self) -> None:
        """A scheduled relay slot: broadcast/forward the next job, if any."""
        job = self._dequeue_relay_job()
        if job is None:
            return
        self._transmit_relay_job(job)

    # ------------------------------------------------------------------
    # ANC exchange (CSMA trigger path)
    # ------------------------------------------------------------------
    def _maybe_anc_exchange(self) -> None:
        """Trigger a paired uplink when both directions have traffic."""
        if self._anc_active or self._scheduled is not None:
            return
        if self.queues[ALICE].is_empty or self.queues[BOB].is_empty:
            return
        # Every node must be quiescent: a pending relay broadcast winning
        # channel access mid-exchange would contaminate the uplink group.
        for node_id in (ALICE, BOB, RELAY):
            if self._hol[node_id] is not None or self._pending_access[node_id]:
                return
        if self._sense_busy(ALICE) or self._sense_busy(BOB) or self._sense_busy(RELAY):
            return
        self._anc_active = True
        self._launch_anc_uplink()

    def _launch_anc_uplink(self) -> None:
        """Pop both heads of line and start the §7.2 offset transmissions."""
        entries = {}
        for endpoint in (ALICE, BOB):
            event = self._patience_events.pop(endpoint, None)
            if event is not None:
                self.sched.cancel(event)
            entry = self.queues[endpoint].pop(self.sched.now)
            self.report.queue_waits.append(self.sched.now - entry.arrival_time)
            entries[endpoint] = entry
        first, second = self.overlap_model.draw_offsets(self.frame_samples)
        if self.streams.stream("overlap").uniform() < 0.5:
            offsets = {ALICE: first, BOB: second}
        else:
            offsets = {ALICE: second, BOB: first}
        for endpoint, entry in entries.items():
            packet, arrival = entry.packet, entry.arrival_time
            self.sched.schedule(
                offsets[endpoint],
                lambda e=endpoint, p=packet, a=arrival: self._begin_tx(
                    e,
                    self.nodes[e].transmit(p),
                    kind="anc_uplink",
                    meta={"packet": p, "arrival": a, "dst": self._other_endpoint(e)},
                ),
                kind=f"anc_uplink@{endpoint}",
            )

    # ------------------------------------------------------------------
    # Medium / collision groups
    # ------------------------------------------------------------------
    def _begin_tx(self, sender: int, waveform, kind: str, meta: Dict[str, Any]) -> None:
        """Start a transmission and arm its end event."""
        tx = _Tx(
            tx_id=self._tx_counter,
            sender=sender,
            waveform=waveform,
            start=self.sched.now,
            end=self.sched.now + len(waveform),
            kind=kind,
            meta=meta,
        )
        self._tx_counter += 1
        self.report.transmissions += 1
        self._active.append(tx)
        self._group.append(tx)
        self.sched.schedule(
            len(waveform), lambda t=tx: self._on_tx_end(t), kind=f"tx_end@{sender}"
        )

    def _on_tx_end(self, tx: _Tx) -> None:
        """A transmission left the air; resolve the group once it drains."""
        self._active.remove(tx)
        # Coded/broadcast frames are fire-and-forget: no genie feedback,
        # so release the relay's head of line as soon as the frame ends.
        if tx.kind in ("anc_broadcast", "cope_coded") and self._hol.get(tx.sender) is tx.meta:
            self._hol[tx.sender] = None
        if self._active:
            return
        group, self._group = self._group, []
        self._resolve_group(group)
        self._kick_all()

    # ------------------------------------------------------------------
    # Group resolution: sessions, capture, decode, feedback
    # ------------------------------------------------------------------
    def _resolve_group(self, group: List[_Tx]) -> None:
        """Resolve every reception of one collision group."""
        group_start = min(tx.start for tx in group)
        senders = {tx.sender for tx in group}
        handled: Dict[int, bool] = {}
        for receiver in self.topology.nodes:
            if receiver in senders:
                continue
            components = [
                tx for tx in group if self.topology.in_range(tx.sender, receiver)
            ]
            if not components:
                continue
            self._resolve_receiver(receiver, components, group_start, handled)
        # Any data frame whose intended next hop never examined it (for
        # example because that node was itself transmitting) is lost.
        for tx in group:
            if tx.tx_id in handled:
                continue
            if tx.kind == "data":
                self._data_failed(tx)
            elif tx.kind == "anc_uplink":
                self.report.losses += 1
                self._anc_active = False
            elif tx.kind == "cope_coded":
                self.report.losses += 2
            elif tx.kind == "anc_broadcast":
                self.report.losses += len(tx.meta["truths"])

    def _resolve_receiver(
        self,
        receiver: int,
        components: List[_Tx],
        group_start: float,
        handled: Dict[int, bool],
    ) -> None:
        """Build one receiver's composite, classify it, decode and dispatch."""
        node = self.nodes[receiver]
        session = ReceptionSession(noise_power=node.config.noise_power)
        offsets: Dict[int, int] = {}
        for tx in components:
            link = self.topology.link(tx.sender, receiver)
            offset = int(round(tx.start - group_start))
            offsets[tx.tx_id] = offset + link.propagation_delay
            power = (self.nodes[tx.sender].config.tx_amplitude ** 2) * link.power_gain
            session.add(tx.tx_id, power, tx.start, tx.end)

        # ANC's raison d'etre: the relay never decodes a paired uplink
        # collision — it amplifies and rebroadcasts it (§7.5).
        uplinks = [tx for tx in components if tx.kind == "anc_uplink"]
        if receiver == RELAY and uplinks:
            self._relay_hears_uplink(components, uplinks, group_start, handled)
            return

        kind, primary_id = classify_reception(
            session, self.params.capture_threshold_db
        )
        if kind is ReceptionKind.COLLIDED:
            for tx in components:
                self._component_failed_at(receiver, tx, handled)
            return
        primary = next(tx for tx in components if tx.tx_id == primary_id)
        if self._primary_relevant(receiver, primary):
            combiner = InterferenceCombiner(
                noise_power=node.config.noise_power,
                rng=self.streams.node_stream(receiver, "noise"),
            )
            composite = combiner.combine(
                [
                    (
                        tx.waveform,
                        self.topology.link(tx.sender, receiver),
                        int(round(tx.start - group_start)),
                    )
                    for tx in components
                ],
                tail_padding=24,
            ).signal
            if primary.kind == "anc_broadcast":
                self._decode_anc_broadcast(receiver, primary, composite, handled)
            else:
                self._decode_aligned(
                    receiver, primary, composite, offsets[primary.tx_id], handled
                )
        # Captured: the weaker components die at this receiver.
        for tx in components:
            if tx.tx_id != primary.tx_id:
                self._component_failed_at(receiver, tx, handled)

    @staticmethod
    def _primary_relevant(receiver: int, tx: _Tx) -> bool:
        """Is this receiver a consumer of the frame (vs a mere overhearer)?"""
        if tx.kind == "anc_broadcast":
            return receiver in tx.meta["truths"]
        if tx.kind == "cope_coded":
            return receiver in tx.meta["pair"]
        return receiver == RELAY or (
            tx.sender == RELAY and tx.meta.get("dst") == receiver
        )

    def _relay_hears_uplink(
        self,
        components: List[_Tx],
        uplinks: List[_Tx],
        group_start: float,
        handled: Dict[int, bool],
    ) -> None:
        """The relay turns a clean paired uplink into a broadcast job."""
        relay = self.nodes[RELAY]
        if len(uplinks) == 2 and len(components) == 2:
            combiner = InterferenceCombiner(
                noise_power=relay.config.noise_power,
                rng=self.streams.node_stream(RELAY, "noise"),
            )
            composite = combiner.combine(
                [
                    (
                        tx.waveform,
                        self.topology.link(tx.sender, RELAY),
                        int(round(tx.start - group_start)),
                    )
                    for tx in uplinks
                ],
                tail_padding=24,
            ).signal
            broadcast = relay.amplify_and_forward(composite)
            truths = {
                tx.meta["dst"]: {"packet": tx.meta["packet"], "arrival": tx.meta["arrival"]}
                for tx in uplinks
            }
            self._relay_broadcasts.append(
                {"kind": "anc_broadcast", "waveform": broadcast, "truths": truths}
            )
            for tx in uplinks:
                handled[tx.tx_id] = True
        else:
            # A contaminated exchange (a stray frame joined the group):
            # nothing is recoverable at the relay.
            for tx in components:
                self._component_failed_at(RELAY, tx, handled)
        self._anc_active = False

    # ------------------------------------------------------------------
    # Decode paths
    # ------------------------------------------------------------------
    def _decode_aligned(
        self,
        receiver: int,
        tx: _Tx,
        composite,
        start: int,
        handled: Dict[int, bool],
    ) -> None:
        """Decode a clean/captured frame from its aligned window."""
        parsed = self.decoder.decode_window(composite, start, self.frame_samples)
        if tx.kind == "cope_coded":
            self._account_cope_coded(receiver, tx, parsed, handled)
            return
        truth: Packet = tx.meta["packet"]
        ber = self.decoder.payload_ber(
            parsed.packet.payload if parsed.packet is not None else None, truth.payload
        )
        ok = parsed.payload_crc_ok or ber <= self.params.ber_acceptance
        if tx.meta.get("dst") == receiver and tx.sender == RELAY:
            # Final hop: a relay frame reaching its destination.
            self.report.bers.append(ber)
            handled[tx.tx_id] = True
            if ok:
                self._account_delivery(truth, tx.meta["arrival"])
                self._data_succeeded(tx)
            else:
                self._data_failed(tx)
            return
        if receiver == RELAY and tx.kind in ("data", "anc_uplink"):
            handled[tx.tx_id] = True
            if ok:
                # Store-and-forward: the FEC-repaired copy (the truth
                # packet once BER is within acceptance) enters the buffer.
                self._relay_buffer.append(
                    {
                        "packet": truth,
                        "arrival": tx.meta["arrival"],
                        "dst": tx.meta["dst"],
                        "relay_time": self.sched.now,
                    }
                )
                self._data_succeeded(tx)
                if self._scheduled is None:
                    self._kick_relay()
            else:
                self._data_failed(tx)

    def _decode_anc_broadcast(
        self, receiver: int, tx: _Tx, composite, handled: Dict[int, bool]
    ) -> None:
        """An endpoint decodes the relayed collision through the pipeline."""
        handled[tx.tx_id] = True
        truth_entry = tx.meta["truths"].get(receiver)
        if truth_entry is None:
            return
        truth: Packet = truth_entry["packet"]
        result = self.nodes[receiver].receive(composite)
        decoded = result.packet.payload if result.packet is not None else None
        ber = self.decoder.payload_ber(decoded, truth.payload)
        self.report.bers.append(ber)
        if result.crc_ok or ber <= self.params.ber_acceptance:
            self._account_delivery(truth, truth_entry["arrival"])
        else:
            self.report.losses += 1

    def _account_cope_coded(
        self, receiver: int, tx: _Tx, parsed, handled: Dict[int, bool]
    ) -> None:
        """An endpoint XORs the coded broadcast with its own packet."""
        handled[tx.tx_id] = True
        entry = tx.meta["pair"].get(receiver)
        if entry is None:
            return
        truth: Packet = entry["packet"]
        other = tx.meta["pair"][self._other_endpoint(receiver)]
        side_payload = other["packet"].payload
        if parsed.packet is None or parsed.packet.payload.size != side_payload.size:
            ber = 0.5
        else:
            recovered = np.bitwise_xor(parsed.packet.payload, side_payload).astype(np.uint8)
            ber = float(bit_error_rate(truth.payload, recovered))
        self.report.bers.append(ber)
        if (parsed.payload_crc_ok and parsed.packet is not None) or ber <= self.params.ber_acceptance:
            self._account_delivery(truth, entry["arrival"])
        else:
            self.report.losses += 1

    # ------------------------------------------------------------------
    # Outcome accounting and genie MAC feedback
    # ------------------------------------------------------------------
    def _account_delivery(self, truth: Packet, arrival: float) -> None:
        """Record one end-to-end delivery (bits, delay)."""
        self.report.delivered += 1
        self.report.delivered_bits += truth.payload_length
        self.report.delays.append(self.sched.now - arrival)

    def _component_failed_at(
        self, receiver: int, tx: _Tx, handled: Dict[int, bool]
    ) -> None:
        """A component is unrecoverable at a receiver; account if relevant."""
        if tx.kind == "data" and (
            (tx.sender != RELAY and receiver == RELAY)
            or (tx.sender == RELAY and tx.meta.get("dst") == receiver)
        ):
            handled[tx.tx_id] = True
            self._data_failed(tx)
        elif tx.kind == "anc_uplink" and receiver == RELAY:
            handled[tx.tx_id] = True
            self.report.losses += 1
            self._anc_active = False
        elif tx.kind == "cope_coded" and receiver in tx.meta["pair"]:
            # Each endpoint only loses the packet addressed to *it*.
            handled[tx.tx_id] = True
            self.report.losses += 1
        elif tx.kind == "anc_broadcast" and receiver in tx.meta["truths"]:
            handled[tx.tx_id] = True
            self.report.losses += 1

    def _data_succeeded(self, tx: _Tx) -> None:
        """Genie ACK: the data frame reached its next hop."""
        origin = tx.meta.get("origin")
        if origin is None or self._scheduled is not None:
            return
        self.mac.on_success(self._csma[origin])
        self._hol[origin] = None

    def _data_failed(self, tx: _Tx) -> None:
        """Genie NACK: BEB-retry the data frame, or drop it when exhausted."""
        origin = tx.meta.get("origin")
        if origin is None or self._scheduled is not None:
            # Scheduled MAC has no retransmissions: a lost frame is a loss.
            self.report.losses += 1
            return
        state = self._csma[origin]
        self.mac.on_failure(state)
        if self.mac.exhausted(state):
            self.mac.on_success(state)
            self._hol[origin] = None
            self.report.retry_drops += 1
            return
        self._request_access(origin)
