"""Traffic sources: the arrival processes feeding per-node packet queues.

Three classic workload shapes, all parameterised by a *mean interarrival
time in samples* so the offered load is directly comparable across
models:

* :class:`PoissonArrivals` — memoryless exponential interarrivals, the
  UDP-flow workload of the paper's §8 testbed runs;
* :class:`CBRArrivals` — constant bit rate, one packet every
  ``mean_interarrival`` samples exactly (the RTP-style smooth source);
* :class:`BurstyOnOffArrivals` — an on/off source emitting geometric
  bursts of back-to-back packets separated by long idle gaps, with the
  gap length chosen so the *long-run* rate still matches
  ``mean_interarrival`` (so sweeping the load axis moves every model by
  the same amount, only the variance differs).

All draws come from the generator the caller passes in — by convention a
per-node stream from :class:`repro.sim.core.RngStreams` — so arrivals at
one node are independent of the event interleaving at every other node.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "ArrivalProcess",
    "BurstyOnOffArrivals",
    "CBRArrivals",
    "PoissonArrivals",
    "TRAFFIC_MODELS",
    "make_arrival_process",
]


class ArrivalProcess:
    """Base class: a stream of packet interarrival times.

    Parameters
    ----------
    mean_interarrival:
        Long-run average spacing between packets, in samples.
    """

    #: Registry name; subclasses override.
    model_name = "base"

    def __init__(self, mean_interarrival: float) -> None:
        """Validate and store the long-run mean interarrival time."""
        if mean_interarrival <= 0:
            raise ConfigurationError("mean_interarrival must be positive")
        self.mean_interarrival = float(mean_interarrival)

    def next_interarrival(self, rng: np.random.Generator) -> float:
        """Draw the time (samples) until the next packet arrival."""
        raise NotImplementedError

    @property
    def rate(self) -> float:
        """Long-run arrival rate in packets per sample."""
        return 1.0 / self.mean_interarrival


class PoissonArrivals(ArrivalProcess):
    """Memoryless (exponential-interarrival) packet arrivals."""

    model_name = "poisson"

    def next_interarrival(self, rng: np.random.Generator) -> float:
        """Exponential draw with the configured mean."""
        return float(rng.exponential(self.mean_interarrival))


class CBRArrivals(ArrivalProcess):
    """Constant-bit-rate arrivals: perfectly periodic packets."""

    model_name = "cbr"

    def next_interarrival(self, rng: np.random.Generator) -> float:
        """The constant spacing (the generator is unused but kept for the API)."""
        return self.mean_interarrival


class BurstyOnOffArrivals(ArrivalProcess):
    """On/off bursts: geometric trains of closely spaced packets.

    Parameters
    ----------
    mean_interarrival:
        Long-run mean spacing (same load as the other models).
    burst_length:
        Mean packets per burst (geometric; at least 1).
    peak_factor:
        How much denser than the long-run rate the in-burst spacing is;
        packets inside a burst are ``mean_interarrival / peak_factor``
        apart.  The idle gap after each burst absorbs the remainder so
        the long-run mean stays ``mean_interarrival``.
    """

    model_name = "bursty"

    def __init__(
        self,
        mean_interarrival: float,
        burst_length: float = 4.0,
        peak_factor: float = 4.0,
    ) -> None:
        """Validate burst shape and precompute the compensating idle gap."""
        super().__init__(mean_interarrival)
        if burst_length < 1.0:
            raise ConfigurationError("burst_length must be at least 1")
        if peak_factor <= 1.0:
            raise ConfigurationError("peak_factor must exceed 1")
        self.burst_length = float(burst_length)
        self.peak_factor = float(peak_factor)
        self._in_burst_gap = self.mean_interarrival / self.peak_factor
        # Per cycle (one burst of mean L packets): L * mean must elapse on
        # average, (L - 1) of it inside the burst -> the rest is the mean
        # of the exponential off period.
        self._mean_off = self.burst_length * self.mean_interarrival - (
            self.burst_length - 1.0
        ) * self._in_burst_gap
        self._remaining_in_burst = 0

    def next_interarrival(self, rng: np.random.Generator) -> float:
        """In-burst spacing while a burst lasts, else a fresh off period."""
        if self._remaining_in_burst > 0:
            self._remaining_in_burst -= 1
            return self._in_burst_gap
        # Start a new burst: geometric length (mean burst_length), the
        # first packet of which arrives after the idle gap.
        self._remaining_in_burst = int(rng.geometric(1.0 / self.burst_length)) - 1
        return float(rng.exponential(self._mean_off))


#: Registered traffic models, keyed by CLI/scenario name.
_MODEL_CLASSES: Dict[str, Type[ArrivalProcess]] = {
    cls.model_name: cls
    for cls in (PoissonArrivals, CBRArrivals, BurstyOnOffArrivals)
}

#: Names of the available traffic models, in registration order.
TRAFFIC_MODELS: Tuple[str, ...] = tuple(_MODEL_CLASSES)


def make_arrival_process(model: str, mean_interarrival: float, **kwargs) -> ArrivalProcess:
    """Instantiate a traffic model by registry name."""
    try:
        cls = _MODEL_CLASSES[model]
    except KeyError:
        raise ConfigurationError(
            f"unknown traffic model {model!r}; choose from {', '.join(TRAFFIC_MODELS)}"
        ) from None
    return cls(mean_interarrival, **kwargs)
