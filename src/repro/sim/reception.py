"""SINR-segment reception sessions and the capture/collision rules.

When the event core resolves a group of overlapping transmissions at one
receiver, this module decides *what the receiver can make of it* before
any waveform is touched:

* a :class:`ReceptionSession` tracks every component the receiver hears
  (power, start, end) and cuts the primary component's span into
  :class:`SinrSegment` pieces at each interferer boundary — the
  ReceptionSession/segment bookkeeping of the SPE-project exemplar;
* :func:`classify_reception` turns the segment SINRs into a
  :class:`ReceptionKind`: ``CLEAN`` (no interferer), ``CAPTURED`` (the
  strongest component stays above the capture threshold in every
  segment, the LoRa ``power_collision`` rule), ``ANC_COLLISION`` (a
  two-way collision the receiver can hand to the ANC pipeline because it
  knows one of the frames), or ``COLLIDED`` (nothing recoverable —
  amplify-and-forward territory, §7.5).

The actual demodulation is delegated to :class:`DecodeService`, which
runs the existing PHY: the scalar :class:`~repro.modulation.msk.MSKDemodulator`
or the batched :class:`~repro.modulation.batch.BatchMSKDemodulator`
(bit-identical by the PR 3 differential suite) followed by
:class:`~repro.framing.frame.Deframer`.  ANC collisions go through the
full :class:`~repro.anc.pipeline.ReceivePipeline` on the node instead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError
from repro.framing.frame import Deframer, DeframeResult
from repro.modulation.batch import BatchMSKDemodulator
from repro.modulation.msk import MSKDemodulator
from repro.signal.batch import SignalBatch
from repro.signal.samples import ComplexSignal
from repro.utils.bits import bit_error_rate

__all__ = [
    "DecodeService",
    "PHY_MODES",
    "ReceptionComponent",
    "ReceptionKind",
    "ReceptionSession",
    "SinrSegment",
    "classify_reception",
]

#: PHY execution modes the decode service supports.
PHY_MODES: Tuple[str, ...] = ("scalar", "batched")


class ReceptionKind(enum.Enum):
    """What the capture/collision rules concluded about a reception."""

    CLEAN = "clean"
    CAPTURED = "captured"
    ANC_COLLISION = "anc_collision"
    COLLIDED = "collided"


@dataclass(frozen=True)
class ReceptionComponent:
    """One transmission as heard at the receiver.

    Attributes
    ----------
    tx_id:
        Identifier of the transmission (the simulation's counter).
    power:
        Received power of the component (transmit power times the link's
        power gain).
    start, end:
        The component's span at the receiver, in absolute samples.
    """

    tx_id: int
    power: float
    start: float
    end: float

    def __post_init__(self) -> None:
        """Validate the component geometry."""
        if self.power < 0:
            raise ConfigurationError("component power must be non-negative")
        if self.end <= self.start:
            raise ConfigurationError("component must have positive duration")


@dataclass(frozen=True)
class SinrSegment:
    """A maximal span of one component with a constant interferer set."""

    start: float
    end: float
    interferer_count: int
    sinr_db: float


@dataclass
class ReceptionSession:
    """Interferer tracking for one receiver over one collision group.

    Parameters
    ----------
    noise_power:
        The receiver's thermal noise floor (linear power).
    """

    noise_power: float
    components: List[ReceptionComponent] = field(default_factory=list)

    def add(self, tx_id: int, power: float, start: float, end: float) -> None:
        """Register one heard transmission."""
        self.components.append(
            ReceptionComponent(tx_id=int(tx_id), power=float(power), start=float(start), end=float(end))
        )

    # ------------------------------------------------------------------
    def component(self, tx_id: int) -> ReceptionComponent:
        """Look up a component by transmission id."""
        for comp in self.components:
            if comp.tx_id == tx_id:
                return comp
        raise SimulationError(f"transmission {tx_id} not part of this session")

    def strongest(self) -> ReceptionComponent:
        """The highest-power component (ties broken by earliest tx_id)."""
        if not self.components:
            raise SimulationError("session has no components")
        return max(self.components, key=lambda c: (c.power, -c.tx_id))

    def segments_for(self, tx_id: int) -> List[SinrSegment]:
        """Cut one component's span at every interferer boundary.

        Each returned segment has a constant set of concurrent
        interferers, so its SINR is a single number — the SPE-project
        ``ReceptionSession`` bookkeeping.
        """
        primary = self.component(tx_id)
        others = [c for c in self.components if c.tx_id != tx_id]
        cuts = {primary.start, primary.end}
        for other in others:
            if other.start < primary.end and other.end > primary.start:
                cuts.add(min(max(other.start, primary.start), primary.end))
                cuts.add(min(max(other.end, primary.start), primary.end))
        edges = sorted(cuts)
        segments: List[SinrSegment] = []
        for left, right in zip(edges[:-1], edges[1:]):
            if right <= left:
                continue
            midpoint = 0.5 * (left + right)
            interference = sum(
                other.power for other in others if other.start < midpoint < other.end
            )
            count = sum(1 for other in others if other.start < midpoint < other.end)
            sinr = primary.power / max(interference + self.noise_power, 1e-30)
            segments.append(
                SinrSegment(
                    start=left,
                    end=right,
                    interferer_count=count,
                    sinr_db=float(10.0 * np.log10(max(sinr, 1e-30))),
                )
            )
        return segments

    def min_sinr_db(self, tx_id: int) -> float:
        """Worst-segment SINR of a component (the capture decision input)."""
        segments = self.segments_for(tx_id)
        return min(segment.sinr_db for segment in segments)


def classify_reception(
    session: ReceptionSession,
    capture_threshold_db: float,
    known_tx_ids: Sequence[int] = (),
) -> Tuple[ReceptionKind, Optional[int]]:
    """Apply the capture/collision rules to one session.

    Parameters
    ----------
    session:
        The receiver's component bookkeeping for the group.
    capture_threshold_db:
        Minimum worst-segment SINR at which the strongest component is
        decodable despite interference (the LoRa ``power_collision``
        margin; ISO-style thresholds sit around 6-10 dB).
    known_tx_ids:
        Transmissions whose frames the receiver already knows (its own
        earlier transmissions or overheard ones) — what makes a two-way
        collision ANC-decodable rather than lost.

    Returns
    -------
    (kind, primary_tx_id):
        The classification plus the component to decode: the single/
        strongest component for ``CLEAN``/``CAPTURED``, the *unknown*
        component for ``ANC_COLLISION``, ``None`` for ``COLLIDED``.
    """
    if not session.components:
        raise SimulationError("cannot classify an empty session")
    if len(session.components) == 1:
        return ReceptionKind.CLEAN, session.components[0].tx_id
    strongest = session.strongest()
    if session.min_sinr_db(strongest.tx_id) >= capture_threshold_db:
        return ReceptionKind.CAPTURED, strongest.tx_id
    if len(session.components) == 2:
        known = [c for c in session.components if c.tx_id in known_tx_ids]
        unknown = [c for c in session.components if c.tx_id not in known_tx_ids]
        if len(known) == 1 and len(unknown) == 1:
            return ReceptionKind.ANC_COLLISION, unknown[0].tx_id
    return ReceptionKind.COLLIDED, None


@dataclass(frozen=True)
class _Window:
    """One aligned decode request: a slice of a composite waveform."""

    composite: ComplexSignal
    start: int
    length: int


class DecodeService:
    """Aligned frame decoding through the scalar or batched PHY.

    The event core knows exactly where each frame starts inside the
    composite it built (the MAC scheduled the offsets), so clean and
    captured receptions are decoded from an aligned window — no pilot
    search — through either the scalar MSK demodulator or the batched
    one.  The two are bit-identical (PR 3's differential suite), so the
    ``phy`` knob is purely an execution choice, like the engine's
    ``batch_size``.

    Parameters
    ----------
    phy:
        ``"scalar"`` decodes window by window;``"batched"`` stacks every
        window of one resolution into a :class:`SignalBatch` and runs the
        batched demodulator once.
    deframer:
        Frame parser shared by every decode (defaults to the standard
        layout).
    """

    def __init__(self, phy: str = "scalar", deframer: Optional[Deframer] = None) -> None:
        """Validate the PHY mode and build the demodulators."""
        if phy not in PHY_MODES:
            raise ConfigurationError(
                f"unknown phy mode {phy!r}; choose from {', '.join(PHY_MODES)}"
            )
        self.phy = phy
        self.deframer = deframer if deframer is not None else Deframer()
        self._scalar = MSKDemodulator(samples_per_symbol=1)
        self._batched = BatchMSKDemodulator(samples_per_symbol=1)

    # ------------------------------------------------------------------
    def decode_window(
        self, composite: ComplexSignal, start: int, frame_samples: int
    ) -> DeframeResult:
        """Decode one aligned frame window out of a composite waveform."""
        return self.decode_windows([(composite, start, frame_samples)])[0]

    def decode_windows(
        self, windows: Sequence[Tuple[ComplexSignal, int, int]]
    ) -> List[DeframeResult]:
        """Decode several aligned windows, batching rows when possible.

        Each request is ``(composite, start_sample, frame_samples)``.
        Under the batched PHY, equal-length windows are stacked into one
        :class:`SignalBatch` and demodulated in a single kernel call;
        unequal lengths fall back to per-window rows (still through the
        batched demodulator, one row at a time).
        """
        slices: List[ComplexSignal] = []
        for composite, start, frame_samples in windows:
            if start < 0 or frame_samples <= 0:
                raise ConfigurationError("decode windows need start >= 0 and length > 0")
            window = composite.slice(int(start), int(start) + int(frame_samples))
            slices.append(window)
        if self.phy == "scalar":
            bit_rows = [self._scalar.demodulate(window) for window in slices]
        else:
            bit_rows = self._demodulate_batched(slices)
        return [self.deframer.parse(bits) for bits in bit_rows]

    def _demodulate_batched(self, slices: Sequence[ComplexSignal]) -> List[np.ndarray]:
        """Batched demodulation, grouping equal-length windows into one call."""
        groups: Dict[int, List[int]] = {}
        for index, window in enumerate(slices):
            groups.setdefault(len(window), []).append(index)
        rows: List[Optional[np.ndarray]] = [None] * len(slices)
        for _, indices in sorted(groups.items()):
            batch = SignalBatch.from_signals([slices[i] for i in indices])
            decoded = self._batched.demodulate(batch)
            for row, index in enumerate(indices):
                rows[index] = decoded[row]
        return [row for row in rows if row is not None]

    # ------------------------------------------------------------------
    @staticmethod
    def payload_ber(decoded: Optional[np.ndarray], truth: np.ndarray) -> float:
        """Payload BER against the ground truth; a missing decode is 0.5."""
        if decoded is None or decoded.size != truth.size:
            return 0.5
        return float(bit_error_rate(truth, decoded))
