"""MAC policies for the discrete-event traffic core.

Two pluggable medium-access policies drive :mod:`repro.sim.simulation`:

* :class:`CsmaBackoffMac` — carrier sense with binary exponential
  backoff.  A node with traffic waits DIFS plus a uniformly drawn number
  of contention slots, senses the channel, and transmits if idle.  On a
  loss (the genie feedback the simulation provides in place of ACK
  timers) the contention window doubles up to ``cw_max``; on success it
  resets to ``cw_min``.  Because Alice and Bob cannot hear each other in
  the canonical topology, carrier sense does *not* prevent their packets
  colliding at the relay — the hidden-terminal behaviour that makes the
  offered-load sweep interesting.
* :class:`ScheduledMac` — the existing planner's world view as a policy:
  a fixed TDMA slot grid whose slots are owned round-robin by the
  configured ranks, with no contention and no backoff.  This is the
  "optimal MAC" the paper assumes in §11.1, recast so scheduled phases
  and CSMA contention are two instances of one interface.

Both policies are deliberately state-light: the per-node mutable state is
a tiny dataclass owned by the simulation, so policies themselves stay
shareable and picklable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["CsmaBackoffMac", "CsmaState", "MAC_POLICIES", "ScheduledMac"]

#: The registered MAC policy names, in preference order.
MAC_POLICIES: Tuple[str, ...] = ("csma", "scheduled")


@dataclass
class CsmaState:
    """Per-node mutable CSMA state: contention window and retry count."""

    cw: int
    retries: int = 0


class CsmaBackoffMac:
    """Carrier sense + binary exponential backoff (802.11-style DCF core).

    Parameters
    ----------
    slot_samples:
        Duration of one contention slot, in samples.
    difs_samples:
        Fixed idle period sensed before the backoff countdown starts.
    cw_min, cw_max:
        Initial and maximum contention window (in slots); the window
        doubles on every loss and resets on success.
    max_retries:
        Transmission attempts per packet before it is dropped.
    """

    policy_name = "csma"

    def __init__(
        self,
        slot_samples: int = 32,
        difs_samples: int = 64,
        cw_min: int = 4,
        cw_max: int = 64,
        max_retries: int = 4,
    ) -> None:
        """Validate and store the contention parameters."""
        if slot_samples <= 0 or difs_samples < 0:
            raise ConfigurationError("slot/difs durations must be positive")
        if not 1 <= cw_min <= cw_max:
            raise ConfigurationError("need 1 <= cw_min <= cw_max")
        if max_retries < 1:
            raise ConfigurationError("max_retries must be at least 1")
        self.slot_samples = int(slot_samples)
        self.difs_samples = int(difs_samples)
        self.cw_min = int(cw_min)
        self.cw_max = int(cw_max)
        self.max_retries = int(max_retries)

    def fresh_state(self) -> CsmaState:
        """Initial per-node contention state."""
        return CsmaState(cw=self.cw_min)

    def access_delay(self, state: CsmaState, rng: np.random.Generator) -> float:
        """DIFS plus a backoff drawn uniformly from the current window."""
        slots = int(rng.integers(0, state.cw + 1))
        return float(self.difs_samples + slots * self.slot_samples)

    def on_failure(self, state: CsmaState) -> None:
        """Double the contention window (bounded) and count the retry."""
        state.cw = min(state.cw * 2, self.cw_max)
        state.retries += 1

    def exhausted(self, state: CsmaState) -> bool:
        """True when the packet has used up its transmission attempts."""
        return state.retries >= self.max_retries

    def on_success(self, state: CsmaState) -> None:
        """Reset the window and retry count after a delivered frame."""
        state.cw = self.cw_min
        state.retries = 0


class ScheduledMac:
    """A collision-free TDMA slot grid (the planner's phases as a policy).

    Parameters
    ----------
    slot_samples:
        Duration of one scheduled slot (sized by the simulation to fit a
        frame plus the worst-case ANC overlap offset and a guard).
    n_ranks:
        Number of round-robin slot owners; rank ``r`` owns slots
        ``r, r + n_ranks, r + 2 n_ranks, ...``.
    """

    policy_name = "scheduled"

    def __init__(self, slot_samples: int, n_ranks: int) -> None:
        """Validate and store the slot grid geometry."""
        if slot_samples <= 0:
            raise ConfigurationError("slot_samples must be positive")
        if n_ranks <= 0:
            raise ConfigurationError("n_ranks must be positive")
        self.slot_samples = int(slot_samples)
        self.n_ranks = int(n_ranks)

    def slot_owner(self, slot_index: int) -> int:
        """The rank owning a slot."""
        return int(slot_index) % self.n_ranks

    def slot_start(self, slot_index: int) -> float:
        """Absolute start time of a slot."""
        return float(int(slot_index) * self.slot_samples)

    def next_owned_slot(self, now: float, rank: int) -> float:
        """Start time of the first slot at or after ``now`` owned by ``rank``.

        ``rank`` must be one of the grid's ranks; the returned time is
        always ``>= now``.
        """
        if not 0 <= rank < self.n_ranks:
            raise ConfigurationError(f"rank {rank} outside the slot grid")
        current = int(np.ceil(max(now, 0.0) / self.slot_samples))
        offset = (rank - current) % self.n_ranks
        return self.slot_start(current + offset)
