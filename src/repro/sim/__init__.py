"""Discrete-event traffic simulation core (§8-style offered-load runs).

This package turns the repository's per-exchange protocol models into a
time-domain system: seeded event scheduling (:mod:`repro.sim.core`),
traffic sources (:mod:`repro.sim.traffic`), bounded FIFO queues
(:mod:`repro.sim.queueing`), pluggable MAC policies
(:mod:`repro.sim.mac`), SINR-segment reception with capture rules
(:mod:`repro.sim.reception`) and the Alice–relay–Bob simulation that
ties them together (:mod:`repro.sim.simulation`).
"""

from repro.sim.core import Event, EventScheduler, RngStreams
from repro.sim.mac import MAC_POLICIES, CsmaBackoffMac, CsmaState, ScheduledMac
from repro.sim.queueing import PacketQueue, QueuedPacket
from repro.sim.reception import (
    DecodeService,
    PHY_MODES,
    ReceptionKind,
    ReceptionSession,
    classify_reception,
)
from repro.sim.simulation import SCHEMES, SimParams, SimReport, TrafficSimulation
from repro.sim.traffic import (
    ArrivalProcess,
    BurstyOnOffArrivals,
    CBRArrivals,
    PoissonArrivals,
    TRAFFIC_MODELS,
    make_arrival_process,
)

__all__ = [
    "ArrivalProcess",
    "BurstyOnOffArrivals",
    "CBRArrivals",
    "CsmaBackoffMac",
    "CsmaState",
    "DecodeService",
    "Event",
    "EventScheduler",
    "MAC_POLICIES",
    "PHY_MODES",
    "PacketQueue",
    "PoissonArrivals",
    "QueuedPacket",
    "ReceptionKind",
    "ReceptionSession",
    "RngStreams",
    "SCHEMES",
    "ScheduledMac",
    "SimParams",
    "SimReport",
    "TRAFFIC_MODELS",
    "TrafficSimulation",
    "classify_reception",
    "make_arrival_process",
]
