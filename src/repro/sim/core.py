"""Deterministic discrete-event core of the traffic simulator.

The :class:`EventScheduler` is a classic event-heap engine with two
properties the rest of :mod:`repro.sim` leans on hard:

* **Stable tie-breaking.**  Heap keys are ``(time, priority, sequence)``
  tuples, where the sequence number is a monotonically increasing
  insertion counter.  Two events scheduled for the same instant therefore
  always execute in the order they were scheduled (priority first), so a
  run is a pure function of its seeds — never of heap internals or dict
  iteration order.
* **An auditable trace.**  Every executed event is appended to
  :attr:`EventScheduler.trace` and folded into a SHA-256 digest
  (:meth:`EventScheduler.trace_digest`).  Determinism tests compare the
  digest across serial and parallel engine executions; if two runs of the
  same seed ever diverge, the first differing event names the culprit.

Randomness is organised as *named per-node streams*
(:class:`RngStreams`): every ``(node, purpose)`` pair gets its own
:class:`numpy.random.Generator` spawned from one
:class:`numpy.random.SeedSequence`, so adding a draw to one stream never
perturbs any other — the same discipline
:meth:`repro.experiments.config.ExperimentConfig.run_rng` applies between
engine trials, pushed down into the event loop.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError

__all__ = ["Event", "EventScheduler", "RngStreams"]


@dataclass(order=False)
class Event:
    """One scheduled callback, identified by its ``(time, priority, seq)`` key.

    Attributes
    ----------
    time:
        Absolute simulation time (samples) at which the event fires.
    priority:
        Secondary ordering key; lower values fire first at equal times.
    seq:
        Insertion counter — the final tie-breaker, making execution order
        reproducible for events equal in both time and priority.
    kind:
        Free-form label recorded in the execution trace.
    callback:
        Zero-argument callable run when the event fires.
    cancelled:
        Lazily-cancelled events stay in the heap but are skipped (and are
        *not* recorded in the trace).
    """

    time: float
    priority: int
    seq: int
    kind: str
    callback: Callable[[], None] = field(repr=False)
    cancelled: bool = False


class EventScheduler:
    """A monotonic event heap with stable tie-breaking and a trace digest."""

    def __init__(self) -> None:
        """Create an empty scheduler positioned at time zero."""
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._now = 0.0
        #: Executed events as ``(time, priority, seq, kind)`` tuples, in
        #: execution order.  Cancelled events never appear.
        self.trace: List[Tuple[float, int, int, str]] = []

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (the time of the last executed event)."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-executed, not-cancelled events in the heap."""
        return sum(1 for *_, event in self._heap if not event.cancelled)

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        kind: str = "event",
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` samples from now.

        Returns the :class:`Event`, whose :attr:`~Event.cancelled` flag
        (or :meth:`cancel`) removes it lazily.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(
            time=self._now + float(delay),
            priority=int(priority),
            seq=self._seq,
            kind=str(kind),
            callback=callback,
        )
        self._seq += 1
        heapq.heappush(self._heap, (event.time, event.priority, event.seq, event))
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        kind: str = "event",
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        return self.schedule(float(time) - self._now, callback, kind=kind, priority=priority)

    @staticmethod
    def cancel(event: Event) -> None:
        """Cancel a scheduled event (lazy: it is skipped when popped)."""
        event.cancelled = True

    # ------------------------------------------------------------------
    def run_until(self, t_end: float) -> int:
        """Execute events in key order until the heap drains or ``t_end``.

        Events with ``time > t_end`` stay in the heap; the clock advances
        to the last *executed* event.  Returns the number of events run.
        """
        executed = 0
        while self._heap:
            time, _, _, event = self._heap[0]
            if time > t_end:
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self.trace.append((event.time, event.priority, event.seq, event.kind))
            event.callback()
            executed += 1
        return executed

    def trace_digest(self) -> str:
        """SHA-256 over the executed-event trace (hex).

        Two runs of the same seeded simulation must produce identical
        digests wherever they execute; the digest is what the
        determinism tests compare across serial and parallel engines.
        """
        hasher = hashlib.sha256()
        for time, priority, seq, kind in self.trace:
            hasher.update(f"{time!r}|{priority}|{seq}|{kind}\n".encode())
        return hasher.hexdigest()


class RngStreams:
    """Named, independent random streams derived from one seed sequence.

    Every ``key`` (any tuple of ints/strings) maps to its own
    :class:`numpy.random.Generator`; generators are cached so repeated
    lookups return the same stream object.  String key parts are folded
    to integers via SHA-256, keeping the whole derivation stable across
    processes and Python hash randomisation.
    """

    def __init__(self, entropy: Sequence[int]) -> None:
        """Derive streams from the given integer entropy material."""
        if not entropy:
            raise ConfigurationError("RngStreams needs at least one entropy integer")
        self._entropy: Tuple[int, ...] = tuple(int(value) for value in entropy)
        self._cache: Dict[Tuple, np.random.Generator] = {}

    @staticmethod
    def _key_material(part) -> int:
        """Fold one key part to a stable non-negative integer."""
        if isinstance(part, (int, np.integer)):
            return int(part) & 0xFFFFFFFF
        digest = hashlib.sha256(str(part).encode()).digest()
        return int.from_bytes(digest[:4], "big")

    def stream(self, *key) -> np.random.Generator:
        """The (cached) generator for one named stream."""
        cache_key = tuple(key)
        generator = self._cache.get(cache_key)
        if generator is None:
            material = list(self._entropy) + [self._key_material(part) for part in key]
            generator = np.random.default_rng(np.random.SeedSequence(material))
            self._cache[cache_key] = generator
        return generator

    def node_stream(self, node_id: int, purpose: str) -> np.random.Generator:
        """Convenience accessor for a per-node, per-purpose stream."""
        return self.stream(int(node_id), purpose)
