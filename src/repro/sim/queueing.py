"""Per-node FIFO packet queues with capacity limits and drop accounting.

Every traffic-simulation node owns one :class:`PacketQueue`.  Arrivals
:meth:`~PacketQueue.offer` packets; a full queue rejects the packet and
counts the drop (tail drop, the paper's testbed default).  The MAC pops
the head of line when the node wins channel access; the queue records
each packet's waiting time — from arrival to service start — which is
what the ``queueing_delay`` scenario aggregates into mean/p95 statistics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.exceptions import ConfigurationError
from repro.framing.packet import Packet

__all__ = ["PacketQueue", "QueuedPacket"]


@dataclass(frozen=True)
class QueuedPacket:
    """One queue entry: the packet plus its arrival timestamp (samples)."""

    packet: Packet
    arrival_time: float


class PacketQueue:
    """A bounded FIFO of :class:`QueuedPacket` entries.

    Parameters
    ----------
    capacity:
        Maximum number of queued packets; arrivals beyond it are dropped
        (and counted in :attr:`drops`).
    """

    def __init__(self, capacity: int = 8) -> None:
        """Create an empty queue with the given capacity."""
        if capacity <= 0:
            raise ConfigurationError("queue capacity must be positive")
        self.capacity = int(capacity)
        self._entries: Deque[QueuedPacket] = deque()
        #: Packets rejected because the queue was full.
        self.drops = 0
        #: Packets ever accepted (offered minus drops).
        self.accepted = 0
        #: Waiting time (samples) of every popped packet, in pop order.
        self.waiting_times: List[float] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of packets currently queued."""
        return len(self._entries)

    @property
    def is_empty(self) -> bool:
        """True when no packet is waiting."""
        return not self._entries

    @property
    def is_full(self) -> bool:
        """True when another offer would be dropped."""
        return len(self._entries) >= self.capacity

    # ------------------------------------------------------------------
    def offer(self, packet: Packet, now: float) -> bool:
        """Enqueue a packet arriving at time ``now``; False means dropped."""
        if self.is_full:
            self.drops += 1
            return False
        self._entries.append(QueuedPacket(packet=packet, arrival_time=float(now)))
        self.accepted += 1
        return True

    def peek(self) -> Optional[QueuedPacket]:
        """The head-of-line entry without removing it (None when empty)."""
        return self._entries[0] if self._entries else None

    def pop(self, now: float) -> QueuedPacket:
        """Remove and return the head of line, recording its waiting time."""
        if not self._entries:
            raise ConfigurationError("cannot pop from an empty queue")
        entry = self._entries.popleft()
        self.waiting_times.append(float(now) - entry.arrival_time)
        return entry
