"""Pilot sequences and pilot search.

Section 7.2: every frame starts with a known 64-bit pseudo-random pilot
and ends with a mirrored copy of it.  The pilot serves two purposes:

* it lets the receiver find where its *known* signal starts within the
  received waveform (alignment), and
* the interference-free pilot at the start (or end, for the second packet)
  of a partially-overlapped collision is decodable with plain MSK
  demodulation, which anchors the whole ANC decoding procedure.

``find_pilot`` locates the pilot within a decoded bit stream, tolerating a
configurable number of bit errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.constants import PILOT_LENGTH_BITS, PILOT_SEED
from repro.exceptions import ConfigurationError
from repro.utils.bits import as_bit_array
from repro.utils.pn import pn_bits


@dataclass(frozen=True)
class PilotSequence:
    """The protocol-wide known pilot bit pattern.

    All nodes construct the pilot from the same seed, so any receiver can
    regenerate it locally; nothing about the pilot is packet-specific.
    """

    length: int = PILOT_LENGTH_BITS
    seed: int = PILOT_SEED

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ConfigurationError("pilot length must be positive")

    @property
    def bits(self) -> np.ndarray:
        """The pilot bit pattern (most-significant generated bit first)."""
        return pn_bits(self.length, seed=self.seed)

    @property
    def mirrored_bits(self) -> np.ndarray:
        """The bit-reversed pilot attached to the end of each frame."""
        return self.bits[::-1].copy()

    def matches(self, candidate, max_errors: int = 0) -> bool:
        """Does ``candidate`` equal the pilot up to ``max_errors`` bit flips?"""
        arr = as_bit_array(candidate)
        if arr.size != self.length:
            return False
        return int(np.count_nonzero(arr != self.bits)) <= max_errors


def find_all_pilots(
    decoded_bits,
    pilot: PilotSequence,
    max_errors: int = 4,
    search_limit: Optional[int] = None,
) -> list:
    """Find every candidate pilot position in a decoded bit stream.

    Returns the start indices of all windows within ``max_errors`` of the
    pilot, best match first (ties broken by earliest position), with
    overlapping matches suppressed — two true pilots are always at least a
    pilot-length apart.  A receiver snooping on a collision can see two
    pilots in its head region (one per colliding frame); trying each
    candidate and keeping the frame that validates is how the overhearing
    path locks onto the decodable one.
    """
    bits = as_bit_array(decoded_bits)
    target = pilot.bits
    n = bits.size
    if n < pilot.length:
        return []
    last_start = n - pilot.length
    if search_limit is not None:
        last_start = min(last_start, max(int(search_limit), 0))
    scored = []
    for start in range(last_start + 1):
        window = bits[start : start + pilot.length]
        errors = int(np.count_nonzero(window != target))
        if errors <= max_errors:
            scored.append((errors, start))
    scored.sort()
    selected = []
    for _, start in scored:
        if all(abs(start - chosen) >= pilot.length for chosen in selected):
            selected.append(start)
    return selected


def find_pilot(
    decoded_bits,
    pilot: PilotSequence,
    max_errors: int = 4,
    search_limit: Optional[int] = None,
) -> Optional[int]:
    """Locate the pilot within a decoded bit stream.

    Parameters
    ----------
    decoded_bits:
        Bits obtained by standard MSK demodulation of the (start of the)
        received signal.
    pilot:
        The protocol pilot to search for.
    max_errors:
        Maximum Hamming distance at which a window still counts as the
        pilot; a small tolerance makes the search robust to the occasional
        demodulation error in the interference-free region.
    search_limit:
        Only consider candidate start positions below this index (the
        paper's receiver only needs to search the interference-free head
        of the signal).

    Returns
    -------
    int or None
        Index of the first bit of the pilot within ``decoded_bits``, or
        ``None`` if no window matches.
    """
    bits = as_bit_array(decoded_bits)
    target = pilot.bits
    n = bits.size
    if n < pilot.length:
        return None
    last_start = n - pilot.length
    if search_limit is not None:
        last_start = min(last_start, max(int(search_limit), 0))
    best_index = None
    best_errors = max_errors + 1
    for start in range(last_start + 1):
        window = bits[start : start + pilot.length]
        errors = int(np.count_nonzero(window != target))
        if errors < best_errors:
            best_errors = errors
            best_index = start
            if errors == 0:
                break
    if best_errors <= max_errors:
        return best_index
    return None
