"""Frame header: SrcID, DstID, SeqNo protected by CRC-16.

Section 7.3: "we add a header after the pilot sequence that tells Alice the
source, destination and the sequence number of the packet."  The CRC is our
addition — decoded headers steer routing decisions (decode vs. amplify vs.
drop, §7.5), so a node must be able to tell a corrupted header from a valid
one before acting on it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coding.crc import CRC16
from repro.constants import HEADER_DST_BITS, HEADER_SEQ_BITS, HEADER_SRC_BITS
from repro.exceptions import HeaderError
from repro.utils.bits import as_bit_array, bits_from_int, bits_to_int


@dataclass(frozen=True)
class Header:
    """Addressing header carried at both ends of every frame."""

    source: int
    destination: int
    sequence: int

    #: Total encoded length including the CRC-16.
    ENCODED_LENGTH: int = HEADER_SRC_BITS + HEADER_DST_BITS + HEADER_SEQ_BITS + 16

    def __post_init__(self) -> None:
        if not 0 <= self.source < (1 << HEADER_SRC_BITS):
            raise HeaderError(f"source id {self.source} does not fit in {HEADER_SRC_BITS} bits")
        if not 0 <= self.destination < (1 << HEADER_DST_BITS):
            raise HeaderError(
                f"destination id {self.destination} does not fit in {HEADER_DST_BITS} bits"
            )
        if not 0 <= self.sequence < (1 << HEADER_SEQ_BITS):
            raise HeaderError(f"sequence {self.sequence} does not fit in {HEADER_SEQ_BITS} bits")

    def to_bits(self) -> np.ndarray:
        """Encode the header fields plus CRC-16 as a bit array."""
        fields = np.concatenate(
            [
                bits_from_int(self.source, HEADER_SRC_BITS),
                bits_from_int(self.destination, HEADER_DST_BITS),
                bits_from_int(self.sequence, HEADER_SEQ_BITS),
            ]
        )
        return CRC16.append(fields)

    @classmethod
    def from_bits(cls, bits) -> "Header":
        """Decode and CRC-validate a header from its encoded bits.

        Raises
        ------
        HeaderError
            If the bit array has the wrong length or the CRC check fails.
        """
        arr = as_bit_array(bits)
        if arr.size != cls.ENCODED_LENGTH:
            raise HeaderError(
                f"header must be {cls.ENCODED_LENGTH} bits, got {arr.size}"
            )
        if not CRC16.verify(arr):
            raise HeaderError("header CRC check failed")
        fields = arr[:-16]
        src = bits_to_int(fields[:HEADER_SRC_BITS])
        dst = bits_to_int(fields[HEADER_SRC_BITS : HEADER_SRC_BITS + HEADER_DST_BITS])
        seq = bits_to_int(fields[HEADER_SRC_BITS + HEADER_DST_BITS :])
        return cls(source=src, destination=dst, sequence=seq)

    @classmethod
    def try_from_bits(cls, bits):
        """Like :meth:`from_bits` but returns ``None`` instead of raising."""
        try:
            return cls.from_bits(bits)
        except HeaderError:
            return None

    @property
    def identity(self) -> tuple:
        """The (source, destination, sequence) triple this header names."""
        return (self.source, self.destination, self.sequence)
