"""Frame layout, framer and deframer.

The over-the-air bit layout of a frame is::

    [ pilot | header | payload_crc (scrambled) | header_rev | pilot_rev ]

* ``pilot`` is the protocol-wide 64-bit PN sequence (§7.2).
* ``header`` encodes (SrcID, DstID, SeqNo) + CRC-16 (§7.3).
* ``payload_crc`` is the packet payload with a CRC-16 appended, whitened
  by the scrambler so the "random bits" assumption of the amplitude
  estimator holds (§6.2).
* ``header_rev`` / ``pilot_rev`` are bit-reversed copies so that reading
  the frame backwards (Bob's direction, §7.4) produces the pilot and the
  header in their normal order.

The :class:`Framer` builds frames from packets; the :class:`Deframer`
parses demodulated bits back into packets, in either direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.coding.crc import CRC16, check_and_strip_crc
from repro.exceptions import FramingError, HeaderError
from repro.framing.header import Header
from repro.framing.packet import Packet
from repro.framing.pilot import PilotSequence
from repro.scrambler.whitening import Scrambler
from repro.utils.bits import as_bit_array


@dataclass(frozen=True)
class FrameLayout:
    """Describes where each field sits within a frame of a given payload size."""

    pilot_length: int
    header_length: int
    payload_length: int

    @property
    def coded_payload_length(self) -> int:
        """Payload plus its CRC-16."""
        return self.payload_length + 16

    @property
    def total_length(self) -> int:
        """Total frame length in bits."""
        return 2 * self.pilot_length + 2 * self.header_length + self.coded_payload_length

    @property
    def pilot_start(self) -> int:
        return 0

    @property
    def header_start(self) -> int:
        return self.pilot_length

    @property
    def payload_start(self) -> int:
        return self.pilot_length + self.header_length

    @property
    def trailing_header_start(self) -> int:
        return self.payload_start + self.coded_payload_length

    @property
    def trailing_pilot_start(self) -> int:
        return self.trailing_header_start + self.header_length


@dataclass(frozen=True)
class Frame:
    """A fully-built frame: the owning packet plus its over-the-air bits."""

    packet: Packet
    bits: np.ndarray
    layout: FrameLayout

    @property
    def header(self) -> Header:
        """The header that was embedded in this frame."""
        return Header(
            source=self.packet.source,
            destination=self.packet.destination,
            sequence=self.packet.sequence,
        )

    @property
    def length(self) -> int:
        return int(self.bits.size)


class Framer:
    """Builds frames from packets (transmit side of Fig. 8)."""

    def __init__(
        self,
        pilot: Optional[PilotSequence] = None,
        scrambler: Optional[Scrambler] = None,
    ) -> None:
        self.pilot = pilot if pilot is not None else PilotSequence()
        self.scrambler = scrambler if scrambler is not None else Scrambler()

    def layout_for(self, payload_length: int) -> FrameLayout:
        """The frame layout for a packet of the given payload length."""
        if payload_length < 0:
            raise FramingError("payload length must be non-negative")
        return FrameLayout(
            pilot_length=self.pilot.length,
            header_length=Header.ENCODED_LENGTH,
            payload_length=payload_length,
        )

    def frame_length(self, payload_length: int) -> int:
        """Total frame length in bits for a payload of the given size."""
        return self.layout_for(payload_length).total_length

    def build(self, packet: Packet) -> Frame:
        """Assemble the over-the-air bit sequence for a packet."""
        header_bits = Header(
            source=packet.source,
            destination=packet.destination,
            sequence=packet.sequence,
        ).to_bits()
        payload_with_crc = CRC16.append(packet.payload)
        scrambled_payload = self.scrambler.scramble(payload_with_crc)
        pilot_bits = self.pilot.bits
        bits = np.concatenate(
            [
                pilot_bits,
                header_bits,
                scrambled_payload,
                header_bits[::-1],
                pilot_bits[::-1],
            ]
        ).astype(np.uint8)
        return Frame(packet=packet, bits=bits, layout=self.layout_for(packet.payload_length))


@dataclass(frozen=True)
class DeframeResult:
    """Outcome of parsing demodulated bits back into a packet."""

    packet: Optional[Packet]
    header: Optional[Header]
    payload_crc_ok: bool

    @property
    def delivered(self) -> bool:
        """True when both the header and the payload CRC were valid."""
        return self.packet is not None and self.payload_crc_ok


class Deframer:
    """Parses demodulated frame bits back into packets (receive side of Fig. 8)."""

    def __init__(
        self,
        pilot: Optional[PilotSequence] = None,
        scrambler: Optional[Scrambler] = None,
    ) -> None:
        self.pilot = pilot if pilot is not None else PilotSequence()
        self.scrambler = scrambler if scrambler is not None else Scrambler()

    def _layout(self, total_bits: int) -> FrameLayout:
        payload_length = (
            total_bits - 2 * self.pilot.length - 2 * Header.ENCODED_LENGTH - 16
        )
        if payload_length < 0:
            raise FramingError(
                f"bit stream of length {total_bits} is too short to be a frame"
            )
        return FrameLayout(
            pilot_length=self.pilot.length,
            header_length=Header.ENCODED_LENGTH,
            payload_length=payload_length,
        )

    def parse_header(self, bits, from_end: bool = False) -> Header:
        """Extract and validate the header from the start (or end) of a frame.

        Parameters
        ----------
        bits:
            The demodulated frame bits (full frame, forward bit order).
        from_end:
            When ``True`` the *trailing* header copy is parsed instead of
            the leading one (what a backward-decoding receiver sees first).
        """
        arr = as_bit_array(bits)
        layout = self._layout(arr.size)
        if from_end:
            segment = arr[layout.trailing_header_start : layout.trailing_pilot_start]
            segment = segment[::-1]
        else:
            segment = arr[layout.header_start : layout.payload_start]
        return Header.from_bits(segment)

    def parse(self, bits) -> DeframeResult:
        """Parse a full forward-ordered frame bit stream into a packet."""
        arr = as_bit_array(bits)
        try:
            layout = self._layout(arr.size)
        except FramingError:
            return DeframeResult(packet=None, header=None, payload_crc_ok=False)
        try:
            header = self.parse_header(arr)
        except HeaderError:
            return DeframeResult(packet=None, header=None, payload_crc_ok=False)
        scrambled = arr[layout.payload_start : layout.trailing_header_start]
        payload_with_crc = self.scrambler.descramble(scrambled)
        payload, crc_ok = check_and_strip_crc(payload_with_crc)
        packet = Packet(
            source=header.source,
            destination=header.destination,
            sequence=header.sequence,
            payload=payload,
        )
        return DeframeResult(packet=packet, header=header, payload_crc_ok=crc_ok)

    def parse_backward(self, reversed_bits) -> DeframeResult:
        """Parse a frame whose bits were decoded back-to-front (§7.4).

        ``reversed_bits`` is what a backward-decoding receiver produces:
        the frame's bit sequence in reverse order.  Because the trailing
        pilot and header are bit-reversed copies, simply reversing the
        stream recovers the forward frame and the normal parser applies.
        """
        arr = as_bit_array(reversed_bits)
        return self.parse(arr[::-1])

    def extract_payload_region(self, bits) -> Tuple[np.ndarray, FrameLayout]:
        """Return the scrambled payload+CRC region and the inferred layout.

        Used by the evaluation harness to compute raw (pre-FEC) bit error
        rates over exactly the payload bits, matching the paper's BER
        metric (§11.2).
        """
        arr = as_bit_array(bits)
        layout = self._layout(arr.size)
        return arr[layout.payload_start : layout.trailing_header_start], layout
