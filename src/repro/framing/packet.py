"""Network-layer packet representation.

A :class:`Packet` is what the layers above the PHY exchange: a payload bit
array plus the addressing fields (source, destination, sequence number)
that end up in the frame header.  Packets are immutable and hashable on
their identity triple, which is how the sent-packet buffer and the COPE
XOR bookkeeping refer to them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.bits import as_bit_array, random_bits


@dataclass(frozen=True)
class Packet:
    """An immutable network-layer packet.

    Parameters
    ----------
    source:
        Numeric node identifier of the originator.
    destination:
        Numeric node identifier of the final destination.
    sequence:
        Per-source sequence number.
    payload:
        Payload bits (canonical uint8 bit array).
    """

    source: int
    destination: int
    sequence: int
    payload: np.ndarray = field(compare=False)

    def __init__(self, source: int, destination: int, sequence: int, payload) -> None:
        if source < 0 or destination < 0 or sequence < 0:
            raise ConfigurationError("packet identifiers must be non-negative")
        bits = as_bit_array(payload)
        bits = bits.copy()
        bits.setflags(write=False)
        object.__setattr__(self, "source", int(source))
        object.__setattr__(self, "destination", int(destination))
        object.__setattr__(self, "sequence", int(sequence))
        object.__setattr__(self, "payload", bits)

    @classmethod
    def random(
        cls,
        source: int,
        destination: int,
        sequence: int,
        payload_bits: int,
        rng: Optional[np.random.Generator] = None,
    ) -> "Packet":
        """Create a packet with a uniformly random payload (workload generator)."""
        return cls(source, destination, sequence, random_bits(payload_bits, rng))

    @property
    def identity(self) -> tuple:
        """The (source, destination, sequence) triple identifying this packet."""
        return (self.source, self.destination, self.sequence)

    @property
    def payload_length(self) -> int:
        """Number of payload bits."""
        return int(self.payload.size)

    def payload_equals(self, other: "Packet") -> bool:
        """True if the payload bits match exactly (identity fields ignored)."""
        return self.payload.size == other.payload.size and bool(
            np.array_equal(self.payload, other.payload)
        )

    def xor_payload(self, other: "Packet") -> np.ndarray:
        """Bitwise XOR of two equal-length payloads (used by the COPE baseline)."""
        if self.payload.size != other.payload.size:
            raise ConfigurationError("payloads must have equal length to XOR")
        return np.bitwise_xor(self.payload, other.payload).astype(np.uint8)

    def __hash__(self) -> int:
        return hash(self.identity)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(src={self.source}, dst={self.destination}, seq={self.sequence}, "
            f"len={self.payload_length})"
        )
