"""Sent-packet buffer.

Section 7.3: "Alice keeps copies of the sent packets in a Sent Packet
Buffer.  When she receives a signal that contains interference, she has to
figure out which packet from the buffer she should use to decode the
interfered signal."  The same structure also stores *overheard* frames in
the "X" topology, where the known signal comes from snooping rather than
from having transmitted it (§11.5).

The buffer is bounded: old entries are evicted FIFO once the capacity is
reached, mirroring the finite memory of a real forwarding node.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.framing.frame import Frame
from repro.framing.header import Header


class SentPacketBuffer:
    """Bounded FIFO store of frames keyed by (source, destination, sequence)."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ConfigurationError("buffer capacity must be positive")
        self.capacity = int(capacity)
        self._frames: "OrderedDict[Tuple[int, int, int], Frame]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._frames)

    def store(self, frame: Frame) -> None:
        """Insert (or refresh) a frame, evicting the oldest entry if full."""
        key = frame.packet.identity
        if key in self._frames:
            # Refresh recency so repeatedly-used frames stay resident.
            self._frames.move_to_end(key)
            self._frames[key] = frame
            return
        self._frames[key] = frame
        while len(self._frames) > self.capacity:
            self._frames.popitem(last=False)

    def store_all(self, frames: Iterable[Frame]) -> None:
        """Insert several frames in order."""
        for frame in frames:
            self.store(frame)

    def lookup(self, source: int, destination: int, sequence: int) -> Optional[Frame]:
        """Fetch the frame with the given identity, or ``None``."""
        return self._frames.get((int(source), int(destination), int(sequence)))

    def lookup_header(self, header: Header) -> Optional[Frame]:
        """Fetch the frame matching a decoded header, or ``None``."""
        return self.lookup(header.source, header.destination, header.sequence)

    def contains_header(self, header: Header) -> bool:
        """Does the buffer hold the frame this header names?"""
        return header.identity in self._frames

    def discard(self, source: int, destination: int, sequence: int) -> bool:
        """Remove an entry; returns ``True`` if it was present."""
        return self._frames.pop((int(source), int(destination), int(sequence)), None) is not None

    def clear(self) -> None:
        """Drop every stored frame."""
        self._frames.clear()

    def identities(self) -> Tuple[Tuple[int, int, int], ...]:
        """The identity triples currently stored, oldest first."""
        return tuple(self._frames.keys())
