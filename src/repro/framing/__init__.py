"""Frame construction and parsing (Fig. 6 of the paper).

A frame carries a network-layer packet over the air.  Its bit layout is::

    [ pilot | header | payload (scrambled) | header' | pilot' ]

where the trailing ``header'`` and ``pilot'`` are bit-reversed copies of
the leading ones, so that a receiver reading the frame *backwards* (Bob's
decoding direction, §7.4) sees the pilot and header in their normal order.
The header carries SrcID, DstID and SeqNo protected by a CRC-16, which is
what lets a node that captured an interfered signal figure out which
packet from its sent-packet buffer to cancel (§7.3) and what a router uses
to decide between decoding, amplify-and-forward and dropping (§7.5).
"""

from repro.framing.header import Header
from repro.framing.packet import Packet
from repro.framing.pilot import PilotSequence, find_all_pilots, find_pilot
from repro.framing.frame import Frame, FrameLayout, Framer, Deframer
from repro.framing.buffer import SentPacketBuffer

__all__ = [
    "Deframer",
    "Frame",
    "FrameLayout",
    "Framer",
    "Header",
    "Packet",
    "PilotSequence",
    "SentPacketBuffer",
    "find_all_pilots",
    "find_pilot",
]
