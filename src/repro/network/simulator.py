"""Slot-driven simulation helper.

The protocols under comparison all run on an *optimal* MAC (§11.1): the
schedule of who transmits in which slot is known in advance and collision
slots only happen when the protocol wants them to.  The
:class:`SlotSimulator` therefore does not arbitrate access; it executes one
slot at a time — a set of concurrent transmissions — through the
:class:`~repro.network.medium.WirelessMedium`, hands every receiver its
waveform, and keeps the air-time ledger that the throughput metric is
computed from (time is measured in samples, so a collision slot that is
stretched by the partial-overlap offset automatically costs more air time,
which is exactly the effect §11.4 blames for the gap between the 2x theory
and the measured 1.7x).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.network.medium import Transmission, WirelessMedium
from repro.network.topology import Topology
from repro.signal.samples import ComplexSignal


@dataclass
class SlotResult:
    """What happened in one simulated slot."""

    index: int
    duration_samples: int
    observations: Dict[int, ComplexSignal]
    senders: List[int] = field(default_factory=list)

    def waveform_at(self, node_id: int) -> ComplexSignal:
        """The waveform a particular node heard during the slot."""
        if node_id not in self.observations:
            raise SimulationError(f"node {node_id} did not listen during slot {self.index}")
        return self.observations[node_id]


class SlotSimulator:
    """Executes transmission slots and accounts for the air time they use."""

    def __init__(
        self,
        topology: Topology,
        rng: Optional[np.random.Generator] = None,
        tail_padding: int = 32,
    ) -> None:
        """Create a simulator over ``topology``; ``rng``/``tail_padding``
        are forwarded to the underlying :class:`WirelessMedium`."""
        self.topology = topology
        self.medium = WirelessMedium(topology, rng=rng, tail_padding=tail_padding)
        self._slot_index = 0
        self._total_air_time = 0
        self.history: List[SlotResult] = []

    @property
    def slots_run(self) -> int:
        """Number of slots executed so far."""
        return self._slot_index

    @property
    def total_air_time(self) -> int:
        """Total air time (in samples) consumed by all executed slots."""
        return self._total_air_time

    def run_slot(
        self,
        transmissions: Sequence[Transmission],
        receivers: Optional[Iterable[int]] = None,
        record: bool = False,
    ) -> SlotResult:
        """Execute one slot and charge its duration to the air-time ledger."""
        observations = self.medium.deliver(transmissions, receivers=receivers)
        duration = self.medium.slot_duration(transmissions)
        result = SlotResult(
            index=self._slot_index,
            duration_samples=duration,
            observations=observations,
            senders=[t.sender for t in transmissions],
        )
        self._slot_index += 1
        self._total_air_time += duration
        if record:
            self.history.append(result)
        return result

    def reset(self) -> None:
        """Clear the air-time ledger and slot counter."""
        self._slot_index = 0
        self._total_air_time = 0
        self.history.clear()
