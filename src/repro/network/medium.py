"""The wireless medium: superposition of concurrent transmissions.

Given a set of transmissions that happen in the same slot, the medium
computes what every node in the topology hears: the sum of each in-range
transmitter's waveform after its directed link's distortion (attenuation,
phase, CFO, propagation delay), aligned on the transmitters' start
offsets, plus the receiver's own thermal noise.  A node that is itself
transmitting in the slot hears nothing (half-duplex radios, §8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.network.topology import Topology
from repro.signal.noise import complex_gaussian_noise
from repro.signal.ops import overlap_add
from repro.signal.samples import ComplexSignal


@dataclass(frozen=True)
class Transmission:
    """One node's transmission within a slot.

    Attributes
    ----------
    sender:
        Transmitting node id.
    waveform:
        The transmitted complex baseband waveform.
    start_offset:
        Sample offset of the transmission within the slot (the trigger
        protocol's random startup delay).
    """

    sender: int
    waveform: ComplexSignal
    start_offset: int = 0

    def __post_init__(self) -> None:
        """Validate the start offset."""
        if self.start_offset < 0:
            raise SimulationError("start offsets must be non-negative")

    @property
    def end_sample(self) -> int:
        """First sample index after the transmission ends within the slot."""
        return self.start_offset + len(self.waveform)


class WirelessMedium:
    """Computes per-receiver waveforms for each slot of the simulation."""

    def __init__(
        self,
        topology: Topology,
        rng: Optional[np.random.Generator] = None,
        tail_padding: int = 32,
    ) -> None:
        """Create a medium over ``topology``.

        ``rng`` drives every receiver's thermal noise; ``tail_padding``
        extends each slot by a few silent samples so channel delay spread
        never truncates a waveform.
        """
        self.topology = topology
        self._rng = rng if rng is not None else np.random.default_rng()
        if tail_padding < 0:
            raise SimulationError("tail padding must be non-negative")
        self.tail_padding = int(tail_padding)

    def slot_duration(self, transmissions: Sequence[Transmission]) -> int:
        """Air-time (in samples) a slot with these transmissions occupies."""
        if not transmissions:
            return 0
        return max(t.end_sample for t in transmissions)

    def deliver(
        self,
        transmissions: Sequence[Transmission],
        receivers: Optional[Iterable[int]] = None,
    ) -> Dict[int, ComplexSignal]:
        """Compute the waveform observed at each receiver during one slot.

        Parameters
        ----------
        transmissions:
            All transmissions that happen in the slot.
        receivers:
            Restrict output to these node ids (default: every node in the
            topology that is not transmitting).

        Returns
        -------
        dict
            Mapping from receiver node id to the waveform it hears.  Nodes
            that hear none of the transmitters receive pure noise of the
            slot's duration.
        """
        if not transmissions:
            raise SimulationError("a slot must contain at least one transmission")
        senders = [t.sender for t in transmissions]
        if len(set(senders)) != len(senders):
            raise SimulationError("a node cannot transmit twice in the same slot")
        for t in transmissions:
            if not self.topology.has_node(t.sender):
                raise SimulationError(f"unknown sender {t.sender}")

        slot_length = self.slot_duration(transmissions) + self.tail_padding
        if receivers is None:
            target_nodes = [n for n in self.topology.nodes if n not in set(senders)]
        else:
            target_nodes = [n for n in receivers if n not in set(senders)]

        observations: Dict[int, ComplexSignal] = {}
        for receiver in target_nodes:
            components: List = []
            for transmission in transmissions:
                if not self.topology.in_range(transmission.sender, receiver):
                    continue
                link = self.topology.link(transmission.sender, receiver)
                distorted = link.distort(transmission.waveform, rng=self._rng)
                components.append(
                    (distorted, transmission.start_offset + link.propagation_delay)
                )
            if components:
                composite = overlap_add(components, total_length=slot_length)
            else:
                composite = ComplexSignal.silence(slot_length)
            noise_power = self.topology.noise_power(receiver)
            if noise_power > 0:
                noise = complex_gaussian_noise(slot_length, noise_power, self._rng)
                composite = ComplexSignal(composite.samples + noise)
            observations[receiver] = composite
        return observations
