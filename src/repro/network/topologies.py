"""Factories for the paper's three canonical topologies.

* :func:`alice_bob_topology` — Fig. 1: Alice and Bob exchanging packets
  through a router, out of each other's radio range.
* :func:`chain_topology` — Fig. 2: a single flow over a 3-hop chain
  N1 → N2 → N3 → N4.
* :func:`x_topology` — Fig. 11: two flows N1 → N4 and N3 → N2 crossing at
  the centre router N5, with the destinations overhearing the senders.

Each factory draws per-link attenuations, phase offsets and residual
carrier-frequency offsets from a :class:`ChannelConditions` description, so
repeated runs with different seeds reproduce the run-to-run variability the
paper's CDFs capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.channel.link import Link
from repro.constants import DEFAULT_TX_AMPLITUDE
from repro.exceptions import ConfigurationError
from repro.network.topology import Topology
from repro.utils.db import db_to_power_ratio

#: Conventional node identifiers used by the factories and the protocols.
ALICE = 1
BOB = 2
RELAY = 0

N1, N2, N3, N4, N5 = 1, 2, 3, 4, 5


@dataclass(frozen=True)
class ChannelConditions:
    """Statistical description of the radio environment of a testbed run.

    Attributes
    ----------
    snr_db:
        Per-hop signal-to-noise ratio for the *main* links (the paper's
        testbed operates in the 20-40 dB WLAN regime, §8).
    mean_attenuation:
        Average amplitude gain of a main link.
    attenuation_jitter:
        Half-width of the uniform jitter applied to each link's attenuation.
    max_cfo:
        Maximum magnitude of the residual carrier frequency offset
        (radians per sample) between any transmitter/receiver pair.
    max_phase_drift:
        Maximum standard deviation (radians per sample) of the random-walk
        phase noise of a link's oscillator chain.  This is the slow channel
        variation that §6 cites as the reason naive signal subtraction is
        fragile; it is also the dominant source of residual BER for ANC
        decoding on real radios.
    overhear_attenuation:
        Amplitude gain of the weak "overhearing" cross links in the "X"
        topology (senders are further from the opposite destinations).
    tx_amplitude:
        Transmit amplitude all nodes use (the paper assumes equal powers).
    """

    snr_db: float = 30.0
    mean_attenuation: float = 0.8
    attenuation_jitter: float = 0.08
    max_cfo: float = 0.04
    max_phase_drift: float = 0.008
    overhear_attenuation: float = 0.60
    cross_interference_attenuation: float = 0.14
    tx_amplitude: float = DEFAULT_TX_AMPLITUDE

    def __post_init__(self) -> None:
        """Validate the channel statistics."""
        if self.mean_attenuation <= 0 or self.mean_attenuation > 1.5:
            raise ConfigurationError("mean_attenuation must be in (0, 1.5]")
        if self.attenuation_jitter < 0:
            raise ConfigurationError("attenuation_jitter must be non-negative")
        if self.max_cfo < 0:
            raise ConfigurationError("max_cfo must be non-negative")
        if self.max_phase_drift < 0:
            raise ConfigurationError("max_phase_drift must be non-negative")

    @property
    def noise_power(self) -> float:
        """Receiver noise power implied by the main-link SNR."""
        received_power = (self.mean_attenuation * self.tx_amplitude) ** 2
        return received_power / db_to_power_ratio(self.snr_db)


def _draw_link(
    conditions: ChannelConditions,
    rng: np.random.Generator,
    attenuation: Optional[float] = None,
) -> Link:
    """Draw one directed link's parameters from the channel conditions."""
    base = conditions.mean_attenuation if attenuation is None else attenuation
    jitter = conditions.attenuation_jitter
    drawn = float(np.clip(base + rng.uniform(-jitter, jitter), 0.05, 1.5))
    phase = float(rng.uniform(-np.pi, np.pi))
    cfo_magnitude = float(rng.uniform(0.25 * conditions.max_cfo, conditions.max_cfo))
    cfo = cfo_magnitude * (1.0 if rng.uniform() < 0.5 else -1.0)
    phase_drift = float(rng.uniform(0.0, conditions.max_phase_drift))
    return Link(
        attenuation=drawn,
        phase_shift=phase,
        frequency_offset=cfo,
        phase_drift=phase_drift,
        noise_power=conditions.noise_power,
    )


def alice_bob_topology(
    conditions: Optional[ChannelConditions] = None,
    rng: Optional[np.random.Generator] = None,
) -> Topology:
    """Fig. 1: Alice (1) and Bob (2) connected only through the router (0)."""
    cond = conditions if conditions is not None else ChannelConditions()
    generator = rng if rng is not None else np.random.default_rng()
    topology = Topology()
    for node in (RELAY, ALICE, BOB):
        topology.add_node(node, noise_power=cond.noise_power)
    topology.add_symmetric_link(
        ALICE, RELAY, _draw_link(cond, generator), _draw_link(cond, generator)
    )
    topology.add_symmetric_link(
        BOB, RELAY, _draw_link(cond, generator), _draw_link(cond, generator)
    )
    topology.validate()
    return topology


def chain_topology(
    conditions: Optional[ChannelConditions] = None,
    rng: Optional[np.random.Generator] = None,
    hops: int = 3,
) -> Topology:
    """Fig. 2: a linear chain N1 -> N2 -> ... with ``hops`` hops (default 3).

    Adjacent nodes are in range of each other; nodes two or more hops apart
    are not, which is what creates both the hidden-terminal problem and the
    ANC opportunity at the middle node.
    """
    if hops < 2:
        raise ConfigurationError("a chain needs at least 2 hops")
    cond = conditions if conditions is not None else ChannelConditions()
    generator = rng if rng is not None else np.random.default_rng()
    topology = Topology()
    node_ids = list(range(1, hops + 2))
    for node in node_ids:
        topology.add_node(node, noise_power=cond.noise_power)
    for a, b in zip(node_ids[:-1], node_ids[1:]):
        topology.add_symmetric_link(
            a, b, _draw_link(cond, generator), _draw_link(cond, generator)
        )
    topology.validate()
    return topology


def x_topology(
    conditions: Optional[ChannelConditions] = None,
    rng: Optional[np.random.Generator] = None,
) -> Topology:
    """Fig. 11: flows N1 -> N4 and N3 -> N2 crossing at the router N5.

    The destinations overhear the senders over weaker links (N1 -> N2 and
    N3 -> N4); in addition each sender reaches the *opposite* destination
    over a much weaker cross link, which is the interference that
    occasionally corrupts overhearing when both senders transmit at once
    (§11.5).
    """
    cond = conditions if conditions is not None else ChannelConditions()
    generator = rng if rng is not None else np.random.default_rng()
    topology = Topology()
    for node in (N1, N2, N3, N4, N5):
        topology.add_node(node, noise_power=cond.noise_power)
    # Main links to/from the central router.
    for endpoint in (N1, N2, N3, N4):
        topology.add_symmetric_link(
            endpoint, N5, _draw_link(cond, generator), _draw_link(cond, generator)
        )
    # Overhearing links: each destination hears "its" sender.  These are
    # radio propagation only — routing must still go through the router.
    topology.add_link(
        N1, N2,
        _draw_link(cond, generator, attenuation=cond.overhear_attenuation),
        routable=False,
    )
    topology.add_link(
        N3, N4,
        _draw_link(cond, generator, attenuation=cond.overhear_attenuation),
        routable=False,
    )
    # Weak cross links: each sender also faintly reaches the other
    # destination, creating interference during simultaneous transmissions.
    topology.add_link(
        N1, N4,
        _draw_link(cond, generator, attenuation=cond.cross_interference_attenuation),
        routable=False,
    )
    topology.add_link(
        N3, N2,
        _draw_link(cond, generator, attenuation=cond.cross_interference_attenuation),
        routable=False,
    )
    topology.validate()
    return topology
