"""Traffic flows.

A :class:`Flow` names a unidirectional stream of packets from a source to
a destination.  The canonical experiments use one bidirectional pair
(Alice–Bob), two crossing unidirectional flows ("X") or a single
unidirectional flow (chain); the experiment runners build the appropriate
flow sets and hand them to the protocol implementations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Flow:
    """A unidirectional traffic demand."""

    source: int
    destination: int
    packets: int

    def __post_init__(self) -> None:
        """Validate the flow's endpoints and demand."""
        if self.source == self.destination:
            raise ConfigurationError("a flow's source and destination must differ")
        if self.packets <= 0:
            raise ConfigurationError("a flow must carry at least one packet")

    @property
    def reverse(self) -> "Flow":
        """The same demand in the opposite direction (for 2-way traffic)."""
        return Flow(source=self.destination, destination=self.source, packets=self.packets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Debugging representation."""
        return f"Flow({self.source}->{self.destination}, packets={self.packets})"
