"""Parameterized topology generators for arbitrary N-node scenarios.

The paper evaluates ANC on three fixed topologies; the scenario subsystem
generalizes that to whole *families* of workloads.  Every generator here
takes the same three ingredients — a :class:`ChannelConditions` description
of the radio environment, a seeded ``numpy`` generator, and a handful of
shape parameters — and returns a validated
:class:`~repro.network.topology.Topology`:

* :func:`generate_chain` — a linear chain of ``hops`` hops (the Fig. 2
  shape at arbitrary length, the substrate of the chain-length sweep);
* :func:`generate_star` — ``leaves`` endpoints around a central router,
  the natural host for many crossing 2-hop flows;
* :func:`generate_random_mesh` — ``nodes`` radios dropped uniformly into a
  unit square and linked when within ``radius``, with distance-dependent
  attenuation; disconnected components are stitched together so every
  flow remains routable.

The :data:`GENERATORS` registry maps generator names to factories so a
:class:`~repro.experiments.scenarios.ScenarioSpec` can name its topology as
data (``topology="random_mesh"``) rather than code; :func:`get_generator`
resolves the name at run time.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.network.topologies import ChannelConditions, _draw_link, chain_topology
from repro.network.topology import Topology

#: Signature every registered generator satisfies.
GeneratorFn = Callable[..., Topology]


def generate_chain(
    conditions: Optional[ChannelConditions] = None,
    rng: Optional[np.random.Generator] = None,
    hops: int = 3,
) -> Topology:
    """A linear chain ``1 -> 2 -> ... -> hops + 1`` of ``hops`` hops.

    Thin wrapper over :func:`~repro.network.topologies.chain_topology`
    registered under the generator-registry calling convention; node ids
    are consecutive integers starting at 1 and only adjacent nodes are in
    radio range of each other.
    """
    return chain_topology(conditions, rng, hops=hops)


def generate_star(
    conditions: Optional[ChannelConditions] = None,
    rng: Optional[np.random.Generator] = None,
    leaves: int = 4,
    hub: int = 0,
) -> Topology:
    """A star: ``leaves`` endpoint nodes around one central router.

    Every leaf is in range of the hub and of nothing else, so every flow
    between two leaves is a 2-hop path crossing the hub — the shape that
    maximises relay-crossing ANC opportunities (the "X" topology is the
    4-leaf star plus overhearing links).

    Parameters
    ----------
    conditions:
        Channel statistics each hub<->leaf link is drawn from.
    rng:
        Seeded generator for the per-link draws.
    leaves:
        Number of endpoint nodes (ids ``hub + 1 .. hub + leaves``).
    hub:
        Node id of the central router.
    """
    if leaves < 2:
        raise ConfigurationError("a star needs at least 2 leaves")
    cond = conditions if conditions is not None else ChannelConditions()
    generator = rng if rng is not None else np.random.default_rng()
    topology = Topology()
    leaf_ids = [hub + offset for offset in range(1, leaves + 1)]
    for node in [hub] + leaf_ids:
        topology.add_node(node, noise_power=cond.noise_power)
    for leaf in leaf_ids:
        topology.add_symmetric_link(
            leaf, hub, _draw_link(cond, generator), _draw_link(cond, generator)
        )
    topology.validate()
    return topology


def generate_random_mesh(
    conditions: Optional[ChannelConditions] = None,
    rng: Optional[np.random.Generator] = None,
    nodes: int = 10,
    radius: float = 0.45,
) -> Topology:
    """A seeded random geometric mesh of ``nodes`` radios in a unit square.

    Node positions are drawn uniformly; every pair closer than ``radius``
    gets a symmetric link whose mean attenuation decays linearly with
    distance (nearby pairs approach ``conditions.mean_attenuation``, pairs
    at the edge of the radio range fall towards
    ``conditions.overhear_attenuation``).  If the resulting radio graph is
    disconnected, the closest node pairs across components are linked so
    every flow stays routable — the generator guarantees a connected
    topology for any seed.

    Parameters
    ----------
    conditions:
        Channel statistics the per-link parameters are drawn from.
    rng:
        Seeded generator; placement and link draws both come from it, so
        the same seed always yields the same mesh.
    nodes:
        Number of radios (ids ``1 .. nodes``).
    radius:
        Radio range as a fraction of the unit square's side.
    """
    if nodes < 3:
        raise ConfigurationError("a mesh needs at least 3 nodes")
    if not 0.0 < radius <= np.sqrt(2.0):
        raise ConfigurationError("radius must lie in (0, sqrt(2)]")
    cond = conditions if conditions is not None else ChannelConditions()
    generator = rng if rng is not None else np.random.default_rng()
    node_ids = list(range(1, nodes + 1))
    positions = {node: generator.uniform(0.0, 1.0, size=2) for node in node_ids}

    topology = Topology()
    for node in node_ids:
        topology.add_node(node, noise_power=cond.noise_power)

    def _link_pair(a: int, b: int) -> None:
        distance = float(np.linalg.norm(positions[a] - positions[b]))
        # Linear decay from the main-link attenuation at zero distance to
        # the overhearing level at the edge of the radio range.
        span = max(radius, distance)
        fraction = min(distance / span, 1.0)
        attenuation = (
            cond.mean_attenuation
            - (cond.mean_attenuation - cond.overhear_attenuation) * fraction
        )
        topology.add_symmetric_link(
            a,
            b,
            _draw_link(cond, generator, attenuation=attenuation),
            _draw_link(cond, generator, attenuation=attenuation),
        )

    for index, a in enumerate(node_ids):
        for b in node_ids[index + 1 :]:
            if float(np.linalg.norm(positions[a] - positions[b])) <= radius:
                _link_pair(a, b)

    for a, b in _component_bridges(topology, positions):
        _link_pair(a, b)

    topology.validate()
    return topology


def _component_bridges(
    topology: Topology, positions: Dict[int, np.ndarray]
) -> List[Tuple[int, int]]:
    """Closest cross-component node pairs needed to connect the radio graph.

    Components are merged greedily: while more than one remains, the
    geometrically closest pair of nodes living in different components is
    bridged.  Deterministic given the positions (ties broken by node id).
    """
    import networkx as nx

    bridges: List[Tuple[int, int]] = []
    undirected = topology.graph.to_undirected()
    components = [sorted(c) for c in nx.connected_components(undirected)]
    while len(components) > 1:
        best: Optional[Tuple[float, int, int]] = None
        base = components[0]
        for other in components[1:]:
            for a in base:
                for b in other:
                    distance = float(np.linalg.norm(positions[a] - positions[b]))
                    candidate = (distance, a, b)
                    if best is None or candidate < best:
                        best = candidate
        assert best is not None
        _, a, b = best
        bridges.append((a, b))
        undirected.add_edge(a, b)
        components = [sorted(c) for c in nx.connected_components(undirected)]
    return bridges


#: Registry of topology generators, keyed by the name scenario specs use.
GENERATORS: Dict[str, GeneratorFn] = {
    "chain": generate_chain,
    "star": generate_star,
    "random_mesh": generate_random_mesh,
}


def available_generators() -> List[str]:
    """Names of every registered topology generator, in registry order."""
    return list(GENERATORS)


def get_generator(name: str) -> GeneratorFn:
    """Look up one topology generator by registry name."""
    try:
        return GENERATORS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown topology generator {name!r}; choose from {', '.join(GENERATORS)}"
        ) from None
