"""Parameterized topology generators for arbitrary N-node scenarios.

The paper evaluates ANC on three fixed topologies; the scenario subsystem
generalizes that to whole *families* of workloads.  Every generator here
takes the same three ingredients — a :class:`ChannelConditions` description
of the radio environment, a seeded ``numpy`` generator, and a handful of
shape parameters — and returns a validated
:class:`~repro.network.topology.Topology`:

* :func:`generate_chain` — a linear chain of ``hops`` hops (the Fig. 2
  shape at arbitrary length, the substrate of the chain-length sweep);
* :func:`generate_star` — ``leaves`` endpoints around a central router,
  the natural host for many crossing 2-hop flows;
* :func:`generate_random_mesh` — ``nodes`` radios dropped uniformly into a
  unit square and linked when within ``radius``, with distance-dependent
  attenuation; disconnected components are stitched together so every
  flow remains routable.
* :func:`generate_geometric_mesh` — the same placement, but link gains
  derived from the node geometry through a log-distance
  :class:`~repro.channel.pathloss.PathLossModel`, so SNR/SIR follow from
  where the radios landed instead of hand-set constants.

The :data:`GENERATORS` registry maps generator names to factories so a
:class:`~repro.experiments.scenarios.ScenarioSpec` can name its topology as
data (``topology="random_mesh"``) rather than code; :func:`get_generator`
resolves the name at run time.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.channel.pathloss import PathLossModel
from repro.exceptions import ConfigurationError
from repro.network.topologies import ChannelConditions, _draw_link, chain_topology
from repro.network.topology import Topology

#: Signature every registered generator satisfies.
GeneratorFn = Callable[..., Topology]


def generate_chain(
    conditions: Optional[ChannelConditions] = None,
    rng: Optional[np.random.Generator] = None,
    hops: int = 3,
) -> Topology:
    """A linear chain ``1 -> 2 -> ... -> hops + 1`` of ``hops`` hops.

    Thin wrapper over :func:`~repro.network.topologies.chain_topology`
    registered under the generator-registry calling convention; node ids
    are consecutive integers starting at 1 and only adjacent nodes are in
    radio range of each other.
    """
    return chain_topology(conditions, rng, hops=hops)


def generate_star(
    conditions: Optional[ChannelConditions] = None,
    rng: Optional[np.random.Generator] = None,
    leaves: int = 4,
    hub: int = 0,
) -> Topology:
    """A star: ``leaves`` endpoint nodes around one central router.

    Every leaf is in range of the hub and of nothing else, so every flow
    between two leaves is a 2-hop path crossing the hub — the shape that
    maximises relay-crossing ANC opportunities (the "X" topology is the
    4-leaf star plus overhearing links).

    Parameters
    ----------
    conditions:
        Channel statistics each hub<->leaf link is drawn from.
    rng:
        Seeded generator for the per-link draws.
    leaves:
        Number of endpoint nodes (ids ``hub + 1 .. hub + leaves``).
    hub:
        Node id of the central router.
    """
    if leaves < 2:
        raise ConfigurationError("a star needs at least 2 leaves")
    cond = conditions if conditions is not None else ChannelConditions()
    generator = rng if rng is not None else np.random.default_rng()
    topology = Topology()
    leaf_ids = [hub + offset for offset in range(1, leaves + 1)]
    for node in [hub] + leaf_ids:
        topology.add_node(node, noise_power=cond.noise_power)
    for leaf in leaf_ids:
        topology.add_symmetric_link(
            leaf, hub, _draw_link(cond, generator), _draw_link(cond, generator)
        )
    topology.validate()
    return topology


def generate_random_mesh(
    conditions: Optional[ChannelConditions] = None,
    rng: Optional[np.random.Generator] = None,
    nodes: int = 10,
    radius: float = 0.45,
) -> Topology:
    """A seeded random geometric mesh of ``nodes`` radios in a unit square.

    Node positions are drawn uniformly; every pair closer than ``radius``
    gets a symmetric link whose mean attenuation decays linearly with
    distance (nearby pairs approach ``conditions.mean_attenuation``, pairs
    at the edge of the radio range fall towards
    ``conditions.overhear_attenuation``).  If the resulting radio graph is
    disconnected, the closest node pairs across components are linked so
    every flow stays routable — the generator guarantees a connected
    topology for any seed.

    Parameters
    ----------
    conditions:
        Channel statistics the per-link parameters are drawn from.
    rng:
        Seeded generator; placement and link draws both come from it, so
        the same seed always yields the same mesh.
    nodes:
        Number of radios (ids ``1 .. nodes``).
    radius:
        Radio range as a fraction of the unit square's side.
    """
    if nodes < 3:
        raise ConfigurationError("a mesh needs at least 3 nodes")
    if not 0.0 < radius <= np.sqrt(2.0):
        raise ConfigurationError("radius must lie in (0, sqrt(2)]")
    cond = conditions if conditions is not None else ChannelConditions()
    generator = rng if rng is not None else np.random.default_rng()
    node_ids = list(range(1, nodes + 1))
    positions = {node: generator.uniform(0.0, 1.0, size=2) for node in node_ids}

    def _attenuation(distance: float) -> float:
        # Linear decay from the main-link attenuation at zero distance to
        # the overhearing level at the edge of the radio range.
        span = max(radius, distance)
        fraction = min(distance / span, 1.0)
        return (
            cond.mean_attenuation
            - (cond.mean_attenuation - cond.overhear_attenuation) * fraction
        )

    return _mesh_from_positions(cond, generator, positions, radius, _attenuation)


def generate_geometric_mesh(
    conditions: Optional[ChannelConditions] = None,
    rng: Optional[np.random.Generator] = None,
    nodes: int = 12,
    radius: float = 0.45,
    path_loss: Optional[PathLossModel] = None,
) -> Topology:
    """A random geometric mesh whose link gains follow a path-loss law.

    Placement and connectivity work exactly like
    :func:`generate_random_mesh` — ``nodes`` radios dropped uniformly
    into the unit square, pairs within ``radius`` linked, disconnected
    components bridged — but every link's mean attenuation is derived
    from the node *geometry* through a log-distance
    :class:`~repro.channel.pathloss.PathLossModel` instead of the
    hand-set linear decay.  Nearby pairs therefore get strong
    high-SNR links and pairs at the edge of the radio range get weak
    ones, with the spread controlled by the model's exponent: the mesh's
    SNR/SIR landscape is a consequence of the placement, as in a real
    deployment.

    The generated topology carries the placement as
    ``topology.positions`` (node id → ``(x, y)`` tuple) so callers can
    relate per-flow results back to the geometry.

    Parameters
    ----------
    conditions:
        Channel statistics for everything that is *not* the mean gain
        (attenuation jitter, phase, CFO, noise floor).
    rng:
        Seeded generator; placement and link draws both come from it.
    nodes:
        Number of radios (ids ``1 .. nodes``).
    radius:
        Radio range as a fraction of the unit square's side.
    path_loss:
        The gain law.  The default
        (``PathLossModel(exponent=2.0, reference_distance=0.2,
        reference_attenuation=0.95, min_attenuation=0.05)``) keeps links
        at the edge of the default radius within the decodable SNR
        regime of the paper's testbed.
    """
    if nodes < 3:
        raise ConfigurationError("a mesh needs at least 3 nodes")
    if not 0.0 < radius <= np.sqrt(2.0):
        raise ConfigurationError("radius must lie in (0, sqrt(2)]")
    cond = conditions if conditions is not None else ChannelConditions()
    generator = rng if rng is not None else np.random.default_rng()
    model = (
        path_loss
        if path_loss is not None
        else PathLossModel(
            exponent=2.0,
            reference_distance=0.2,
            reference_attenuation=0.95,
            min_attenuation=0.05,
        )
    )
    node_ids = list(range(1, nodes + 1))
    positions = {node: generator.uniform(0.0, 1.0, size=2) for node in node_ids}
    return _mesh_from_positions(cond, generator, positions, radius, model.attenuation)


def _mesh_from_positions(
    cond: ChannelConditions,
    generator: np.random.Generator,
    positions: Dict[int, np.ndarray],
    radius: float,
    attenuation_for: Callable[[float], float],
) -> Topology:
    """Build a connected mesh over fixed positions with a given gain law.

    Shared by :func:`generate_random_mesh` (linear-decay law) and
    :func:`generate_geometric_mesh` (path-loss law): pairs within
    ``radius`` are linked, then the closest cross-component pairs are
    bridged, with every link's mean attenuation taken from
    ``attenuation_for(distance)``.  Draw order is fixed by the sorted
    node ids, so a given ``generator`` state always yields the same mesh.
    The placement is recorded as ``topology.positions`` (declared on
    :class:`~repro.network.topology.Topology`) for both mesh families.
    """
    node_ids = sorted(positions)
    topology = Topology()
    topology.positions = {
        node: (float(point[0]), float(point[1])) for node, point in positions.items()
    }
    for node in node_ids:
        topology.add_node(node, noise_power=cond.noise_power)

    def _link_pair(a: int, b: int) -> None:
        distance = float(np.linalg.norm(positions[a] - positions[b]))
        attenuation = attenuation_for(distance)
        topology.add_symmetric_link(
            a,
            b,
            _draw_link(cond, generator, attenuation=attenuation),
            _draw_link(cond, generator, attenuation=attenuation),
        )

    for index, a in enumerate(node_ids):
        for b in node_ids[index + 1 :]:
            if float(np.linalg.norm(positions[a] - positions[b])) <= radius:
                _link_pair(a, b)

    for a, b in _component_bridges(topology, positions):
        _link_pair(a, b)

    topology.validate()
    return topology


def _component_bridges(
    topology: Topology, positions: Dict[int, np.ndarray]
) -> List[Tuple[int, int]]:
    """Closest cross-component node pairs needed to connect the radio graph.

    Components are merged greedily: while more than one remains, the
    geometrically closest pair of nodes living in different components is
    bridged.  Deterministic given the positions (ties broken by node id).
    """
    import networkx as nx

    bridges: List[Tuple[int, int]] = []
    undirected = topology.graph.to_undirected()
    components = [sorted(c) for c in nx.connected_components(undirected)]
    while len(components) > 1:
        best: Optional[Tuple[float, int, int]] = None
        base = components[0]
        for other in components[1:]:
            for a in base:
                for b in other:
                    distance = float(np.linalg.norm(positions[a] - positions[b]))
                    candidate = (distance, a, b)
                    if best is None or candidate < best:
                        best = candidate
        assert best is not None
        _, a, b = best
        bridges.append((a, b))
        undirected.add_edge(a, b)
        components = [sorted(c) for c in nx.connected_components(undirected)]
    return bridges


#: Registry of topology generators, keyed by the name scenario specs use.
GENERATORS: Dict[str, GeneratorFn] = {
    "chain": generate_chain,
    "star": generate_star,
    "random_mesh": generate_random_mesh,
    "geometric_mesh": generate_geometric_mesh,
}


def available_generators() -> List[str]:
    """Names of every registered topology generator, in registry order."""
    return list(GENERATORS)


def get_generator(name: str) -> GeneratorFn:
    """Look up one topology generator by registry name."""
    try:
        return GENERATORS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown topology generator {name!r}; choose from {', '.join(GENERATORS)}"
        ) from None
