"""Network layer: topologies, the wireless medium and the slot simulator.

The evaluation runs on the paper's three canonical topologies (Alice–Bob,
the 3-hop chain and the "X") plus the parameterized families produced by
:mod:`repro.network.generator` (chains of any length, stars, seeded
random meshes), each described by a :class:`Topology` of nodes and
directed :class:`~repro.channel.link.Link` parameters.  The
:class:`WirelessMedium` computes, for every receiver, the superposition of
all concurrent in-range transmissions plus receiver noise — which is all a
wireless channel does to colliding packets.  The :class:`SlotSimulator`
advances a schedule of transmission slots through the medium and hands the
resulting waveforms to the nodes' receive pipelines.
"""

from repro.network.topology import Topology
from repro.network.topologies import (
    alice_bob_topology,
    chain_topology,
    x_topology,
)
from repro.network.medium import Transmission, WirelessMedium
from repro.network.simulator import SlotResult, SlotSimulator
from repro.network.flows import Flow
from repro.network.generator import (
    GENERATORS,
    available_generators,
    generate_chain,
    generate_random_mesh,
    generate_star,
    get_generator,
)

__all__ = [
    "Flow",
    "GENERATORS",
    "SlotResult",
    "SlotSimulator",
    "Topology",
    "Transmission",
    "WirelessMedium",
    "alice_bob_topology",
    "available_generators",
    "chain_topology",
    "generate_chain",
    "generate_random_mesh",
    "generate_star",
    "get_generator",
    "x_topology",
]
