"""Network layer: topologies, the wireless medium and the slot simulator.

The evaluation runs on three canonical topologies (Alice–Bob, the 3-hop
chain and the "X"), each described by a :class:`Topology` of nodes and
directed :class:`~repro.channel.link.Link` parameters.  The
:class:`WirelessMedium` computes, for every receiver, the superposition of
all concurrent in-range transmissions plus receiver noise — which is all a
wireless channel does to colliding packets.  The :class:`SlotSimulator`
advances a schedule of transmission slots through the medium and hands the
resulting waveforms to the nodes' receive pipelines.
"""

from repro.network.topology import Topology
from repro.network.topologies import (
    alice_bob_topology,
    chain_topology,
    x_topology,
)
from repro.network.medium import Transmission, WirelessMedium
from repro.network.simulator import SlotResult, SlotSimulator
from repro.network.flows import Flow

__all__ = [
    "Flow",
    "SlotResult",
    "SlotSimulator",
    "Topology",
    "Transmission",
    "WirelessMedium",
    "alice_bob_topology",
    "chain_topology",
    "x_topology",
]
