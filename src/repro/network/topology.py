"""Topology: nodes, radio ranges and per-link channel parameters.

A topology is a directed graph whose edges carry the
:class:`~repro.channel.link.Link` parameters (attenuation, phase offset,
carrier-frequency offset, propagation delay) of each radio path, plus a
per-node receiver noise power.  Only node pairs connected by an edge hear
each other at all — exactly the "radio range" notion the paper's canonical
topologies rely on (e.g. Alice and Bob are *not* connected, N1 and N4 in
the chain are not connected).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.channel.link import Link
from repro.exceptions import TopologyError


class Topology:
    """A set of nodes and the directed radio links between them."""

    def __init__(self) -> None:
        """Create an empty topology (no nodes, no links)."""
        self._graph = nx.DiGraph()
        self._noise_power: Dict[int, float] = {}
        #: Node placement ``{node_id: (x, y)}`` when the topology was
        #: built from geometry (the mesh generators set it); ``None`` for
        #: topologies with no physical placement (chain, star, figures).
        self.positions: Optional[Dict[int, Tuple[float, float]]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: int, noise_power: float = 1e-3) -> None:
        """Register a node and its receiver noise floor."""
        if node_id < 0:
            raise TopologyError("node ids must be non-negative")
        if noise_power < 0:
            raise TopologyError("noise power must be non-negative")
        self._graph.add_node(int(node_id))
        self._noise_power[int(node_id)] = float(noise_power)

    def add_link(
        self, source: int, destination: int, link: Link, routable: bool = True
    ) -> None:
        """Add a directed radio path from ``source`` to ``destination``.

        ``routable=False`` marks paths that exist only as incidental radio
        propagation — overhearing and cross-interference links — which the
        routing layer must not treat as usable hops.
        """
        if source == destination:
            raise TopologyError("a node cannot have a link to itself")
        for node in (source, destination):
            if node not in self._graph:
                raise TopologyError(f"node {node} must be added before linking it")
        self._graph.add_edge(int(source), int(destination), link=link, routable=bool(routable))

    def add_symmetric_link(self, a: int, b: int, link: Link, reverse: Optional[Link] = None) -> None:
        """Add both directions of a path; ``reverse`` defaults to the same parameters."""
        self.add_link(a, b, link)
        self.add_link(b, a, reverse if reverse is not None else link)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[int]:
        """All node identifiers, sorted."""
        return sorted(self._graph.nodes)

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying directed graph (read-only use expected)."""
        return self._graph

    def has_node(self, node_id: int) -> bool:
        """Is ``node_id`` registered in this topology?"""
        return node_id in self._graph

    def noise_power(self, node_id: int) -> float:
        """Receiver noise floor of a node."""
        if node_id not in self._noise_power:
            raise TopologyError(f"unknown node {node_id}")
        return self._noise_power[node_id]

    def in_range(self, source: int, destination: int) -> bool:
        """Does a transmission by ``source`` reach ``destination`` at all?"""
        return self._graph.has_edge(source, destination)

    def link(self, source: int, destination: int) -> Link:
        """The directed link parameters from ``source`` to ``destination``."""
        if not self.in_range(source, destination):
            raise TopologyError(f"no radio path from {source} to {destination}")
        return self._graph.edges[source, destination]["link"]

    def neighbors(self, node_id: int) -> List[int]:
        """Nodes that can hear ``node_id`` (out-neighbours), sorted."""
        if node_id not in self._graph:
            raise TopologyError(f"unknown node {node_id}")
        return sorted(self._graph.successors(node_id))

    def receivers_of(self, sender: int) -> List[int]:
        """Alias of :meth:`neighbors`, named for the medium model."""
        return self.neighbors(sender)

    def is_routable(self, source: int, destination: int) -> bool:
        """Is the directed path from ``source`` to ``destination`` a routing hop?"""
        if not self.in_range(source, destination):
            return False
        return bool(self._graph.edges[source, destination].get("routable", True))

    def routable_graph(self) -> nx.DiGraph:
        """Subgraph containing only the links routing is allowed to use."""
        routable = nx.DiGraph()
        routable.add_nodes_from(self._graph.nodes)
        for source, destination, data in self._graph.edges(data=True):
            if data.get("routable", True):
                routable.add_edge(source, destination, **data)
        return routable

    def shortest_path(self, source: int, destination: int) -> List[int]:
        """Hop sequence a traditional routing protocol would use.

        Only routable links are considered; overhearing / cross-interference
        links are radio propagation, not usable hops.
        """
        try:
            return nx.shortest_path(self.routable_graph(), source, destination)
        except nx.NetworkXNoPath as exc:
            raise TopologyError(f"no route from {source} to {destination}") from exc

    def validate(self) -> None:
        """Sanity-check that every edge carries a Link and nodes have noise floors."""
        for source, destination, data in self._graph.edges(data=True):
            if "link" not in data or not isinstance(data["link"], Link):
                raise TopologyError(f"edge {source}->{destination} is missing its Link")
        for node in self._graph.nodes:
            if node not in self._noise_power:
                raise TopologyError(f"node {node} has no noise power configured")

    def __contains__(self, node_id: int) -> bool:
        """Alias of :meth:`has_node`."""
        return self.has_node(node_id)

    def __len__(self) -> int:
        """Number of nodes in the topology."""
        return self._graph.number_of_nodes()
