"""Evaluation metrics (§11.2).

The paper reports four metrics: network throughput, gain over the
traditional approach, gain over COPE, and the bit error rate of
ANC-decoded packets.  This package aggregates the per-run
:class:`~repro.protocols.base.RunResult` objects the protocols produce
into those metrics, builds the CDFs the figures plot, and renders the
tabular summaries the benchmark harness prints.
"""

from repro.metrics.ber import ber_cdf, packet_ber, payload_ber_samples
from repro.metrics.throughput import network_throughput, throughput_gain
from repro.metrics.gain import GainSample, gain_cdf, pair_runs
from repro.metrics.report import ComparisonReport, ExperimentReport, format_cdf_table

__all__ = [
    "ComparisonReport",
    "ExperimentReport",
    "GainSample",
    "ber_cdf",
    "format_cdf_table",
    "gain_cdf",
    "network_throughput",
    "packet_ber",
    "pair_runs",
    "payload_ber_samples",
    "throughput_gain",
]
