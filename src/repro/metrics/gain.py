"""Per-run throughput gains and their CDFs.

Figures 9(a), 10(a) and 12(a) plot the CDF, across testbed runs, of the
ratio of ANC's network throughput to a baseline's throughput in the same
run.  :func:`pair_runs` pairs up the per-run results of two schemes (same
topology draw, same traffic) and :func:`gain_cdf` turns the resulting
gain samples into the CDF the figures show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.exceptions import ConfigurationError
from repro.protocols.base import RunResult
from repro.utils.cdf import EmpiricalCDF


@dataclass(frozen=True)
class GainSample:
    """One run's throughput gain of a scheme over a baseline."""

    run_index: int
    gain: float
    anc_throughput: float
    baseline_throughput: float
    baseline_scheme: str


def pair_runs(
    anc_runs: Sequence[RunResult],
    baseline_runs: Sequence[RunResult],
) -> List[GainSample]:
    """Pair per-run results of ANC and a baseline and compute per-run gains.

    The two sequences must come from the same experiment loop so that the
    i-th entries share the topology draw and traffic pattern — that is what
    "two consecutive runs" means in §11.2.
    """
    if len(anc_runs) != len(baseline_runs):
        raise ConfigurationError("paired run sequences must have equal length")
    if not anc_runs:
        raise ConfigurationError("at least one run pair is required")
    samples: List[GainSample] = []
    for index, (anc, baseline) in enumerate(zip(anc_runs, baseline_runs)):
        baseline_throughput = baseline.throughput
        if baseline_throughput <= 0:
            raise ConfigurationError(f"baseline run {index} has non-positive throughput")
        samples.append(
            GainSample(
                run_index=index,
                gain=anc.throughput / baseline_throughput,
                anc_throughput=anc.throughput,
                baseline_throughput=baseline_throughput,
                baseline_scheme=baseline.scheme,
            )
        )
    return samples


def gain_cdf(samples: Iterable[GainSample]) -> EmpiricalCDF:
    """Empirical CDF of per-run gains (the Figs. 9a / 10a / 12a curves)."""
    values = [s.gain for s in samples]
    if not values:
        raise ConfigurationError("no gain samples provided")
    return EmpiricalCDF.from_samples(values)


def mean_gain(samples: Iterable[GainSample]) -> float:
    """Average per-run gain (the headline 70 % / 30 % numbers of §11.3)."""
    values = [s.gain for s in samples]
    if not values:
        raise ConfigurationError("no gain samples provided")
    return float(sum(values) / len(values))
