"""Bit-error-rate metrics.

The paper's BER metric (§11.2) is the fraction of erroneous bits in a
packet decoded from an interfered signal, computed against the payload
that was actually sent.  Figures 9(b), 10(b), 12(b) and 13 are CDFs or
curves of that per-packet quantity.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.exceptions import ConfigurationError
from repro.protocols.base import RunResult
from repro.utils.bits import as_bit_array
from repro.utils.cdf import EmpiricalCDF


def packet_ber(sent_payload, decoded_payload) -> float:
    """Per-packet BER between the transmitted and the decoded payload."""
    sent = as_bit_array(sent_payload)
    decoded = as_bit_array(decoded_payload)
    if sent.size == 0:
        return 0.0
    if sent.size != decoded.size:
        raise ConfigurationError("payloads must have equal length to compute BER")
    return float(np.count_nonzero(sent != decoded)) / sent.size


def payload_ber_samples(runs: Iterable[RunResult], include_losses: bool = True) -> List[float]:
    """Collect every per-packet BER observed across a set of runs.

    Parameters
    ----------
    runs:
        Protocol run results (typically the ANC runs of an experiment).
    include_losses:
        When ``True`` (default) packets that could not be decoded at all —
        recorded as BER 0.5 by the protocols — are kept, matching how the
        paper's "X"-topology BER CDF shows a heavy tail for packets lost to
        failed overhearing (Fig. 10b).  Set to ``False`` to look only at
        packets the decoder actually produced.
    """
    samples: List[float] = []
    for run in runs:
        for ber in run.packet_bers:
            if include_losses or ber < 0.5:
                samples.append(float(ber))
    return samples


def ber_cdf(runs: Iterable[RunResult], include_losses: bool = True) -> EmpiricalCDF:
    """Empirical CDF of per-packet BER across runs (Figs. 9b / 10b / 12b)."""
    samples = payload_ber_samples(runs, include_losses=include_losses)
    if not samples:
        raise ConfigurationError("no BER samples found in the provided runs")
    return EmpiricalCDF.from_samples(samples)


def mean_ber(runs: Iterable[RunResult], include_losses: bool = False) -> float:
    """Average per-packet BER across runs (losses excluded by default)."""
    samples = payload_ber_samples(runs, include_losses=include_losses)
    if not samples:
        return 0.0
    return float(np.mean(samples))
