"""Throughput metrics.

Network throughput (§11.2) is the sum of the end-to-end throughput of all
flows.  In this library a run's throughput is useful payload bits divided
by the air time the run consumed (in samples); since all schemes in a
comparison use the same modulation and sample rate, ratios of this
quantity are exactly the paper's throughput gains.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.protocols.base import RunResult


def network_throughput(run: RunResult) -> float:
    """Useful delivered bits per sample of air time for one run."""
    return run.throughput


def mean_throughput(runs: Iterable[RunResult]) -> float:
    """Average throughput across runs of the same scheme."""
    values = [run.throughput for run in runs]
    if not values:
        raise ConfigurationError("at least one run is required")
    return float(np.mean(values))


def throughput_gain(anc_run: RunResult, baseline_run: RunResult) -> float:
    """Ratio of ANC throughput to a baseline's throughput for paired runs.

    The paper computes the gain "for two consecutive runs in the same
    topology and for the same traffic pattern" (§11.2); pairing is the
    caller's responsibility (see :func:`repro.metrics.gain.pair_runs`).
    """
    baseline = baseline_run.throughput
    if baseline <= 0:
        raise ConfigurationError("baseline throughput must be positive")
    return anc_run.throughput / baseline


def aggregate_delivery_ratio(runs: Iterable[RunResult]) -> float:
    """Fraction of offered packets delivered across a set of runs."""
    offered = 0
    delivered = 0
    for run in runs:
        offered += run.packets_offered
        delivered += run.packets_delivered
    if offered == 0:
        return 0.0
    return delivered / offered
