"""Human-readable experiment reports.

The benchmark harness prints, for every reproduced figure, the same rows
or series the paper reports: mean gains, BER statistics and CDF tables.
These dataclasses hold the aggregated numbers and render them as plain
text so the regenerated "figure" can be read directly from the benchmark
output (no plotting dependency is assumed in the offline environment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.metrics.gain import GainSample, gain_cdf, mean_gain
from repro.protocols.base import RunResult
from repro.utils.cdf import EmpiricalCDF


def format_cdf_table(cdf: EmpiricalCDF, points: Sequence[float], label: str = "value") -> str:
    """Render a CDF as a small text table evaluated at the given points."""
    lines = [f"{label:>12} | CDF"]
    lines.append("-" * len(lines[0]))
    for x, y in cdf.table(points):
        lines.append(f"{x:12.4f} | {y:5.3f}")
    return "\n".join(lines)


@dataclass
class ComparisonReport:
    """Aggregate comparison of ANC against one baseline over paired runs."""

    baseline_scheme: str
    samples: List[GainSample]

    @property
    def cdf(self) -> EmpiricalCDF:
        return gain_cdf(self.samples)

    @property
    def mean_gain(self) -> float:
        return mean_gain(self.samples)

    @property
    def median_gain(self) -> float:
        return self.cdf.median

    @property
    def mean_gain_percent(self) -> float:
        """The headline "+X %" formulation used in §11.3."""
        return (self.mean_gain - 1.0) * 100.0

    def render(self, points: Optional[Sequence[float]] = None) -> str:
        """Plain-text rendering: headline numbers plus the gain CDF table."""
        pts = points if points is not None else np.round(np.arange(0.6, 2.05, 0.1), 2)
        header = (
            f"ANC gain over {self.baseline_scheme}: mean {self.mean_gain:.2f}x "
            f"({self.mean_gain_percent:+.0f}%), median {self.median_gain:.2f}x, "
            f"runs={len(self.samples)}"
        )
        return header + "\n" + format_cdf_table(self.cdf, pts, label="gain")


@dataclass
class ExperimentReport:
    """Everything one reproduced figure needs to be printed.

    Attributes
    ----------
    name:
        Experiment identifier (e.g. ``"fig09_alice_bob"``).
    anc_runs / baseline_runs:
        Per-run results keyed by scheme name.
    comparisons:
        Gain comparison against each baseline.
    ber_cdf:
        CDF of per-packet BER for ANC-decoded packets (if applicable).
    extras:
        Free-form scalar results (e.g. crossover SNR, mean overlap).
    """

    name: str
    anc_runs: List[RunResult] = field(default_factory=list)
    baseline_runs: Dict[str, List[RunResult]] = field(default_factory=dict)
    comparisons: Dict[str, ComparisonReport] = field(default_factory=dict)
    ber_cdf: Optional[EmpiricalCDF] = None
    extras: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        """Render the full experiment report as plain text."""
        lines = [f"=== {self.name} ==="]
        for baseline, comparison in self.comparisons.items():
            lines.append(comparison.render())
            lines.append("")
        if self.ber_cdf is not None:
            lines.append(
                f"ANC packet BER: mean {self.ber_cdf.mean:.4f}, "
                f"median {self.ber_cdf.median:.4f}, p90 {self.ber_cdf.quantile(0.9):.4f}"
            )
            lines.append(
                format_cdf_table(
                    self.ber_cdf,
                    points=[0.0, 0.01, 0.02, 0.04, 0.06, 0.1, 0.2, 0.3, 0.5],
                    label="BER",
                )
            )
            lines.append("")
        for key, value in sorted(self.extras.items()):
            lines.append(f"{key}: {value:.4f}")
        return "\n".join(lines)

    def to_result(self, name: str, config) -> "ExperimentResult":
        """Flatten the report into a typed, serializable result object.

        ``name`` is the registry name the result is filed under (e.g.
        ``"alice-bob"``); ``config`` is the
        :class:`~repro.experiments.config.ExperimentConfig` of the run,
        snapshotted into the result.  The returned
        :class:`~repro.results.model.ExperimentResult` carries everything
        :meth:`render` consumes, so
        :func:`repro.results.render.render_text` reproduces this report's
        text byte-for-byte.
        """
        from repro.results.adapters import experiment_report_result

        return experiment_report_result(name, self, config)

    def summary_row(self) -> Dict[str, float]:
        """Compact dictionary of the headline numbers (for the summary table)."""
        row: Dict[str, float] = {}
        for baseline, comparison in self.comparisons.items():
            row[f"gain_over_{baseline}"] = comparison.mean_gain
        if self.ber_cdf is not None:
            row["mean_ber"] = self.ber_cdf.mean
        row.update(self.extras)
        return row
