"""Single public facade over every experiment in the reproduction.

The figure runners (:data:`repro.experiments.runner.RUNNERS`) and the
scenario sweeps (:data:`repro.experiments.scenarios.SCENARIOS`) historically
lived in two registries with two dispatch paths.  This module merges them
into one namespace with one contract:

* :func:`list_experiments` — every runnable name (figures + scenarios);
* :func:`get_experiment` — the :class:`ExperimentEntry` behind a name;
* :func:`run` — execute any experiment and return a typed
  :class:`~repro.results.model.ExperimentResult` carrying the result
  tables, the config snapshot + digest, and the executing engine's
  cache/timing statistics.

Quickstart::

    from repro import api
    from repro.experiments import ExperimentConfig, ExperimentEngine

    result = api.run("alice-bob", config=ExperimentConfig.quick())
    print(result.scalars["anc_delivery_ratio"])
    print(result.to_json())                 # machine-readable export

    sweep = api.run("chain_sweep", config=ExperimentConfig.quick(),
                    engine=ExperimentEngine(workers=4), quick=True)
    gains = sweep.get_series("cells")

Text output is a view: ``render_text(result)`` (from
:mod:`repro.results`) reproduces the legacy reports byte-for-byte.
See ``docs/API.md`` for the full reference.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.exceptions import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import ExperimentEngine, default_engine
from repro.experiments.runner import RUNNERS
from repro.experiments.scenarios import SCENARIOS, run_scenario
from repro.results.adapters import attach_engine_meta, scenario_result
from repro.results.model import ExperimentResult

__all__ = [
    "ExperimentEntry",
    "experiment_entries",
    "get_experiment",
    "list_experiments",
    "run",
    "run_campaign",
    "submit",
]

#: Signature an entry's executor satisfies: (config, engine, quick) -> result.
_EntryFn = Callable[[ExperimentConfig, Optional[ExperimentEngine], bool], ExperimentResult]


@dataclass(frozen=True)
class ExperimentEntry:
    """One runnable experiment in the unified namespace.

    Attributes
    ----------
    name:
        The public name :func:`run` accepts (figure CLI name or scenario
        registry name).
    description:
        One-line description shown in ``--help`` epilogs.
    kind:
        ``"figure"`` for the paper-figure runners, ``"scenario"`` for
        registered scenario sweeps.
    execute:
        Executes the experiment and returns its structured result
        (without engine metadata — :func:`run` attaches that).
    """

    name: str
    description: str
    kind: str
    execute: _EntryFn


def _figure_entry(name: str) -> ExperimentEntry:
    """Wrap one figure runner spec as a unified entry."""
    spec = RUNNERS[name]

    def execute(
        config: ExperimentConfig, engine: Optional[ExperimentEngine], quick: bool
    ) -> ExperimentResult:
        """Run the figure experiment (``quick`` has no figure-side effect)."""
        overrides = config.sim_overrides()
        if overrides:
            raise ConfigurationError(
                f"figure experiment {spec.name!r} ignores the traffic "
                f"knob(s) {', '.join(sorted(overrides))}; they apply only "
                "to the time-domain scenarios (offered_load_sweep, "
                "queueing_delay)"
            )
        return spec.run_result(config, engine)

    return ExperimentEntry(
        name=spec.name, description=spec.description, kind="figure", execute=execute
    )


def _scenario_entry(name: str) -> ExperimentEntry:
    """Wrap one scenario spec as a unified entry."""
    spec = SCENARIOS[name]

    def execute(
        config: ExperimentConfig, engine: Optional[ExperimentEngine], quick: bool
    ) -> ExperimentResult:
        """Run the scenario sweep (``quick`` thins the sweep axis)."""
        report = run_scenario(spec, config, engine=engine, quick=quick)
        return scenario_result(report, config)

    return ExperimentEntry(
        name=spec.name, description=spec.description, kind="scenario", execute=execute
    )


def _build_registry() -> Dict[str, ExperimentEntry]:
    """Merge the figure and scenario registries into one namespace."""
    registry: Dict[str, ExperimentEntry] = {}
    for name in RUNNERS:
        registry[name] = _figure_entry(name)
    for name in SCENARIOS:
        if name in registry:
            raise ConfigurationError(
                f"scenario name {name!r} collides with a figure experiment"
            )
        registry[name] = _scenario_entry(name)
    return registry


#: The unified registry, keyed by public name.  Figures first (in their
#: registry order), then scenarios (in registration order).
REGISTRY: Dict[str, ExperimentEntry] = _build_registry()


def experiment_entries(kind: Optional[str] = None) -> List[ExperimentEntry]:
    """Every registered entry, optionally filtered by kind."""
    if kind is not None and kind not in ("figure", "scenario"):
        raise ConfigurationError(
            f"unknown experiment kind {kind!r}; choose 'figure' or 'scenario'"
        )
    return [entry for entry in REGISTRY.values() if kind is None or entry.kind == kind]


def list_experiments(kind: Optional[str] = None) -> List[str]:
    """Names of every runnable experiment, optionally filtered by kind."""
    return [entry.name for entry in experiment_entries(kind)]


def get_experiment(name: str) -> ExperimentEntry:
    """Look up one experiment in the unified namespace."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; choose from {', '.join(REGISTRY)}"
        ) from None


def run(
    name: str,
    config: Optional[ExperimentConfig] = None,
    engine: Optional[ExperimentEngine] = None,
    quick: bool = False,
    backend: Optional[str] = None,
) -> ExperimentResult:
    """Execute any registered experiment and return its structured result.

    Parameters
    ----------
    name:
        A figure name (``"alice-bob"``, ``"capacity"``, ...) or a
        scenario name (``"chain_sweep"``, ``"mesh_sweep"``, ...) — see
        :func:`list_experiments`.
    config:
        The experiment configuration; defaults to ``ExperimentConfig()``.
    engine:
        How Monte-Carlo trials execute (serial, parallel, resumed from a
        disk cache); defaults to a fresh serial engine.  The engine's
        cache/timing statistics for this run are attached to the result
        under ``meta["engine"]``.
    quick:
        Scenarios only: thin the sweep axis to its smoke-test values
        (:meth:`ScenarioSpec.values_for`).  Figures ignore it.
    backend:
        Convenience override of ``config.backend`` — the compute backend
        for the batched PHY kernels (:func:`repro.backend.available_backends`).
        ``None`` keeps whatever the config declares.  Digest-neutral
        backends (``numpy``/``numba``) reuse each other's trial caches;
        ``float32-fast`` forks the cache digest.

    Returns
    -------
    ExperimentResult
        The typed result; round-trips losslessly through
        ``ExperimentResult.from_dict(result.to_dict())`` and renders to
        the legacy text report via
        :func:`repro.results.render.render_text`.
    """
    entry = get_experiment(name)
    cfg = config if config is not None else ExperimentConfig()
    if backend is not None:
        cfg = cfg.with_overrides(backend=backend)
    eng = default_engine(engine)
    mark = len(eng.stats_log)
    started = time.perf_counter()
    result = entry.execute(cfg, eng, quick)
    elapsed = time.perf_counter() - started
    return attach_engine_meta(result, eng, eng.stats_log[mark:], elapsed)


def run_campaign(
    spec,
    store=None,
    concurrency: int = 4,
    retries: int = 2,
    backoff: float = 0.5,
    progress=None,
):
    """Run a declarative sweep grid locally and return its report.

    The facade entry into :mod:`repro.campaign`: expands ``spec``
    (a :class:`~repro.campaign.spec.CampaignSpec`, or a mapping/JSON
    text in its ``anc-repro.campaign/1`` wire format) into its job grid
    and executes it on an asyncio queue with bounded ``concurrency``
    and per-job retry.  With ``store`` set (a directory path or a
    :class:`~repro.campaign.store.ResultStore`), completed jobs are
    published to the content-addressed result store and a re-run
    resumes from it — already-stored jobs are not recomputed.

    Returns a :class:`~repro.campaign.runner.CampaignReport`; see
    ``docs/CAMPAIGNS.md`` for the grid-spec format and examples.
    """
    from repro.campaign.runner import CampaignRunner
    from repro.campaign.spec import CampaignSpec

    if isinstance(spec, str):
        spec = CampaignSpec.from_json(spec)
    elif isinstance(spec, dict):
        spec = CampaignSpec.from_dict(spec)
    runner = CampaignRunner(
        store=store,
        concurrency=concurrency,
        retries=retries,
        backoff=backoff,
        progress=progress,
    )
    return runner.run_sync(spec)


def submit(spec, base_url: str, wait: bool = False, timeout: float = 300.0):
    """Submit a campaign spec to a running campaign server over HTTP.

    ``spec`` accepts the same forms as :func:`run_campaign`.  Returns
    the server's status payload for the (idempotently) admitted
    campaign; with ``wait=True`` the call polls until the campaign
    leaves the ``running`` state (or ``timeout`` seconds pass) and
    returns the terminal status instead.
    """
    from repro.campaign import client
    from repro.campaign.spec import CampaignSpec

    if isinstance(spec, str):
        spec = CampaignSpec.from_json(spec)
    elif isinstance(spec, dict):
        spec = CampaignSpec.from_dict(spec)
    status = client.submit_campaign(base_url, spec)
    if wait:
        return client.wait_for_campaign(base_url, status["campaign"], timeout=timeout)
    return status
