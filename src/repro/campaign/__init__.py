"""Campaign orchestration: declarative sweep grids over the repro facade.

This package turns "run one experiment" (:mod:`repro.api`) into "run a
thousand of them, deterministically, resumably, and over the network":

* :mod:`repro.campaign.spec` — :class:`CampaignSpec` declares a base
  config plus axes of parameter values; grid expansion is deterministic
  (sorted axes, last axis fastest) and every job carries a stable
  content digest.
* :mod:`repro.campaign.store` — :class:`ResultStore`, a content-
  addressed store of ``anc-repro.result/1`` documents with atomic
  write-rename publication; safe under concurrent workers, and the
  resume mechanism (stored digest → job skipped).
* :mod:`repro.campaign.runner` — :class:`CampaignRunner`, the asyncio
  job queue: bounded concurrency, per-job retry with exponential
  backoff, in-flight dedupe by digest.
* :mod:`repro.campaign.server` / :mod:`repro.campaign.client` — a
  stdlib HTTP/JSON server mode (submit campaign, poll/stream progress,
  fetch results) and the matching ``urllib`` client helpers.

See ``docs/CAMPAIGNS.md`` for the user-facing guide.
"""

from repro.campaign.runner import CampaignReport, CampaignRunner, JobOutcome, execute_job
from repro.campaign.server import CampaignServer
from repro.campaign.spec import (
    CAMPAIGN_SCHEMA,
    CampaignJob,
    CampaignSpec,
    audit_snapshot_roundtrip,
    job_digest,
)
from repro.campaign.store import NullResultStore, ResultStore, StoreStats

__all__ = [
    "CAMPAIGN_SCHEMA",
    "CampaignJob",
    "CampaignReport",
    "CampaignRunner",
    "CampaignServer",
    "CampaignSpec",
    "JobOutcome",
    "NullResultStore",
    "ResultStore",
    "StoreStats",
    "audit_snapshot_roundtrip",
    "execute_job",
    "job_digest",
]
