"""Content-addressed shared result store for campaign jobs.

The PR 1 engine cache is *trial*-grained (one pickle per Monte-Carlo
trial, keyed by an engine digest).  Campaigns need one level up: a store
of whole :class:`~repro.results.model.ExperimentResult` documents keyed
by the job's content digest (:func:`repro.campaign.spec.job_digest`), so

* a re-run of a killed campaign loads every completed job from disk and
  recomputes nothing;
* two campaigns whose grids overlap — or two workers sharding one grid —
  share results instead of duplicating work;
* results are served to clients as the exact ``anc-repro.result/1`` JSON
  documents that were stored, with no re-serialization drift.

Concurrency model: writes go to a temp file in the final directory and
are published with :func:`os.replace` — atomic on POSIX — so a reader
either sees a complete document or nothing; *torn reads are impossible*.
When two workers race on the same digest the content-addressing makes
the race benign (both wrote byte-identical content — same digest, same
deterministic experiment), so last-rename-wins is a correct "one winner".
Reads of a corrupt or schema-incompatible document count as a miss and
the job simply recomputes.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.exceptions import ConfigurationError
from repro.results.model import ExperimentResult

_DIGEST = re.compile(r"^[0-9a-f]{16,64}$")


def _check_digest(digest: str) -> str:
    """Validate a store key (hex digest) before it touches the filesystem."""
    if not isinstance(digest, str) or not _DIGEST.match(digest):
        raise ConfigurationError(
            f"invalid store digest {digest!r}: expected 16-64 lowercase hex chars"
        )
    return digest


@dataclass
class StoreStats:
    """Counters of one :class:`ResultStore` instance's traffic.

    Attributes
    ----------
    hits:
        Successful :meth:`ResultStore.get` reads (valid stored document).
    misses:
        Reads that found nothing (or an unreadable/corrupt document).
    puts:
        Documents this instance published.
    races:
        Puts that found the digest already present and kept the existing
        winner instead of re-publishing.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    races: int = 0

    def as_dict(self) -> Dict[str, int]:
        """JSON-ready counter view (for status payloads and reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "races": self.races,
        }


class ResultStore:
    """Digest-keyed store of ``anc-repro.result/1`` JSON documents.

    Layout: ``<root>/<digest[:2]>/<digest>.json`` — the two-character fan
    keeps directories small for thousand-job campaigns.  Instances are
    cheap handles over the directory; any number of processes may share
    one root concurrently (see the module docstring for why that is safe).

    Parameters
    ----------
    root:
        Store directory; created on first write.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        """Bind a store handle to its root directory."""
        self.root = Path(root)
        #: Traffic counters of this handle (not shared across processes).
        self.stats = StoreStats()

    def path(self, digest: str) -> Path:
        """Filesystem path a digest's document lives at."""
        digest = _check_digest(digest)
        return self.root / digest[:2] / f"{digest}.json"

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, digest: str) -> Optional[ExperimentResult]:
        """Load one stored result; ``None`` (a miss) when absent or corrupt.

        A document that fails JSON parsing or schema validation counts as
        a miss — the caller recomputes and republished content heals the
        store — so a half-written or foreign file can never poison a
        campaign.
        """
        raw = self.get_raw(digest)
        if raw is None:
            return None
        try:
            return ExperimentResult.from_json(raw)
        except ConfigurationError:
            self.stats.hits -= 1
            self.stats.misses += 1
            return None

    def get_raw(self, digest: str) -> Optional[str]:
        """Load one stored document as its exact JSON text (or ``None``).

        The server's fetch endpoint uses this so clients receive the
        bytes that were stored, not a re-serialization.
        """
        path = self.path(digest)
        try:
            raw = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return raw

    def __contains__(self, digest: str) -> bool:
        """Membership test (does not touch the hit/miss counters)."""
        return self.path(digest).is_file()

    def digests(self) -> List[str]:
        """Every digest currently stored, sorted (a full directory scan)."""
        if not self.root.is_dir():
            return []
        found = []
        for fan in sorted(self.root.iterdir()):
            if fan.is_dir():
                found.extend(entry.stem for entry in sorted(fan.glob("*.json")))
        return found

    def __iter__(self) -> Iterator[str]:
        """Iterate the stored digests (sorted)."""
        return iter(self.digests())

    def __len__(self) -> int:
        """Number of stored documents."""
        return len(self.digests())

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, digest: str, result: ExperimentResult) -> bool:
        """Publish one result under its digest; ``False`` if already present.

        Atomic: the document is serialized to a temp file in the target
        directory and renamed into place, so concurrent readers never see
        a torn write.  If the digest is already stored the existing
        document wins and this call is a no-op (content addressing makes
        the two byte-equivalent in a correct campaign).
        """
        if not isinstance(result, ExperimentResult):
            raise ConfigurationError(
                f"store values must be ExperimentResult, got {type(result).__name__}"
            )
        path = self.path(digest)
        if path.is_file():
            self.stats.races += 1
            return False
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = result.to_json()
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.puts += 1
        return True


@dataclass
class _NullStats:
    """Stats stand-in for :class:`NullResultStore` (always zero)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    races: int = 0

    def as_dict(self) -> Dict[str, int]:
        """JSON-ready zero counters."""
        return {"hits": 0, "misses": 0, "puts": 0, "races": 0}


@dataclass
class NullResultStore:
    """A store that remembers nothing — every get misses, every put drops.

    Used when a campaign runs without a store directory: the runner's
    dedupe/resume logic stays on one code path.
    """

    stats: _NullStats = field(default_factory=_NullStats)

    def get(self, digest: str) -> Optional[ExperimentResult]:
        """Always a miss."""
        return None

    def get_raw(self, digest: str) -> Optional[str]:
        """Always a miss."""
        return None

    def put(self, digest: str, result: ExperimentResult) -> bool:
        """Accept and discard."""
        return True

    def __contains__(self, digest: str) -> bool:
        """Nothing is ever stored."""
        return False
