"""The asyncio campaign runner: bounded concurrency, retries, dedupe.

:class:`CampaignRunner` turns an expanded job list into completed
results.  Execution discipline:

* **bounded concurrency** — at most ``concurrency`` jobs run at once
  (an :class:`asyncio.Semaphore`); everything else waits in line, which
  is the admission/backpressure posture the campaign server builds on;
* **dedupe before work** — a job whose digest is already in the
  :class:`~repro.campaign.store.ResultStore` is counted as ``cached``
  and never executed, and a digest already *in flight* in this process
  (overlapping campaigns, duplicate submissions) awaits the existing
  execution instead of starting a second one;
* **retry with backoff** — a failing job is retried up to ``retries``
  times with exponential backoff; a job that exhausts its retries is
  recorded as ``failed`` without sinking the rest of the campaign;
* **store-through** — every computed result is published to the store
  atomically, so a campaign killed at any instant resumes from exactly
  the set of jobs that completed.

Experiments execute through :func:`repro.api.run` on worker threads
(:func:`asyncio.to_thread`), keeping the event loop free to serve
status/progress requests while numpy crunches.
"""

from __future__ import annotations

import asyncio
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.campaign.spec import CampaignJob, CampaignSpec
from repro.campaign.store import NullResultStore, ResultStore
from repro.exceptions import ConfigurationError
from repro.results.model import ExperimentResult

#: Executes one job and returns its result (injectable for tests).
JobFn = Callable[[CampaignJob], ExperimentResult]

#: Receives progress-event dicts as the campaign advances (sync callback).
ProgressFn = Callable[[Dict[str, Any]], None]

#: Job terminal states.
JOB_STATUSES = ("completed", "cached", "failed")


def execute_job(job: CampaignJob) -> ExperimentResult:
    """Default job executor: run the experiment through :mod:`repro.api`.

    Each job gets a fresh serial engine, so results are bit-identical to
    a direct ``api.run`` call; the campaign layer's parallelism comes
    from running *jobs* concurrently, and the engine's own trial cache /
    worker fan-out remain available underneath via a custom ``job_fn``.
    """
    from repro import api

    return api.run(job.experiment, config=job.config, quick=job.quick)


@dataclass(frozen=True)
class JobOutcome:
    """Terminal record of one campaign job.

    Attributes
    ----------
    job:
        The grid point this outcome belongs to.
    status:
        ``"completed"`` (computed this run), ``"cached"`` (served from
        the store) or ``"failed"`` (retries exhausted).
    attempts:
        Execution attempts made (0 for cached jobs).
    error:
        Last error message for failed jobs, else empty.
    elapsed_seconds:
        Wall-clock spent on the job in this run (queue wait excluded).
    """

    job: CampaignJob
    status: str
    attempts: int = 0
    error: str = ""
    elapsed_seconds: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready view (for status payloads and the CLI summary)."""
        payload = dict(self.job.describe())
        payload.update(
            status=self.status,
            attempts=self.attempts,
            error=self.error,
            elapsed_seconds=float(self.elapsed_seconds),
        )
        return payload


@dataclass
class CampaignReport:
    """Everything one :meth:`CampaignRunner.run` invocation produced.

    Attributes
    ----------
    spec:
        The campaign that ran.
    outcomes:
        One :class:`JobOutcome` per job, in grid order.
    store_stats:
        The store handle's traffic counters after the run.
    elapsed_seconds:
        Wall-clock of the whole campaign.
    """

    spec: CampaignSpec
    outcomes: List[JobOutcome] = field(default_factory=list)
    store_stats: Dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def count(self, status: str) -> int:
        """Number of jobs that ended in ``status``."""
        if status not in JOB_STATUSES:
            raise ConfigurationError(
                f"unknown job status {status!r}; choose from {JOB_STATUSES}"
            )
        return sum(1 for outcome in self.outcomes if outcome.status == status)

    @property
    def completed(self) -> int:
        """Jobs computed in this run."""
        return self.count("completed")

    @property
    def cached(self) -> int:
        """Jobs served from the result store without recomputation."""
        return self.count("cached")

    @property
    def failed(self) -> int:
        """Jobs that exhausted their retries."""
        return self.count("failed")

    @property
    def total(self) -> int:
        """Jobs in the campaign (this shard)."""
        return len(self.outcomes)

    def failures(self) -> List[JobOutcome]:
        """The failed outcomes, in grid order."""
        return [outcome for outcome in self.outcomes if outcome.status == "failed"]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (the CLI's ``--format json`` payload)."""
        return {
            "campaign": self.spec.campaign_id(),
            "name": self.spec.name,
            "experiment": self.spec.experiment,
            "total": self.total,
            "completed": self.completed,
            "cached": self.cached,
            "failed": self.failed,
            "elapsed_seconds": float(self.elapsed_seconds),
            "store": dict(self.store_stats),
            "jobs": [outcome.as_dict() for outcome in self.outcomes],
        }

    def summary(self) -> str:
        """One-paragraph plain-text summary for the CLI."""
        lines = [
            f"campaign {self.spec.name} ({self.spec.campaign_id()[:12]}): "
            f"{self.total} job(s) — {self.completed} computed, "
            f"{self.cached} from store, {self.failed} failed "
            f"in {self.elapsed_seconds:.2f}s"
        ]
        for outcome in self.failures():
            lines.append(
                f"  FAILED job {outcome.job.index} "
                f"({dict(outcome.job.overrides)!r}): {outcome.error}"
            )
        return "\n".join(lines)


class CampaignRunner:
    """Runs campaign job sets under one concurrency/retry policy.

    Parameters
    ----------
    store:
        Shared result store (a directory path, a
        :class:`~repro.campaign.store.ResultStore`, or ``None`` for a
        store-less run that recomputes everything).
    concurrency:
        Maximum jobs in flight at once.
    retries:
        Re-executions allowed per job after its first failure.
    backoff:
        Base delay in seconds before retry ``n`` (sleeps
        ``backoff * 2**n``); 0 disables the delay (tests).
    job_fn:
        The executor mapping a job to its result; defaults to
        :func:`execute_job`.  Injectable so tests (and embedders that
        want engine workers per job) control execution.
    progress:
        Optional callback receiving one event dict per job transition
        (``started`` / ``retry`` / ``completed`` / ``cached`` /
        ``failed``) — the hook the server's status and event-stream
        endpoints hang off.
    """

    def __init__(
        self,
        store: Any = None,
        concurrency: int = 4,
        retries: int = 2,
        backoff: float = 0.5,
        job_fn: Optional[JobFn] = None,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        """Validate and freeze the execution policy."""
        if int(concurrency) < 1:
            raise ConfigurationError("concurrency must be a positive integer")
        if int(retries) < 0:
            raise ConfigurationError("retries must be non-negative")
        if float(backoff) < 0:
            raise ConfigurationError("backoff must be non-negative")
        if store is None:
            self.store: Any = NullResultStore()
        elif isinstance(store, (ResultStore, NullResultStore)):
            self.store = store
        else:
            self.store = ResultStore(store)
        self.concurrency = int(concurrency)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.job_fn: JobFn = job_fn if job_fn is not None else execute_job
        self.progress = progress
        #: Digest -> in-flight execution future; overlapping campaigns on
        #: one runner await the same future instead of recomputing.
        self._inflight: Dict[str, "asyncio.Future[ExperimentResult]"] = {}
        #: One semaphore per event loop, shared by every campaign running
        #: on that loop, so the concurrency bound is runner-global (the
        #: server submits many campaigns through one runner).
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._semaphore_loop: Optional[asyncio.AbstractEventLoop] = None

    def _get_semaphore(self) -> asyncio.Semaphore:
        """The loop-bound concurrency gate (rebuilt when the loop changes)."""
        loop = asyncio.get_running_loop()
        if self._semaphore is None or self._semaphore_loop is not loop:
            self._semaphore = asyncio.Semaphore(self.concurrency)
            self._semaphore_loop = loop
        return self._semaphore

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def _emit(
        self,
        progress: Optional[ProgressFn],
        event: str,
        job: CampaignJob,
        **extra: Any,
    ) -> None:
        """Deliver one progress event (best-effort; callbacks must not sink)."""
        if progress is None:
            return
        payload = {"event": event, **job.describe(), **extra}
        progress(payload)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    async def run(
        self,
        spec: CampaignSpec,
        shard_index: int = 0,
        shard_count: int = 1,
        progress: Optional[ProgressFn] = None,
    ) -> CampaignReport:
        """Run one campaign (shard) to completion and report every outcome."""
        return await self.run_jobs(
            spec, spec.jobs(shard_index, shard_count), progress=progress
        )

    async def run_jobs(
        self,
        spec: CampaignSpec,
        jobs: Sequence[CampaignJob],
        progress: Optional[ProgressFn] = None,
    ) -> CampaignReport:
        """Run an explicit job list (already expanded/sharded) to completion.

        ``progress`` overrides the runner-level callback for this
        campaign only — how the server routes one shared runner's events
        to the right campaign's subscribers.
        """
        started = time.perf_counter()
        watcher = progress if progress is not None else self.progress
        semaphore = self._get_semaphore()
        outcomes = await asyncio.gather(
            *(self._run_job(job, semaphore, watcher) for job in jobs)
        )
        return CampaignReport(
            spec=spec,
            outcomes=list(outcomes),
            store_stats=self.store.stats.as_dict(),
            elapsed_seconds=time.perf_counter() - started,
        )

    async def _run_job(
        self,
        job: CampaignJob,
        semaphore: asyncio.Semaphore,
        progress: Optional[ProgressFn],
    ) -> JobOutcome:
        """Dedupe, execute-with-retries and store one job."""
        job_started = time.perf_counter()
        cached = self.store.get(job.digest)
        if cached is not None:
            self._emit(progress, "cached", job)
            return JobOutcome(
                job=job,
                status="cached",
                attempts=0,
                elapsed_seconds=time.perf_counter() - job_started,
            )

        existing = self._inflight.get(job.digest)
        if existing is not None:
            # Same digest already executing in this process (overlapping
            # campaign or duplicate submission): share its result.
            try:
                result = await asyncio.shield(existing)
            except Exception as error:  # the executing job reports the failure
                return JobOutcome(
                    job=job,
                    status="failed",
                    attempts=0,
                    error=f"shared in-flight job failed: {error}",
                    elapsed_seconds=time.perf_counter() - job_started,
                )
            del result  # stored by the executing job
            self._emit(progress, "cached", job, shared=True)
            return JobOutcome(
                job=job,
                status="cached",
                attempts=0,
                elapsed_seconds=time.perf_counter() - job_started,
            )

        future: "asyncio.Future[ExperimentResult]" = (
            asyncio.get_running_loop().create_future()
        )
        self._inflight[job.digest] = future
        try:
            async with semaphore:
                self._emit(progress, "started", job)
                attempts = 0
                last_error = ""
                while attempts <= self.retries:
                    attempts += 1
                    try:
                        result = await asyncio.to_thread(self.job_fn, job)
                    except Exception as error:
                        last_error = "".join(
                            traceback.format_exception_only(type(error), error)
                        ).strip()
                        if attempts <= self.retries:
                            delay = self.backoff * (2 ** (attempts - 1))
                            self._emit(
                                progress, "retry", job, attempt=attempts,
                                error=last_error, delay_seconds=delay,
                            )
                            if delay:
                                await asyncio.sleep(delay)
                        continue
                    self.store.put(job.digest, result)
                    future.set_result(result)
                    self._emit(progress, "completed", job, attempts=attempts)
                    return JobOutcome(
                        job=job,
                        status="completed",
                        attempts=attempts,
                        elapsed_seconds=time.perf_counter() - job_started,
                    )
            future.set_exception(
                ConfigurationError(f"job {job.digest[:12]} failed: {last_error}")
            )
            # A shared waiter may or may not exist; without this the
            # exception would be logged as "never retrieved".
            future.exception()
            self._emit(progress, "failed", job, attempts=attempts, error=last_error)
            return JobOutcome(
                job=job,
                status="failed",
                attempts=attempts,
                error=last_error,
                elapsed_seconds=time.perf_counter() - job_started,
            )
        finally:
            self._inflight.pop(job.digest, None)

    def run_sync(
        self,
        spec: CampaignSpec,
        shard_index: int = 0,
        shard_count: int = 1,
    ) -> CampaignReport:
        """Blocking wrapper: run a campaign on a private event loop."""
        return asyncio.run(self.run(spec, shard_index, shard_count))
