"""Declarative sweep grids: :class:`CampaignSpec` and its job expansion.

A *campaign* is a whole family of experiment runs declared as data: one
experiment name, a base configuration, and one or more *axes* — config
fields with a list of values each.  The spec expands into the cartesian
product of the axes, in a deterministic order, with a stable
content-addressing digest per job, so that

* the same spec always expands to the same jobs in the same order (the
  grid can be sharded across workers or machines with
  :meth:`CampaignSpec.jobs` and every shard agrees on the numbering);
* a job's digest identifies its *content* — experiment, quick flag and
  the full config snapshot — so two campaigns whose grids overlap share
  results through the :class:`~repro.campaign.store.ResultStore` instead
  of recomputing the overlap.

Validation happens up front, at spec construction and expansion time:
axis names must be real :class:`~repro.experiments.config.ExperimentConfig`
fields, time-domain traffic knobs are checked against the target
scenario's ``consumes`` contract (figures reject them outright), and
every expanded config is audited to round-trip through
``ExperimentConfig.from_snapshot(config.snapshot())`` so omission rules
in :meth:`~repro.experiments.config.ExperimentConfig.snapshot` can never
make two distinct grid points collide on one digest.

See ``docs/CAMPAIGNS.md`` for the JSON grid-spec format and worked
examples.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.experiments.config import ExperimentConfig

#: Schema tag of the serialized spec (and the job-digest payload).  Bump
#: on any change that alters digests, so old stores are never misread.
CAMPAIGN_SCHEMA = "anc-repro.campaign/1"

#: Config knobs only the time-domain traffic scenarios consume; axes and
#: base overrides naming one are validated against the target scenario's
#: ``consumes`` declaration (see ``docs/SCENARIOS.md``).
TRAFFIC_KNOBS = ("arrival_rate", "sim_duration", "mac_policy")

#: Config fields campaigns may set (every ExperimentConfig field).
CONFIG_FIELDS = tuple(f.name for f in fields(ExperimentConfig))


def _jsonable_axis_value(value: Any) -> bool:
    """Is ``value`` usable as an axis point (a JSON scalar or flat list)?"""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return True
    if isinstance(value, (list, tuple)):
        return all(isinstance(item, (bool, int, float, str)) for item in value)
    return False


def job_digest(experiment: str, quick: bool, config: ExperimentConfig) -> str:
    """Content digest of one job: experiment + quick flag + config snapshot.

    The digest is the store key: any config field that survives
    :meth:`~repro.experiments.config.ExperimentConfig.snapshot` forks it,
    and the snapshot's omission rules are audited to be injective by
    :func:`audit_snapshot_roundtrip`, so distinct configs can never share
    a digest.  Execution knobs the snapshot keeps (``batch_size``, a
    non-default ``backend``) fork the campaign digest too — deliberately
    conservative; the engine's own trial cache still dedupes underneath.
    """
    payload = {
        "schema": CAMPAIGN_SCHEMA,
        "experiment": experiment,
        "quick": bool(quick),
        "config": config.snapshot(),
    }
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def audit_snapshot_roundtrip(config: ExperimentConfig) -> ExperimentConfig:
    """Assert one config survives the snapshot round-trip unchanged.

    ``snapshot()`` omits default-valued knobs so historical digests stay
    stable; that omission is only safe for content addressing if it is
    *injective* — every knob a scenario ``consumes`` (and every other
    field) must reconstruct to an equal config.  A failure here means two
    distinct grid points would collide on one digest, so it raises
    instead of letting a campaign silently dedupe wrong results.
    """
    rebuilt = ExperimentConfig.from_snapshot(config.snapshot())
    if rebuilt != config:
        raise ConfigurationError(
            "config does not round-trip through snapshot(): "
            f"{config!r} reconstructed as {rebuilt!r}; a snapshot omission "
            "rule is lossy and campaign digests could collide"
        )
    return config


@dataclass(frozen=True)
class CampaignJob:
    """One expanded grid point of a campaign.

    Attributes
    ----------
    index:
        Position in the campaign's deterministic expansion order.
    experiment:
        The :func:`repro.api.run` name the job executes.
    quick:
        Whether scenario sweeps run at their thinned smoke-test axis.
    overrides:
        The ``(field, value)`` pairs this job's axes contributed, in
        axis-name order — what distinguishes it from the base config.
    config:
        The fully built, validated :class:`ExperimentConfig`.
    digest:
        Content digest (:func:`job_digest`) — the result-store key.
    """

    index: int
    experiment: str
    quick: bool
    overrides: Tuple[Tuple[str, Any], ...]
    config: ExperimentConfig
    digest: str

    def describe(self) -> Dict[str, Any]:
        """JSON-ready one-line description (for status payloads and logs)."""
        return {
            "index": self.index,
            "experiment": self.experiment,
            "digest": self.digest,
            "overrides": {name: value for name, value in self.overrides},
        }


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep grid over one experiment.

    Attributes
    ----------
    experiment:
        Any name :func:`repro.api.run` accepts (figure or scenario).
    base:
        Config-field overrides applied to every job before its axis
        values (e.g. ``{"runs": 2, "packets_per_run": 2}``).
    axes:
        Mapping of config-field name to the values it sweeps.  The grid
        is the cartesian product of all axes; expansion iterates axes in
        sorted-name order, last axis fastest.
    quick:
        Scenario sweeps only: thin the sweep axis to smoke-test values.
    name:
        Optional human label carried through status payloads; defaults
        to the experiment name.  Not part of any digest.
    """

    experiment: str
    base: Mapping[str, Any] = field(default_factory=dict)
    axes: Mapping[str, Tuple[Any, ...]] = field(default_factory=dict)
    quick: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        """Validate field names, axis values and the traffic-knob contract."""
        object.__setattr__(self, "base", dict(self.base))
        object.__setattr__(
            self, "axes", {str(k): tuple(v) for k, v in dict(self.axes).items()}
        )
        object.__setattr__(self, "name", str(self.name) or self.experiment)
        entry = self._entry()
        unknown = sorted((set(self.base) | set(self.axes)) - set(CONFIG_FIELDS))
        if unknown:
            raise ConfigurationError(
                f"campaign sets unknown config field(s) {', '.join(unknown)}; "
                f"valid fields are {', '.join(CONFIG_FIELDS)}"
            )
        overlap = sorted(set(self.base) & set(self.axes))
        if overlap:
            raise ConfigurationError(
                f"campaign field(s) {', '.join(overlap)} appear in both "
                "base and axes; an axis already overrides the base"
            )
        for axis, values in self.axes.items():
            if not values:
                raise ConfigurationError(f"axis {axis!r} has no values")
            if not all(_jsonable_axis_value(v) for v in values):
                raise ConfigurationError(
                    f"axis {axis!r} values must be JSON scalars (or flat "
                    "lists for tuple-typed fields); got "
                    f"{[v for v in values if not _jsonable_axis_value(v)]!r}"
                )
        self._check_traffic_knobs(entry.kind)

    def _entry(self) -> Any:
        """Resolve (and thereby validate) the target experiment entry."""
        from repro import api

        return api.get_experiment(self.experiment)

    def _check_traffic_knobs(self, kind: str) -> None:
        """Enforce the ``consumes`` contract before any job executes.

        The per-run check in :func:`repro.experiments.scenarios.run_scenario`
        would catch this too, but only after the campaign has been
        admitted and sharded — a 1000-job grid that fails on job one is a
        spec bug, so it is rejected at declaration time.
        """
        set_knobs = sorted(
            knob for knob in TRAFFIC_KNOBS if knob in self.base or knob in self.axes
        )
        if not set_knobs:
            return
        if kind == "figure":
            raise ConfigurationError(
                f"figure experiment {self.experiment!r} ignores the traffic "
                f"knob(s) {', '.join(set_knobs)}; they apply only to the "
                "time-domain scenarios"
            )
        from repro.experiments.scenarios import SCENARIOS

        consumes = set(SCENARIOS[self.experiment].consumes)
        unconsumed = sorted(set(set_knobs) - consumes)
        if unconsumed:
            raise ConfigurationError(
                f"scenario {self.experiment!r} does not consume the traffic "
                f"knob(s) {', '.join(unconsumed)}; its consumes contract is "
                f"({', '.join(sorted(consumes)) or 'empty'})"
            )

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    @property
    def axis_names(self) -> Tuple[str, ...]:
        """Axis names in expansion order (sorted; last varies fastest)."""
        return tuple(sorted(self.axes))

    @property
    def total_jobs(self) -> int:
        """Number of grid points the spec expands to."""
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def jobs(self, shard_index: int = 0, shard_count: int = 1) -> List[CampaignJob]:
        """Expand the grid into its (optionally sharded) job list.

        Expansion is deterministic: axes iterate in sorted-name order
        with the last axis varying fastest, and jobs are numbered in that
        order.  Shard ``i`` of ``n`` takes jobs ``i, i+n, i+2n, ...`` —
        round-robin, so every shard sees a representative slice of the
        grid and the union over shards is exactly the full grid.

        Every job's config is validated (construction runs the normal
        ``ExperimentConfig`` checks), audited for snapshot round-trip
        (:func:`audit_snapshot_roundtrip`), and digest-checked for
        uniqueness — duplicate grid points (e.g. a repeated axis value)
        raise instead of silently deduping.
        """
        if shard_count < 1 or not 0 <= shard_index < shard_count:
            raise ConfigurationError(
                f"invalid shard {shard_index}/{shard_count}: need "
                "0 <= shard_index < shard_count"
            )
        base_config = ExperimentConfig.from_snapshot(dict(self.base))
        names = self.axis_names
        jobs: List[CampaignJob] = []
        seen: Dict[str, int] = {}
        for index, values in enumerate(
            itertools.product(*(self.axes[name] for name in names))
        ):
            overrides = tuple(zip(names, values))
            config = audit_snapshot_roundtrip(
                base_config.with_overrides(
                    **{
                        name: ExperimentConfig.coerce_field(name, value)
                        for name, value in overrides
                    }
                )
            )
            digest = job_digest(self.experiment, self.quick, config)
            if digest in seen:
                raise ConfigurationError(
                    f"duplicate grid point: jobs {seen[digest]} and {index} "
                    f"expand to the same config (digest {digest[:12]}); "
                    "check the axes for repeated values"
                )
            seen[digest] = index
            jobs.append(
                CampaignJob(
                    index=index,
                    experiment=self.experiment,
                    quick=self.quick,
                    overrides=overrides,
                    config=config,
                    digest=digest,
                )
            )
        return [job for job in jobs if job.index % shard_count == shard_index]

    def campaign_id(self) -> str:
        """Stable content id of the whole campaign (spec digest, 20 hex).

        Content-addressed like job digests: resubmitting the same spec to
        a server yields the same id, which is what lets the server shed
        duplicate submissions instead of queueing the same grid twice.
        ``name`` is a display label and deliberately excluded.
        """
        payload = dict(self.to_dict())
        payload.pop("name", None)
        blob = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (the wire/spec-file format)."""
        return {
            "schema": CAMPAIGN_SCHEMA,
            "experiment": self.experiment,
            "name": self.name,
            "quick": self.quick,
            "base": dict(self.base),
            "axes": {name: list(values) for name, values in self.axes.items()},
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize the spec to its JSON wire format."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_dict` output (or a spec file).

        The ``schema`` tag is optional on input (hand-written spec files
        may omit it) but rejected when present and unknown.
        """
        if not isinstance(payload, Mapping):
            raise ConfigurationError("campaign spec must be a JSON object")
        schema = payload.get("schema", CAMPAIGN_SCHEMA)
        if schema != CAMPAIGN_SCHEMA:
            raise ConfigurationError(
                f"unsupported campaign schema {schema!r} "
                f"(expected {CAMPAIGN_SCHEMA!r})"
            )
        unknown = sorted(
            set(payload) - {"schema", "experiment", "name", "quick", "base", "axes"}
        )
        if unknown:
            raise ConfigurationError(
                f"campaign spec has unknown key(s): {', '.join(unknown)}"
            )
        try:
            experiment = payload["experiment"]
        except KeyError:
            raise ConfigurationError(
                "campaign spec is missing the 'experiment' key"
            ) from None
        axes = payload.get("axes", {})
        if not isinstance(axes, Mapping):
            raise ConfigurationError("campaign 'axes' must be an object")
        return cls(
            experiment=str(experiment),
            base=dict(payload.get("base", {})),
            axes={str(k): tuple(v) for k, v in axes.items()},
            quick=bool(payload.get("quick", False)),
            name=str(payload.get("name", "")),
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        """Parse a spec from its JSON wire format."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"invalid campaign spec JSON: {error}") from None
        return cls.from_dict(payload)
