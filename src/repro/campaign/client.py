"""Stdlib HTTP client helpers for the campaign server.

Thin ``urllib`` wrappers over the endpoints in
:mod:`repro.campaign.server` so the CLI, the examples and the CI smoke
test all talk to a server the same way.  Each helper takes a base URL
(``http://127.0.0.1:8642``), does one blocking request, and returns the
decoded JSON payload; HTTP errors surface as
:class:`~repro.exceptions.ConfigurationError` with the server's error
message attached.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.campaign.spec import CampaignSpec
from repro.exceptions import ConfigurationError
from repro.results.model import ExperimentResult


def _request(
    url: str, data: Optional[bytes] = None, timeout: float = 30.0
) -> Dict[str, Any]:
    """One blocking JSON request; raises ConfigurationError on HTTP errors."""
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method="POST" if data is not None else "GET",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            payload = response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        detail = error.read().decode("utf-8", errors="replace")
        try:
            detail = json.loads(detail).get("error", detail)
        except (ValueError, AttributeError):
            pass
        raise ConfigurationError(
            f"campaign server returned {error.code} for {url}: {detail}"
        ) from None
    except urllib.error.URLError as error:
        raise ConfigurationError(
            f"cannot reach campaign server at {url}: {error.reason}"
        ) from None
    try:
        return json.loads(payload)
    except ValueError as error:
        raise ConfigurationError(
            f"campaign server sent invalid JSON from {url}: {error}"
        ) from None


def server_health(base_url: str, timeout: float = 30.0) -> Dict[str, Any]:
    """``GET /healthz`` — liveness, version and store counters."""
    return _request(f"{base_url.rstrip('/')}/healthz", timeout=timeout)


def submit_campaign(
    base_url: str, spec: CampaignSpec, timeout: float = 30.0
) -> Dict[str, Any]:
    """``POST /campaigns`` — submit a spec; returns the campaign status.

    Idempotent: resubmitting an identical spec returns the existing
    campaign's status with ``"created": false``.
    """
    return _request(
        f"{base_url.rstrip('/')}/campaigns",
        data=spec.to_json().encode("utf-8"),
        timeout=timeout,
    )


def campaign_status(
    base_url: str, campaign_id: str, timeout: float = 30.0
) -> Dict[str, Any]:
    """``GET /campaigns/<id>`` — one campaign's progress counters."""
    return _request(
        f"{base_url.rstrip('/')}/campaigns/{campaign_id}", timeout=timeout
    )


def list_campaigns(base_url: str, timeout: float = 30.0) -> List[Dict[str, Any]]:
    """``GET /campaigns`` — status of every campaign the server knows."""
    return _request(f"{base_url.rstrip('/')}/campaigns", timeout=timeout)[
        "campaigns"
    ]


def campaign_results(
    base_url: str, campaign_id: str, timeout: float = 60.0
) -> List[ExperimentResult]:
    """``GET /campaigns/<id>/results`` — parsed result documents.

    Each returned document is validated through
    :meth:`ExperimentResult.from_dict`, so a malformed server response
    fails loudly instead of flowing into analysis.
    """
    payload = _request(
        f"{base_url.rstrip('/')}/campaigns/{campaign_id}/results", timeout=timeout
    )
    return [ExperimentResult.from_dict(doc) for doc in payload["results"]]


def fetch_result(
    base_url: str, digest: str, timeout: float = 30.0
) -> ExperimentResult:
    """``GET /results/<digest>`` — one stored result document, validated."""
    payload = _request(f"{base_url.rstrip('/')}/results/{digest}", timeout=timeout)
    return ExperimentResult.from_dict(payload)


def wait_for_campaign(
    base_url: str,
    campaign_id: str,
    timeout: float = 300.0,
    poll_interval: float = 0.25,
) -> Dict[str, Any]:
    """Poll a campaign's status until it leaves the ``running`` state.

    Returns the terminal status payload; raises ConfigurationError if
    the deadline passes first.
    """
    deadline = time.monotonic() + timeout
    while True:
        status = campaign_status(base_url, campaign_id)
        if status["state"] != "running":
            return status
        if time.monotonic() >= deadline:
            raise ConfigurationError(
                f"campaign {campaign_id} still running after {timeout:.0f}s "
                f"({status['pending']} of {status['total']} job(s) pending)"
            )
        time.sleep(poll_interval)


def wait_for_server(
    base_url: str, timeout: float = 30.0, poll_interval: float = 0.1
) -> Dict[str, Any]:
    """Poll ``/healthz`` until the server answers (startup handshake)."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            return server_health(base_url, timeout=poll_interval + 1.0)
        except ConfigurationError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(poll_interval)
