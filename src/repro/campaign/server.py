"""Long-running campaign server: HTTP/JSON over ``asyncio.start_server``.

The "serve experiments, not runs" posture: a single process owns a
shared :class:`~repro.campaign.store.ResultStore` and a
:class:`~repro.campaign.runner.CampaignRunner`, accepts campaign specs
over HTTP, runs them under one global concurrency bound, and serves
progress and results to any number of concurrent clients.  Everything is
stdlib — a deliberately small HTTP/1.1 subset (request line, headers,
``Content-Length`` bodies, ``Connection: close``) parsed directly off
the asyncio streams.

Endpoints (all JSON; see ``docs/CAMPAIGNS.md`` for examples):

=====================================  =====================================
``GET  /healthz``                      liveness + version + store counters
``POST /campaigns``                    submit a spec; idempotent by content
``GET  /campaigns``                    status of every known campaign
``GET  /campaigns/<id>``               one campaign's status/progress
``GET  /campaigns/<id>/results``       completed results (result/1 docs)
``GET  /campaigns/<id>/events``        NDJSON progress stream until done
``GET  /results/<digest>``             one stored result document
=====================================  =====================================

Admission control: campaigns are *content-addressed* — resubmitting a
spec returns the existing campaign instead of queueing the grid twice —
and a submission whose jobs would push the server's pending total past
``max_pending_jobs`` is refused with 503 rather than buffered without
bound (the CAC/backpressure framing in the ROADMAP: shed at admission,
don't collapse under queueing).
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import repro
from repro.campaign.runner import CampaignRunner, ProgressFn
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.exceptions import ConfigurationError

#: Largest request body the server will read (a spec, not a dataset).
MAX_BODY_BYTES = 4 << 20

#: Campaign lifecycle states.
CAMPAIGN_STATES = ("running", "completed", "failed")


@dataclass
class CampaignState:
    """Server-side bookkeeping of one submitted campaign.

    Attributes
    ----------
    campaign_id:
        Content id of the spec (:meth:`CampaignSpec.campaign_id`).
    spec:
        The submitted spec.
    total:
        Jobs in the grid.
    digests:
        Per-job content digests, in grid order (result-store keys).
    state:
        ``"running"`` until every job is terminal, then ``"completed"``
        (or ``"failed"`` if any job exhausted its retries).
    counters:
        Terminal-job counts so far: completed / cached / failed.
    submitted_at:
        Server-clock submission timestamp (seconds).
    subscribers:
        Event queues of the currently connected ``/events`` streams.
    task:
        The asyncio task driving the campaign.
    """

    campaign_id: str
    spec: CampaignSpec
    total: int
    digests: List[str]
    state: str = "running"
    counters: Dict[str, int] = field(
        default_factory=lambda: {"completed": 0, "cached": 0, "failed": 0}
    )
    submitted_at: float = 0.0
    subscribers: List["asyncio.Queue[Optional[Dict[str, Any]]]"] = field(
        default_factory=list
    )
    task: Optional["asyncio.Task[Any]"] = None

    @property
    def done_jobs(self) -> int:
        """Jobs in a terminal state so far."""
        return sum(self.counters.values())

    @property
    def pending_jobs(self) -> int:
        """Jobs not yet terminal (what admission control sums)."""
        return max(0, self.total - self.done_jobs)

    def status(self) -> Dict[str, Any]:
        """JSON-ready status payload (the ``GET /campaigns/<id>`` body)."""
        return {
            "campaign": self.campaign_id,
            "name": self.spec.name,
            "experiment": self.spec.experiment,
            "quick": self.spec.quick,
            "state": self.state,
            "total": self.total,
            "completed": self.counters["completed"],
            "cached": self.counters["cached"],
            "failed": self.counters["failed"],
            "pending": self.pending_jobs,
            "submitted_at": self.submitted_at,
        }


class CampaignServer:
    """Serves campaign submission, progress and results over HTTP/JSON.

    Parameters
    ----------
    store:
        The shared result store (path or instance) every campaign reads
        from and publishes to.
    host / port:
        Bind address; port 0 picks a free port (see :attr:`port` after
        :meth:`start`).
    concurrency:
        Global bound on jobs in flight across *all* campaigns.
    retries / backoff:
        Per-job retry policy (see :class:`CampaignRunner`).
    max_pending_jobs:
        Admission bound: a submission is refused with 503 when the
        pending-job total (queued + running, across campaigns) would
        exceed this.
    job_fn:
        Injectable job executor (tests).
    """

    def __init__(
        self,
        store: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        concurrency: int = 2,
        retries: int = 1,
        backoff: float = 0.5,
        max_pending_jobs: int = 10_000,
        job_fn: Any = None,
    ) -> None:
        """Wire the server's store, runner and admission policy."""
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.host = host
        self.port = int(port)
        if int(max_pending_jobs) < 1:
            raise ConfigurationError("max_pending_jobs must be a positive integer")
        self.max_pending_jobs = int(max_pending_jobs)
        self.runner = CampaignRunner(
            store=self.store,
            concurrency=concurrency,
            retries=retries,
            backoff=backoff,
            job_fn=job_fn,
        )
        self._campaigns: Dict[str, CampaignState] = {}
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket (resolves ``port`` when it was 0)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        sockets = self._server.sockets or ()
        for sock in sockets:
            self.port = sock.getsockname()[1]
            break

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop listening and cancel every running campaign task."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for state in self._campaigns.values():
            if state.task is not None and not state.task.done():
                state.task.cancel()

    # ------------------------------------------------------------------
    # Campaign management
    # ------------------------------------------------------------------
    def pending_jobs(self) -> int:
        """Pending (queued + running) jobs across every campaign."""
        return sum(state.pending_jobs for state in self._campaigns.values())

    def submit(self, spec: CampaignSpec) -> Tuple[CampaignState, bool]:
        """Admit one campaign; returns ``(state, created)``.

        Idempotent: a spec whose content id is already known returns the
        existing campaign (whatever its state) — duplicate work is shed
        at the door.  New campaigns are admitted only while the pending
        total stays within ``max_pending_jobs``.
        """
        campaign_id = spec.campaign_id()
        existing = self._campaigns.get(campaign_id)
        if existing is not None:
            return existing, False
        jobs = spec.jobs()  # validates the grid before admission
        if self.pending_jobs() + len(jobs) > self.max_pending_jobs:
            raise OverloadedError(
                f"admission refused: {len(jobs)} new job(s) would exceed the "
                f"pending bound of {self.max_pending_jobs}"
            )
        state = CampaignState(
            campaign_id=campaign_id,
            spec=spec,
            total=len(jobs),
            digests=[job.digest for job in jobs],
            submitted_at=time.time(),
        )
        self._campaigns[campaign_id] = state
        state.task = asyncio.get_running_loop().create_task(
            self._drive_campaign(state, jobs)
        )
        return state, True

    def _progress_for(self, state: CampaignState) -> ProgressFn:
        """Progress callback updating one campaign's counters/subscribers."""

        def progress(event: Dict[str, Any]) -> None:
            """Count terminal transitions and fan the event to subscribers."""
            kind = event.get("event")
            if kind in state.counters:
                state.counters[kind] += 1  # terminal transitions only
            payload = {"campaign": state.campaign_id, **event}
            for queue in list(state.subscribers):
                try:
                    queue.put_nowait(payload)
                except asyncio.QueueFull:  # slow consumer: drop, don't block
                    pass

        return progress

    async def _drive_campaign(self, state: CampaignState, jobs: List[Any]) -> None:
        """Run one admitted campaign and settle its terminal state."""
        try:
            report = await self.runner.run_jobs(
                state.spec, jobs, progress=self._progress_for(state)
            )
            state.state = "failed" if report.failed else "completed"
        except asyncio.CancelledError:
            state.state = "failed"
            raise
        except Exception:  # defensive: a driver bug must not hang clients
            state.state = "failed"
        finally:
            for queue in list(state.subscribers):
                try:
                    queue.put_nowait(None)  # end-of-stream sentinel
                except asyncio.QueueFull:
                    pass

    def get_campaign(self, campaign_id: str) -> CampaignState:
        """Look up one campaign or raise :class:`NotFoundError`."""
        try:
            return self._campaigns[campaign_id]
        except KeyError:
            raise NotFoundError(f"unknown campaign {campaign_id!r}") from None

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Parse one request, dispatch it, always close the connection."""
        try:
            method, target, headers = await self._read_head(reader)
            body = await self._read_body(reader, headers)
            await self._dispatch(method, target, body, writer)
        except HTTPError as error:
            await self._send_json(
                writer, error.status, {"error": str(error)}
            )
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # client went away mid-request/response
        except Exception as error:  # defensive: one bad request != dead server
            try:
                await self._send_json(writer, 500, {"error": f"internal error: {error}"})
            except OSError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    @staticmethod
    async def _read_head(
        reader: asyncio.StreamReader,
    ) -> Tuple[str, str, Dict[str, str]]:
        """Read and parse the request line + headers."""
        raw = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout=30.0)
        head = raw.decode("latin-1").split("\r\n")
        parts = head[0].split()
        if len(parts) != 3:
            raise HTTPError(400, f"malformed request line {head[0]!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for line in head[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), target, headers

    @staticmethod
    async def _read_body(
        reader: asyncio.StreamReader, headers: Dict[str, str]
    ) -> bytes:
        """Read a ``Content-Length`` body (bounded)."""
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > MAX_BODY_BYTES:
            raise HTTPError(413, f"request body of {length} bytes refused")
        if length == 0:
            return b""
        return await asyncio.wait_for(reader.readexactly(length), timeout=60.0)

    @staticmethod
    async def _send_response(
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        """Write one complete HTTP/1.1 response (connection closes after)."""
        reason = {
            200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error", 503: "Service Unavailable",
        }.get(status, "OK")
        head = [f"HTTP/1.1 {status} {reason}"]
        head.append(f"Content-Type: {content_type}")
        head.append(f"Content-Length: {len(body)}")
        head.append("Connection: close")
        for name, value in extra_headers:
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, payload: Any
    ) -> None:
        """Serialize and send one JSON response."""
        body = json.dumps(payload, indent=2).encode("utf-8")
        await self._send_response(writer, status, body)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, target: str, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        """Route one request to its endpoint handler."""
        path = target.split("?", 1)[0]
        segments = [part for part in path.split("/") if part]
        if path == "/healthz" and method == "GET":
            await self._send_json(writer, 200, {
                "status": "ok",
                "version": getattr(repro, "__version__", "0"),
                "campaigns": len(self._campaigns),
                "pending_jobs": self.pending_jobs(),
                "store": self.store.stats.as_dict(),
            })
            return
        if segments[:1] == ["campaigns"]:
            await self._dispatch_campaigns(method, segments[1:], body, writer)
            return
        if segments[:1] == ["results"] and len(segments) == 2 and method == "GET":
            raw = self.store.get_raw(segments[1])
            if raw is None:
                raise NotFoundError(f"no stored result for digest {segments[1]!r}")
            await self._send_response(writer, 200, raw.encode("utf-8"))
            return
        raise HTTPError(404, f"no such endpoint: {method} {path}")

    async def _dispatch_campaigns(
        self,
        method: str,
        rest: List[str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Handle the ``/campaigns...`` endpoint family."""
        if not rest:
            if method == "POST":
                await self._handle_submit(body, writer)
                return
            if method == "GET":
                await self._send_json(writer, 200, {
                    "campaigns": [
                        state.status() for state in self._campaigns.values()
                    ],
                })
                return
            raise HTTPError(405, f"{method} not allowed on /campaigns")
        state = self.get_campaign(rest[0])
        if len(rest) == 1 and method == "GET":
            await self._send_json(writer, 200, state.status())
            return
        if len(rest) == 2 and method == "GET" and rest[1] == "results":
            await self._handle_results(state, writer)
            return
        if len(rest) == 2 and method == "GET" and rest[1] == "events":
            await self._handle_events(state, writer)
            return
        raise HTTPError(404, f"no such campaign endpoint: {'/'.join(rest[1:])}")

    async def _handle_submit(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        """POST /campaigns — parse, admit (or dedupe), answer with status."""
        try:
            spec = CampaignSpec.from_json(body.decode("utf-8"))
        except (UnicodeDecodeError, ConfigurationError) as error:
            raise HTTPError(400, f"bad campaign spec: {error}") from None
        try:
            state, created = self.submit(spec)
        except OverloadedError:
            raise
        except ConfigurationError as error:
            raise HTTPError(400, f"bad campaign spec: {error}") from None
        payload = state.status()
        payload["created"] = created
        await self._send_json(writer, 202 if created else 200, payload)

    async def _handle_results(
        self, state: CampaignState, writer: asyncio.StreamWriter
    ) -> None:
        """GET /campaigns/<id>/results — every stored result of the grid.

        Results are streamed from the store *documents*, so the response
        is exactly the ``anc-repro.result/1`` JSON each job produced;
        jobs not yet (or never) completed are listed under ``missing``.
        """
        documents: List[Any] = []
        missing: List[str] = []
        for digest in state.digests:
            raw = self.store.get_raw(digest)
            if raw is None:
                missing.append(digest)
            else:
                documents.append(json.loads(raw))
        await self._send_json(writer, 200, {
            "campaign": state.campaign_id,
            "state": state.state,
            "results": documents,
            "missing": missing,
        })

    async def _handle_events(
        self, state: CampaignState, writer: asyncio.StreamWriter
    ) -> None:
        """GET /campaigns/<id>/events — stream NDJSON progress until done."""
        queue: "asyncio.Queue[Optional[Dict[str, Any]]]" = asyncio.Queue(maxsize=4096)
        state.subscribers.append(queue)
        try:
            head = (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1"))
            writer.write((json.dumps(state.status()) + "\n").encode("utf-8"))
            await writer.drain()
            if state.state != "running":
                return
            while True:
                event = await queue.get()
                if event is None:
                    writer.write((json.dumps(state.status()) + "\n").encode("utf-8"))
                    await writer.drain()
                    return
                writer.write((json.dumps(event) + "\n").encode("utf-8"))
                await writer.drain()
        finally:
            if queue in state.subscribers:
                state.subscribers.remove(queue)


class HTTPError(ConfigurationError):
    """A request error with an HTTP status attached."""

    def __init__(self, status: int, message: str) -> None:
        """Bind the status code to the error message."""
        super().__init__(message)
        self.status = int(status)


class NotFoundError(HTTPError):
    """404 — the named campaign/result does not exist."""

    def __init__(self, message: str) -> None:
        """A 404 with the given message."""
        super().__init__(404, message)


class OverloadedError(HTTPError):
    """503 — admission control refused the submission."""

    def __init__(self, message: str) -> None:
        """A 503 with the given message."""
        super().__init__(503, message)
