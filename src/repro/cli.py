"""Command-line interface for the ANC reproduction experiments.

``python -m repro.cli <experiment>`` (or the ``anc-repro`` console script)
runs any of the figure-reproduction experiments from a shell and prints the
same plain-text report the benchmark harness writes, without needing to
write any Python.  Intended for quickly regenerating a single figure at a
custom size::

    python -m repro.cli alice-bob --runs 10 --packets 20
    python -m repro.cli capacity
    python -m repro.cli sir --seed 3
    python -m repro.cli summary --runs 5 --packets 6
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.alice_bob import run_alice_bob_experiment
from repro.experiments.capacity_fig7 import render_capacity_table, run_capacity_experiment
from repro.experiments.chain import run_chain_experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.sir_sweep import render_sir_table, run_sir_sweep
from repro.experiments.snr_sweep import render_snr_table, run_snr_sweep
from repro.experiments.summary import run_summary
from repro.experiments.x_topology import run_x_topology_experiment

#: Experiment names accepted on the command line, with the figure they map to.
EXPERIMENTS = {
    "capacity": "Fig. 7  — capacity bounds vs SNR",
    "alice-bob": "Fig. 9  — Alice-Bob topology",
    "x": "Fig. 10 — the X topology",
    "chain": "Fig. 12 — chain topology",
    "sir": "Fig. 13 — BER vs SIR",
    "snr": "extension — gain and BER vs operating SNR",
    "summary": "§11.3  — summary of results",
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="anc-repro",
        description="Regenerate the evaluation figures of 'Embracing Wireless "
        "Interference: Analog Network Coding' (SIGCOMM 2007).",
        epilog="experiments: "
        + "; ".join(f"{name}: {desc}" for name, desc in EXPERIMENTS.items()),
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS), help="which figure to regenerate")
    parser.add_argument("--runs", type=int, default=10, help="independent testbed runs (default 10)")
    parser.add_argument(
        "--packets", type=int, default=10, help="packets per direction per run (default 10)"
    )
    parser.add_argument(
        "--payload-bits", type=int, default=768, help="payload size in bits (default 768)"
    )
    parser.add_argument("--seed", type=int, default=20070823, help="master random seed")
    return parser


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        runs=args.runs,
        packets_per_run=args.packets,
        payload_bits=args.payload_bits,
        seed=args.seed,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "capacity":
        print(render_capacity_table(run_capacity_experiment()))
        return 0
    config = _config_from_args(args)
    if args.experiment == "alice-bob":
        print(run_alice_bob_experiment(config).render())
    elif args.experiment == "x":
        print(run_x_topology_experiment(config).render())
    elif args.experiment == "chain":
        print(run_chain_experiment(config).render())
    elif args.experiment == "sir":
        print(render_sir_table(run_sir_sweep(config, packets_per_point=args.packets)))
    elif args.experiment == "snr":
        print(render_snr_table(run_snr_sweep(config)))
    elif args.experiment == "summary":
        print(run_summary(config).render())
    else:  # pragma: no cover - argparse's choices already prevent this
        print(f"unknown experiment {args.experiment!r}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
