"""Command-line interface for the ANC reproduction experiments.

``python -m repro.cli <experiment>`` (or the ``anc-repro`` console script)
runs any of the figure-reproduction experiments from a shell and prints the
same plain-text report the benchmark harness writes, without needing to
write any Python.  Intended for quickly regenerating a single figure at a
custom size::

    python -m repro.cli alice-bob --runs 10 --packets 20
    python -m repro.cli capacity
    python -m repro.cli sir --seed 3
    python -m repro.cli summary --runs 5 --packets 6

Scenario sweeps from the registry in
:mod:`repro.experiments.scenarios` run through the ``run`` subcommand
(``--quick`` shrinks them to smoke-test size)::

    python -m repro.cli run chain_sweep --quick --workers 2
    python -m repro.cli run mesh_sweep --runs 20 --workers 8 --resume

Monte-Carlo trials execute through the
:class:`~repro.experiments.engine.ExperimentEngine`: ``--workers N`` fans
them out over ``N`` processes (bit-identical to serial, just faster),
``--batch-size`` ships workers whole trial blocks (identical results,
less dispatch overhead for short trials — see ``docs/PERFORMANCE.md``),
and ``--resume`` caches completed trials on disk so an interrupted
paper-scale sweep picks up where it left off::

    python -m repro.cli alice-bob --runs 40 --packets 1000 --workers 8 --resume
    python -m repro.cli run chain_sweep --quick --workers 4 --batch-size 8
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.exceptions import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import DEFAULT_CACHE_DIR, ExperimentEngine
from repro.experiments.runner import RUNNERS
from repro.experiments.scenarios import SCENARIOS, run_scenario

#: Experiment names accepted on the command line, with the figure they map to.
EXPERIMENTS = {name: spec.description for name, spec in RUNNERS.items()}

#: Scenario names accepted by the ``run`` subcommand.
SCENARIO_NAMES = {name: spec.description for name, spec in SCENARIOS.items()}


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="anc-repro",
        description="Regenerate the evaluation figures of 'Embracing Wireless "
        "Interference: Analog Network Coding' (SIGCOMM 2007).  Scenario "
        "sweeps run through the 'run' subcommand: anc-repro run "
        f"{{{','.join(sorted(SCENARIO_NAMES))}}} [--quick] "
        "(see 'anc-repro run --help' and docs/SCENARIOS.md).",
        epilog="experiments: "
        + "; ".join(f"{name}: {desc}" for name, desc in EXPERIMENTS.items()),
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS), help="which figure to regenerate")
    parser.add_argument("--runs", type=int, default=10, help="independent testbed runs (default 10)")
    parser.add_argument(
        "--packets", type=int, default=10, help="packets per direction per run (default 10)"
    )
    parser.add_argument(
        "--payload-bits", type=int, default=768, help="payload size in bits (default 768)"
    )
    _add_engine_arguments(parser)
    return parser


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """Add the seed/engine flags shared by the figure and scenario parsers."""
    parser.add_argument("--seed", type=int, default=20070823, help="master random seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the trial engine (default 1 = serial; "
        "parallel output is bit-identical to serial)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=1,
        help="trials dispatched to a worker as one block (default 1 = "
        "trial-by-trial; results are identical at every batch size, "
        "larger blocks amortize dispatch overhead for short trials)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="cache completed trials to disk and reuse them on the next "
        f"invocation (default cache: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="trial-cache directory (implies --resume when set)",
    )


def build_scenario_parser() -> argparse.ArgumentParser:
    """Construct the parser of the ``run`` (scenario) subcommand."""
    parser = argparse.ArgumentParser(
        prog="anc-repro run",
        description="Run a registered scenario sweep (see docs/SCENARIOS.md).",
        epilog="scenarios: "
        + "; ".join(f"{name}: {desc}" for name, desc in SCENARIO_NAMES.items()),
    )
    parser.add_argument(
        "scenario", choices=sorted(SCENARIO_NAMES), help="which scenario sweep to run"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke-test size: few runs/packets and a thinned sweep axis",
    )
    parser.add_argument(
        "--runs", type=int, default=None, help="independent runs per sweep point"
    )
    parser.add_argument(
        "--packets", type=int, default=None, help="packets per flow per run"
    )
    parser.add_argument(
        "--payload-bits", type=int, default=None, help="payload size in bits"
    )
    _add_engine_arguments(parser)
    return parser


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        runs=args.runs,
        packets_per_run=args.packets,
        payload_bits=args.payload_bits,
        seed=args.seed,
        batch_size=args.batch_size,
    )


def _scenario_config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    """Scenario config: ``--quick`` sets the smoke-test base, flags override."""
    base = (
        ExperimentConfig.quick(seed=args.seed)
        if args.quick
        else ExperimentConfig(runs=10, packets_per_run=10, seed=args.seed)
    )
    overrides = {
        key: value
        for key, value in (
            ("runs", args.runs),
            ("packets_per_run", args.packets),
            ("payload_bits", args.payload_bits),
            ("batch_size", args.batch_size),
        )
        if value is not None
    }
    return base.with_overrides(**overrides) if overrides else base


def _engine_from_args(args: argparse.Namespace) -> ExperimentEngine:
    cache_dir = args.cache_dir
    if cache_dir is None and args.resume:
        cache_dir = DEFAULT_CACHE_DIR
    return ExperimentEngine(
        workers=args.workers, cache_dir=cache_dir, batch_size=args.batch_size
    )


def run_scenario_main(argv: List[str]) -> int:
    """Entry point of the ``run`` subcommand; returns a process exit code."""
    args = build_scenario_parser().parse_args(argv)
    try:
        config = _scenario_config_from_args(args)
        engine = _engine_from_args(args)
        report = run_scenario(
            SCENARIOS[args.scenario], config, engine=engine, quick=args.quick
        )
    except ConfigurationError as error:
        print(f"anc-repro: error: {error}", file=sys.stderr)
        return 2
    print(report.render())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    arguments = list(argv) if argv is not None else sys.argv[1:]
    if arguments and arguments[0] == "run":
        return run_scenario_main(arguments[1:])
    args = build_parser().parse_args(arguments)
    try:
        config = _config_from_args(args)
        engine = _engine_from_args(args)
    except ConfigurationError as error:
        print(f"anc-repro: error: {error}", file=sys.stderr)
        return 2
    print(RUNNERS[args.experiment].run(config, engine))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
