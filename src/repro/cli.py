"""Command-line interface for the ANC reproduction experiments.

``python -m repro.cli <experiment>`` (or the ``anc-repro`` console script)
runs any experiment in the unified :mod:`repro.api` namespace — the seven
figure reproductions *and* the registered scenario sweeps — and emits the
result in the requested format::

    python -m repro.cli alice-bob --runs 10 --packets 20
    python -m repro.cli capacity --format json --output capacity.json
    python -m repro.cli sir --seed 3 --format csv
    python -m repro.cli chain_sweep --quick --workers 2
    python -m repro.cli --version

``--format text`` (the default) prints the familiar plain-text report —
byte-identical to the pre-structured-results CLI — while ``json`` and
``csv`` emit the schema-versioned machine-readable serializations of the
underlying :class:`~repro.results.model.ExperimentResult` (see
``docs/API.md``).  ``--output PATH`` writes to a file instead of stdout.

The legacy ``run`` subcommand for scenario sweeps is kept as an alias
(``--quick`` shrinks them to smoke-test size)::

    python -m repro.cli run chain_sweep --quick --workers 2
    python -m repro.cli run mesh_sweep --runs 20 --workers 8 --resume

Monte-Carlo trials execute through the
:class:`~repro.experiments.engine.ExperimentEngine`: ``--workers N`` fans
them out over ``N`` processes (bit-identical to serial, just faster),
``--batch-size`` ships workers whole trial blocks (identical results,
less dispatch overhead for short trials — see ``docs/PERFORMANCE.md``),
and ``--resume`` caches completed trials on disk so an interrupted
paper-scale sweep picks up where it left off::

    python -m repro.cli alice-bob --runs 40 --packets 1000 --workers 8 --resume
    python -m repro.cli run chain_sweep --quick --workers 4 --batch-size 8

``--backend`` selects the compute backend for the batched PHY kernels
(``numpy`` default / ``numba`` / ``float32-fast`` — see
``docs/PERFORMANCE.md`` for the selection matrix and the accuracy-gate
semantics of the reduced-precision backend)::

    python -m repro.cli alice-bob --workers 8 --backend numba

``--arrival-rate`` / ``--sim-duration`` / ``--mac-policy`` configure the
event-driven traffic scenarios (and raise for every experiment that
would ignore them)::

    python -m repro.cli offered_load_sweep --quick --mac-policy scheduled
    python -m repro.cli queueing_delay --quick --arrival-rate 0.9

The ``campaign`` subcommand family drives declarative sweep grids
(:mod:`repro.campaign`, documented in ``docs/CAMPAIGNS.md``)::

    python -m repro.cli campaign run grid.json --store results/
    python -m repro.cli campaign serve --store results/ --port 8642
    python -m repro.cli campaign submit grid.json --url http://127.0.0.1:8642 --wait
    python -m repro.cli campaign status --url http://127.0.0.1:8642
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro import __version__, api
from repro.backend import available_backends
from repro.channel.fading import FADING_KINDS, FADING_MODES
from repro.channel.impairments import ImpairmentConfig
from repro.exceptions import ConfigurationError
from repro.experiments.config import DEFAULT_MAC_POLICY, ExperimentConfig
from repro.experiments.engine import DEFAULT_CACHE_DIR, ExperimentEngine
from repro.sim.mac import MAC_POLICIES
from repro.results.model import ExperimentResult
from repro.results.render import render_text

#: Experiment names accepted on the command line, with the figure they map
#: to.  Derived from the unified registry (single source of truth).
EXPERIMENTS = {e.name: e.description for e in api.experiment_entries(kind="figure")}

#: Scenario names accepted by the ``run`` subcommand (same registry).
SCENARIO_NAMES = {e.name: e.description for e in api.experiment_entries(kind="scenario")}

#: Output formats the CLI can emit.
FORMATS = ("text", "json", "csv")


def _epilog(entries) -> str:
    """The one help epilog both parsers derive from the unified registry."""
    return "experiments: " + "; ".join(
        f"{entry.name}: {entry.description}" for entry in entries
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (figures and scenarios alike)."""
    parser = argparse.ArgumentParser(
        prog="anc-repro",
        description="Regenerate the evaluation figures of 'Embracing Wireless "
        "Interference: Analog Network Coding' (SIGCOMM 2007) or run a "
        "registered scenario sweep (see docs/SCENARIOS.md).  Emits the "
        "plain-text report by default; --format json/csv emits the "
        "schema-versioned structured result (docs/API.md).",
        epilog=_epilog(api.experiment_entries()),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(api.list_experiments()),
        help="which experiment (figure or scenario sweep) to run",
    )
    parser.add_argument("--runs", type=int, default=10, help="independent testbed runs (default 10)")
    parser.add_argument(
        "--packets", type=int, default=10, help="packets per direction per run (default 10)"
    )
    parser.add_argument(
        "--payload-bits", type=int, default=768, help="payload size in bits (default 768)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="scenario sweeps only: thin the sweep axis to smoke-test size",
    )
    _add_engine_arguments(parser)
    _add_impairment_arguments(parser)
    _add_sim_arguments(parser)
    _add_output_arguments(parser)
    return parser


def _add_sim_arguments(parser: argparse.ArgumentParser) -> None:
    """Add the time-domain traffic flags shared by both parsers.

    These only apply to the event-driven traffic scenarios
    (``offered_load_sweep`` honours ``--sim-duration``/``--mac-policy``,
    ``queueing_delay`` all three); setting one for any other experiment
    is a :class:`ConfigurationError`, not a silent no-op.
    """
    parser.add_argument(
        "--arrival-rate",
        type=float,
        default=0.0,
        help="offered load for the time-domain traffic scenarios, in "
        "packets per frame-time over both directions (0 = the scenario "
        "default)",
    )
    parser.add_argument(
        "--sim-duration",
        type=float,
        default=0.0,
        help="simulated horizon of the traffic scenarios in frame-times "
        "(0 = the scenario default)",
    )
    parser.add_argument(
        "--mac-policy",
        choices=MAC_POLICIES,
        default=DEFAULT_MAC_POLICY,
        help="medium access for the traffic scenarios: 'csma' contention "
        "with binary exponential backoff (default) or the collision-free "
        "'scheduled' TDMA grid",
    )


def _add_impairment_arguments(parser: argparse.ArgumentParser) -> None:
    """Add the channel-impairment flags shared by both parsers.

    The defaults disable every impairment, which reproduces the baseline
    flat channel byte-for-byte (see ``docs/CHANNELS.md``).
    """
    parser.add_argument(
        "--cfo",
        type=float,
        default=0.0,
        help="per-sender carrier frequency offset magnitude in radians per "
        "sample (offsets spread deterministically over [-cfo, +cfo], so "
        "every radio's oscillator differs; 0 disables the stage)",
    )
    parser.add_argument(
        "--fading",
        choices=FADING_KINDS,
        default="none",
        help="stochastic fading family applied to every link (default none)",
    )
    parser.add_argument(
        "--rician-k-db",
        type=float,
        default=6.0,
        help="Rician K-factor in dB (only used with --fading rician)",
    )
    parser.add_argument(
        "--fading-mode",
        choices=FADING_MODES,
        default="block",
        help="fading time structure: one fade per packet ('block') or "
        "in-packet Gauss-Markov evolution ('drift')",
    )
    parser.add_argument(
        "--fading-doppler",
        type=float,
        default=0.0,
        help="normalised fade rate for --fading-mode drift (fraction of the "
        "gain decorrelated per sample)",
    )


def _impairments_from_args(args: argparse.Namespace) -> ImpairmentConfig:
    """Build the impairment declaration the CLI flags describe."""
    return ImpairmentConfig(
        sender_cfo=args.cfo,
        fading=args.fading,
        rician_k_db=args.rician_k_db,
        fading_mode=args.fading_mode,
        fading_doppler=args.fading_doppler,
    )


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """Add the seed/engine flags shared by the figure and scenario parsers."""
    parser.add_argument("--seed", type=int, default=20070823, help="master random seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the trial engine (default 1 = serial; "
        "parallel output is bit-identical to serial)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=1,
        help="trials dispatched to a worker as one block (default 1 = "
        "trial-by-trial; results are identical at every batch size, "
        "larger blocks amortize dispatch overhead for short trials)",
    )
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default="numpy",
        help="compute backend for the batched PHY kernels (default numpy; "
        "'numba' JIT-compiles the decode kernels when numba is installed "
        "and falls back to numpy otherwise; 'float32-fast' trades "
        "bit-exactness for speed under a tested accuracy gate — see "
        "docs/PERFORMANCE.md)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="cache completed trials to disk and reuse them on the next "
        f"invocation (default cache: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="trial-cache directory (implies --resume when set)",
    )


def _add_output_arguments(parser: argparse.ArgumentParser) -> None:
    """Add the result-format/output/version flags shared by both parsers."""
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        dest="format",
        help="output format: 'text' (default, the classic report), or the "
        "schema-versioned 'json' / 'csv' structured result",
    )
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        help="write the result to this file instead of stdout",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
        help="print the package version and exit",
    )


def build_scenario_parser() -> argparse.ArgumentParser:
    """Construct the parser of the ``run`` (scenario) subcommand."""
    parser = argparse.ArgumentParser(
        prog="anc-repro run",
        description="Run a registered scenario sweep (see docs/SCENARIOS.md).",
        epilog=_epilog(api.experiment_entries(kind="scenario")),
    )
    parser.add_argument(
        "scenario", choices=sorted(SCENARIO_NAMES), help="which scenario sweep to run"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke-test size: few runs/packets and a thinned sweep axis",
    )
    parser.add_argument(
        "--runs", type=int, default=None, help="independent runs per sweep point"
    )
    parser.add_argument(
        "--packets", type=int, default=None, help="packets per flow per run"
    )
    parser.add_argument(
        "--payload-bits", type=int, default=None, help="payload size in bits"
    )
    _add_engine_arguments(parser)
    _add_impairment_arguments(parser)
    _add_sim_arguments(parser)
    _add_output_arguments(parser)
    return parser


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        runs=args.runs,
        packets_per_run=args.packets,
        payload_bits=args.payload_bits,
        seed=args.seed,
        batch_size=args.batch_size,
        backend=args.backend,
        impairments=_impairments_from_args(args),
        arrival_rate=args.arrival_rate,
        sim_duration=args.sim_duration,
        mac_policy=args.mac_policy,
    )


def _unified_config_from_args(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> ExperimentConfig:
    """Config for the main parser, honouring each experiment kind's semantics.

    Figures use the parser defaults directly.  Scenario names reuse the
    ``run`` subcommand's semantics so ``anc-repro chain_sweep --quick``
    behaves exactly like ``anc-repro run chain_sweep --quick``: under
    ``--quick`` the smoke-test config is the base and only flags that
    differ from the parser defaults override it.
    """
    if api.get_experiment(args.experiment).kind == "figure":
        return _config_from_args(args)

    def explicit(name: str):
        value = getattr(args, name)
        return None if value == parser.get_default(name) else value

    return _scenario_config_from_args(
        argparse.Namespace(
            quick=args.quick,
            seed=args.seed,
            batch_size=args.batch_size,
            backend=args.backend,
            runs=explicit("runs"),
            packets=explicit("packets"),
            payload_bits=explicit("payload_bits"),
            cfo=args.cfo,
            fading=args.fading,
            rician_k_db=args.rician_k_db,
            fading_mode=args.fading_mode,
            fading_doppler=args.fading_doppler,
            arrival_rate=args.arrival_rate,
            sim_duration=args.sim_duration,
            mac_policy=args.mac_policy,
        )
    )


def _scenario_config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    """Scenario config: ``--quick`` sets the smoke-test base, flags override."""
    base = (
        ExperimentConfig.quick(seed=args.seed)
        if args.quick
        else ExperimentConfig(runs=10, packets_per_run=10, seed=args.seed)
    )
    overrides = {
        key: value
        for key, value in (
            ("runs", args.runs),
            ("packets_per_run", args.packets),
            ("payload_bits", args.payload_bits),
            ("batch_size", args.batch_size),
            ("backend", args.backend if args.backend != "numpy" else None),
            ("arrival_rate", args.arrival_rate if args.arrival_rate != 0.0 else None),
            ("sim_duration", args.sim_duration if args.sim_duration != 0.0 else None),
            (
                "mac_policy",
                args.mac_policy if args.mac_policy != DEFAULT_MAC_POLICY else None,
            ),
        )
        if value is not None
    }
    impairments = _impairments_from_args(args)
    if impairments != ImpairmentConfig():
        # Any non-default flag is carried — including a bare
        # --fading-mode/--fading-doppler, which `enabled` alone would
        # miss (scenarios like fading_sweep read the mode even when the
        # family is chosen by the sweep axis).
        overrides["impairments"] = impairments
    return base.with_overrides(**overrides) if overrides else base


def _engine_from_args(args: argparse.Namespace) -> ExperimentEngine:
    cache_dir = args.cache_dir
    if cache_dir is None and args.resume:
        cache_dir = DEFAULT_CACHE_DIR
    return ExperimentEngine(
        workers=args.workers, cache_dir=cache_dir, batch_size=args.batch_size
    )


def format_result(result: ExperimentResult, fmt: str) -> str:
    """Serialize a result in one of the CLI's output formats."""
    if fmt == "text":
        return render_text(result)
    if fmt == "json":
        return result.to_json()
    if fmt == "csv":
        return result.to_csv()
    raise ConfigurationError(f"unknown output format {fmt!r}; choose from {FORMATS}")


def _emit(result: ExperimentResult, args: argparse.Namespace) -> None:
    """Write the formatted result to stdout or to ``--output``."""
    text = format_result(result, args.format)
    payload = text if text.endswith("\n") else text + "\n"
    if args.output is not None:
        Path(args.output).write_text(payload)
    else:
        sys.stdout.write(payload)


def build_campaign_parser() -> argparse.ArgumentParser:
    """Construct the parser of the ``campaign`` subcommand family."""
    parser = argparse.ArgumentParser(
        prog="anc-repro campaign",
        description="Run, serve and query declarative sweep-grid campaigns "
        "(see docs/CAMPAIGNS.md for the grid-spec format and the server's "
        "HTTP/JSON endpoints).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="expand a grid spec and run it locally on the asyncio queue"
    )
    run_parser.add_argument(
        "spec", help="path to the campaign spec JSON ('-' reads stdin)"
    )
    run_parser.add_argument(
        "--store",
        type=str,
        default=None,
        help="content-addressed result-store directory; completed jobs are "
        "published there and a re-run resumes from it (default: no store)",
    )
    run_parser.add_argument(
        "--shard-index",
        type=int,
        default=0,
        help="this worker's shard (0-based, round-robin over the grid)",
    )
    run_parser.add_argument(
        "--shard-count",
        type=int,
        default=1,
        help="total workers sharding the grid (default 1 = whole grid)",
    )
    _add_campaign_runner_arguments(run_parser)
    run_parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format: human-readable summary (default) or JSON",
    )
    run_parser.add_argument(
        "--output", type=str, default=None, help="write the report to this file"
    )

    serve_parser = commands.add_parser(
        "serve", help="start the long-running HTTP/JSON campaign server"
    )
    serve_parser.add_argument(
        "--store",
        type=str,
        required=True,
        help="content-addressed result-store directory the server publishes to",
    )
    serve_parser.add_argument(
        "--host", type=str, default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8642, help="bind port (default 8642; 0 = pick free)"
    )
    serve_parser.add_argument(
        "--max-pending-jobs",
        type=int,
        default=10_000,
        help="admission bound: refuse submissions (HTTP 503) that would "
        "push the pending-job total past this (default 10000)",
    )
    _add_campaign_runner_arguments(serve_parser)

    submit_parser = commands.add_parser(
        "submit", help="submit a grid spec to a running campaign server"
    )
    submit_parser.add_argument(
        "spec", help="path to the campaign spec JSON ('-' reads stdin)"
    )
    _add_campaign_url_argument(submit_parser)
    submit_parser.add_argument(
        "--wait",
        action="store_true",
        help="poll until the campaign finishes and report the terminal status",
    )
    submit_parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="--wait deadline in seconds (default 300)",
    )

    status_parser = commands.add_parser(
        "status", help="query a campaign server for campaign progress"
    )
    status_parser.add_argument(
        "campaign",
        nargs="?",
        default=None,
        help="campaign id to query (default: every campaign the server knows)",
    )
    _add_campaign_url_argument(status_parser)
    return parser


def _add_campaign_runner_arguments(parser: argparse.ArgumentParser) -> None:
    """Add the job-queue knobs shared by ``campaign run`` and ``serve``."""
    parser.add_argument(
        "--concurrency",
        type=int,
        default=4,
        help="jobs in flight at once on the asyncio queue (default 4)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="extra attempts per failing job before it counts as failed "
        "(default 2)",
    )
    parser.add_argument(
        "--backoff",
        type=float,
        default=0.5,
        help="base retry delay in seconds, doubling per attempt (default 0.5)",
    )


def _add_campaign_url_argument(parser: argparse.ArgumentParser) -> None:
    """Add the server-address flag of the client-side campaign commands."""
    parser.add_argument(
        "--url",
        type=str,
        default="http://127.0.0.1:8642",
        help="campaign server base URL (default http://127.0.0.1:8642)",
    )


def _load_campaign_spec(path: str):
    """Read a campaign spec from a JSON file (or stdin for ``-``)."""
    from repro.campaign.spec import CampaignSpec

    text = sys.stdin.read() if path == "-" else Path(path).read_text()
    return CampaignSpec.from_json(text)


def run_campaign_main(argv: List[str]) -> int:
    """Entry point of the ``campaign`` subcommand; returns an exit code."""
    import json as _json

    args = build_campaign_parser().parse_args(argv)
    try:
        if args.command == "run":
            from repro.campaign.runner import CampaignRunner

            spec = _load_campaign_spec(args.spec)
            runner = CampaignRunner(
                store=args.store,
                concurrency=args.concurrency,
                retries=args.retries,
                backoff=args.backoff,
            )
            report = runner.run_sync(
                spec, shard_index=args.shard_index, shard_count=args.shard_count
            )
            text = (
                _json.dumps(report.as_dict(), indent=2)
                if args.format == "json"
                else report.summary()
            )
            payload = text if text.endswith("\n") else text + "\n"
            if args.output is not None:
                Path(args.output).write_text(payload)
            else:
                sys.stdout.write(payload)
            return 1 if report.failed else 0
        if args.command == "serve":
            import asyncio

            from repro.campaign.server import CampaignServer

            server = CampaignServer(
                store=args.store,
                host=args.host,
                port=args.port,
                concurrency=args.concurrency,
                retries=args.retries,
                backoff=args.backoff,
                max_pending_jobs=args.max_pending_jobs,
            )

            async def _serve() -> None:
                """Bind, announce the resolved port, and serve until killed."""
                await server.start()
                print(
                    f"anc-repro campaign server on http://{server.host}:{server.port} "
                    f"(store: {args.store})",
                    flush=True,
                )
                await server.serve_forever()

            try:
                asyncio.run(_serve())
            except KeyboardInterrupt:
                pass
            return 0
        if args.command == "submit":
            from repro.campaign import client

            spec = _load_campaign_spec(args.spec)
            status = client.submit_campaign(args.url, spec)
            if args.wait:
                status = client.wait_for_campaign(
                    args.url, status["campaign"], timeout=args.timeout
                )
            sys.stdout.write(_json.dumps(status, indent=2) + "\n")
            return 1 if status["state"] == "failed" else 0
        if args.command == "status":
            from repro.campaign import client

            if args.campaign is not None:
                payload = client.campaign_status(args.url, args.campaign)
            else:
                payload = {"campaigns": client.list_campaigns(args.url)}
            sys.stdout.write(_json.dumps(payload, indent=2) + "\n")
            return 0
        raise ConfigurationError(f"unknown campaign command {args.command!r}")
    except (ConfigurationError, OSError) as error:
        print(f"anc-repro: error: {error}", file=sys.stderr)
        return 2


def run_scenario_main(argv: List[str]) -> int:
    """Entry point of the ``run`` subcommand; returns a process exit code."""
    args = build_scenario_parser().parse_args(argv)
    try:
        config = _scenario_config_from_args(args)
        engine = _engine_from_args(args)
        result = api.run(args.scenario, config=config, engine=engine, quick=args.quick)
        _emit(result, args)
    except (ConfigurationError, OSError) as error:
        print(f"anc-repro: error: {error}", file=sys.stderr)
        return 2
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    arguments = list(argv) if argv is not None else sys.argv[1:]
    if arguments and arguments[0] == "run":
        return run_scenario_main(arguments[1:])
    if arguments and arguments[0] == "campaign":
        return run_campaign_main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    try:
        config = _unified_config_from_args(args, parser)
        engine = _engine_from_args(args)
        result = api.run(args.experiment, config=config, engine=engine, quick=args.quick)
        _emit(result, args)
    except (ConfigurationError, OSError) as error:
        print(f"anc-repro: error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
