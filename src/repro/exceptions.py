"""Exception hierarchy for the ANC reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes that matter
operationally (e.g. a CRC failure vs. a missing known packet).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with invalid parameters."""


class BackendError(ConfigurationError):
    """Raised when a compute backend is unknown, misdeclared or refused.

    Derives from :class:`ConfigurationError` because a bad backend choice
    is a configuration problem; the dedicated subclass lets callers
    distinguish "this backend cannot run" (missing accuracy-gate
    metadata, unregistered name) from ordinary parameter validation.
    """


class ModulationError(ReproError):
    """Raised when modulation or demodulation cannot proceed."""


class FramingError(ReproError):
    """Raised when a frame cannot be built or parsed."""


class HeaderError(FramingError):
    """Raised when a frame header fails to parse or validate."""


class PilotNotFoundError(FramingError):
    """Raised when the pilot sequence cannot be located in a received signal."""


class CodingError(ReproError):
    """Raised by the error-control coding layer (CRC/FEC)."""


class CRCError(CodingError):
    """Raised when a CRC check fails on a decoded frame."""


class DecodingError(ReproError):
    """Raised when the ANC interference decoder cannot decode a signal."""


class KnownPacketMissingError(DecodingError):
    """Raised when the sent-packet buffer has no copy of the interfering packet."""


class SynchronizationError(DecodingError):
    """Raised when the known signal cannot be aligned with the received signal."""


class DetectionError(ReproError):
    """Raised by packet / interference detection when input is unusable."""


class ChannelError(ReproError):
    """Raised by channel models on invalid use (e.g. negative noise power)."""


class TopologyError(ReproError):
    """Raised when a network topology is malformed for the requested protocol."""


class SimulationError(ReproError):
    """Raised when the network simulator reaches an inconsistent state."""


class ProtocolError(ReproError):
    """Raised when a protocol implementation is asked to do something unsupported."""


class CapacityError(ReproError):
    """Raised by the capacity-analysis module on invalid SNR/parameter inputs."""
