"""Minimum Shift Keying (MSK) modulation and differential demodulation.

This is the modulation the paper's prototype uses (§5).  A bit of "1" is
encoded as a phase *increase* of ``pi/2`` over one symbol interval and a
bit of "0" as a phase *decrease* of ``pi/2`` (Fig. 3).  The signal has
constant amplitude; all information lives in the phase trajectory.

Demodulation is differential (Eq. 1): the receiver computes the ratio of
consecutive complex samples, whose angle is exactly the transmitted phase
difference, independent of the (unknown) channel attenuation ``h`` and
phase shift ``gamma``.  A positive angle decodes to "1", negative to "0".
"""

from __future__ import annotations


import numpy as np

from repro.constants import DEFAULT_TX_AMPLITUDE, MSK_PHASE_STEP
from repro.modulation.base import BitsLike, Demodulator, ModulationScheme, Modulator
from repro.signal.samples import ComplexSignal
from repro.utils.validation import ensure_bit_array, ensure_positive, ensure_positive_int


def interpolate_phase_ramp(boundary_phases: np.ndarray, samples_per_symbol: int) -> np.ndarray:
    """Expand symbol-boundary phases into per-sample phases, vectorized.

    Works along the last axis, so it serves both the scalar modulator
    (``boundary_phases`` of shape ``(n_bits + 1,)``) and the batched one
    (``(n_trials, n_bits + 1)``).  The output holds the leading reference
    phase followed by ``samples_per_symbol`` linearly interpolated samples
    per symbol and is bit-identical to ``np.linspace`` over each symbol:
    interior samples are computed as ``j * step + start`` (the same
    multiply-then-add ``np.linspace`` uses) and each symbol's final sample
    is pinned to the exact boundary phase, mirroring ``linspace``'s
    endpoint handling.
    """
    sps = int(samples_per_symbol)
    start = boundary_phases[..., :-1]
    stop = boundary_phases[..., 1:]
    step = (stop - start) / sps
    fractions = np.arange(1, sps + 1, dtype=float)
    ramp = fractions * step[..., None]
    ramp += start[..., None]
    ramp[..., -1] = stop
    flat = ramp.reshape(*boundary_phases.shape[:-1], -1)
    return np.concatenate([boundary_phases[..., :1], flat], axis=-1)


def msk_phase_trajectory(bits: np.ndarray, initial_phase: float = 0.0) -> np.ndarray:
    """Cumulative MSK phase trajectory, one entry per sample boundary.

    ``trajectory[0]`` is the initial phase and ``trajectory[k]`` the phase
    after the first ``k`` bits, i.e. the trajectory Fig. 3 of the paper
    plots.  Length is ``len(bits) + 1``.
    """
    steps = np.where(np.asarray(bits, dtype=np.uint8) == 1, MSK_PHASE_STEP, -MSK_PHASE_STEP)
    return initial_phase + np.concatenate([[0.0], np.cumsum(steps)])


class MSKModulator(Modulator):
    """Encode bits as ±pi/2 phase steps of a constant-envelope signal.

    Parameters
    ----------
    amplitude:
        Constant transmit amplitude ``A_s``.
    samples_per_symbol:
        Oversampling factor.  The default of 1 matches the paper's
        one-complex-sample-per-symbol exposition; larger values linearly
        interpolate the phase ramp within each symbol.
    initial_phase:
        Phase of the reference sample that precedes the first data bit.
    """

    def __init__(
        self,
        amplitude: float = DEFAULT_TX_AMPLITUDE,
        samples_per_symbol: int = 1,
        initial_phase: float = 0.0,
    ) -> None:
        self.amplitude = ensure_positive(amplitude, "amplitude")
        self._samples_per_symbol = ensure_positive_int(samples_per_symbol, "samples_per_symbol")
        self.initial_phase = float(initial_phase)

    @property
    def bits_per_symbol(self) -> int:
        return 1

    @property
    def samples_per_symbol(self) -> int:
        return self._samples_per_symbol

    @property
    def overhead_samples(self) -> int:
        # The reference sample carrying the initial phase.
        return 1

    def modulate(self, bits: BitsLike) -> ComplexSignal:
        """Produce the MSK waveform for ``bits``.

        The output has ``len(bits) * samples_per_symbol + 1`` samples: a
        leading reference sample at ``initial_phase`` followed by the
        phase-ramped data samples.  The differential demodulator consumes
        the reference sample to recover the first bit.
        """
        clean = ensure_bit_array(bits, "bits")
        boundary_phases = msk_phase_trajectory(clean, self.initial_phase)
        if self._samples_per_symbol == 1:
            phases = boundary_phases
        else:
            # Linearly interpolate the phase ramp inside each symbol.
            phases = interpolate_phase_ramp(boundary_phases, self._samples_per_symbol)
        return ComplexSignal(self.amplitude * np.exp(1j * phases))


class MSKDemodulator(Demodulator):
    """Differential MSK demodulation (Eq. 1 of the paper).

    The demodulator computes the angle of ``y[n+1] * conj(y[n])`` at symbol
    spacing and thresholds it at zero: positive phase difference means "1",
    negative means "0".  Because the channel's attenuation and phase offset
    cancel in the ratio, no channel estimation is required.
    """

    def __init__(self, samples_per_symbol: int = 1) -> None:
        self._samples_per_symbol = ensure_positive_int(samples_per_symbol, "samples_per_symbol")

    @property
    def samples_per_symbol(self) -> int:
        return self._samples_per_symbol

    def phase_differences(self, signal: ComplexSignal) -> np.ndarray:
        """Per-symbol wrapped phase differences of the received signal."""
        samples = signal.samples[:: self._samples_per_symbol]
        if samples.size < 2:
            return np.zeros(0, dtype=float)
        ratio = samples[1:] * np.conj(samples[:-1])
        return np.angle(ratio)

    def demodulate(self, signal: ComplexSignal) -> np.ndarray:
        """Decode bits from the received signal.

        A signal with fewer than two symbol-spaced samples carries no bits.
        """
        diffs = self.phase_differences(signal)
        return (diffs >= 0).astype(np.uint8)

    def soft_decisions(self, signal: ComplexSignal) -> np.ndarray:
        """Return the raw phase differences as soft decision metrics.

        The magnitude of each difference (relative to ±pi/2) indicates the
        confidence of the corresponding hard decision; the FEC layer can
        use these for erasures if desired.
        """
        return self.phase_differences(signal)


def MSKScheme(
    amplitude: float = DEFAULT_TX_AMPLITUDE,
    samples_per_symbol: int = 1,
    initial_phase: float = 0.0,
) -> ModulationScheme:
    """Construct a paired MSK modulator/demodulator."""
    return ModulationScheme(
        name="msk",
        modulator=MSKModulator(
            amplitude=amplitude,
            samples_per_symbol=samples_per_symbol,
            initial_phase=initial_phase,
        ),
        demodulator=MSKDemodulator(samples_per_symbol=samples_per_symbol),
    )


def expected_phase_differences(bits: BitsLike) -> np.ndarray:
    """The ±pi/2 phase-difference sequence a given bit pattern produces.

    This is the "known phase difference" sequence ``delta theta_s[n]`` that
    Alice feeds into the ANC matcher (§6.3): she regenerates it from the
    packet she previously transmitted.
    """
    clean = ensure_bit_array(bits, "bits")
    return np.where(clean == 1, MSK_PHASE_STEP, -MSK_PHASE_STEP).astype(float)


def verify_constant_envelope(signal: ComplexSignal, tolerance: float = 1e-9) -> bool:
    """Check the defining MSK property that the amplitude never varies."""
    amplitude = signal.amplitude
    if amplitude.size == 0:
        return True
    return bool(np.max(np.abs(amplitude - amplitude[0])) <= tolerance)
