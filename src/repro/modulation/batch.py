"""Batched MSK modulation/demodulation over ``(n_trials, n_bits)`` arrays.

The scalar :class:`~repro.modulation.msk.MSKModulator` walks one frame at
a time; a Monte-Carlo sweep that modulates thousands of frames therefore
pays one Python/numpy round-trip per frame.  The batched variants here
process a whole trial block with single vectorized calls: the phase
trajectory is one ``cumsum`` over the bit axis, oversampling is one
outer-add phase ramp, and differential demodulation is one conjugate
product over the batch.

Every kernel is **bit-identical per row** to the scalar reference path —
row ``i`` of the batched output equals the scalar modulator/demodulator
applied to row ``i`` of the input, sample for sample.  The differential
test suite ``tests/properties/test_batch_equivalence.py`` enforces this
with hypothesis-generated inputs; see ``docs/PERFORMANCE.md`` for why the
guarantee holds (identical elementwise IEEE operations, ``cumsum`` along
the trial rows, and the same multiply-then-add ramp ``np.linspace`` uses).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.backend import Backend, resolve_backend
from repro.constants import DEFAULT_TX_AMPLITUDE, MSK_PHASE_STEP
from repro.modulation.msk import interpolate_phase_ramp
from repro.signal.batch import BatchLike, SignalBatch, ensure_batch_array
from repro.utils.validation import ensure_bit_matrix, ensure_positive, ensure_positive_int


def batch_msk_phase_trajectory(bits: np.ndarray, initial_phase: float = 0.0) -> np.ndarray:
    """Cumulative MSK phase trajectories for a whole bit matrix.

    Row ``i`` equals :func:`repro.modulation.msk.msk_phase_trajectory` of
    ``bits[i]``: entry 0 is the initial phase and entry ``k`` the phase
    after the first ``k`` bits.  Output shape is
    ``(n_trials, n_bits + 1)``.
    """
    clean = ensure_bit_matrix(bits, "bits")
    steps = np.where(clean == 1, MSK_PHASE_STEP, -MSK_PHASE_STEP)
    lead = np.zeros((clean.shape[0], 1), dtype=float)
    return initial_phase + np.concatenate([lead, np.cumsum(steps, axis=1)], axis=1)


def batch_expected_phase_differences(bits: np.ndarray) -> np.ndarray:
    """Per-row ±pi/2 phase-difference sequences of a bit matrix.

    Row-wise counterpart of
    :func:`repro.modulation.msk.expected_phase_differences` — the known
    ``delta theta_s`` sequences the batched ANC matcher consumes.
    """
    clean = ensure_bit_matrix(bits, "bits")
    return np.where(clean == 1, MSK_PHASE_STEP, -MSK_PHASE_STEP).astype(float)


class BatchMSKModulator:
    """Modulate ``(n_trials, n_bits)`` bit matrices in one vectorized pass.

    Construction parameters mirror
    :class:`~repro.modulation.msk.MSKModulator`; ``modulate`` returns a
    :class:`~repro.signal.batch.SignalBatch` whose row ``i`` is
    bit-identical to the scalar modulator applied to ``bits[i]`` when the
    waveform-synthesis step runs on a digest-neutral compute backend
    (``backend=None`` resolves the ambient one per call; the
    ``float32-fast`` backend synthesises in reduced precision before the
    batch container upcasts to complex128).
    """

    def __init__(
        self,
        amplitude: float = DEFAULT_TX_AMPLITUDE,
        samples_per_symbol: int = 1,
        initial_phase: float = 0.0,
        backend: Union[None, str, Backend] = None,
    ) -> None:
        self.amplitude = ensure_positive(amplitude, "amplitude")
        self._samples_per_symbol = ensure_positive_int(samples_per_symbol, "samples_per_symbol")
        self.initial_phase = float(initial_phase)
        self.backend = backend

    @property
    def samples_per_symbol(self) -> int:
        """Oversampling factor shared by every row."""
        return self._samples_per_symbol

    def modulate(self, bits: np.ndarray) -> SignalBatch:
        """Produce one MSK waveform per bit row.

        Output shape is ``(n_trials, n_bits * samples_per_symbol + 1)`` —
        each row carries the leading reference sample followed by the
        phase-ramped data samples, exactly like the scalar modulator.
        """
        clean = ensure_bit_matrix(bits, "bits")
        boundary_phases = batch_msk_phase_trajectory(clean, self.initial_phase)
        if self._samples_per_symbol == 1:
            phases = boundary_phases
        else:
            phases = interpolate_phase_ramp(boundary_phases, self._samples_per_symbol)
        backend = resolve_backend(self.backend)
        return SignalBatch(backend.modulate_waveform(phases, self.amplitude))


class BatchMSKDemodulator:
    """Differential MSK demodulation (Eq. 1) over a whole signal batch.

    ``backend`` selects the compute backend for the conjugate-product
    kernel (``None`` resolves the ambient backend at each call).
    """

    def __init__(
        self,
        samples_per_symbol: int = 1,
        backend: Union[None, str, Backend] = None,
    ) -> None:
        self._samples_per_symbol = ensure_positive_int(samples_per_symbol, "samples_per_symbol")
        self.backend = backend

    @property
    def samples_per_symbol(self) -> int:
        """Oversampling factor shared by every row."""
        return self._samples_per_symbol

    def phase_differences(self, batch: BatchLike) -> np.ndarray:
        """Per-symbol wrapped phase differences of every row.

        Output shape ``(n_trials, n_symbols - 1)``; rows match the scalar
        demodulator's :meth:`~repro.modulation.msk.MSKDemodulator.phase_differences`.
        """
        samples = ensure_batch_array(batch, "batch")[:, :: self._samples_per_symbol]
        if samples.shape[1] < 2:
            return np.zeros((samples.shape[0], 0), dtype=float)
        return resolve_backend(self.backend).demodulate_phase_differences(samples)

    def demodulate(self, batch: BatchLike) -> np.ndarray:
        """Decode one bit row per waveform; shape ``(n_trials, n_bits)``."""
        return (self.phase_differences(batch) >= 0).astype(np.uint8)

    def soft_decisions(self, batch: BatchLike) -> np.ndarray:
        """Raw phase differences of every row, as soft decision metrics."""
        return self.phase_differences(batch)
