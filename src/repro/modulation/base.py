"""Abstract interfaces for modulators and demodulators.

All schemes in :mod:`repro.modulation` map a bit array to a
:class:`~repro.signal.samples.ComplexSignal` and back.  The interface is
deliberately narrow — ``modulate(bits) -> signal`` and
``demodulate(signal) -> bits`` — because that is all the framing layer and
the ANC pipeline need.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.exceptions import ModulationError
from repro.signal.samples import ComplexSignal
from repro.utils.validation import ensure_bit_array

BitsLike = Union[np.ndarray, list, tuple, str]


class Modulator(abc.ABC):
    """Maps bit arrays to complex baseband signals."""

    @property
    @abc.abstractmethod
    def bits_per_symbol(self) -> int:
        """Number of data bits carried by each complex symbol."""

    @property
    @abc.abstractmethod
    def samples_per_symbol(self) -> int:
        """Number of complex samples emitted per symbol."""

    @abc.abstractmethod
    def modulate(self, bits: BitsLike) -> ComplexSignal:
        """Convert a bit array into a complex baseband signal."""

    def samples_for_bits(self, n_bits: int) -> int:
        """Number of complex samples produced for ``n_bits`` data bits."""
        if n_bits < 0:
            raise ModulationError("bit count must be non-negative")
        if n_bits % self.bits_per_symbol != 0:
            raise ModulationError(
                f"bit count {n_bits} is not a multiple of bits_per_symbol="
                f"{self.bits_per_symbol}"
            )
        return (n_bits // self.bits_per_symbol) * self.samples_per_symbol + self.overhead_samples

    @property
    def overhead_samples(self) -> int:
        """Extra samples emitted regardless of payload size (e.g. a reference symbol)."""
        return 0


class Demodulator(abc.ABC):
    """Maps complex baseband signals back to bit arrays."""

    @abc.abstractmethod
    def demodulate(self, signal: ComplexSignal) -> np.ndarray:
        """Convert a complex baseband signal into a bit array."""


@dataclass(frozen=True)
class ModulationScheme:
    """A paired modulator/demodulator with a human-readable name."""

    name: str
    modulator: Modulator
    demodulator: Demodulator

    def roundtrip(self, bits: BitsLike) -> np.ndarray:
        """Modulate then demodulate a bit array (useful in tests and examples)."""
        clean = ensure_bit_array(bits, "bits")
        return self.demodulator.demodulate(self.modulator.modulate(clean))
