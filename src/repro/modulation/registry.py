"""Name-based lookup of modulation schemes.

Experiment configuration files refer to modulations by name ("msk",
"bpsk", "qpsk"); this registry turns those names into configured
:class:`~repro.modulation.base.ModulationScheme` instances.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.exceptions import ConfigurationError
from repro.modulation.base import ModulationScheme
from repro.modulation.bpsk import BPSKScheme
from repro.modulation.msk import MSKScheme
from repro.modulation.qpsk import QPSKScheme

_FACTORIES: Dict[str, Callable[..., ModulationScheme]] = {
    "msk": MSKScheme,
    "bpsk": BPSKScheme,
    "qpsk": QPSKScheme,
}


def available_schemes() -> List[str]:
    """Names of the registered modulation schemes."""
    return sorted(_FACTORIES)


def get_scheme(name: str, **kwargs) -> ModulationScheme:
    """Instantiate a modulation scheme by name.

    Keyword arguments are forwarded to the scheme factory (e.g.
    ``amplitude=0.5`` or ``samples_per_symbol=2``).
    """
    key = name.lower()
    if key not in _FACTORIES:
        raise ConfigurationError(
            f"unknown modulation scheme {name!r}; available: {', '.join(available_schemes())}"
        )
    return _FACTORIES[key](**kwargs)


def register_scheme(name: str, factory: Callable[..., ModulationScheme]) -> None:
    """Register a custom scheme factory under ``name`` (overwrites existing)."""
    if not name or not isinstance(name, str):
        raise ConfigurationError("scheme name must be a non-empty string")
    _FACTORIES[name.lower()] = factory
