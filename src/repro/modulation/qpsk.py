"""Quadrature Phase Shift Keying (QPSK).

802.11 also uses QPSK (§4).  Gray-mapped QPSK carries two bits per symbol;
it is included to demonstrate that the library's framing / coding layers
are modulation-agnostic, and is used by a couple of the ablation benches as
a contrast to MSK's differential robustness.
"""

from __future__ import annotations

import numpy as np

from repro.constants import DEFAULT_TX_AMPLITUDE
from repro.exceptions import ModulationError
from repro.modulation.base import BitsLike, Demodulator, ModulationScheme, Modulator
from repro.signal.samples import ComplexSignal
from repro.utils.validation import ensure_bit_array, ensure_positive, ensure_positive_int

#: Gray-coded constellation: bit pair -> phase (radians).
_GRAY_MAP = {
    (0, 0): np.pi / 4,
    (0, 1): 3 * np.pi / 4,
    (1, 1): -3 * np.pi / 4,
    (1, 0): -np.pi / 4,
}
_INVERSE_GRAY = {phase: bits for bits, phase in _GRAY_MAP.items()}


class QPSKModulator(Modulator):
    """Map Gray-coded bit pairs to one of four constellation phases."""

    def __init__(self, amplitude: float = DEFAULT_TX_AMPLITUDE, samples_per_symbol: int = 1) -> None:
        self.amplitude = ensure_positive(amplitude, "amplitude")
        self._samples_per_symbol = ensure_positive_int(samples_per_symbol, "samples_per_symbol")

    @property
    def bits_per_symbol(self) -> int:
        return 2

    @property
    def samples_per_symbol(self) -> int:
        return self._samples_per_symbol

    def modulate(self, bits: BitsLike) -> ComplexSignal:
        clean = ensure_bit_array(bits, "bits")
        if clean.size % 2 != 0:
            raise ModulationError("QPSK requires an even number of bits")
        pairs = clean.reshape(-1, 2)
        phases = np.array([_GRAY_MAP[(int(a), int(b))] for a, b in pairs])
        symbols = self.amplitude * np.exp(1j * phases)
        return ComplexSignal(np.repeat(symbols, self._samples_per_symbol))


class QPSKDemodulator(Demodulator):
    """Coherent QPSK demodulation by nearest-constellation-point slicing."""

    def __init__(self, samples_per_symbol: int = 1, channel_phase: float = 0.0) -> None:
        self._samples_per_symbol = ensure_positive_int(samples_per_symbol, "samples_per_symbol")
        self.channel_phase = float(channel_phase)

    def demodulate(self, signal: ComplexSignal) -> np.ndarray:
        samples = signal.samples
        if samples.size % self._samples_per_symbol != 0:
            raise ModulationError(
                "signal length must be a multiple of samples_per_symbol for QPSK demodulation"
            )
        derotated = samples * np.exp(-1j * self.channel_phase)
        symbols = derotated.reshape(-1, self._samples_per_symbol).mean(axis=1)
        bits = np.empty(symbols.size * 2, dtype=np.uint8)
        constellation_phases = np.array(list(_INVERSE_GRAY.keys()))
        for i, symbol in enumerate(symbols):
            distances = np.abs(
                np.exp(1j * constellation_phases) - symbol / max(np.abs(symbol), 1e-12)
            )
            nearest = constellation_phases[int(np.argmin(distances))]
            pair = _INVERSE_GRAY[nearest]
            bits[2 * i] = pair[0]
            bits[2 * i + 1] = pair[1]
        return bits


def QPSKScheme(
    amplitude: float = DEFAULT_TX_AMPLITUDE,
    samples_per_symbol: int = 1,
    channel_phase: float = 0.0,
) -> ModulationScheme:
    """Construct a paired QPSK modulator/demodulator."""
    return ModulationScheme(
        name="qpsk",
        modulator=QPSKModulator(amplitude=amplitude, samples_per_symbol=samples_per_symbol),
        demodulator=QPSKDemodulator(
            samples_per_symbol=samples_per_symbol, channel_phase=channel_phase
        ),
    )
