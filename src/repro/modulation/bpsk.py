"""Binary Phase Shift Keying (BPSK).

802.11's lowest rates use BPSK (§4 of the paper).  BPSK is provided both
as a standalone scheme and as the underlying alphabet for the differential
variant that the header decoder can fall back to; the ANC algorithm itself
is exercised with MSK, matching the paper's prototype.
"""

from __future__ import annotations

import numpy as np

from repro.constants import DEFAULT_TX_AMPLITUDE
from repro.exceptions import ModulationError
from repro.modulation.base import BitsLike, Demodulator, ModulationScheme, Modulator
from repro.signal.samples import ComplexSignal
from repro.utils.validation import ensure_bit_array, ensure_positive, ensure_positive_int


class BPSKModulator(Modulator):
    """Map bits to antipodal symbols: "1" -> +A, "0" -> -A."""

    def __init__(self, amplitude: float = DEFAULT_TX_AMPLITUDE, samples_per_symbol: int = 1) -> None:
        self.amplitude = ensure_positive(amplitude, "amplitude")
        self._samples_per_symbol = ensure_positive_int(samples_per_symbol, "samples_per_symbol")

    @property
    def bits_per_symbol(self) -> int:
        return 1

    @property
    def samples_per_symbol(self) -> int:
        return self._samples_per_symbol

    def modulate(self, bits: BitsLike) -> ComplexSignal:
        clean = ensure_bit_array(bits, "bits")
        symbols = self.amplitude * (2.0 * clean.astype(float) - 1.0)
        samples = np.repeat(symbols.astype(np.complex128), self._samples_per_symbol)
        return ComplexSignal(samples)


class BPSKDemodulator(Demodulator):
    """Coherent BPSK demodulation by thresholding the real part.

    A known (or estimated) channel phase can be supplied to derotate the
    constellation before slicing.
    """

    def __init__(self, samples_per_symbol: int = 1, channel_phase: float = 0.0) -> None:
        self._samples_per_symbol = ensure_positive_int(samples_per_symbol, "samples_per_symbol")
        self.channel_phase = float(channel_phase)

    def demodulate(self, signal: ComplexSignal) -> np.ndarray:
        samples = signal.samples
        if samples.size % self._samples_per_symbol != 0:
            raise ModulationError(
                "signal length must be a multiple of samples_per_symbol for BPSK demodulation"
            )
        derotated = samples * np.exp(-1j * self.channel_phase)
        symbols = derotated.reshape(-1, self._samples_per_symbol).mean(axis=1)
        return (symbols.real >= 0).astype(np.uint8)


def BPSKScheme(
    amplitude: float = DEFAULT_TX_AMPLITUDE,
    samples_per_symbol: int = 1,
    channel_phase: float = 0.0,
) -> ModulationScheme:
    """Construct a paired BPSK modulator/demodulator."""
    return ModulationScheme(
        name="bpsk",
        modulator=BPSKModulator(amplitude=amplitude, samples_per_symbol=samples_per_symbol),
        demodulator=BPSKDemodulator(
            samples_per_symbol=samples_per_symbol, channel_phase=channel_phase
        ),
    )
