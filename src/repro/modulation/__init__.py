"""Modulation and demodulation schemes.

The paper's prototype uses MSK (a form of continuous-phase / differential
phase-shift keying) because it has constant envelope, a trivially robust
differential demodulator, and is what GSM uses (§4).  The ANC decoding
algorithm itself only needs *some* phase-shift-keying scheme, so we also
provide BPSK and QPSK (the 802.11 modulations the paper mentions) with the
same interface, plus differential variants used for channel-insensitive
demodulation.
"""

from repro.modulation.base import Demodulator, Modulator, ModulationScheme
from repro.modulation.batch import (
    BatchMSKDemodulator,
    BatchMSKModulator,
    batch_expected_phase_differences,
    batch_msk_phase_trajectory,
)
from repro.modulation.msk import MSKDemodulator, MSKModulator, MSKScheme
from repro.modulation.bpsk import BPSKDemodulator, BPSKModulator, BPSKScheme
from repro.modulation.qpsk import QPSKDemodulator, QPSKModulator, QPSKScheme
from repro.modulation.registry import available_schemes, get_scheme

__all__ = [
    "BPSKDemodulator",
    "BPSKModulator",
    "BPSKScheme",
    "BatchMSKDemodulator",
    "BatchMSKModulator",
    "Demodulator",
    "MSKDemodulator",
    "MSKModulator",
    "MSKScheme",
    "ModulationScheme",
    "Modulator",
    "QPSKDemodulator",
    "QPSKModulator",
    "QPSKScheme",
    "available_schemes",
    "batch_expected_phase_differences",
    "batch_msk_phase_trajectory",
    "get_scheme",
]
