"""Data whitening (scrambling).

Section 6.2 of the paper relies on the transmitted bit pattern being
random so that ``E[cos(theta - phi)] = 0`` holds and the amplitude
estimator's two equations are valid: "To ensure the bits are random, we
XOR them with a pseudo-random sequence at the sender, and XOR them again
with the same sequence at the receiver."
"""

from repro.scrambler.whitening import Scrambler

__all__ = ["Scrambler"]
