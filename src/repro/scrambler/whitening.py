"""PN-sequence XOR scrambler / descrambler.

Scrambling is an involution: applying the same scrambler twice restores the
original bits, which is exactly how the paper describes the operation
(§6.2).  All nodes are configured with the same seed, so any receiver can
descramble any sender's payload.
"""

from __future__ import annotations

import numpy as np

from repro.constants import SCRAMBLER_SEED
from repro.utils.pn import PNSequence
from repro.utils.validation import ensure_bit_array


class Scrambler:
    """XOR a bit stream with a deterministic pseudo-noise sequence.

    Parameters
    ----------
    seed:
        LFSR seed shared by every node in the network.  The PN sequence is
        regenerated from the seed for every call, so the scrambler is
        stateless across packets and the n-th payload bit is always XORed
        with the n-th PN bit regardless of what was scrambled before.
    """

    def __init__(self, seed: int = SCRAMBLER_SEED) -> None:
        self.seed = int(seed)

    def _pn(self, length: int) -> np.ndarray:
        return PNSequence(seed=self.seed).bits(length)

    def scramble(self, bits) -> np.ndarray:
        """Whiten a bit array by XOR with the PN sequence."""
        clean = ensure_bit_array(bits, "bits")
        if clean.size == 0:
            return clean
        return np.bitwise_xor(clean, self._pn(clean.size)).astype(np.uint8)

    def descramble(self, bits) -> np.ndarray:
        """Undo :meth:`scramble`; identical operation because XOR is an involution."""
        return self.scramble(bits)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Scrambler(seed={self.seed:#x})"
