"""The oracle ("optimal") scheduler of §11.1.

The scheduler knows the topology and the traffic pattern and never causes
unintended collisions.  Its job in this library is modest but real: given
a set of transmissions a protocol wants to make, group them into slots
such that (a) transmissions the protocol marked as deliberately concurrent
share a slot and (b) everything else gets its own slot, in order.  It also
draws the random start offsets for concurrent senders via the trigger
scheduler, because even an oracle MAC cannot synchronise two independent
radios at sample granularity (§7.2).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.channel.interference import OverlapModel
from repro.exceptions import ConfigurationError
from repro.mac.schedule import Schedule, ScheduledTransmission, Slot
from repro.node.trigger import Trigger, TriggerScheduler


class OptimalScheduler:
    """Builds collision-free schedules, with deliberate collisions on request."""

    def __init__(
        self,
        overlap_model: Optional[OverlapModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Create a scheduler; ``overlap_model``/``rng`` feed the trigger offsets."""
        self._rng = rng if rng is not None else np.random.default_rng()
        self.trigger_scheduler = TriggerScheduler(overlap_model=overlap_model, rng=self._rng)

    def sequential(self, transmissions: Sequence[ScheduledTransmission], label: str = "") -> Schedule:
        """One slot per transmission, in order (the traditional-routing shape)."""
        schedule = Schedule()
        for index, transmission in enumerate(transmissions):
            schedule.append(Slot(transmissions=(transmission,), label=f"{label}#{index}"))
        return schedule

    def concurrent_slot(
        self,
        transmissions: Sequence[ScheduledTransmission],
        frame_samples: int,
        issuer: int,
        label: str = "",
    ) -> Slot:
        """Build one deliberately-concurrent slot with trigger-drawn offsets.

        Parameters
        ----------
        transmissions:
            The transmissions that should collide (their ``start_offset``
            fields are replaced by freshly drawn ones).
        frame_samples:
            Length of the frames being transmitted, used to scale the
            random offsets so the expected overlap matches the model.
        issuer:
            The node whose trigger provoked the concurrent transmissions.
        """
        if len(transmissions) < 2:
            raise ConfigurationError("a concurrent slot needs at least two transmissions")
        trigger = Trigger(issuer=issuer, targets=tuple(t.sender for t in transmissions))
        offsets = self.trigger_scheduler.schedule(trigger, frame_samples)
        updated = tuple(
            ScheduledTransmission(
                sender=t.sender,
                packet=t.packet,
                role=t.role,
                start_offset=offsets[t.sender],
            )
            for t in transmissions
        )
        return Slot(transmissions=updated, label=label)
