"""ANC-aware schedule planning for arbitrary topologies and flow sets.

The paper's evaluation runs on an *optimal* MAC (§11.1): the scheduler
knows the topology and the traffic and arranges transmissions so that the
only collisions are the ones analog network coding wants.  The seed
reproduction hand-coded that schedule separately inside each figure
runner; this module computes it from first principles so any
topology/flow combination produced by :mod:`repro.network.generator` gets
the same treatment.

Three planners cover the workload shapes the scenario subsystem ships:

* :func:`plan_chain_pipeline` — a single flow along a K-hop chain.  With
  ``coding="anc"`` transmitters are spaced *two* positions apart, so every
  interior receiver deliberately hears the collision of its predecessor's
  new packet and its successor's forwarded packet — which it can decode
  because it forwarded the interfering packet itself one phase earlier
  (§2b generalized to any K).  With ``coding="plain"`` transmitters are
  spaced *three* apart: the closest spacing that is collision-free under
  the chain's radio ranges, i.e. classic spatial-reuse pipelining.
* :func:`plan_relay_exchange` — two flows crossing at a shared relay (the
  Alice–Bob / "X" shape): one deliberately-concurrent uplink slot into the
  relay followed by one amplify-and-forward broadcast slot, with the side
  information each destination will cancel tracked per destination.
* :func:`plan_mesh_exchanges` — a whole flow set over an arbitrary mesh:
  greedily pairs flows that cross at a shared relay with side information
  available into ANC exchanges and leaves the rest to plain routing.

The plans are *structure*, not executed schedules: they name which
positions may transmit in which phase, who must listen, and which
receivers are deliberate-collision receivers.  The signal-level executors
in :mod:`repro.protocols` turn them into actual slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, TopologyError
from repro.network.flows import Flow
from repro.network.topology import Topology

#: Transmitter spacing (in chain positions) per coding discipline: ANC
#: tolerates deliberate collisions two hops apart; plain routing (and
#: digital coding, which finds no XOR opportunity on a one-way chain)
#: needs three to stay collision-free.
CHAIN_STRIDES: Dict[str, int] = {"anc": 2, "plain": 3}


@dataclass(frozen=True)
class PhaseTemplate:
    """One phase of a pipelined chain schedule.

    Attributes
    ----------
    transmit_positions:
        1-based positions along the path that are *allowed* to transmit in
        this phase (a position only actually transmits when it holds a
        packet, or is the source with packets left to inject).
    listen_positions:
        Positions whose predecessor may transmit — the MAC tells exactly
        these nodes to listen, whether or not their predecessor ends up
        transmitting this round.
    collision_positions:
        The subset of listeners whose *successor* may also transmit: these
        receivers deliberately capture a two-packet collision and decode
        it with ANC (the interfering packet is the one they forwarded a
        phase earlier).
    """

    transmit_positions: Tuple[int, ...]
    listen_positions: Tuple[int, ...]
    collision_positions: Tuple[int, ...]


@dataclass(frozen=True)
class ChainPipelinePlan:
    """The optimal-MAC schedule for one flow pipelined down a chain.

    Attributes
    ----------
    path:
        Node ids along the route, source first.
    stride:
        Spacing between simultaneously transmitting positions (2 for ANC,
        3 for collision-free plain routing).
    phases:
        The repeating phase cycle, ordered so a packet injected by the
        source advances one hop per cycle position.
    """

    path: Tuple[int, ...]
    stride: int
    phases: Tuple[PhaseTemplate, ...]

    @property
    def hops(self) -> int:
        """Number of hops the flow traverses."""
        return len(self.path) - 1

    @property
    def has_deliberate_collisions(self) -> bool:
        """True when any phase schedules a deliberate collision (ANC)."""
        return any(phase.collision_positions for phase in self.phases)

    def node_at(self, position: int) -> int:
        """Node id occupying a 1-based chain position."""
        return self.path[position - 1]


def plan_chain_pipeline(
    topology: Topology,
    path: Sequence[int],
    coding: str = "anc",
) -> ChainPipelinePlan:
    """Compute the pipelined optimal-MAC schedule for one chain flow.

    Parameters
    ----------
    topology:
        The network; every consecutive path pair must be a routable link.
    path:
        Node ids from source to destination (at least 3 nodes / 2 hops).
    coding:
        ``"anc"`` for the stride-2 schedule with deliberate collisions,
        ``"plain"`` for the stride-3 collision-free spatial-reuse
        schedule (also what COPE-style digital coding degenerates to on a
        unidirectional flow, where it has nothing to XOR).

    Returns
    -------
    ChainPipelinePlan
        The repeating phase cycle; phase ``i`` of the cycle lets
        positions congruent to ``(2 + i) mod stride`` transmit, so the
        cycle starts with the position right after the source's first
        hand-off and flows forward.
    """
    if coding not in CHAIN_STRIDES:
        raise ConfigurationError(
            f"unknown chain coding {coding!r}; choose from {', '.join(CHAIN_STRIDES)}"
        )
    nodes = tuple(int(p) for p in path)
    if len(nodes) < 3:
        raise ConfigurationError("a pipelined chain needs at least 2 hops (3 nodes)")
    if len(set(nodes)) != len(nodes):
        raise ConfigurationError("a chain path cannot revisit a node")
    for a, b in zip(nodes[:-1], nodes[1:]):
        if not topology.is_routable(a, b):
            raise TopologyError(f"path hop {a}->{b} is not a routable link")

    stride = CHAIN_STRIDES[coding]
    length = len(nodes)
    phases: List[PhaseTemplate] = []
    for cycle_index in range(stride):
        residue = (2 + cycle_index) % stride
        transmit = tuple(
            pos for pos in range(1, length) if pos % stride == residue
        )
        if not transmit:
            continue
        listen = tuple(pos for pos in range(2, length + 1) if pos - 1 in transmit)
        collisions = tuple(pos for pos in listen if pos + 1 in transmit)
        phases.append(
            PhaseTemplate(
                transmit_positions=transmit,
                listen_positions=listen,
                collision_positions=collisions,
            )
        )
    return ChainPipelinePlan(path=nodes, stride=stride, phases=tuple(phases))


#: How a destination obtains the side information it cancels: it is the
#: *source* of the paired reverse flow ("reverse", Alice–Bob) or it must
#: overhear the paired sender's uplink transmission ("overhear", the "X").
SIDE_INFO_MODES = ("reverse", "overhear")


@dataclass(frozen=True)
class RelayExchangePlan:
    """The two-slot ANC schedule for two flows crossing at a shared relay.

    Attributes
    ----------
    relay:
        The shared relay node that captures and rebroadcasts the collision.
    flow_a / flow_b:
        The two crossing flows (equal packet counts).
    uplink_senders:
        Both flow sources — they transmit *concurrently* in slot 1, the
        deliberate collision at the heart of ANC.
    uplink_receivers:
        Who listens during the collision slot: always the relay, plus both
        destinations when they must overhear their side information.
    downlink_receivers:
        Who listens to the amplify-and-forward broadcast in slot 2.
    side_info:
        Per-destination mode from :data:`SIDE_INFO_MODES`.
    """

    relay: int
    flow_a: Flow
    flow_b: Flow
    uplink_senders: Tuple[int, int]
    uplink_receivers: Tuple[int, ...]
    downlink_receivers: Tuple[int, int]
    side_info: Dict[int, str]

    @property
    def overhearing(self) -> bool:
        """True when either destination must overhear its side packet."""
        return any(mode == "overhear" for mode in self.side_info.values())


def _side_info_mode(
    topology: Topology, paired_source: int, destination: int
) -> Optional[str]:
    """How ``destination`` can learn the packet sent by ``paired_source``."""
    if destination == paired_source:
        return "reverse"
    if topology.in_range(paired_source, destination):
        return "overhear"
    return None


def plan_relay_exchange(
    topology: Topology,
    flow_a: Flow,
    flow_b: Flow,
    relay: Optional[int] = None,
    overhearing: Optional[bool] = None,
) -> RelayExchangePlan:
    """Plan the two-slot ANC exchange for two flows crossing at a relay.

    Parameters
    ----------
    topology:
        The network the exchange runs over.
    flow_a / flow_b:
        The crossing flows; both must be 2-hop flows through the relay.
    relay:
        The shared relay.  ``None`` auto-detects it as the common middle
        node of both flows' shortest routable paths.
    overhearing:
        Force the side-information mode: ``True`` requires both
        destinations to overhear, ``False`` requires both flows to be
        reverses of each other, ``None`` picks per destination.

    Raises
    ------
    ConfigurationError
        If the flows do not cross at the relay, or a destination has no
        way to obtain the side information it would need to decode.
    """
    if flow_a.packets != flow_b.packets:
        raise ConfigurationError(
            "ANC pairing requires both flows to carry the same packet count"
        )
    if flow_a.source == flow_b.source:
        raise ConfigurationError("crossing flows need distinct sources")
    if flow_a.destination == flow_b.destination:
        raise ConfigurationError("crossing flows need distinct destinations")

    if relay is None:
        middles_a = set(topology.shortest_path(flow_a.source, flow_a.destination)[1:-1])
        middles_b = set(topology.shortest_path(flow_b.source, flow_b.destination)[1:-1])
        shared = sorted(middles_a & middles_b)
        if not shared:
            raise ConfigurationError("flows do not share a relay node")
        relay = shared[0]
    relay = int(relay)

    for flow in (flow_a, flow_b):
        if relay in (flow.source, flow.destination):
            raise ConfigurationError("the relay cannot be a flow endpoint")
        if not topology.is_routable(flow.source, relay) or not topology.is_routable(
            relay, flow.destination
        ):
            raise ConfigurationError(
                f"flow {flow.source}->{flow.destination} does not cross relay {relay}"
            )

    side_info: Dict[int, str] = {}
    for destination, paired_source in (
        (flow_a.destination, flow_b.source),
        (flow_b.destination, flow_a.source),
    ):
        mode = _side_info_mode(topology, paired_source, destination)
        if overhearing is True:
            mode = "overhear" if topology.in_range(paired_source, destination) else None
        elif overhearing is False and mode == "overhear":
            mode = None
        if mode is None:
            raise ConfigurationError(
                f"destination {destination} has no side information for the "
                f"packet sent by {paired_source}"
            )
        side_info[destination] = mode

    needs_overhearing = any(mode == "overhear" for mode in side_info.values())
    uplink_receivers: Tuple[int, ...] = (relay,)
    if needs_overhearing:
        uplink_receivers = (relay, flow_a.destination, flow_b.destination)
    return RelayExchangePlan(
        relay=relay,
        flow_a=flow_a,
        flow_b=flow_b,
        uplink_senders=(flow_a.source, flow_b.source),
        uplink_receivers=uplink_receivers,
        downlink_receivers=(flow_a.destination, flow_b.destination),
        side_info=side_info,
    )


@dataclass(frozen=True)
class MeshSchedule:
    """Partition of a mesh flow set into ANC exchanges and routed leftovers.

    Attributes
    ----------
    exchanges:
        Relay-exchange plans for the flow pairs the scheduler matched.
    routed:
        Flows with no ANC opportunity; they run over plain routing.
    """

    exchanges: Tuple[RelayExchangePlan, ...]
    routed: Tuple[Flow, ...]

    @property
    def paired_flows(self) -> int:
        """Number of flows scheduled into ANC exchanges."""
        return 2 * len(self.exchanges)


def plan_mesh_exchanges(topology: Topology, flows: Sequence[Flow]) -> MeshSchedule:
    """Greedily pair mesh flows into ANC relay exchanges.

    Two flows qualify as a pair when they cross at a shared relay (both
    are 2-hop flows whose shortest routable paths share a middle node),
    their four endpoint roles do not conflict with half-duplex operation,
    and *both* destinations can obtain their side information the same way
    (both "reverse" or both "overhear") — the uniform-mode restriction
    matches the relay-protocol executor's contract.  Pairing is greedy in
    flow order, so the result is deterministic for a given flow list.
    """
    remaining = list(flows)
    exchanges: List[RelayExchangePlan] = []
    index_a = 0
    while index_a < len(remaining):
        flow_a = remaining[index_a]
        matched = None
        for index_b in range(index_a + 1, len(remaining)):
            flow_b = remaining[index_b]
            try:
                plan = plan_relay_exchange(topology, flow_a, flow_b)
            except (ConfigurationError, TopologyError):
                continue
            modes = set(plan.side_info.values())
            if len(modes) != 1:
                continue
            matched = (index_b, plan)
            break
        if matched is None:
            index_a += 1
            continue
        index_b, plan = matched
        exchanges.append(plan)
        del remaining[index_b]
        del remaining[index_a]
    return MeshSchedule(exchanges=tuple(exchanges), routed=tuple(remaining))
