"""MAC-layer scheduling abstractions.

The paper compares ANC, COPE and traditional routing under an *optimal*
MAC: "the MAC employs an optimal scheduler and benefits from knowing the
traffic pattern and the topology.  Thus, the MAC never encounters
collisions or backoffs" (§11.1).  This package provides the schedule
representation and the oracle scheduler that the protocol implementations
use, plus the random-startup-delay model the trigger protocol adds on top
for deliberately concurrent transmissions.
"""

from repro.mac.schedule import ScheduledTransmission, Slot, Schedule
from repro.mac.optimal import OptimalScheduler
from repro.mac.planner import (
    ChainPipelinePlan,
    MeshSchedule,
    PhaseTemplate,
    RelayExchangePlan,
    plan_chain_pipeline,
    plan_mesh_exchanges,
    plan_relay_exchange,
)

__all__ = [
    "ChainPipelinePlan",
    "MeshSchedule",
    "OptimalScheduler",
    "PhaseTemplate",
    "RelayExchangePlan",
    "Schedule",
    "ScheduledTransmission",
    "Slot",
    "plan_chain_pipeline",
    "plan_mesh_exchanges",
    "plan_relay_exchange",
]
