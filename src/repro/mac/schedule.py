"""Schedule representation: who transmits what in which slot.

A :class:`Schedule` is an ordered list of :class:`Slot` objects; each slot
lists the transmissions that occur concurrently.  The protocols build
schedules describing their slot structure (4 slots per exchange for
traditional routing in the Alice–Bob topology, 3 for COPE, 2 for ANC, and
so on) and the simulator executes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.framing.packet import Packet


@dataclass(frozen=True)
class ScheduledTransmission:
    """A planned transmission: which node sends which packet, and its role."""

    sender: int
    packet: Optional[Packet] = None
    role: str = "data"
    start_offset: int = 0

    def __post_init__(self) -> None:
        """Validate the offset and the role."""
        if self.start_offset < 0:
            raise ConfigurationError("start offsets must be non-negative")
        if self.role not in {"data", "forward", "relay", "xor", "trigger"}:
            raise ConfigurationError(f"unknown transmission role {self.role!r}")


@dataclass(frozen=True)
class Slot:
    """One time slot: a set of concurrent transmissions."""

    transmissions: Tuple[ScheduledTransmission, ...]
    label: str = ""

    def __post_init__(self) -> None:
        """Validate the slot's transmissions."""
        if not self.transmissions:
            raise ConfigurationError("a slot must contain at least one transmission")
        senders = [t.sender for t in self.transmissions]
        if len(set(senders)) != len(senders):
            raise ConfigurationError("a node cannot transmit twice in the same slot")

    @property
    def senders(self) -> Tuple[int, ...]:
        """Node ids transmitting in this slot, in transmission order."""
        return tuple(t.sender for t in self.transmissions)

    @property
    def is_concurrent(self) -> bool:
        """True when more than one node transmits (a deliberate collision)."""
        return len(self.transmissions) > 1


@dataclass
class Schedule:
    """An ordered sequence of slots."""

    slots: List[Slot] = field(default_factory=list)

    def append(self, slot: Slot) -> None:
        """Add one slot to the end of the schedule."""
        self.slots.append(slot)

    def extend(self, slots: Sequence[Slot]) -> None:
        """Add several slots to the end of the schedule, in order."""
        self.slots.extend(slots)

    def __len__(self) -> int:
        """Number of slots in the schedule."""
        return len(self.slots)

    def __iter__(self) -> Iterator[Slot]:
        """Iterate over the slots in order."""
        return iter(self.slots)

    @property
    def concurrent_slots(self) -> int:
        """Number of slots with deliberately concurrent transmissions."""
        return sum(1 for slot in self.slots if slot.is_concurrent)
