"""Block interleaver.

ANC decoding errors are bursty: they cluster where the two interfering
phasors nearly cancel (the "|D| close to 1" region of Lemma 6.1) and in the
partially-overlapped edges of a collision.  Interleaving the coded bits
spreads those bursts across FEC blocks so that single-error-correcting
codes like Hamming(7,4) see at most one error per block far more often.
"""

from __future__ import annotations

import numpy as np

from repro.coding.fec import BlockCode
from repro.utils.validation import ensure_bit_array, ensure_positive_int


class BlockInterleaver(BlockCode):
    """Row-in / column-out block interleaver of shape ``rows x columns``.

    The interleaver is a rate-1 "code": it permutes bits on encode and
    applies the inverse permutation on decode.  Input length must be a
    multiple of ``rows * columns``.
    """

    def __init__(self, rows: int = 8, columns: int = 8) -> None:
        self.rows = ensure_positive_int(rows, "rows")
        self.columns = ensure_positive_int(columns, "columns")

    @property
    def block_size(self) -> int:
        """Number of bits permuted together."""
        return self.rows * self.columns

    @property
    def data_bits_per_block(self) -> int:
        return self.block_size

    @property
    def coded_bits_per_block(self) -> int:
        return self.block_size

    def encode(self, bits) -> np.ndarray:
        clean = ensure_bit_array(bits, "bits")
        self._validate_encode_length(clean)
        if clean.size == 0:
            return clean
        blocks = clean.reshape(-1, self.rows, self.columns)
        # Write row-wise, read column-wise.
        return blocks.transpose(0, 2, 1).reshape(-1).astype(np.uint8)

    def decode(self, bits) -> np.ndarray:
        clean = ensure_bit_array(bits, "bits")
        self._validate_decode_length(clean)
        if clean.size == 0:
            return clean
        blocks = clean.reshape(-1, self.columns, self.rows)
        return blocks.transpose(0, 2, 1).reshape(-1).astype(np.uint8)
