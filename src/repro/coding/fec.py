"""Composable forward-error-correction interface.

All concrete codes (repetition, Hamming) implement :class:`BlockCode`:
``encode(bits)`` expands ``k`` data bits into ``n`` coded bits and
``decode(bits)`` maps possibly-corrupted coded bits back to data bits.
:class:`FECPipeline` chains codes (and the interleaver) and computes the
aggregate redundancy overhead, which is the quantity §11.4 of the paper
charges against ANC's throughput.
"""

from __future__ import annotations

import abc
from typing import Iterable, List

import numpy as np

from repro.exceptions import CodingError
from repro.utils.validation import ensure_bit_array


class BlockCode(abc.ABC):
    """A code that maps ``k`` data bits to ``n`` coded bits per block."""

    @property
    @abc.abstractmethod
    def data_bits_per_block(self) -> int:
        """Number of data bits consumed per block (k)."""

    @property
    @abc.abstractmethod
    def coded_bits_per_block(self) -> int:
        """Number of coded bits produced per block (n)."""

    @abc.abstractmethod
    def encode(self, bits) -> np.ndarray:
        """Encode a bit array whose length is a multiple of ``k``."""

    @abc.abstractmethod
    def decode(self, bits) -> np.ndarray:
        """Decode a bit array whose length is a multiple of ``n``."""

    @property
    def rate(self) -> float:
        """Code rate ``k / n``."""
        return self.data_bits_per_block / self.coded_bits_per_block

    @property
    def redundancy_overhead(self) -> float:
        """Extra transmitted bits per data bit, ``n/k - 1``."""
        return self.coded_bits_per_block / self.data_bits_per_block - 1.0

    def _validate_encode_length(self, bits: np.ndarray) -> None:
        if bits.size % self.data_bits_per_block != 0:
            raise CodingError(
                f"data length {bits.size} is not a multiple of k={self.data_bits_per_block}"
            )

    def _validate_decode_length(self, bits: np.ndarray) -> None:
        if bits.size % self.coded_bits_per_block != 0:
            raise CodingError(
                f"coded length {bits.size} is not a multiple of n={self.coded_bits_per_block}"
            )


class IdentityCode(BlockCode):
    """The trivial rate-1 code (no redundancy); useful as a pipeline default."""

    @property
    def data_bits_per_block(self) -> int:
        return 1

    @property
    def coded_bits_per_block(self) -> int:
        return 1

    def encode(self, bits) -> np.ndarray:
        return ensure_bit_array(bits, "bits")

    def decode(self, bits) -> np.ndarray:
        return ensure_bit_array(bits, "bits")


class FECPipeline:
    """A chain of block codes applied in order on encode, reversed on decode.

    Parameters
    ----------
    stages:
        Codes applied outermost-first on encode.  For example
        ``FECPipeline([Hamming74Code(), RepetitionCode(3)])`` first Hamming
        encodes the data and then repeats every coded bit three times.
    """

    def __init__(self, stages: Iterable[BlockCode]) -> None:
        self.stages: List[BlockCode] = list(stages)
        if not self.stages:
            self.stages = [IdentityCode()]
        for stage in self.stages:
            if not isinstance(stage, BlockCode):
                raise CodingError(f"not a BlockCode: {stage!r}")

    def encode(self, bits) -> np.ndarray:
        out = ensure_bit_array(bits, "bits")
        for stage in self.stages:
            out = stage.encode(out)
        return out

    def decode(self, bits) -> np.ndarray:
        out = ensure_bit_array(bits, "bits")
        for stage in reversed(self.stages):
            out = stage.decode(out)
        return out

    @property
    def rate(self) -> float:
        """Overall code rate (product of stage rates)."""
        rate = 1.0
        for stage in self.stages:
            rate *= stage.rate
        return rate

    @property
    def redundancy_overhead(self) -> float:
        """Extra transmitted bits per data bit for the whole pipeline."""
        return 1.0 / self.rate - 1.0

    def expansion(self, n_data_bits: int) -> int:
        """Number of coded bits produced for ``n_data_bits`` data bits."""
        length = n_data_bits
        for stage in self.stages:
            if length % stage.data_bits_per_block != 0:
                raise CodingError(
                    f"data length {length} is not a multiple of k={stage.data_bits_per_block} "
                    f"for stage {type(stage).__name__}"
                )
            length = (length // stage.data_bits_per_block) * stage.coded_bits_per_block
        return length
