"""Error-control coding.

ANC-decoded packets have a small residual bit error rate (2-4 % in the
paper's testbed), which the system absorbs with extra error-correcting
redundancy — the ~8 % overhead charged against ANC's throughput in §11.4.
This package provides the concrete machinery: CRCs for error *detection*
on frame headers and payloads, simple FEC (repetition and Hamming(7,4))
for error *correction*, a block interleaver to spread burst errors, and a
composable :class:`FECPipeline` that chains them.
"""

from repro.coding.crc import CRC16, CRC32, append_crc, check_and_strip_crc
from repro.coding.repetition import RepetitionCode
from repro.coding.hamming import Hamming74Code
from repro.coding.interleaver import BlockInterleaver
from repro.coding.fec import FECPipeline, IdentityCode, BlockCode

__all__ = [
    "BlockCode",
    "BlockInterleaver",
    "CRC16",
    "CRC32",
    "FECPipeline",
    "Hamming74Code",
    "IdentityCode",
    "RepetitionCode",
    "append_crc",
    "check_and_strip_crc",
]
