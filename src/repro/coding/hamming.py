"""Hamming(7,4) single-error-correcting block code.

Rate 4/7 with single-bit error correction per 7-bit block: this is the
realistic "moderate redundancy" option for absorbing ANC's residual BER.
Its ~14 % overhead brackets the 8 % figure the paper quotes for the extra
redundancy ANC needs (§11.4) — the throughput accounting in
:mod:`repro.metrics` takes the overhead as a parameter precisely so either
value can be charged.
"""

from __future__ import annotations

import numpy as np

from repro.coding.fec import BlockCode
from repro.utils.validation import ensure_bit_array

#: Generator matrix (4x7) in systematic form [I | P].
_G = np.array(
    [
        [1, 0, 0, 0, 1, 1, 0],
        [0, 1, 0, 0, 1, 0, 1],
        [0, 0, 1, 0, 0, 1, 1],
        [0, 0, 0, 1, 1, 1, 1],
    ],
    dtype=np.uint8,
)

#: Parity-check matrix (3x7) corresponding to ``_G``.
_H = np.array(
    [
        [1, 1, 0, 1, 1, 0, 0],
        [1, 0, 1, 1, 0, 1, 0],
        [0, 1, 1, 1, 0, 0, 1],
    ],
    dtype=np.uint8,
)


def _syndrome_table() -> dict:
    """Map each non-zero syndrome to the single-bit error position it implies."""
    table = {}
    for position in range(7):
        error = np.zeros(7, dtype=np.uint8)
        error[position] = 1
        syndrome = tuple((_H @ error) % 2)
        table[syndrome] = position
    return table


_SYNDROMES = _syndrome_table()


class Hamming74Code(BlockCode):
    """Systematic Hamming(7,4) encoder/decoder with single-error correction."""

    @property
    def data_bits_per_block(self) -> int:
        return 4

    @property
    def coded_bits_per_block(self) -> int:
        return 7

    def encode(self, bits) -> np.ndarray:
        clean = ensure_bit_array(bits, "bits")
        self._validate_encode_length(clean)
        if clean.size == 0:
            return clean
        blocks = clean.reshape(-1, 4)
        coded = (blocks @ _G) % 2
        return coded.astype(np.uint8).reshape(-1)

    def decode(self, bits) -> np.ndarray:
        coded = ensure_bit_array(bits, "bits")
        self._validate_decode_length(coded)
        if coded.size == 0:
            return coded
        blocks = coded.reshape(-1, 7).copy()
        syndromes = (blocks @ _H.T) % 2
        for i, syndrome in enumerate(syndromes):
            key = tuple(int(s) for s in syndrome)
            if key in _SYNDROMES:
                position = _SYNDROMES[key]
                blocks[i, position] ^= 1
        # Systematic code: the first four bits of each block are the data.
        return blocks[:, :4].astype(np.uint8).reshape(-1)

    def correctable_errors_per_block(self) -> int:
        """Hamming(7,4) corrects exactly one error per 7-bit block."""
        return 1
