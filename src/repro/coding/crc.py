"""Cyclic redundancy checks over bit arrays.

CRCs are used by the framing layer to validate decoded headers (so the
router and the destinations can trust the SrcID/DstID/SeqNo fields they
read out of an interfered signal, §7.3/§7.5) and to detect residual errors
in decoded payloads when computing packet delivery statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.exceptions import CRCError, ConfigurationError
from repro.utils.bits import as_bit_array, bits_from_int, bits_to_int


@dataclass(frozen=True)
class CRCSpec:
    """Parameters of a CRC: width, generator polynomial and initial value."""

    width: int
    polynomial: int
    initial: int
    name: str

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ConfigurationError("CRC width must be positive")
        if self.polynomial <= 0:
            raise ConfigurationError("CRC polynomial must be positive")


class _BitwiseCRC:
    """Straightforward bitwise CRC engine (MSB-first, no reflection)."""

    def __init__(self, spec: CRCSpec) -> None:
        self.spec = spec
        self._top_bit = 1 << (spec.width - 1)
        self._mask = (1 << spec.width) - 1

    def compute(self, bits) -> int:
        """CRC register value after shifting in all data bits."""
        data = as_bit_array(bits)
        register = self.spec.initial & self._mask
        for bit in data:
            incoming = int(bit) ^ ((register >> (self.spec.width - 1)) & 1)
            register = (register << 1) & self._mask
            if incoming:
                register ^= self.spec.polynomial & self._mask
        return register

    def compute_bits(self, bits) -> np.ndarray:
        """CRC value rendered as a bit array of the CRC's width."""
        return bits_from_int(self.compute(bits), self.spec.width)

    def append(self, bits) -> np.ndarray:
        """Return ``bits`` with the CRC appended."""
        data = as_bit_array(bits)
        return np.concatenate([data, self.compute_bits(data)])

    def verify(self, bits_with_crc) -> bool:
        """Check a bit array whose last ``width`` bits are the CRC."""
        data = as_bit_array(bits_with_crc)
        if data.size < self.spec.width:
            return False
        payload = data[: -self.spec.width]
        received = bits_to_int(data[-self.spec.width :])
        return self.compute(payload) == received

    def strip(self, bits_with_crc) -> np.ndarray:
        """Verify and remove the trailing CRC, raising :class:`CRCError` on failure."""
        data = as_bit_array(bits_with_crc)
        if not self.verify(data):
            raise CRCError(f"{self.spec.name} check failed")
        return data[: -self.spec.width]


#: CRC-16/CCITT-FALSE: polynomial 0x1021, initial value 0xFFFF.
CRC16 = _BitwiseCRC(CRCSpec(width=16, polynomial=0x1021, initial=0xFFFF, name="CRC-16/CCITT"))

#: CRC-32 (IEEE 802.3 polynomial, non-reflected variant used only internally).
CRC32 = _BitwiseCRC(CRCSpec(width=32, polynomial=0x04C11DB7, initial=0xFFFFFFFF, name="CRC-32"))


def append_crc(bits, crc: _BitwiseCRC = CRC16) -> np.ndarray:
    """Append a CRC to a bit array (default CRC-16)."""
    return crc.append(bits)


def check_and_strip_crc(bits, crc: _BitwiseCRC = CRC16) -> Tuple[np.ndarray, bool]:
    """Return ``(payload, ok)`` where ``ok`` indicates whether the CRC matched.

    Unlike :meth:`_BitwiseCRC.strip` this never raises, which is the shape
    the packet-delivery accounting wants: a failed CRC is a lost packet,
    not an exception.
    """
    data = as_bit_array(bits)
    if data.size < crc.spec.width:
        return data, False
    ok = crc.verify(data)
    return data[: -crc.spec.width], ok
