"""Repetition code.

The simplest error-correcting code: every data bit is transmitted ``r``
times and decoded by majority vote.  With ``r = 3`` it corrects any single
error per block, which is more than enough to absorb the 2-4 % residual BER
of ANC decoding at the cost of a rate of 1/3 — the benchmarks use it as the
"generous redundancy" end of the FEC ablation.
"""

from __future__ import annotations

import numpy as np

from repro.coding.fec import BlockCode
from repro.exceptions import CodingError
from repro.utils.validation import ensure_bit_array, ensure_positive_int


class RepetitionCode(BlockCode):
    """Repeat each bit ``repetitions`` times; decode by majority vote.

    ``repetitions`` must be odd so every vote has a strict majority.
    """

    def __init__(self, repetitions: int = 3) -> None:
        reps = ensure_positive_int(repetitions, "repetitions")
        if reps % 2 == 0:
            raise CodingError("repetition count must be odd so majority voting is unambiguous")
        self.repetitions = reps

    @property
    def data_bits_per_block(self) -> int:
        return 1

    @property
    def coded_bits_per_block(self) -> int:
        return self.repetitions

    def encode(self, bits) -> np.ndarray:
        clean = ensure_bit_array(bits, "bits")
        return np.repeat(clean, self.repetitions)

    def decode(self, bits) -> np.ndarray:
        coded = ensure_bit_array(bits, "bits")
        self._validate_decode_length(coded)
        groups = coded.reshape(-1, self.repetitions)
        votes = groups.sum(axis=1)
        return (votes > self.repetitions // 2).astype(np.uint8)

    def correctable_errors_per_block(self) -> int:
        """Maximum number of bit errors per block that are always corrected."""
        return (self.repetitions - 1) // 2
