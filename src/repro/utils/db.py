"""Decibel conversions.

The paper quotes every threshold and operating point in dB (20 dB packet
detection, 25-40 dB WLAN SNR, -3 dB SIR ...).  These helpers convert
between dB and linear power/amplitude ratios with explicit names so call
sites read unambiguously.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.exceptions import ConfigurationError

ArrayLike = Union[float, np.ndarray]


def db_to_power_ratio(db: ArrayLike) -> ArrayLike:
    """Convert a dB value to a linear *power* ratio (``10^(dB/10)``)."""
    result = np.power(10.0, np.asarray(db, dtype=float) / 10.0)
    if np.isscalar(db) or np.ndim(db) == 0:
        return float(result)
    return result


def power_ratio_to_db(ratio: ArrayLike) -> ArrayLike:
    """Convert a linear power ratio to dB (``10 * log10(ratio)``)."""
    arr = np.asarray(ratio, dtype=float)
    if np.any(arr <= 0):
        raise ConfigurationError("power ratio must be strictly positive to convert to dB")
    result = 10.0 * np.log10(arr)
    if np.isscalar(ratio) or np.ndim(ratio) == 0:
        return float(result)
    return result


def db_to_linear(db: ArrayLike) -> ArrayLike:
    """Convert a dB value to a linear *amplitude* ratio (``10^(dB/20)``)."""
    result = np.power(10.0, np.asarray(db, dtype=float) / 20.0)
    if np.isscalar(db) or np.ndim(db) == 0:
        return float(result)
    return result


def linear_to_db(ratio: ArrayLike) -> ArrayLike:
    """Convert a linear amplitude ratio to dB (``20 * log10(ratio)``)."""
    arr = np.asarray(ratio, dtype=float)
    if np.any(arr <= 0):
        raise ConfigurationError("amplitude ratio must be strictly positive to convert to dB")
    result = 20.0 * np.log10(arr)
    if np.isscalar(ratio) or np.ndim(ratio) == 0:
        return float(result)
    return result


def snr_db_from_powers(signal_power: float, noise_power: float) -> float:
    """Signal-to-noise ratio in dB from linear signal and noise powers."""
    if signal_power <= 0:
        raise ConfigurationError("signal power must be positive")
    if noise_power <= 0:
        raise ConfigurationError("noise power must be positive")
    return float(10.0 * np.log10(signal_power / noise_power))


def sir_db_from_powers(wanted_power: float, interference_power: float) -> float:
    """Signal-to-interference ratio in dB, as defined in Eq. 9 of the paper.

    For Alice decoding Bob's packet, the *wanted* power is Bob's received
    power and the *interference* power is Alice's own signal.
    """
    if wanted_power <= 0:
        raise ConfigurationError("wanted power must be positive")
    if interference_power <= 0:
        raise ConfigurationError("interference power must be positive")
    return float(10.0 * np.log10(wanted_power / interference_power))
