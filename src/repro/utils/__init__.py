"""General-purpose helpers shared across the ANC reproduction library.

The utilities are deliberately small and dependency-light: phase / angle
arithmetic for complex baseband samples, dB conversions, bit packing,
pseudo-noise sequence generation, sliding-window statistics, and empirical
CDFs used by the evaluation harness.
"""

from repro.utils.angles import (
    phase_difference,
    principal_angle,
    unwrap_phase,
    wrap_angle,
)
from repro.utils.bits import (
    bits_from_bytes,
    bits_from_int,
    bits_to_bytes,
    bits_to_int,
    bits_to_string,
    hamming_distance,
    random_bits,
    string_to_bits,
)
from repro.utils.cdf import EmpiricalCDF
from repro.utils.db import (
    db_to_linear,
    db_to_power_ratio,
    linear_to_db,
    power_ratio_to_db,
    snr_db_from_powers,
)
from repro.utils.pn import PNSequence, pn_bits
from repro.utils.validation import (
    ensure_bit_array,
    ensure_complex_array,
    ensure_in_range,
    ensure_positive,
    ensure_probability,
)
from repro.utils.windows import moving_average, moving_energy, moving_variance

__all__ = [
    "EmpiricalCDF",
    "PNSequence",
    "bits_from_bytes",
    "bits_from_int",
    "bits_to_bytes",
    "bits_to_int",
    "bits_to_string",
    "db_to_linear",
    "db_to_power_ratio",
    "ensure_bit_array",
    "ensure_complex_array",
    "ensure_in_range",
    "ensure_positive",
    "ensure_probability",
    "hamming_distance",
    "linear_to_db",
    "moving_average",
    "moving_energy",
    "moving_variance",
    "phase_difference",
    "pn_bits",
    "power_ratio_to_db",
    "principal_angle",
    "random_bits",
    "snr_db_from_powers",
    "string_to_bits",
    "unwrap_phase",
    "wrap_angle",
]
