"""Pseudo-noise (PN) sequence generation.

Two parts of the paper rely on pseudo-random bit sequences:

* the 64-bit pilot attached to both ends of every frame (§7.2), which all
  nodes must be able to regenerate deterministically, and
* the whitening scrambler (§6.2) that XORs the payload with a PN sequence
  so the "random bit pattern" assumption behind the amplitude estimator
  (``E[cos(theta - phi)] = 0``) holds even for structured payloads.

Both are served by a maximal-length LFSR implemented here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError

#: Default LFSR feedback taps (1-indexed bit positions from the output end
#: of the right-shifting register).  Positions (1, 3, 4, 6) realise the
#: maximal-length polynomial x^16 + x^14 + x^13 + x^11 + 1 under this shift
#: convention — period 65535 bits.
DEFAULT_TAPS = (1, 3, 4, 6)
DEFAULT_REGISTER_BITS = 16


class PNSequence:
    """Fibonacci LFSR pseudo-noise bit generator.

    Parameters
    ----------
    seed:
        Non-zero initial register state.  Two generators constructed with
        the same seed and taps produce identical output, which is what lets
        a receiver regenerate the transmitter's pilot and scrambler
        sequences without any side channel.
    taps:
        Feedback tap positions (1-indexed from the output bit).
    register_bits:
        Width of the shift register.
    """

    def __init__(
        self,
        seed: int,
        taps: tuple = DEFAULT_TAPS,
        register_bits: int = DEFAULT_REGISTER_BITS,
    ) -> None:
        if register_bits <= 0:
            raise ConfigurationError("register_bits must be positive")
        mask = (1 << register_bits) - 1
        state = seed & mask
        if state == 0:
            raise ConfigurationError("LFSR seed must be non-zero modulo the register width")
        if not taps:
            raise ConfigurationError("at least one feedback tap is required")
        if max(taps) > register_bits:
            raise ConfigurationError("tap positions cannot exceed the register width")
        self._register_bits = register_bits
        self._mask = mask
        self._taps = tuple(sorted(set(int(t) for t in taps), reverse=True))
        self._initial_state = state
        self._state = state

    @property
    def state(self) -> int:
        """Current register contents."""
        return self._state

    def reset(self) -> None:
        """Restore the register to its seed state."""
        self._state = self._initial_state

    def next_bit(self) -> int:
        """Advance the register one step and return the output bit."""
        feedback = 0
        for tap in self._taps:
            feedback ^= (self._state >> (tap - 1)) & 1
        output = self._state & 1
        self._state = ((self._state >> 1) | (feedback << (self._register_bits - 1))) & self._mask
        return output

    def bits(self, length: int) -> np.ndarray:
        """Generate the next ``length`` bits as a canonical bit array."""
        if length < 0:
            raise ConfigurationError("length must be non-negative")
        return np.array([self.next_bit() for _ in range(length)], dtype=np.uint8)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PNSequence(seed={self._initial_state:#x}, taps={self._taps}, "
            f"register_bits={self._register_bits})"
        )


def pn_bits(length: int, seed: int, taps: tuple = DEFAULT_TAPS) -> np.ndarray:
    """Convenience wrapper: the first ``length`` bits of a fresh LFSR."""
    return PNSequence(seed=seed, taps=taps).bits(length)


def make_rng(seed: Optional[int]) -> np.random.Generator:
    """Create a numpy Generator, tolerating ``None`` for nondeterministic use."""
    return np.random.default_rng(seed)
