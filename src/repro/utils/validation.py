"""Input validation helpers.

These keep the argument checking in library entry points short and the
resulting error messages consistent.  All of them raise
:class:`repro.exceptions.ConfigurationError` on invalid input.
"""

from __future__ import annotations

from numbers import Real
from typing import Iterable, Union

import numpy as np

from repro.exceptions import ConfigurationError


def ensure_positive(value: Real, name: str) -> float:
    """Require ``value > 0`` and return it as a float."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a real number, got {value!r}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return float(value)


def ensure_non_negative(value: Real, name: str) -> float:
    """Require ``value >= 0`` and return it as a float."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a real number, got {value!r}")
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value}")
    return float(value)


def ensure_probability(value: Real, name: str) -> float:
    """Require ``0 <= value <= 1`` and return it as a float."""
    val = ensure_non_negative(value, name)
    if val > 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
    return val


def ensure_in_range(value: Real, low: float, high: float, name: str) -> float:
    """Require ``low <= value <= high`` and return it as a float."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a real number, got {value!r}")
    if not (low <= value <= high):
        raise ConfigurationError(f"{name} must lie in [{low}, {high}], got {value}")
    return float(value)


def ensure_positive_int(value: int, name: str) -> int:
    """Require a strictly positive integer and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be a positive integer, got {value}")
    return int(value)


def ensure_non_negative_int(value: int, name: str) -> int:
    """Require a non-negative integer and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value}")
    return int(value)


def ensure_bit_array(bits: Union[Iterable[int], np.ndarray], name: str = "bits") -> np.ndarray:
    """Require an iterable of 0/1 values and return the canonical bit array."""
    arr = np.asarray(list(bits) if not isinstance(bits, np.ndarray) else bits)
    if arr.ndim != 1:
        raise ConfigurationError(f"{name} must be one-dimensional")
    if arr.size and not np.all(np.isin(arr, (0, 1))):
        raise ConfigurationError(f"{name} may only contain 0s and 1s")
    return arr.astype(np.uint8)


def ensure_bit_matrix(bits, name: str = "bits") -> np.ndarray:
    """Require a 2D ``(n_trials, n_bits)`` array of 0/1 values.

    The batched PHY kernels (:mod:`repro.modulation.batch`,
    :meth:`repro.anc.decoder.InterferenceDecoder.decode_batch`) operate on
    one bit row per trial; this is the 2D counterpart of
    :func:`ensure_bit_array`.
    """
    arr = np.asarray(bits)
    if arr.ndim != 2:
        raise ConfigurationError(f"{name} must be a 2D (n_trials, n_bits) array")
    if arr.size and not np.all(np.isin(arr, (0, 1))):
        raise ConfigurationError(f"{name} may only contain 0s and 1s")
    return arr.astype(np.uint8)


def ensure_complex_array(samples, name: str = "samples") -> np.ndarray:
    """Require a one-dimensional array convertible to complex128."""
    arr = np.asarray(samples)
    if arr.ndim != 1:
        raise ConfigurationError(f"{name} must be one-dimensional")
    try:
        return arr.astype(np.complex128)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be convertible to complex values") from exc
