"""Bit-array helpers.

The library represents bit streams as ``numpy.ndarray`` of dtype ``uint8``
containing only 0s and 1s.  These helpers convert between that canonical
representation and integers, bytes and strings, and provide the small
amount of bit arithmetic (Hamming distance, random generation) that the
framing, coding and evaluation layers need.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError

BitsLike = Union[Iterable[int], np.ndarray, str]


def as_bit_array(bits: BitsLike) -> np.ndarray:
    """Coerce an iterable / string of 0s and 1s into the canonical bit array."""
    if isinstance(bits, str):
        return string_to_bits(bits)
    arr = np.asarray(list(bits) if not isinstance(bits, np.ndarray) else bits)
    arr = arr.astype(np.uint8)
    if arr.ndim != 1:
        raise ConfigurationError("bit arrays must be one-dimensional")
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ConfigurationError("bit arrays may only contain 0s and 1s")
    return arr


def string_to_bits(text: str) -> np.ndarray:
    """Parse a string such as ``"1010"`` into a bit array."""
    stripped = text.strip()
    if stripped and not set(stripped) <= {"0", "1"}:
        raise ConfigurationError(f"not a binary string: {text!r}")
    return np.array([int(c) for c in stripped], dtype=np.uint8)


def bits_to_string(bits: BitsLike) -> str:
    """Render a bit array as a compact string of 0/1 characters."""
    return "".join(str(int(b)) for b in as_bit_array(bits))


def bits_from_int(value: int, width: int) -> np.ndarray:
    """Encode an unsigned integer as ``width`` bits, most-significant first."""
    if width <= 0:
        raise ConfigurationError("bit width must be positive")
    if value < 0:
        raise ConfigurationError("only unsigned integers can be encoded")
    if value >= (1 << width):
        raise ConfigurationError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> (width - 1 - i)) & 1 for i in range(width)], dtype=np.uint8)


def bits_to_int(bits: BitsLike) -> int:
    """Decode a most-significant-first bit array into an unsigned integer."""
    arr = as_bit_array(bits)
    value = 0
    for bit in arr:
        value = (value << 1) | int(bit)
    return value


def bits_from_bytes(data: bytes) -> np.ndarray:
    """Expand a byte string into a bit array, most-significant bit first."""
    if len(data) == 0:
        return np.zeros(0, dtype=np.uint8)
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8))


def bits_to_bytes(bits: BitsLike) -> bytes:
    """Pack a bit array into bytes; the length must be a multiple of 8."""
    arr = as_bit_array(bits)
    if arr.size % 8 != 0:
        raise ConfigurationError("bit array length must be a multiple of 8 to pack into bytes")
    if arr.size == 0:
        return b""
    return np.packbits(arr).tobytes()


def random_bits(length: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Generate ``length`` uniformly random bits using ``rng`` (or a fresh one)."""
    if length < 0:
        raise ConfigurationError("length must be non-negative")
    generator = rng if rng is not None else np.random.default_rng()
    return generator.integers(0, 2, size=length, dtype=np.uint8)


def hamming_distance(a: BitsLike, b: BitsLike) -> int:
    """Number of positions at which two equal-length bit arrays differ."""
    arr_a = as_bit_array(a)
    arr_b = as_bit_array(b)
    if arr_a.size != arr_b.size:
        raise ConfigurationError(
            f"bit arrays must have equal length (got {arr_a.size} and {arr_b.size})"
        )
    return int(np.count_nonzero(arr_a != arr_b))


def bit_error_rate(reference: BitsLike, received: BitsLike) -> float:
    """Fraction of differing bits between two equal-length bit arrays."""
    arr = as_bit_array(reference)
    if arr.size == 0:
        return 0.0
    return hamming_distance(reference, received) / float(arr.size)
