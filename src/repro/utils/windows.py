"""Sliding-window statistics over sample streams.

The packet detector and the interference detector of §7.1 both operate on
moving windows of received complex samples: the former thresholds the
windowed energy, the latter thresholds the windowed *variance* of the
energy.  The helpers here compute those windowed statistics vectorised.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


def _validate_window(window: int, n: int) -> None:
    if window <= 0:
        raise ConfigurationError("window length must be positive")
    if n == 0:
        raise ConfigurationError("cannot compute windowed statistics of an empty array")


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing moving average with a ramp-up at the start.

    ``result[i]`` is the mean of ``values[max(0, i - window + 1) : i + 1]``,
    so the output has the same length as the input and early entries
    average over fewer samples rather than being dropped.
    """
    arr = np.asarray(values, dtype=float)
    _validate_window(window, arr.size)
    cumulative = np.cumsum(np.insert(arr, 0, 0.0))
    idx = np.arange(1, arr.size + 1)
    start = np.maximum(idx - window, 0)
    counts = idx - start
    return (cumulative[idx] - cumulative[start]) / counts


def moving_energy(samples: np.ndarray, window: int) -> np.ndarray:
    """Moving average of ``|samples|^2`` (the windowed signal energy)."""
    arr = np.asarray(samples)
    _validate_window(window, arr.size)
    return moving_average(np.abs(arr) ** 2, window)


def moving_variance(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing moving variance (population variance within each window)."""
    arr = np.asarray(values, dtype=float)
    _validate_window(window, arr.size)
    mean = moving_average(arr, window)
    mean_sq = moving_average(arr ** 2, window)
    variance = mean_sq - mean ** 2
    # Numerical noise can push the variance a hair below zero.
    return np.maximum(variance, 0.0)


def block_mean(values: np.ndarray, block: int) -> np.ndarray:
    """Mean of consecutive non-overlapping blocks (trailing partial block kept)."""
    arr = np.asarray(values, dtype=float)
    _validate_window(block, arr.size)
    n_blocks = int(np.ceil(arr.size / block))
    means = np.empty(n_blocks, dtype=float)
    for i in range(n_blocks):
        means[i] = arr[i * block : (i + 1) * block].mean()
    return means
