"""Angle and phase arithmetic for complex baseband processing.

MSK encodes information purely in the *difference* between the phases of
consecutive complex samples (§5.2 of the paper), so almost every algorithm
in :mod:`repro.anc` manipulates wrapped angles.  The helpers here keep that
arithmetic in one place and make the wrapping conventions explicit.
"""

from __future__ import annotations

from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]

TWO_PI = 2.0 * np.pi


def wrap_angle(angle: ArrayLike) -> ArrayLike:
    """Wrap an angle (radians) into the interval ``(-pi, pi]``.

    Parameters
    ----------
    angle:
        Scalar or array of angles in radians.

    Returns
    -------
    float or numpy.ndarray
        The same angles mapped to the principal interval.
    """
    wrapped = np.mod(np.asarray(angle, dtype=float) + np.pi, TWO_PI) - np.pi
    # np.mod maps exact multiples of 2*pi to -pi; keep +pi as the principal
    # representative so that wrap_angle(pi) == pi.
    wrapped = np.where(np.isclose(wrapped, -np.pi), np.pi, wrapped)
    if np.isscalar(angle) or np.ndim(angle) == 0:
        return float(wrapped)
    return wrapped


def principal_angle(value: ArrayLike) -> ArrayLike:
    """Return the principal argument of a complex value in ``(-pi, pi]``."""
    ang = np.angle(np.asarray(value))
    if np.isscalar(value) or np.ndim(value) == 0:
        return float(ang)
    return ang


def phase_difference(later: ArrayLike, earlier: ArrayLike) -> ArrayLike:
    """Wrapped phase difference ``later - earlier`` in ``(-pi, pi]``.

    This is the quantity MSK demodulation thresholds on: a positive
    difference decodes to a "1" bit and a negative difference to "0".
    """
    return wrap_angle(np.asarray(later, dtype=float) - np.asarray(earlier, dtype=float))


def unwrap_phase(phases: np.ndarray) -> np.ndarray:
    """Unwrap a sequence of wrapped phases into a continuous trajectory.

    Thin wrapper around :func:`numpy.unwrap` kept here so that callers in
    the library never import numpy's signal helpers directly.
    """
    return np.unwrap(np.asarray(phases, dtype=float))


def angular_distance(a: ArrayLike, b: ArrayLike) -> ArrayLike:
    """Absolute wrapped distance between two angles, in ``[0, pi]``.

    Used by the ANC phase-difference matcher (Eq. 8) to score how well a
    candidate phase difference matches the known transmitted one.
    """
    diff = phase_difference(a, b)
    return np.abs(diff)
