"""Empirical cumulative distribution functions.

Every evaluation figure in the paper (Figs. 9, 10, 12) is a CDF of either
per-run throughput gain or per-packet bit error rate.  The
:class:`EmpiricalCDF` here is the single representation those experiment
runners and benchmark harnesses use to report results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class EmpiricalCDF:
    """Empirical CDF of a sample of real values.

    The CDF is right-continuous: ``evaluate(x)`` is the fraction of samples
    less than or equal to ``x``.
    """

    samples: Tuple[float, ...] = field(default_factory=tuple)

    @classmethod
    def from_samples(cls, values: Iterable[float]) -> "EmpiricalCDF":
        data = tuple(float(v) for v in values)
        if not data:
            raise ConfigurationError("an empirical CDF needs at least one sample")
        if any(np.isnan(v) for v in data):
            raise ConfigurationError("CDF samples must not contain NaN")
        return cls(samples=tuple(sorted(data)))

    @property
    def n(self) -> int:
        """Number of underlying samples."""
        return len(self.samples)

    def evaluate(self, x: float) -> float:
        """Fraction of samples ``<= x``."""
        if not self.samples:
            raise ConfigurationError("empty CDF")
        return float(np.searchsorted(np.asarray(self.samples), x, side="right")) / self.n

    def quantile(self, q: float) -> float:
        """Smallest sample value with CDF at least ``q`` (0 < q <= 1)."""
        if not 0.0 < q <= 1.0:
            raise ConfigurationError("quantile level must lie in (0, 1]")
        index = int(np.ceil(q * self.n)) - 1
        return self.samples[max(index, 0)]

    @property
    def median(self) -> float:
        """The 0.5 quantile."""
        return self.quantile(0.5)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        return float(np.mean(self.samples))

    @property
    def minimum(self) -> float:
        return self.samples[0]

    @property
    def maximum(self) -> float:
        return self.samples[-1]

    def fraction_below(self, x: float) -> float:
        """Fraction of samples strictly less than ``x``."""
        if not self.samples:
            raise ConfigurationError("empty CDF")
        return float(np.searchsorted(np.asarray(self.samples), x, side="left")) / self.n

    def as_plot_points(self) -> Tuple[List[float], List[float]]:
        """Return ``(x, y)`` lists suitable for plotting a step CDF.

        ``x`` is the sorted sample values and ``y`` the cumulative fraction
        at each, matching how the paper's gnuplot CDFs are drawn.
        """
        xs = list(self.samples)
        ys = [(i + 1) / self.n for i in range(self.n)]
        return xs, ys

    def table(self, points: Sequence[float]) -> List[Tuple[float, float]]:
        """Evaluate the CDF at the given points, returning (x, F(x)) pairs."""
        return [(float(p), self.evaluate(float(p))) for p in points]

    def __len__(self) -> int:
        return self.n
