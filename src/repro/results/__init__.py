"""Typed, serializable experiment results (the structured-results pipeline).

This package is the stable programmatic contract for every experiment in
the reproduction:

* :mod:`repro.results.model` — :class:`ExperimentResult`, its
  :class:`Series`/:class:`Record` tables, and the lossless
  ``to_dict``/``from_dict``/JSON/CSV serialization with a versioned
  schema (:data:`SCHEMA_VERSION`);
* :mod:`repro.results.adapters` — builders that flatten the rich
  experiment objects (reports, curves, point lists, scenario tables)
  into results;
* :mod:`repro.results.render` — :func:`render_text`, the plain-text view
  that regenerates the legacy reports byte-for-byte from the structured
  data.

Obtain results through the facade::

    from repro import api

    result = api.run("alice-bob", config=ExperimentConfig.quick())
    print(render_text(result))          # the familiar text report
    path.write_text(result.to_json())   # machine-readable export

See ``docs/API.md`` for the schema reference.
"""

from repro.results.model import (
    SCHEMA_VERSION,
    Cell,
    ExperimentResult,
    Record,
    Series,
    config_digest,
)
from repro.results.render import render_text

__all__ = [
    "Cell",
    "ExperimentResult",
    "Record",
    "SCHEMA_VERSION",
    "Series",
    "config_digest",
    "render_text",
]
