"""Builders that turn the rich experiment objects into :class:`ExperimentResult`.

Each figure runner and scenario sweep keeps producing the rich view object
it always produced (:class:`~repro.metrics.report.ExperimentReport`,
:class:`~repro.capacity.sweep.CapacityCurve`, point lists,
:class:`~repro.experiments.scenarios.ScenarioReport`); the adapters here
flatten those objects into the typed, serializable result model of
:mod:`repro.results.model` without losing anything the plain-text
rendering needs — which is what lets
:func:`repro.results.render.render_text` regenerate the legacy reports
byte-for-byte from the structured data alone.

The adapters are deliberately duck-typed (they only read public
attributes), so this module depends on nothing above the result model and
can be imported from anywhere in the package without cycles.
"""

from __future__ import annotations

import math
from dataclasses import asdict, is_dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence

import repro
from repro.results.model import ExperimentResult, Series

#: Columns of the per-run table shared by every figure experiment.
RUN_COLUMNS = (
    "run",
    "scheme",
    "topology",
    "throughput",
    "packets_offered",
    "packets_delivered",
    "packets_lost",
    "air_time_samples",
    "slots_used",
    "mean_ber",
    "delivery_ratio",
    "mean_overlap",
    "redundancy_overhead",
)


def config_snapshot(config: Any) -> Dict[str, Any]:
    """JSON-ready snapshot of an experiment config (dataclass or mapping).

    Configs that curate their own view (``ExperimentConfig.snapshot``
    omits disabled impairments so pre-impairment fixtures stay stable)
    are snapshotted through it.
    """
    snapshot = getattr(config, "snapshot", None)
    if callable(snapshot):
        return dict(snapshot())
    if is_dataclass(config) and not isinstance(config, type):
        return asdict(config)
    return dict(config)


def _base_meta(renderer: str, extra: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
    """Common metadata every adapter stamps on its result."""
    meta: Dict[str, Any] = {
        "renderer": renderer,
        "version": getattr(repro, "__version__", "0"),
    }
    if extra:
        meta.update(extra)
    return meta


def _run_rows(scheme_runs: Mapping[str, Sequence[Any]]) -> Series:
    """Per-run summary table over every scheme's :class:`RunResult` list."""
    rows = []
    for scheme, runs in scheme_runs.items():
        for index, run in enumerate(runs):
            record = run.to_record()
            rows.append((index, scheme) + tuple(record[c] for c in RUN_COLUMNS[2:]))
    return Series(name="runs", columns=RUN_COLUMNS, rows=tuple(rows))


def experiment_report_result(
    name: str, report: Any, config: Any
) -> ExperimentResult:
    """Flatten an :class:`~repro.metrics.report.ExperimentReport`.

    Captures the per-run results of every scheme (``runs`` series), the
    per-run gain samples behind each comparison CDF (``gains`` series),
    the sorted per-packet BER samples behind the BER CDF (``ber``
    series), and the report's extra scalars — everything
    :meth:`ExperimentReport.render` consumes.
    """
    gain_rows = []
    for baseline, comparison in report.comparisons.items():
        for sample in comparison.samples:
            gain_rows.append((
                baseline,
                sample.run_index,
                sample.gain,
                sample.anc_throughput,
                sample.baseline_throughput,
            ))
    series: Dict[str, Series] = {}
    scheme_runs: Dict[str, Sequence[Any]] = {"anc": report.anc_runs}
    scheme_runs.update(report.baseline_runs)
    if any(len(runs) for runs in scheme_runs.values()):
        series["runs"] = _run_rows(scheme_runs)
    series["gains"] = Series(
        name="gains",
        columns=("baseline", "run", "gain", "anc_throughput", "baseline_throughput"),
        rows=tuple(gain_rows),
    )
    if report.ber_cdf is not None:
        series["ber"] = Series(
            name="ber",
            columns=("ber",),
            rows=tuple((float(v),) for v in report.ber_cdf.samples),
        )
    snapshot = config_snapshot(config)
    return ExperimentResult(
        name=name,
        kind="figure",
        config=snapshot,
        seed=int(snapshot.get("seed", 0)),
        series=series,
        scalars=dict(report.extras),
        meta=_base_meta("report", {
            "title": report.name,
            "baselines": list(report.comparisons),
        }),
    )


def capacity_result(name: str, curve: Any, config: Any) -> ExperimentResult:
    """Flatten a :class:`~repro.capacity.sweep.CapacityCurve` (Fig. 7).

    ``crossover_db`` is NaN when the swept grid does not bracket the
    crossover; the result model only stores finite numbers, so such
    scalars are *omitted* and the renderer restores NaN on the way back.
    """
    snapshot = config_snapshot(config)
    series = Series(
        name="curve",
        columns=("snr_db", "traditional", "anc", "gain"),
        rows=tuple(
            (float(s), float(t), float(a), float(g)) for s, t, a, g in curve.as_rows()
        ),
    )
    scalars = {
        key: float(value)
        for key, value in (
            ("crossover_db", curve.crossover_db),
            ("asymptotic_gain", curve.asymptotic_gain),
        )
        if math.isfinite(value)
    }
    return ExperimentResult(
        name=name,
        kind="figure",
        config=snapshot,
        seed=int(snapshot.get("seed", 0)),
        series={"curve": series},
        scalars=scalars,
        meta=_base_meta("capacity"),
    )


def sir_result(
    name: str,
    points: Iterable[Any],
    config: Any,
    params: Optional[Mapping[str, Any]] = None,
) -> ExperimentResult:
    """Flatten the Fig. 13 BER-vs-SIR point list."""
    snapshot = config_snapshot(config)
    series = Series(
        name="points",
        columns=("sir_db", "mean_ber", "packets", "decode_failures"),
        rows=tuple(
            (float(p.sir_db), float(p.mean_ber), int(p.packets), int(p.decode_failures))
            for p in points
        ),
    )
    return ExperimentResult(
        name=name,
        kind="figure",
        config=snapshot,
        seed=int(snapshot.get("seed", 0)),
        series={"points": series},
        meta=_base_meta("sir", {"params": dict(params) if params else {}}),
    )


def snr_result(
    name: str,
    points: Iterable[Any],
    config: Any,
    params: Optional[Mapping[str, Any]] = None,
) -> ExperimentResult:
    """Flatten the extension SNR-sweep point list."""
    snapshot = config_snapshot(config)
    series = Series(
        name="points",
        columns=(
            "snr_db",
            "gain_over_traditional",
            "mean_ber",
            "delivery_ratio",
            "theoretical_gain",
        ),
        rows=tuple(
            (
                float(p.snr_db),
                float(p.gain_over_traditional),
                float(p.mean_ber),
                float(p.delivery_ratio),
                float(p.theoretical_gain),
            )
            for p in points
        ),
    )
    return ExperimentResult(
        name=name,
        kind="figure",
        config=snapshot,
        seed=int(snapshot.get("seed", 0)),
        series={"points": series},
        meta=_base_meta("snr", {"params": dict(params) if params else {}}),
    )


def summary_result(name: str, summary: Any, config: Any) -> ExperimentResult:
    """Flatten the §11.3 summary into its metric/measured table."""
    snapshot = config_snapshot(config)
    rows = summary.rows()
    series = Series(
        name="rows",
        columns=("metric", "measured"),
        rows=tuple((key, float(value)) for key, value in rows.items()),
    )
    return ExperimentResult(
        name=name,
        kind="figure",
        config=snapshot,
        seed=int(snapshot.get("seed", 0)),
        series={"rows": series},
        scalars=dict(rows),
        meta=_base_meta("summary"),
    )


def scenario_result(report: Any, config: Any) -> ExperimentResult:
    """Flatten a :class:`~repro.experiments.scenarios.ScenarioReport`.

    The sweep grid goes into one long-format ``cells`` series (sweep
    value, scheme, metric, mean over runs); the axis metadata the table
    renderer needs (axis label, scheme order, value order, runs per
    point) rides along in ``meta``.
    """
    spec = report.spec
    cell_rows = []
    for value in report.sweep_values:
        row = report.rows[value]
        for scheme in spec.schemes:
            for metric in sorted(row[scheme]):
                cell_rows.append((value, scheme, metric, float(row[scheme][metric])))
    snapshot = config_snapshot(config)
    series = Series(
        name="cells",
        columns=("value", "scheme", "metric", "mean"),
        rows=tuple(cell_rows),
    )
    return ExperimentResult(
        name=spec.name,
        kind="scenario",
        config=snapshot,
        seed=int(snapshot.get("seed", 0)),
        series={"cells": series},
        meta=_base_meta("scenario", {
            "sweep_axis": spec.sweep_axis,
            "schemes": list(spec.schemes),
            "sweep_values": list(report.sweep_values),
            "runs": int(report.runs),
            "params": dict(spec.params),
        }),
    )


def attach_engine_meta(
    result: ExperimentResult,
    engine: Any,
    stats: Sequence[Any],
    elapsed_seconds: float,
) -> ExperimentResult:
    """Stamp the executing engine's cache/timing statistics onto a result.

    ``stats`` is the slice of :attr:`ExperimentEngine.stats_log` produced
    while the experiment ran (one entry per ``map`` invocation —
    composite experiments like the summary produce several).
    """
    return result.with_meta(engine={
        "workers": int(engine.workers),
        "batch_size": int(engine.batch_size),
        "invocations": len(stats),
        "total_trials": sum(s.total_trials for s in stats),
        "executed_trials": sum(s.executed_trials for s in stats),
        "cached_trials": sum(s.cached_trials for s in stats),
        "elapsed_seconds": float(elapsed_seconds),
        "digests": [s.digest for s in stats],
        "cache_dir": str(engine.cache_dir) if engine.cache_dir is not None else None,
    })
