"""Plain-text rendering as a *view* over :class:`ExperimentResult`.

:func:`render_text` regenerates, from the structured result alone, the
exact report the legacy ``.render()`` methods produce — byte-identical,
which ``tests/test_results_render.py`` asserts for every experiment.  It
works by rebuilding the original rich view objects (comparison reports,
CDFs, curves, point lists) from the stored tables and then reusing the
very same formatting code, so the two paths cannot drift apart.

The heavyweight imports (metrics, capacity, experiments) happen lazily
inside each renderer: the :mod:`repro.results` package stays importable
from anywhere in the library without creating import cycles.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.exceptions import ConfigurationError
from repro.results.model import ExperimentResult


def _render_report(result: ExperimentResult) -> str:
    """Rebuild an :class:`ExperimentReport` view and render it."""
    from repro.metrics.gain import GainSample
    from repro.metrics.report import ComparisonReport, ExperimentReport
    from repro.utils.cdf import EmpiricalCDF

    gains = result.get_series("gains")
    comparisons: Dict[str, ComparisonReport] = {}
    for baseline in result.meta.get("baselines", []):
        samples = [
            GainSample(
                run_index=int(record["run"]),
                gain=float(record["gain"]),
                anc_throughput=float(record["anc_throughput"]),
                baseline_throughput=float(record["baseline_throughput"]),
                baseline_scheme=baseline,
            )
            for record in gains.records()
            if record["baseline"] == baseline
        ]
        comparisons[baseline] = ComparisonReport(baseline_scheme=baseline, samples=samples)
    ber_cdf = None
    if "ber" in result.series:
        ber_cdf = EmpiricalCDF.from_samples(result.get_series("ber").column("ber"))
    report = ExperimentReport(
        name=result.meta.get("title", result.name),
        comparisons=comparisons,
        ber_cdf=ber_cdf,
        extras=dict(result.scalars),
    )
    return report.render()


def _render_capacity(result: ExperimentResult) -> str:
    """Rebuild the Fig. 7 :class:`CapacityCurve` and render its table."""
    from repro.capacity.sweep import CapacityCurve
    from repro.experiments.capacity_fig7 import render_capacity_table

    curve = result.get_series("curve")
    view = CapacityCurve(
        snr_db=tuple(curve.column("snr_db")),
        traditional=tuple(curve.column("traditional")),
        anc=tuple(curve.column("anc")),
        gain=tuple(curve.column("gain")),
        # A crossover outside the swept grid is stored as "absent" (the
        # model holds finite numbers only); restore the NaN the legacy
        # curve carried so the table renders identically.
        crossover_db=float(result.scalars.get("crossover_db", float("nan"))),
    )
    return render_capacity_table(view)


def _render_sir(result: ExperimentResult) -> str:
    """Rebuild the Fig. 13 point list and render its table."""
    from repro.experiments.sir_sweep import SIRPoint, render_sir_table

    points = [
        SIRPoint(
            sir_db=float(record["sir_db"]),
            mean_ber=float(record["mean_ber"]),
            packets=int(record["packets"]),
            decode_failures=int(record["decode_failures"]),
        )
        for record in result.get_series("points").records()
    ]
    return render_sir_table(points)


def _render_snr(result: ExperimentResult) -> str:
    """Rebuild the extension SNR-sweep point list and render its table."""
    from repro.experiments.snr_sweep import SNRPoint, render_snr_table

    points = [
        SNRPoint(
            snr_db=float(record["snr_db"]),
            gain_over_traditional=float(record["gain_over_traditional"]),
            mean_ber=float(record["mean_ber"]),
            delivery_ratio=float(record["delivery_ratio"]),
            theoretical_gain=float(record["theoretical_gain"]),
        )
        for record in result.get_series("points").records()
    ]
    return render_snr_table(points)


def _render_summary(result: ExperimentResult) -> str:
    """Render the §11.3 summary table from the stored metric rows."""
    from repro.experiments.summary import render_summary_rows

    rows = result.get_series("rows")
    return render_summary_rows({
        str(record["metric"]): float(record["measured"]) for record in rows.records()
    })


def _render_scenario(result: ExperimentResult) -> str:
    """Rebuild a scenario sweep's nested row mapping and render its table."""
    from repro.experiments.scenarios import render_scenario_table

    rows: Dict[object, Dict[str, Dict[str, float]]] = {}
    for record in result.get_series("cells").records():
        rows.setdefault(record["value"], {}).setdefault(str(record["scheme"]), {})[
            str(record["metric"])
        ] = float(record["mean"])
    return render_scenario_table(
        name=result.name,
        sweep_axis=str(result.meta["sweep_axis"]),
        schemes=tuple(result.meta["schemes"]),
        sweep_values=tuple(result.meta["sweep_values"]),
        rows=rows,
        runs=int(result.meta["runs"]),
    )


#: Renderer dispatch: ``result.meta["renderer"]`` -> formatting view.
RENDERERS: Dict[str, Callable[[ExperimentResult], str]] = {
    "report": _render_report,
    "capacity": _render_capacity,
    "sir": _render_sir,
    "snr": _render_snr,
    "summary": _render_summary,
    "scenario": _render_scenario,
}


def render_text(result: ExperimentResult) -> str:
    """Render a structured result as the legacy plain-text report.

    Byte-identical to the report the experiment's original ``.render()``
    path produced: the renderer reconstructs the same view objects from
    the stored tables and reuses the same formatting code.
    """
    renderer = result.meta.get("renderer")
    handler = RENDERERS.get(renderer)
    if handler is None:
        raise ConfigurationError(
            f"result {result.name!r} names no known renderer "
            f"({renderer!r}); known: {', '.join(RENDERERS)}"
        )
    return handler(result)
